"""Shared test helpers (importable from every test module).

Kept outside conftest.py so plain ``from helpers import ...`` works under
pytest's rootdir-based sys.path handling without making ``tests/`` a
package.
"""

from __future__ import annotations

import numpy as np


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f with respect to array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        fp = f()
        x[idx] = original - eps
        fm = f()
        x[idx] = original
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad
