"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_topologies_defaults(self):
        args = build_parser().parse_args(["topologies"])
        assert args.scale == 1.0

    def test_compare_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--topology", "B4", "--matrices", "2"]
        )
        assert args.topology == "B4"
        assert args.matrices == 2

    def test_failures_counts(self):
        args = build_parser().parse_args(
            ["failures", "--counts", "0", "1", "2"]
        )
        assert args.counts == [0, 1, 2]

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.topologies == ["B4", "SWAN"]
        assert args.failures == [0, 1]
        assert args.executor == "process"
        assert args.output is None
        assert args.cache_dir is None

    def test_sweep_cache_dir(self):
        args = build_parser().parse_args(["sweep", "--cache-dir", "cache"])
        assert args.cache_dir == "cache"

    @pytest.mark.parametrize(
        "command", ["compare", "failures", "train", "sweep", "stream"]
    )
    def test_backend_flag(self, command):
        args = build_parser().parse_args([command])
        assert args.backend is None  # defer to REPRO_BACKEND, then numpy
        args = build_parser().parse_args([command, "--backend", "numpy"])
        assert args.backend == "numpy"
        args = build_parser().parse_args([command, "--backend", "torch"])
        assert args.backend == "torch"
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--backend", "cupy"])

    def test_cell_batch_flag(self):
        args = build_parser().parse_args(["sweep"])
        assert args.cell_batch is None  # defer to REPRO_CELL_BATCH, then 0
        args = build_parser().parse_args(["sweep", "--cell-batch", "0"])
        assert args.cell_batch == 0
        args = build_parser().parse_args(["sweep", "--cell-batch", "4"])
        assert args.cell_batch == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--cell-batch", "many"])

    def test_cell_batch_is_sweep_only(self):
        for command in ("compare", "failures", "train", "stream"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--cell-batch", "2"])

    def test_cache_prune_arguments(self):
        args = build_parser().parse_args(
            [
                "cache", "prune",
                "--cache-dir", "cache",
                "--max-bytes", "500M",
                "--dry-run",
            ]
        )
        assert args.cache_dir == "cache"
        assert args.max_bytes == "500M"
        assert args.dry_run is True

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.topology == "B4"
        assert args.matrices == 6
        assert args.schemes == ["Teal"]
        assert args.failures == 0
        assert args.failure_at is None
        assert args.interval_seconds == 300.0
        assert args.cold is False
        assert args.warm_iterations is None

    def test_stream_arguments(self):
        args = build_parser().parse_args(
            [
                "stream",
                "--topology", "SWAN",
                "--schemes", "LP-all", "Teal",
                "--failures", "2",
                "--failure-at", "1",
                "--recover-at", "3",
                "--cold",
                "--output", "stream.json",
            ]
        )
        assert args.topology == "SWAN"
        assert args.schemes == ["LP-all", "Teal"]
        assert args.failures == 2
        assert args.failure_at == 1
        assert args.recover_at == 3
        assert args.cold is True
        assert args.output == "stream.json"

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--topologies", "B4", "UsCarrier",
                "--failures", "0", "2",
                "--seeds", "0", "1",
                "--mode", "online",
                "--executor", "thread",
                "--output", "grid.json",
            ]
        )
        assert args.topologies == ["B4", "UsCarrier"]
        assert args.failures == [0, 2]
        assert args.seeds == [0, 1]
        assert args.mode == "online"
        assert args.executor == "thread"
        assert args.output == "grid.json"


class TestCommands:
    def test_topologies_runs(self, capsys):
        assert main(["topologies", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        for name in ("B4", "SWAN", "UsCarrier", "Kdl", "ASN"):
            assert name in out

    def test_compare_runs_small(self, capsys):
        code = main(
            ["compare", "--topology", "B4", "--matrices", "1", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Teal" in out
        assert "LP-all" in out

    def test_sweep_runs_small(self, capsys, tmp_path):
        output = tmp_path / "grid.json"
        code = main(
            [
                "sweep",
                "--topologies", "B4",
                "--failures", "0", "1",
                "--matrices", "2",
                "--train", "4",
                "--validation", "1",
                "--steps", "2",
                "--warm-start-steps", "6",
                "--executor", "serial",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failures=1" in out
        assert "Teal" in out
        from repro.sweep import GridResult

        result = GridResult.from_json(output)
        assert result.metadata["num_cells"] == 4

    def test_sweep_cache_dir_warm_rerun_matches(self, capsys, tmp_path):
        """A warm --cache-dir rerun loads scenarios/models from disk and
        reproduces the cold run's GridResult exactly."""
        from repro.harness import clear_caches
        from repro.sweep import GridResult

        argv = [
            "sweep",
            "--topologies", "B4",
            "--failures", "0",
            "--matrices", "2",
            "--train", "4",
            "--validation", "1",
            "--steps", "2",
            "--warm-start-steps", "6",
            "--executor", "serial",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        clear_caches()
        assert main(argv + ["--output", str(tmp_path / "cold.json")]) == 0
        clear_caches()  # drop in-memory tiers: the rerun must hit the disk
        assert main(argv + ["--output", str(tmp_path / "warm.json")]) == 0
        capsys.readouterr()
        cold = GridResult.from_json(tmp_path / "cold.json")
        warm = GridResult.from_json(tmp_path / "warm.json")
        assert [c.run.satisfied for c in warm.cells] == [
            c.run.satisfied for c in cold.cells
        ]
        assert (tmp_path / "cache").glob("scenario-*.npz")

    def test_stream_runs_small(self, capsys, tmp_path):
        import json

        output = tmp_path / "stream.json"
        code = main(
            [
                "stream",
                "--topology", "B4",
                "--schemes", "LP-all",
                "--matrices", "3",
                "--failures", "1",
                "--recover-at", "2",
                "--failure-at", "1",
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LP-all" in out
        assert "p50 lat" in out
        summary = json.loads(output.read_text())
        assert summary["LP-all"]["num_decisions"] == 3
        assert summary["LP-all"]["event_counts"] == {
            "traffic": 3, "failure": 1, "recovery": 1
        }
        assert len(summary["LP-all"]["latencies"]) == 3

    def test_train_runs_small(self, capsys):
        code = main(
            [
                "train",
                "--topology",
                "B4",
                "--steps",
                "2",
                "--warm-start-steps",
                "10",
            ]
        )
        assert code == 0
        assert "satisfied" in capsys.readouterr().out
