"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_topologies_defaults(self):
        args = build_parser().parse_args(["topologies"])
        assert args.scale == 1.0

    def test_compare_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--topology", "B4", "--matrices", "2"]
        )
        assert args.topology == "B4"
        assert args.matrices == 2

    def test_failures_counts(self):
        args = build_parser().parse_args(
            ["failures", "--counts", "0", "1", "2"]
        )
        assert args.counts == [0, 1, 2]


class TestCommands:
    def test_topologies_runs(self, capsys):
        assert main(["topologies", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        for name in ("B4", "SWAN", "UsCarrier", "Kdl", "ASN"):
            assert name in out

    def test_compare_runs_small(self, capsys):
        code = main(
            ["compare", "--topology", "B4", "--matrices", "1", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Teal" in out
        assert "LP-all" in out

    def test_train_runs_small(self, capsys):
        code = main(
            [
                "train",
                "--topology",
                "B4",
                "--steps",
                "2",
                "--warm-start-steps",
                "10",
            ]
        )
        assert code == 0
        assert "satisfied" in capsys.readouterr().out
