"""Tests for the baseline TE schemes: LP-all, LP-top, NCFlow, POP, TEAVAR*."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LpAll, LpTop, NCFlow, Pop, TeavarStar, default_cluster_count
from repro.exceptions import SolverError
from repro.lp import MinMaxLinkUtilizationObjective, TotalFlowObjective, solve_te_lp
from repro.simulation import evaluate_allocation


@pytest.fixture(scope="module")
def tight_demands(b4_pathset, b4_trace):
    """Demands scaled so capacity binds (schemes must make tradeoffs)."""
    return b4_pathset.demand_volumes(b4_trace[0].scaled(2.0).values)


class TestLpAll:
    def test_matches_direct_lp(self, b4_pathset, tight_demands):
        allocation = LpAll().allocate(b4_pathset, tight_demands)
        report = evaluate_allocation(
            b4_pathset, allocation.split_ratios, tight_demands
        )
        direct = solve_te_lp(b4_pathset, tight_demands, TotalFlowObjective())
        assert report.delivered_total == pytest.approx(
            direct.objective_value, rel=1e-6
        )

    def test_records_timing_and_extras(self, b4_pathset, tight_demands):
        allocation = LpAll().allocate(b4_pathset, tight_demands)
        assert allocation.compute_time > 0
        assert allocation.extras["lp_iterations"] >= 1
        assert allocation.scheme == "LP-all"

    def test_capacity_override(self, b4_pathset, tight_demands):
        half = b4_pathset.topology.capacities * 0.5
        full_run = LpAll().allocate(b4_pathset, tight_demands)
        half_run = LpAll().allocate(b4_pathset, tight_demands, half)
        full_val = evaluate_allocation(
            b4_pathset, full_run.split_ratios, tight_demands
        ).delivered_total
        half_val = evaluate_allocation(
            b4_pathset, half_run.split_ratios, tight_demands, half
        ).delivered_total
        assert half_val < full_val

    def test_mlu_objective(self, b4_pathset, b4_demands):
        allocation = LpAll(MinMaxLinkUtilizationObjective()).allocate(
            b4_pathset, b4_demands
        )
        obj = MinMaxLinkUtilizationObjective()
        mlu = obj.evaluate(b4_pathset, allocation.split_ratios, b4_demands)
        assert np.isfinite(mlu)
        # Ratios route (almost) everything under the equality constraint;
        # demands below solver tolerance are exempt.
        sums = allocation.split_ratios.sum(axis=1)
        meaningful = b4_demands > 1e-3 * b4_demands.max()
        assert np.all(sums[meaningful] > 0.99)


class TestLpTop:
    def test_top_ids_by_volume(self, b4_pathset, tight_demands):
        scheme = LpTop(alpha_percent=10)
        top = scheme.top_demand_ids(tight_demands)
        assert len(top) == max(1, round(0.1 * len(tight_demands)))
        cutoff = tight_demands[top].min()
        others = np.delete(tight_demands, top)
        assert np.all(others <= cutoff + 1e-9)

    def test_small_demands_pinned_to_shortest(self, b4_pathset, tight_demands):
        scheme = LpTop(alpha_percent=10)
        allocation = scheme.allocate(b4_pathset, tight_demands)
        top = set(scheme.top_demand_ids(tight_demands).tolist())
        for d in range(b4_pathset.num_demands):
            if d not in top:
                assert allocation.split_ratios[d, 0] == pytest.approx(1.0)
                assert allocation.split_ratios[d, 1:].sum() == pytest.approx(0.0)

    def test_close_to_lp_all_on_heavy_tail(self, b4_pathset, tight_demands):
        """Demand pinning works because the tail is heavy (§5.1)."""
        lp_all = LpAll().allocate(b4_pathset, tight_demands)
        lp_top = LpTop().allocate(b4_pathset, tight_demands)
        full = evaluate_allocation(
            b4_pathset, lp_all.split_ratios, tight_demands
        ).satisfied_fraction
        pinned = evaluate_allocation(
            b4_pathset, lp_top.split_ratios, tight_demands
        ).satisfied_fraction
        assert pinned >= full - 0.12

    def test_charges_rebuild_time(self, b4_pathset, tight_demands):
        allocation = LpTop().allocate(b4_pathset, tight_demands)
        assert allocation.extras["model_build_time"] >= 0
        assert allocation.compute_time >= allocation.extras["model_build_time"]

    def test_alpha_validation(self):
        with pytest.raises(SolverError):
            LpTop(alpha_percent=0)
        with pytest.raises(SolverError):
            LpTop(alpha_percent=101)


class TestNCFlow:
    def test_produces_feasible_allocation(self, b4_pathset, tight_demands):
        allocation = NCFlow(num_clusters=3).allocate(b4_pathset, tight_demands)
        report = evaluate_allocation(
            b4_pathset, allocation.split_ratios, tight_demands
        )
        # After merge reconciliation the intended allocation is feasible.
        assert report.intended_mlu <= 1.0 + 1e-6

    def test_worse_than_lp_all(self, b4_pathset, tight_demands):
        """Decomposition loses performance (the paper's core observation)."""
        lp = LpAll().allocate(b4_pathset, tight_demands)
        nc = NCFlow(num_clusters=3).allocate(b4_pathset, tight_demands)
        lp_sat = evaluate_allocation(
            b4_pathset, lp.split_ratios, tight_demands
        ).satisfied_fraction
        nc_sat = evaluate_allocation(
            b4_pathset, nc.split_ratios, tight_demands
        ).satisfied_fraction
        assert nc_sat <= lp_sat + 1e-9

    def test_extras_report_clusters(self, b4_pathset, tight_demands):
        allocation = NCFlow(num_clusters=3).allocate(b4_pathset, tight_demands)
        assert allocation.extras["num_clusters"] == 3
        total = (
            allocation.extras["num_intra_demands"]
            + allocation.extras["num_inter_demands"]
        )
        assert total == int((tight_demands > 0).sum())

    def test_default_cluster_count(self):
        assert default_cluster_count(100) == 10
        assert default_cluster_count(4) == 2

    def test_cluster_validation(self):
        with pytest.raises(SolverError):
            NCFlow(num_clusters=1)


class TestPop:
    def test_replicas_split_work(self, b4_pathset, tight_demands):
        allocation = Pop(num_replicas=4, seed=0).allocate(
            b4_pathset, tight_demands
        )
        assert allocation.extras["num_replicas"] == 4
        report = evaluate_allocation(
            b4_pathset, allocation.split_ratios, tight_demands
        )
        assert 0 < report.satisfied_fraction <= 1

    def test_single_replica_equals_lp_all(self, b4_pathset, tight_demands):
        """k=1 POP degenerates to LP-all (paper uses k=1 on B4/SWAN)."""
        pop = Pop(num_replicas=1, seed=0).allocate(b4_pathset, tight_demands)
        lp = LpAll().allocate(b4_pathset, tight_demands)
        pop_val = evaluate_allocation(
            b4_pathset, pop.split_ratios, tight_demands
        ).delivered_total
        lp_val = evaluate_allocation(
            b4_pathset, lp.split_ratios, tight_demands
        ).delivered_total
        assert pop_val == pytest.approx(lp_val, rel=1e-6)

    def test_more_replicas_weakly_worse(self, b4_pathset, tight_demands):
        one = Pop(num_replicas=1).allocate(b4_pathset, tight_demands)
        eight = Pop(num_replicas=8, seed=1).allocate(b4_pathset, tight_demands)
        v1 = evaluate_allocation(
            b4_pathset, one.split_ratios, tight_demands
        ).delivered_total
        v8 = evaluate_allocation(
            b4_pathset, eight.split_ratios, tight_demands
        ).delivered_total
        assert v8 <= v1 * 1.02  # decomposition cannot beat the exact LP

    def test_client_splitting_counts(self, b4_pathset, tight_demands):
        allocation = Pop(num_replicas=4, split_threshold=0.05).allocate(
            b4_pathset, tight_demands
        )
        assert allocation.extras["num_split_demands"] > 0

    def test_charges_max_replica_time(self, b4_pathset, tight_demands):
        allocation = Pop(num_replicas=4).allocate(b4_pathset, tight_demands)
        assert allocation.compute_time >= allocation.extras["max_replica_solve_time"]

    def test_validation(self):
        with pytest.raises(SolverError):
            Pop(num_replicas=0)
        with pytest.raises(SolverError):
            Pop(split_threshold=0.0)


class TestTeavarStar:
    def test_allocation_feasible_nominally(self, b4_pathset, b4_demands):
        allocation = TeavarStar(max_scenarios=12).allocate(
            b4_pathset, b4_demands
        )
        report = evaluate_allocation(
            b4_pathset, allocation.split_ratios, b4_demands
        )
        assert report.intended_mlu <= 1.0 + 1e-6

    def test_more_conservative_than_lp_all(self, b4_pathset, tight_demands):
        """Availability hedging sacrifices utilization (Figure 8)."""
        teavar = TeavarStar(availability_weight=50.0, max_scenarios=20).allocate(
            b4_pathset, tight_demands
        )
        lp = LpAll().allocate(b4_pathset, tight_demands)
        t_val = evaluate_allocation(
            b4_pathset, teavar.split_ratios, tight_demands
        ).delivered_total
        lp_val = evaluate_allocation(
            b4_pathset, lp.split_ratios, tight_demands
        ).delivered_total
        assert t_val <= lp_val + 1e-6

    def test_survives_failures_better(self, b4_pathset, tight_demands):
        """Under failures, the hedged plan should retain relatively more."""
        from repro.topology import sample_link_failures

        failed = sample_link_failures(b4_pathset.topology, 1, seed=5)
        caps = b4_pathset.topology.capacities.copy()
        caps[failed] = 0.0

        teavar = TeavarStar(availability_weight=50.0, max_scenarios=20)
        t_alloc = teavar.allocate(b4_pathset, tight_demands)
        t_nominal = evaluate_allocation(
            b4_pathset, t_alloc.split_ratios, tight_demands
        ).delivered_total
        t_failed = evaluate_allocation(
            b4_pathset, t_alloc.split_ratios, tight_demands, caps
        ).delivered_total
        # The hedged plan keeps most of its value under a single failure.
        assert t_failed >= 0.5 * t_nominal

    def test_scenario_cap(self, b4_pathset, b4_demands):
        allocation = TeavarStar(max_scenarios=5).allocate(b4_pathset, b4_demands)
        assert allocation.extras["num_scenarios"] == 5

    def test_validation(self):
        with pytest.raises(SolverError):
            TeavarStar(availability_weight=0.0)
        with pytest.raises(SolverError):
            TeavarStar(max_scenarios=0)
