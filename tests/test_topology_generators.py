"""Tests for the five evaluation-topology generators (Tables 1 and 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    PAPER_SIZES,
    asn,
    average_shortest_path_length,
    b4,
    diameter,
    get_topology,
    kdl,
    provision_capacities,
    swan,
    topology_summary,
    us_carrier,
)


def test_b4_matches_table1():
    topo = b4()
    nodes, edges = PAPER_SIZES["B4"]
    assert topo.num_nodes == nodes
    assert topo.num_edges == edges


def test_b4_matches_table3_stats():
    topo = b4()
    # Table 3: avg shortest path 2.3, diameter 5.
    assert average_shortest_path_length(topo) == pytest.approx(2.3, abs=0.2)
    assert diameter(topo) == 5


def test_swan_size_and_connectivity():
    topo = swan(num_nodes=50, seed=1)
    assert topo.num_nodes == 50
    assert topo.is_strongly_connected()


def test_swan_requires_four_nodes():
    with pytest.raises(TopologyError):
        swan(num_nodes=3)


@pytest.mark.parametrize(
    "factory,name", [(us_carrier, "UsCarrier"), (kdl, "Kdl"), (asn, "ASN")]
)
def test_scaled_generators_connected(factory, name):
    topo = factory(scale=0.1)
    assert topo.name == name
    assert topo.is_strongly_connected()


def test_us_carrier_full_size_matches_table1():
    topo = us_carrier(scale=1.0)
    nodes, edges = PAPER_SIZES["UsCarrier"]
    assert topo.num_nodes == nodes
    assert abs(topo.num_edges - edges) / edges < 0.1


def test_us_carrier_full_size_structure_matches_table3():
    topo = us_carrier(scale=1.0)
    # Table 3: diameter 35, avg shortest path 12.1 (bands per DESIGN.md).
    assert 25 <= diameter(topo) <= 45
    assert 8.0 <= average_shortest_path_length(topo) <= 17.0


def test_asn_small_diameter_structure():
    topo = asn(scale=0.15)
    # ASN's defining property: large node count, tiny diameter (Table 3).
    assert diameter(topo) <= 10
    assert average_shortest_path_length(topo) <= 6.0


def test_kdl_scaled_is_sparser_and_deeper_than_asn():
    k = kdl(scale=0.08)
    a = asn(scale=0.08)
    assert diameter(k) > diameter(a)


def test_get_topology_dispatch():
    topo = get_topology("SWAN", scale=0.2)
    assert topo.name == "SWAN"
    assert topo.num_nodes == 20


def test_get_topology_unknown_name():
    with pytest.raises(TopologyError):
        get_topology("NotATopology")


def test_get_topology_invalid_scale():
    with pytest.raises(TopologyError):
        get_topology("SWAN", scale=0.0)
    with pytest.raises(TopologyError):
        get_topology("SWAN", scale=1.5)


def test_generators_deterministic():
    a = swan(num_nodes=30, seed=9)
    b = swan(num_nodes=30, seed=9)
    assert a == b
    c = swan(num_nodes=30, seed=10)
    assert a != c


def test_provision_capacities_headroom():
    topo = b4(capacity=1.0)
    loads = np.linspace(1.0, 38.0, topo.num_edges)
    provisioned = provision_capacities(topo, loads, headroom=1.5)
    assert np.all(provisioned.capacities >= loads * 1.5 - 1e-9)


def test_provision_capacities_floor():
    topo = b4(capacity=1.0)
    loads = np.zeros(topo.num_edges)
    loads[0] = 100.0
    provisioned = provision_capacities(
        topo, loads, headroom=1.0, min_capacity_fraction=0.05
    )
    # Every unloaded link still gets the floor (5% of the peak load).
    assert provisioned.capacities.min() >= 5.0 - 1e-9


def test_provision_capacities_validates_shape():
    topo = b4()
    with pytest.raises(TopologyError):
        provision_capacities(topo, np.ones(3))


def test_provision_capacities_rejects_bad_headroom():
    topo = b4()
    with pytest.raises(TopologyError):
        provision_capacities(topo, np.ones(topo.num_edges), headroom=0.0)


def test_topology_summary_keys(b4_topology):
    summary = topology_summary(b4_topology)
    assert set(summary) == {"nodes", "edges", "avg_shortest_path", "diameter"}
