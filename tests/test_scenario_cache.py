"""Regression tests for the on-disk scenario cache (harness tier).

Contracts pinned here:

1. **Hit == rebuild, bit for bit** — a scenario loaded from disk equals
   the freshly built one in every array and derived structure.
2. **Any key-field change misses** — each ``build_scenario`` parameter
   lands its own cache entry; no stale cross-config reuse.
3. **Corruption falls back to rebuild** — garbage, truncated, or
   key-mismatched entries warn, rebuild, and repair the entry rather
   than crash.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.harness import (
    build_scenario,
    clear_caches,
    load_scenario,
    save_scenario,
    scenario_cache_path,
)

#: Small, fast build_scenario kwargs shared by every test.
SMALL = dict(train=4, validation=1, test=2, max_pairs=60)


def assert_scenarios_identical(a, b) -> None:
    """Field-by-field bit-identity of two scenarios."""
    assert a.name == b.name and a.seed == b.seed
    assert a.build_key == b.build_key
    # Topology: structure and exact float arrays.
    assert a.topology.name == b.topology.name
    assert a.topology.num_nodes == b.topology.num_nodes
    assert a.topology.edges == b.topology.edges
    assert np.array_equal(a.topology.capacities, b.topology.capacities)
    assert np.array_equal(a.topology.latencies, b.topology.latencies)
    assert a.topology.node_names == b.topology.node_names
    # Path set: raw inputs and recomputed derived structures.
    assert a.pathset.pairs == b.pathset.pairs
    assert a.pathset.max_paths == b.pathset.max_paths
    assert a.pathset.path_nodes == b.pathset.path_nodes
    assert np.array_equal(a.pathset.path_demand, b.pathset.path_demand)
    assert np.array_equal(a.pathset.demand_path_ids, b.pathset.demand_path_ids)
    assert np.array_equal(a.pathset.path_latencies, b.pathset.path_latencies)
    incidence_delta = (
        a.pathset.edge_path_incidence != b.pathset.edge_path_incidence
    )
    assert incidence_delta.nnz == 0
    # Trace split: every matrix's values and interval label.
    for part in ("train", "validation", "test"):
        left, right = getattr(a.split, part), getattr(b.split, part)
        assert len(left) == len(right)
        for m_left, m_right in zip(left, right):
            assert np.array_equal(m_left.values, m_right.values)
            assert m_left.interval == m_right.interval


@pytest.fixture(autouse=True)
def _cold_memory_caches():
    """Every test starts (and leaves) with empty in-memory caches."""
    clear_caches()
    yield
    clear_caches()


class TestCacheHit:
    def test_hit_is_bit_identical(self, tmp_path):
        fresh = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        clear_caches()  # force the second call onto the disk tier
        cached = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        assert cached is not fresh
        assert_scenarios_identical(fresh, cached)

    def test_hit_across_topologies(self, tmp_path):
        for name in ("SWAN", "UsCarrier", "Kdl"):
            fresh = build_scenario(name, cache_dir=tmp_path, **SMALL)
            clear_caches()
            cached = build_scenario(name, cache_dir=tmp_path, **SMALL)
            assert_scenarios_identical(fresh, cached)

    def test_memory_hit_materializes_disk_entry(self, tmp_path):
        scenario = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        entry = scenario_cache_path(tmp_path, scenario.build_key)
        assert entry.exists()
        entry.unlink()
        # In-memory hit with a missing disk entry rewrites the entry.
        again = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        assert again is scenario
        assert entry.exists()

    def test_save_load_roundtrip_direct(self, tmp_path):
        scenario = build_scenario("B4", **SMALL)
        path = save_scenario(scenario, tmp_path / "entry.npz")
        loaded = load_scenario(path, expected_key=scenario.build_key)
        assert_scenarios_identical(scenario, loaded)


class TestCacheMiss:
    def test_every_key_field_change_misses(self, tmp_path):
        """Changing any single build parameter must land a new entry."""
        base = dict(
            name="B4", scale=None, seed=0, max_pairs=60,
            train=4, validation=1, test=2, headroom=0.9,
        )
        variations = [
            {"name": "SWAN"},           # topology
            {"seed": 1},                # seed == trace/pair variant
            {"scale": 0.5},             # topology size (vs bench default)
            {"max_pairs": 50},          # demand budget
            {"train": 5},               # split sizes
            {"validation": 2},
            {"test": 3},
            {"headroom": 0.8},          # provisioning level
        ]
        build_scenario(cache_dir=tmp_path, **base)
        entries = set(tmp_path.glob("scenario-*.npz"))
        assert len(entries) == 1
        for overrides in variations:
            clear_caches()
            build_scenario(cache_dir=tmp_path, **{**base, **overrides})
            new_entries = set(tmp_path.glob("scenario-*.npz"))
            assert len(new_entries) == len(entries) + 1, (
                f"{overrides} did not produce a fresh cache entry"
            )
            entries = new_entries

    def test_use_cache_false_rebuilds_and_overwrites(self, tmp_path):
        build_scenario("B4", cache_dir=tmp_path, **SMALL)
        (entry,) = tmp_path.glob("scenario-*.npz")
        mtime = entry.stat().st_mtime_ns
        clear_caches()
        rebuilt = build_scenario(
            "B4", cache_dir=tmp_path, use_cache=False, **SMALL
        )
        assert entry.stat().st_mtime_ns > mtime  # overwritten, not loaded
        clear_caches()
        cached = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        assert_scenarios_identical(rebuilt, cached)


class TestCorruptionFallback:
    def corrupt_and_rebuild(self, tmp_path, payload: bytes):
        reference = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        (entry,) = tmp_path.glob("scenario-*.npz")
        entry.write_bytes(payload)
        clear_caches()
        with pytest.warns(RuntimeWarning, match="rebuilding"):
            rebuilt = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        assert_scenarios_identical(reference, rebuilt)
        # The bad entry was repaired: the next load works silently.
        clear_caches()
        repaired = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        assert_scenarios_identical(reference, repaired)

    def test_garbage_bytes_fall_back(self, tmp_path):
        self.corrupt_and_rebuild(tmp_path, b"this is not an npz archive")

    def test_truncated_archive_falls_back(self, tmp_path):
        build_scenario("B4", cache_dir=tmp_path, **SMALL)
        (entry,) = tmp_path.glob("scenario-*.npz")
        self.corrupt_and_rebuild(
            tmp_path, entry.read_bytes()[: entry.stat().st_size // 2]
        )

    def test_key_mismatch_detected_on_load(self, tmp_path):
        scenario = build_scenario("B4", cache_dir=tmp_path, **SMALL)
        (entry,) = tmp_path.glob("scenario-*.npz")
        with pytest.raises(ReproError, match="key mismatch"):
            load_scenario(entry, expected_key=("B4", 1.0, 99))
        # Without an expected key the entry still loads.
        assert_scenarios_identical(scenario, load_scenario(entry))

    def test_unknown_format_rejected(self, tmp_path, monkeypatch):
        import repro.harness as harness

        build_scenario("B4", cache_dir=tmp_path, **SMALL)
        (entry,) = tmp_path.glob("scenario-*.npz")
        monkeypatch.setattr(
            harness, "SCENARIO_CACHE_FORMAT", harness.SCENARIO_CACHE_FORMAT + 1
        )
        with pytest.raises(ReproError, match="format"):
            load_scenario(entry)

    def test_no_tmp_files_left_behind(self, tmp_path):
        build_scenario("B4", cache_dir=tmp_path, **SMALL)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []
