"""Tests for COMA* training, the reward model, and direct-loss training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core import (
    ComaTrainer,
    DecomposableReward,
    DirectLossTrainer,
    TealModel,
    masked_softmax_np,
)
from repro.exceptions import TrainingError
from repro.lp import MinMaxLinkUtilizationObjective, TotalFlowObjective
from repro.paths import PathSet
from repro.topology import b4
from repro.traffic import TrafficTrace


@pytest.fixture(scope="module")
def tight_b4():
    """B4 sized so capacity binds during training."""
    topo = b4(capacity=60.0)
    pathset = PathSet.from_topology(topo)
    trace = TrafficTrace.generate(12, 16, seed=5)
    matrices = trace.matrices
    return pathset, matrices


class TestMaskedSoftmax:
    def test_matches_tensor_version(self):
        from repro.nn import Tensor
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 4))
        mask = rng.random((6, 4)) > 0.3
        mask[:, 0] = True
        np_out = masked_softmax_np(logits, mask)
        tensor_out = F.softmax(Tensor(logits), mask=mask).numpy()
        assert np.allclose(np_out, tensor_out)


class TestDecomposableReward:
    def test_base_values_sum_to_joint_reward(self, tight_b4):
        """With candidate == base, per-demand values sum to the objective."""
        pathset, matrices = tight_b4
        objective = TotalFlowObjective()
        reward = DecomposableReward(pathset, objective)
        demands = pathset.demand_volumes(matrices[0].values)
        rng = np.random.default_rng(0)
        ratios = masked_softmax_np(
            rng.normal(size=(pathset.num_demands, 4)), pathset.path_mask
        )
        flows = pathset.split_ratios_to_path_flows(ratios, demands)
        values = reward.demand_values(
            flows, flows, pathset.topology.capacities
        )
        joint = objective.evaluate(pathset, ratios, demands)
        assert values.sum() == pytest.approx(joint, rel=1e-9)

    def test_incremental_matches_exact_counterfactual(self, tight_b4):
        """Mean-field evaluation tracks full re-simulation (DESIGN.md §5)."""
        pathset, matrices = tight_b4
        objective = TotalFlowObjective()
        reward = DecomposableReward(pathset, objective)
        demands = pathset.demand_volumes(matrices[0].values)
        rng = np.random.default_rng(1)
        base = masked_softmax_np(
            rng.normal(size=(pathset.num_demands, 4)), pathset.path_mask
        )
        alt = masked_softmax_np(
            rng.normal(size=(pathset.num_demands, 4)), pathset.path_mask
        )
        base_flows = pathset.split_ratios_to_path_flows(base, demands)
        alt_flows = pathset.split_ratios_to_path_flows(alt, demands)
        approx = reward.demand_values(
            base_flows, alt_flows, pathset.topology.capacities
        )
        exact = reward.exact_demand_values(
            base, alt, demands, pathset.topology.capacities
        )
        base_values = reward.demand_values(
            base_flows, base_flows, pathset.topology.capacities
        )
        joint = objective.evaluate(pathset, base, demands)
        # Advantage comparison: approx advantage vs exact advantage.
        approx_adv = base_values - approx
        exact_adv = joint - exact
        # Directionally consistent: strong positive rank correlation.
        order_a = np.argsort(approx_adv)
        order_e = np.argsort(exact_adv)
        rank_a = np.empty_like(order_a)
        rank_a[order_a] = np.arange(len(order_a))
        rank_e = np.empty_like(order_e)
        rank_e[order_e] = np.arange(len(order_e))
        corr = np.corrcoef(rank_a, rank_e)[0, 1]
        assert corr > 0.7

    def test_mlu_values_negative(self, tight_b4):
        pathset, matrices = tight_b4
        reward = DecomposableReward(pathset, MinMaxLinkUtilizationObjective())
        demands = pathset.demand_volumes(matrices[0].values)
        ratios = np.zeros((pathset.num_demands, 4))
        ratios[:, 0] = 1.0
        flows = pathset.split_ratios_to_path_flows(ratios, demands)
        values = reward.demand_values(flows, flows, pathset.topology.capacities)
        assert np.all(values <= 0)


class TestComaTrainer:
    def test_training_improves_reward(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = ComaTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(steps=40, warm_start_steps=0, log_every=5, seed=0),
        )
        history = trainer.train(matrices[:8])
        assert history.rewards[-1] >= history.rewards[0] * 0.95
        assert len(history.steps) >= 2

    def test_empty_trace_raises(self, tight_b4):
        pathset, _ = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = ComaTrainer(model)
        with pytest.raises(TrainingError):
            trainer.train([])

    def test_invalid_samples(self, tight_b4):
        pathset, _ = tight_b4
        model = TealModel(pathset, seed=0)
        with pytest.raises(TrainingError):
            ComaTrainer(model, counterfactual_samples=0)

    def test_exact_mode_runs(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = ComaTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(steps=2, warm_start_steps=0, log_every=1),
            counterfactual_samples=1,
            exact_counterfactual=True,
        )
        history = trainer.train(matrices[:2])
        assert len(history.rewards) >= 1

    def test_batched_demands(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = ComaTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(
                steps=4, warm_start_steps=0, batch_demands=16, log_every=2
            ),
        )
        history = trainer.train(matrices[:4])
        assert history.losses


class TestDirectLossTrainer:
    def test_training_improves_satisfied(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = DirectLossTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(steps=120, warm_start_steps=0, log_every=20),
        )
        history = trainer.train(matrices[:8])
        assert history.satisfied[-1] > history.satisfied[0]

    def test_loss_decreases(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=1)
        trainer = DirectLossTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(steps=80, warm_start_steps=0, log_every=10),
        )
        history = trainer.train(matrices[:4])
        assert history.losses[-1] < history.losses[0]

    def test_mlu_uses_pnorm_surrogate(self, tight_b4):
        """MLU training minimizes the p-norm utilization surrogate."""
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = DirectLossTrainer(model, MinMaxLinkUtilizationObjective())
        assert trainer.is_mlu
        history = trainer.train(matrices[:4], steps=40)
        # The reward is -MLU: it should not get materially worse.
        assert history.rewards[-1] >= history.rewards[0] - 0.25

    def test_mlu_surrogate_decreases(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=1)
        trainer = DirectLossTrainer(
            model,
            MinMaxLinkUtilizationObjective(),
            TrainingConfig(steps=60, warm_start_steps=0, log_every=10),
        )
        history = trainer.train(matrices[:4])
        assert history.losses[-1] <= history.losses[0]

    def test_empty_trace_raises(self, tight_b4):
        pathset, _ = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = DirectLossTrainer(model)
        with pytest.raises(TrainingError):
            trainer.train([])
