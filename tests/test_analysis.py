"""Tests for t-SNE, embedding interpretation, and solver-scaling analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    busy_path_labels,
    calibrate_portfolio_sigma,
    cluster_separation_score,
    concurrent_lp_speedups,
    measure_single_thread_time,
    projected_solve_times,
    tsne,
)
from repro.exceptions import ReproError


class TestTsne:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 6))
        y = tsne(x, iterations=80, seed=0)
        assert y.shape == (40, 2)
        assert np.isfinite(y).all()

    def test_separates_two_gaussian_clusters(self):
        """Well-separated input clusters must stay separated in 2-D."""
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.3, size=(30, 5))
        b = rng.normal(8.0, 0.3, size=(30, 5))
        coords = tsne(np.vstack([a, b]), iterations=250, seed=1)
        labels = np.array([True] * 30 + [False] * 30)
        score = cluster_separation_score(coords, labels)
        assert score > 1.0

    def test_perplexity_autoclamped(self):
        rng = np.random.default_rng(2)
        coords = tsne(rng.normal(size=(10, 3)), perplexity=50, iterations=30)
        assert coords.shape == (10, 2)

    def test_too_few_points(self):
        with pytest.raises(ReproError):
            tsne(np.zeros((3, 2)))

    def test_requires_2d(self):
        with pytest.raises(ReproError):
            tsne(np.zeros(10))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(20, 4))
        a = tsne(x, iterations=50, seed=7)
        b = tsne(x, iterations=50, seed=7)
        assert np.allclose(a, b)


class TestBusyPathLabels:
    def test_labels_one_busy_path_per_demand(self, b4_pathset, b4_demands):
        from repro.baselines import LpAll

        allocation = LpAll().allocate(b4_pathset, b4_demands)
        labels = busy_path_labels(b4_pathset, allocation.split_ratios)
        assert labels.shape == (b4_pathset.num_paths,)
        # At most one busy path per demand.
        per_demand = np.zeros(b4_pathset.num_demands)
        np.add.at(per_demand, b4_pathset.path_demand, labels.astype(int))
        assert np.all(per_demand <= 1)
        assert labels.sum() > 0

    def test_zero_allocation_no_busy(self, b4_pathset):
        labels = busy_path_labels(
            b4_pathset, np.zeros((b4_pathset.num_demands, 4))
        )
        assert labels.sum() == 0

    def test_shape_validation(self, b4_pathset):
        with pytest.raises(ReproError):
            busy_path_labels(b4_pathset, np.zeros((3, 4)))

    def test_separation_score_requires_both_classes(self):
        with pytest.raises(ReproError):
            cluster_separation_score(np.zeros((5, 2)), np.ones(5, dtype=bool))


class TestSolverScaling:
    def test_calibration_hits_paper_anchor(self):
        """Figure 2 anchor: 16 threads -> ~3.8x speedup."""
        sigma = calibrate_portfolio_sigma(target_speedup=3.8, threads=16)
        speedups = concurrent_lp_speedups([16], sigma=sigma)
        assert speedups[16] == pytest.approx(3.8, rel=0.05)

    def test_speedups_monotone_and_marginal(self):
        speedups = concurrent_lp_speedups([1, 2, 4, 8, 16], seed=0)
        values = [speedups[n] for n in [1, 2, 4, 8, 16]]
        assert values[0] == pytest.approx(1.0, rel=0.02)
        assert all(b >= a for a, b in zip(values, values[1:]))
        # Sub-linear: doubling threads never doubles speedup (Figure 2).
        assert speedups[16] < 8.0

    def test_projected_times_decrease(self):
        speedups = {1: 1.0, 4: 2.0, 16: 3.8}
        times = projected_solve_times(100.0, speedups)
        assert times[1] == pytest.approx(100.0)
        assert times[16] == pytest.approx(100.0 / 3.8)

    def test_projected_times_validation(self):
        with pytest.raises(ReproError):
            projected_solve_times(0.0, {1: 1.0})

    def test_measure_single_thread_time(self, b4_pathset, b4_demands):
        t = measure_single_thread_time(b4_pathset, b4_demands)
        assert t > 0

    def test_thread_count_validation(self):
        with pytest.raises(ReproError):
            concurrent_lp_speedups([])
        with pytest.raises(ReproError):
            concurrent_lp_speedups([0])
        with pytest.raises(ReproError):
            calibrate_portfolio_sigma(target_speedup=0.5)
