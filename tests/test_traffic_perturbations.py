"""Tests for the Figure 10 robustness perturbations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TrafficError
from repro.traffic import (
    TrafficTrace,
    spatial_redistribution,
    temporal_fluctuation,
)


@pytest.fixture(scope="module")
def trace() -> TrafficTrace:
    return TrafficTrace.generate(12, 30, seed=11)


class TestTemporalFluctuation:
    def test_factor_one_is_identity(self, trace):
        same = temporal_fluctuation(trace, 1.0)
        for a, b in zip(trace, same):
            assert np.allclose(a.values, b.values)

    def test_factor_increases_variance(self, trace):
        noisy = temporal_fluctuation(trace, 10.0, seed=0)
        base_var = trace.temporal_variances().sum()
        noisy_var = noisy.temporal_variances().sum()
        assert noisy_var > base_var * 2

    def test_total_demand_roughly_preserved(self, trace):
        """Zero-mean noise should not drastically change total volume."""
        noisy = temporal_fluctuation(trace, 5.0, seed=0)
        base = sum(m.total_demand() for m in trace)
        perturbed = sum(m.total_demand() for m in noisy)
        assert perturbed == pytest.approx(base, rel=0.2)

    def test_demands_stay_nonnegative(self, trace):
        noisy = temporal_fluctuation(trace, 20.0, seed=0)
        for m in noisy:
            assert (m.values >= 0).all()

    def test_rejects_factor_below_one(self, trace):
        with pytest.raises(TrafficError):
            temporal_fluctuation(trace, 0.5)


class TestSpatialRedistribution:
    @pytest.mark.parametrize("target", [0.8, 0.6, 0.4, 0.2])
    def test_hits_target_share(self, trace, target):
        """Figure 10b sweeps the top-10% share to 80/60/40/20%."""
        shifted = spatial_redistribution(trace, target)
        shares = [m.top_fraction_share(0.1) for m in shifted]
        assert np.mean(shares) == pytest.approx(target, abs=0.05)

    def test_preserves_total_volume(self, trace):
        shifted = spatial_redistribution(trace, 0.4)
        for before, after in zip(trace, shifted):
            assert after.total_demand() == pytest.approx(
                before.total_demand(), rel=1e-6
            )

    def test_validation(self, trace):
        with pytest.raises(TrafficError):
            spatial_redistribution(trace, 0.0)
        with pytest.raises(TrafficError):
            spatial_redistribution(trace, 1.0)
        with pytest.raises(TrafficError):
            spatial_redistribution(trace, 0.5, top_fraction=0.0)
