"""Tests for the event-driven streaming TE engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.admm import AdmmFineTuner
from repro.exceptions import SimulationError
from repro.lp.objectives import TotalFlowObjective
from repro.simulation import (
    Allocation,
    EventSchedule,
    LinkFailure,
    LinkRecovery,
    OnlineSimulator,
    StreamingEngine,
    TrafficUpdate,
)

from test_online_simulation import FixedTimeScheme


class ScriptedTimeScheme(FixedTimeScheme):
    """LP-backed scheme whose compute time follows a per-call script."""

    def __init__(self, times: list[float], name: str = "scripted") -> None:
        super().__init__(times[0], name)
        self.times = list(times)

    def allocate(self, pathset, demands, capacities=None):
        self.compute_time = self.times[min(self.calls, len(self.times) - 1)]
        return super().allocate(pathset, demands, capacities)


class RecordingScheme:
    """Test double that records the capacities every decision sees."""

    name = "recording"

    def __init__(self) -> None:
        self.seen_capacities: list[np.ndarray] = []

    def allocate(self, pathset, demands, capacities=None):
        self.seen_capacities.append(np.array(capacities, copy=True))
        ratios = np.zeros((pathset.num_demands, pathset.max_paths))
        ratios[:, 0] = 1.0
        return Allocation(ratios, compute_time=1.0, scheme=self.name)


class WarmCapableScheme(FixedTimeScheme):
    """LP allocations plus the ADMM warm-start seam Teal exposes."""

    def __init__(self, pathset) -> None:
        super().__init__(1.0, "warmable")
        self.admm = AdmmFineTuner(pathset)
        self.objective = TotalFlowObjective()


class TestEventSchedule:
    def test_from_trace(self, b4_trace):
        mats = b4_trace.matrices[:4]
        schedule = EventSchedule.from_trace(mats, interval_seconds=300.0)
        assert schedule.num_intervals == 4
        assert schedule.matrices() == mats
        assert [e.time for e in schedule.events] == [0.0, 300.0, 600.0, 900.0]

    def test_events_sorted_capacity_first(self, b4_trace):
        mats = b4_trace.matrices[:3]
        # Deliberately unsorted; failure shares interval 1's timestamp.
        schedule = EventSchedule(
            events=(
                TrafficUpdate(time=600.0, matrix=mats[2]),
                TrafficUpdate(time=0.0, matrix=mats[0]),
                TrafficUpdate(time=300.0, matrix=mats[1]),
                LinkFailure(time=300.0, edges=(0, 1)),
            ),
            interval_seconds=300.0,
        )
        kinds = [type(e).__name__ for e in schedule.events]
        assert kinds == [
            "TrafficUpdate", "LinkFailure", "TrafficUpdate", "TrafficUpdate"
        ]

    def test_validation(self, b4_trace):
        mats = b4_trace.matrices[:2]
        with pytest.raises(SimulationError):
            EventSchedule(events=(), interval_seconds=300.0)
        with pytest.raises(SimulationError):
            EventSchedule(
                events=(LinkFailure(time=0.0, edges=(0,)),),
                interval_seconds=300.0,
            )
        with pytest.raises(SimulationError):
            EventSchedule.from_trace(mats, interval_seconds=0.0)
        with pytest.raises(SimulationError):
            EventSchedule.from_failure_case(mats, failed_edges=(0,))
        with pytest.raises(SimulationError):
            EventSchedule.from_failure_case(mats, failure_at=1)
        with pytest.raises(SimulationError):
            EventSchedule.from_failure_case(
                mats, failed_edges=(0,), failure_at=1, recover_at=1
            )

    def test_from_failure_case_timeline(self, b4_trace):
        mats = b4_trace.matrices[:4]
        schedule = EventSchedule.from_failure_case(
            mats,
            interval_seconds=300.0,
            failed_edges=(2, 3),
            failure_at=1,
            recover_at=3,
        )
        failures = [e for e in schedule.events if isinstance(e, LinkFailure)]
        recoveries = [
            e for e in schedule.events if isinstance(e, LinkRecovery)
        ]
        assert failures[0].time == 300.0 and failures[0].edges == (2, 3)
        assert recoveries[0].time == 900.0 and recoveries[0].edges == (2, 3)
        # The failure precedes interval 1's traffic update in the stream.
        order = [type(e).__name__ for e in schedule.events]
        assert order.index("LinkFailure") < order.index("TrafficUpdate") + 2

    def test_from_grid_cell_deterministic(self):
        from repro.harness import build_scenario
        from repro.sweep.grid import ScenarioSuite

        suite = ScenarioSuite(
            topologies=("B4",),
            mode="online",
            train=4,
            validation=1,
            test=4,
        )
        scenario = build_scenario("B4", train=4, validation=1, test=4)
        a = EventSchedule.from_grid_cell(suite, scenario, failure_count=1)
        b = EventSchedule.from_grid_cell(suite, scenario, failure_count=1)
        fa = [e for e in a.events if isinstance(e, LinkFailure)]
        fb = [e for e in b.events if isinstance(e, LinkFailure)]
        assert fa[0].edges == fb[0].edges
        # failure_at defaults to mid-trace.
        assert fa[0].time == (len(scenario.split.test) // 2) * suite.interval_seconds
        zero = EventSchedule.from_grid_cell(suite, scenario, failure_count=0)
        assert not any(isinstance(e, LinkFailure) for e in zero.events)


class TestStreamingEquivalence:
    def test_matches_online_simulator_exactly(self, b4_pathset, b4_trace):
        """The ISSUE acceptance case: a single-failure schedule replayed
        through the streaming engine reproduces OnlineSimulator.run's
        per-interval satisfied fractions bit for bit."""
        mats = b4_trace.matrices[:6]
        caps = b4_pathset.topology.capacities.copy()
        edges = (0, 1, 2, 3)
        failed = caps.copy()
        failed[list(edges)] = 0.0

        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        ref = sim.run(
            FixedTimeScheme(700.0),
            mats,
            capacities=caps,
            failure_at=2,
            failed_capacities=failed,
        )
        engine = StreamingEngine(
            b4_pathset, FixedTimeScheme(700.0), warm_start=False
        )
        schedule = EventSchedule.from_failure_case(
            mats, interval_seconds=300.0, failed_edges=edges, failure_at=2
        )
        run = engine.run(schedule, capacities=caps)

        assert np.array_equal(
            run.satisfied_series(), ref.satisfied_series()
        )
        for mine, theirs in zip(run.intervals, ref.intervals):
            assert mine.allocation_age == theirs.allocation_age
            assert mine.stale == theirs.stale
            assert mine.compute_time == theirs.compute_time
        assert run.event_counts == {"traffic": 6, "failure": 1, "recovery": 0}

    def test_matches_online_simulator_no_failure(self, b4_pathset, b4_trace):
        mats = b4_trace.matrices[:5]
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        ref = sim.run(FixedTimeScheme(1.0), mats)
        engine = StreamingEngine(
            b4_pathset, FixedTimeScheme(1.0), warm_start=False
        )
        run = engine.run(EventSchedule.from_trace(mats, 300.0))
        assert np.array_equal(run.satisfied_series(), ref.satisfied_series())
        assert run.to_online_result().mean_satisfied == ref.mean_satisfied

    def test_out_of_order_completions_match_replay(
        self, b4_pathset, b4_trace
    ):
        """Heterogeneous compute times: a slow in-flight decision finishing
        after a fresher one must not regress routes — in either engine."""
        mats = b4_trace.matrices[:5]
        times = [700.0, 10.0, 400.0, 10.0, 10.0]
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        ref = sim.run(ScriptedTimeScheme(times), mats)
        engine = StreamingEngine(
            b4_pathset, ScriptedTimeScheme(times), warm_start=False
        )
        run = engine.run(EventSchedule.from_trace(mats, 300.0))
        # Interval 2: interval 0's slow decision (ready now) loses to the
        # deployed interval-1 decision; interval 2's own takes one interval.
        assert [r.allocation_age for r in run.intervals] == [0, 0, 1, 0, 0]
        assert [r.allocation_age for r in ref.intervals] == [0, 0, 1, 0, 0]
        assert np.array_equal(run.satisfied_series(), ref.satisfied_series())


class TestCapacityEvents:
    def test_failure_then_recovery_restores_nominal_bit_for_bit(
        self, b4_pathset, b4_trace
    ):
        mats = b4_trace.matrices[:5]
        nominal = b4_pathset.topology.capacities.copy()
        edges = (0, 1, 4, 5)
        scheme = RecordingScheme()
        engine = StreamingEngine(b4_pathset, scheme, warm_start=False)
        schedule = EventSchedule.from_failure_case(
            mats,
            interval_seconds=300.0,
            failed_edges=edges,
            failure_at=1,
            recover_at=3,
        )
        run = engine.run(schedule, capacities=nominal)
        assert run.event_counts == {"traffic": 5, "failure": 1, "recovery": 1}
        seen = scheme.seen_capacities
        assert np.array_equal(seen[0], nominal)
        for t in (1, 2):
            assert np.all(seen[t][list(edges)] == 0.0)
        for t in (3, 4):
            assert np.array_equal(seen[t], nominal)

    def test_recovery_without_edges_restores_all_failed(
        self, b4_pathset, b4_trace
    ):
        mats = b4_trace.matrices[:3]
        nominal = b4_pathset.topology.capacities.copy()
        scheme = RecordingScheme()
        engine = StreamingEngine(b4_pathset, scheme, warm_start=False)
        schedule = EventSchedule(
            events=(
                TrafficUpdate(time=0.0, matrix=mats[0]),
                LinkFailure(time=300.0, edges=(0, 1)),
                LinkFailure(time=300.0, edges=(6,)),
                TrafficUpdate(time=300.0, matrix=mats[1]),
                LinkRecovery(time=600.0),  # no edges: restore everything
                TrafficUpdate(time=600.0, matrix=mats[2]),
            ),
            interval_seconds=300.0,
        )
        engine.run(schedule, capacities=nominal)
        assert np.all(scheme.seen_capacities[1][[0, 1, 6]] == 0.0)
        assert np.array_equal(scheme.seen_capacities[2], nominal)


class TestWarmStart:
    def test_first_decision_cold_rest_warm(self, b4_pathset, b4_trace):
        mats = b4_trace.matrices[:4]
        scheme = WarmCapableScheme(b4_pathset)
        engine = StreamingEngine(
            b4_pathset, scheme, warm_start=True, warm_iterations=2
        )
        run = engine.run(EventSchedule.from_trace(mats, 300.0))
        assert [d.warm for d in run.decisions] == [False, True, True, True]
        assert run.warm_fraction == pytest.approx(0.75)
        # Only the cold decision hits the full allocate pipeline.
        assert scheme.calls == 1
        # Warm decisions report measured wall-clock as compute time
        # (timed inside the decision, so bounded by the recorded latency).
        for d in run.decisions[1:]:
            assert 0.0 < d.compute_time <= d.latency

    def test_warm_start_disabled_is_all_cold(self, b4_pathset, b4_trace):
        mats = b4_trace.matrices[:3]
        scheme = WarmCapableScheme(b4_pathset)
        engine = StreamingEngine(b4_pathset, scheme, warm_start=False)
        run = engine.run(EventSchedule.from_trace(mats, 300.0))
        assert all(not d.warm for d in run.decisions)
        assert scheme.calls == 3

    def test_scheme_without_admm_seam_falls_back_cold(
        self, b4_pathset, b4_trace
    ):
        mats = b4_trace.matrices[:3]
        engine = StreamingEngine(
            b4_pathset, FixedTimeScheme(1.0), warm_start=True
        )
        run = engine.run(EventSchedule.from_trace(mats, 300.0))
        assert all(not d.warm for d in run.decisions)
        assert run.warm_fraction == 0.0

    def test_result_summary_fields(self, b4_pathset, b4_trace):
        mats = b4_trace.matrices[:3]
        engine = StreamingEngine(
            b4_pathset, WarmCapableScheme(b4_pathset), warm_iterations=1
        )
        run = engine.run(EventSchedule.from_trace(mats, 300.0))
        summary = run.to_dict()
        assert summary["num_decisions"] == 3
        assert 0.0 <= summary["p50_latency"] <= summary["p99_latency"]
        assert len(summary["satisfied"]) == 3
        assert len(summary["latencies"]) == 3
        assert run.latency_percentile(0) <= run.p50_latency


class TestRunStreamingSweep:
    def test_sweep_over_schedules_and_schemes(self, b4_trace):
        from repro.harness import build_scenario, run_streaming_sweep

        scenario = build_scenario("B4", train=4, validation=1, test=4)
        mats = scenario.split.test
        schemes = {
            "fixed": FixedTimeScheme(1.0),
            "warmable": WarmCapableScheme(scenario.pathset),
        }
        schedules = {
            0: EventSchedule.from_trace(mats, 300.0),
            1: EventSchedule.from_failure_case(
                mats,
                interval_seconds=300.0,
                failed_edges=(0, 1),
                failure_at=2,
            ),
        }
        results = run_streaming_sweep(
            scenario, schemes, schedules, warm_iterations=1
        )
        assert set(results) == {0, 1}
        for key in results:
            assert set(results[key]) == {"fixed", "warmable"}
            for run in results[key].values():
                assert len(run.intervals) == len(mats)
        assert results[1]["fixed"].event_counts["failure"] == 1
        assert results[0]["warmable"].warm_fraction > 0.5

    def test_empty_schedules(self):
        from repro.harness import build_scenario, run_streaming_sweep

        scenario = build_scenario("B4", train=4, validation=1, test=4)
        assert run_streaming_sweep(scenario, {}, {}) == {}
