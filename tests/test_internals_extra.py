"""Additional unit tests: internals not covered by the main suites."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TrainingConfig
from repro.core import FlowGNN, TealModel
from repro.core.coma import masked_softmax_np, sample_training_capacities
from repro.exceptions import ReproError
from repro.harness import scaled_te_interval
from repro.simulation.metrics import SchemeRun


class TestFlowGnnInternals:
    def test_layer_dims_grow_by_one(self, b4_pathset):
        """§4: the embedding grows by one element per layer (1..L)."""
        gnn = FlowGNN(b4_pathset, num_layers=5)
        for layer_index, (gnn_layer, dnn_layer) in enumerate(
            zip(gnn.gnn_layers, gnn.dnn_layers)
        ):
            assert gnn_layer.dim == layer_index + 1
            assert dnn_layer.dim == layer_index + 1
            # Update layers see [own, aggregated] -> 2*dim inputs.
            assert gnn_layer.edge_update.in_features == 2 * (layer_index + 1)

    def test_aggregation_normalizers(self, b4_pathset):
        gnn = FlowGNN(b4_pathset, num_layers=2)
        degrees = np.asarray(
            b4_pathset.edge_path_incidence.sum(axis=1)
        ).reshape(-1, 1)
        assert np.allclose(gnn.edge_scale, 1.0 / np.maximum(degrees, 1.0))

    def test_policy_parameter_count_is_paper_scale(self, b4_pathset):
        """§3.3: the shared policy is tiny (24->24->4 plus log-std)."""
        model = TealModel(b4_pathset)
        policy_params = sum(p.size for p in model.policy.parameters())
        # 24*24 + 24 + 24*4 + 4 + log_std(4) = 728
        assert policy_params == 24 * 24 + 24 + 24 * 4 + 4 + 4

    def test_policy_size_independent_of_topology(
        self, b4_pathset, small_swan_pathset
    ):
        a = TealModel(b4_pathset)
        b = TealModel(small_swan_pathset)
        assert sum(p.size for p in a.parameters()) == sum(
            p.size for p in b.parameters()
        )


class TestMaskedSoftmaxProperties:
    @given(
        logits=st.lists(
            st.lists(st.floats(-50, 50), min_size=4, max_size=4),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_are_distributions(self, logits):
        arr = np.array(logits)
        mask = np.ones_like(arr, dtype=bool)
        out = masked_softmax_np(arr, mask)
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_all_masked_row_is_zero(self):
        out = masked_softmax_np(
            np.zeros((1, 4)), np.zeros((1, 4), dtype=bool)
        )
        assert np.allclose(out, 0.0)


class TestFailureAugmentation:
    def test_zero_rate_returns_defensive_copy(self, b4_pathset):
        caps = b4_pathset.topology.capacities
        config = TrainingConfig(failure_rate=0.0)
        rng = np.random.default_rng(0)
        out = sample_training_capacities(b4_pathset, caps, config, rng)
        assert out is not caps  # aliasing trainer state would be unsafe
        assert np.array_equal(out, caps)
        out[0] = -1.0  # mutating the result must not touch the input
        assert caps[0] != -1.0

    def test_full_rate_fails_links(self, b4_pathset):
        caps = b4_pathset.topology.capacities
        config = TrainingConfig(failure_rate=1.0, max_training_failures=2)
        rng = np.random.default_rng(1)
        out = sample_training_capacities(b4_pathset, caps, config, rng)
        failed = (out == 0).sum()
        assert failed in (2, 4)  # 1 or 2 physical links, both directions
        assert caps.min() > 0  # original untouched


class TestScaledInterval:
    def test_geometric_mean(self):
        runs = {"Teal": SchemeRun("Teal"), "LP-all": SchemeRun("LP-all")}
        runs["Teal"].add(0.9, 0.01)
        runs["LP-all"].add(0.9, 1.0)
        assert scaled_te_interval(runs) == pytest.approx(0.1)

    def test_requires_both_schemes(self):
        runs = {"Teal": SchemeRun("Teal")}
        runs["Teal"].add(0.9, 0.01)
        with pytest.raises(ReproError):
            scaled_te_interval(runs)

    def test_slow_never_below_fast(self):
        runs = {"Teal": SchemeRun("Teal"), "LP-all": SchemeRun("LP-all")}
        runs["Teal"].add(0.9, 1.0)
        runs["LP-all"].add(0.9, 0.001)  # pathological ordering
        interval = scaled_te_interval(runs)
        assert interval >= 1.0  # clamped so the "slow" scheme >= fast


class TestTsneQualityDiagnostic:
    def test_kl_divergence_nonnegative_zero_on_match(self):
        from repro.analysis import kl_divergence

        p = np.array([[0.2, 0.8], [0.5, 0.5]])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        q = np.array([[0.8, 0.2], [0.5, 0.5]])
        assert kl_divergence(p, q) > 0
