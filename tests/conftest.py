"""Shared fixtures: small, fast instances reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths import PathSet
from repro.topology import Topology, b4, swan
from repro.traffic import TrafficTrace


@pytest.fixture(scope="session")
def b4_topology() -> Topology:
    """The published B4 topology with uniform capacity 100."""
    return b4(capacity=100.0)


@pytest.fixture(scope="session")
def b4_pathset(b4_topology) -> PathSet:
    """All-pairs 4-shortest-path set on B4."""
    return PathSet.from_topology(b4_topology)


@pytest.fixture(scope="session")
def b4_trace() -> TrafficTrace:
    """A short deterministic traffic trace sized for B4."""
    return TrafficTrace.generate(12, 12, seed=42)


@pytest.fixture(scope="session")
def b4_demands(b4_pathset, b4_trace) -> np.ndarray:
    """Demand vector of the first B4 trace matrix."""
    return b4_pathset.demand_volumes(b4_trace[0].values)


@pytest.fixture(scope="session")
def small_swan() -> Topology:
    """A 16-node SWAN-like topology for mid-size tests."""
    return swan(num_nodes=16, seed=3, capacity=80.0)


@pytest.fixture(scope="session")
def small_swan_pathset(small_swan) -> PathSet:
    """All-pairs path set on the 16-node SWAN."""
    return PathSet.from_topology(small_swan)


@pytest.fixture()
def diamond_topology() -> Topology:
    """A 4-node diamond: 0->1->3 and 0->2->3 plus direct 0->3.

    Handy for hand-computable flow allocations.
    """
    edges = [(0, 1), (1, 3), (0, 2), (2, 3), (0, 3), (1, 0), (3, 1), (2, 0), (3, 2), (3, 0)]
    return Topology(4, edges, capacities=10.0, name="diamond")
