"""Round-trip property tests for grid-result serialization.

`SchemeRun`/`GridCell`/`GridResult` JSONs are the repo's long-lived
artifacts — grid analytics aggregates them across PRs — so their
``to_dict``/``from_dict`` pair must survive more than the happy path:
randomized contents, empty grids, non-finite timings, and documents
written by *future* library versions (unknown keys). Every case here
round-trips through an actual JSON string, not just a dict, so the
encoder's NaN/Infinity handling is part of the contract.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.simulation.metrics import SchemeRun
from repro.sweep import GridCell, GridResult, ScenarioSuite

SCHEMES = ("LP-all", "LP-top", "NCFlow", "POP", "Teal", "TEAVAR*")
TOPOLOGIES = ("B4", "SWAN", "UsCarrier", "Kdl", "ASN")

#: Non-finite values that must survive serialization (timings of killed
#: or diverged runs land as nan/inf in practice).
SPECIALS = (float("nan"), float("inf"), float("-inf"))


def floats_equal(left: list[float], right: list[float]) -> bool:
    """Element-wise equality that treats NaN == NaN."""
    if len(left) != len(right):
        return False
    return all(
        (math.isnan(a) and math.isnan(b)) or a == b
        for a, b in zip(left, right)
    )


def random_run(rng: np.random.Generator) -> SchemeRun:
    run = SchemeRun(scheme=str(rng.choice(SCHEMES)))
    for _ in range(int(rng.integers(0, 6))):
        if rng.random() < 0.25:
            compute_time = float(rng.choice(SPECIALS))
        else:
            compute_time = float(rng.exponential())
        extras = None
        if rng.random() < 0.5:
            extras = {
                "solver_time": float(rng.random()),
                "stale": bool(rng.random() < 0.5),
                "failed_edges": [int(e) for e in rng.integers(0, 40, size=3)],
            }
        run.add(
            satisfied=float(rng.random()),
            compute_time=compute_time,
            objective_value=float(rng.normal()),
            extras=extras,
        )
    return run


def random_suite(rng: np.random.Generator) -> ScenarioSuite:
    num_topologies = int(rng.integers(1, 4))
    chosen = rng.choice(len(TOPOLOGIES), size=num_topologies, replace=False)
    training = None
    if rng.random() < 0.5:
        training = TrainingConfig(
            steps=int(rng.integers(1, 50)),
            warm_start_steps=int(rng.integers(0, 50)),
            batch_matrices=int(rng.integers(1, 8)),
            failure_rate=float(rng.random()),
        )
    return ScenarioSuite(
        topologies=tuple(TOPOLOGIES[i] for i in sorted(chosen)),
        failure_counts=tuple(
            int(c) for c in sorted(rng.choice(6, size=2, replace=False))
        ),
        seeds=tuple(int(s) for s in sorted(rng.choice(10, size=2, replace=False))),
        schemes=("LP-all", "Teal") if rng.random() < 0.5 else ("Teal",),
        mode=str(rng.choice(["offline", "online"])),
        precision=str(rng.choice(["float32", "float64"])),
        training=training,
        max_pairs=None if rng.random() < 0.3 else int(rng.integers(50, 2000)),
        failure_at=None if rng.random() < 0.5 else int(rng.integers(0, 4)),
    )


def random_result(rng: np.random.Generator, empty: bool = False) -> GridResult:
    suite = random_suite(rng)
    cells: list[GridCell] = []
    timings: list[dict] = []
    if not empty:
        for topology in suite.topologies:
            for seed in suite.seeds:
                for count in suite.failure_counts:
                    for scheme in suite.schemes:
                        cells.append(
                            GridCell(
                                topology=topology,
                                seed=seed,
                                failure_count=count,
                                scheme=scheme,
                                run=random_run(rng),
                                extras={"failed_edges": []},
                            )
                        )
                timings.append(
                    {
                        "topology": topology,
                        "seed": seed,
                        "num_nodes": int(rng.integers(4, 2000)),
                        "num_edges": int(rng.integers(8, 9000)),
                        "num_demands": int(rng.integers(10, 3000)),
                        # Non-finite job timings must survive too.
                        "build_seconds": float(rng.choice(SPECIALS))
                        if rng.random() < 0.2
                        else float(rng.exponential()),
                        "train_seconds": float(rng.exponential()),
                        "sweep_seconds": float(rng.exponential()),
                    }
                )
    return GridResult(
        suite=suite,
        cells=cells,
        timings=timings,
        metadata={"executor": "serial", "num_cells": len(cells)},
    )


def assert_runs_equal(left: SchemeRun, right: SchemeRun) -> None:
    assert left.scheme == right.scheme
    assert floats_equal(left.satisfied, right.satisfied)
    assert floats_equal(left.compute_times, right.compute_times)
    assert floats_equal(left.objective_values, right.objective_values)
    assert left.extras == right.extras


def assert_results_equal(left: GridResult, right: GridResult) -> None:
    assert left.suite == right.suite
    assert len(left.cells) == len(right.cells)
    for cell_left, cell_right in zip(left.cells, right.cells):
        assert cell_left.coords == cell_right.coords
        assert cell_left.extras == cell_right.extras
        assert_runs_equal(cell_left.run, cell_right.run)
    assert len(left.timings) == len(right.timings)
    for t_left, t_right in zip(left.timings, right.timings):
        assert set(t_left) == set(t_right)
        for key, value in t_left.items():
            other = t_right[key]
            if isinstance(value, float):
                assert floats_equal([value], [other])
            else:
                assert value == other
    assert left.metadata == right.metadata


class TestSchemeRunRoundTrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_randomized(self, seed):
        run = random_run(np.random.default_rng(seed))
        back = SchemeRun.from_dict(json.loads(json.dumps(run.to_dict())))
        assert_runs_equal(run, back)

    def test_empty_run(self):
        run = SchemeRun(scheme="Teal")
        back = SchemeRun.from_dict(json.loads(json.dumps(run.to_dict())))
        assert_runs_equal(run, back)

    def test_all_nonfinite_timings(self):
        run = SchemeRun(scheme="Teal")
        for value in SPECIALS:
            run.add(satisfied=0.5, compute_time=value)
        back = SchemeRun.from_dict(json.loads(json.dumps(run.to_dict())))
        assert_runs_equal(run, back)
        assert math.isnan(back.compute_times[0])
        assert back.compute_times[1] == float("inf")

    def test_unknown_keys_ignored(self):
        rng = np.random.default_rng(1)
        record = random_run(rng).to_dict()
        record["a_future_field"] = {"nested": [1, 2, 3]}
        back = SchemeRun.from_dict(record)
        assert back.scheme == record["scheme"]


class TestGridCellRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_randomized(self, seed):
        rng = np.random.default_rng(seed + 100)
        cell = GridCell(
            topology=str(rng.choice(TOPOLOGIES)),
            seed=int(rng.integers(0, 10)),
            failure_count=int(rng.integers(0, 5)),
            scheme=str(rng.choice(SCHEMES)),
            run=random_run(rng),
            extras={"failed_edges": [int(e) for e in rng.integers(0, 9, 2)]},
        )
        back = GridCell.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert back.coords == cell.coords
        assert back.extras == cell.extras
        assert_runs_equal(cell.run, back.run)

    def test_unknown_keys_ignored(self):
        cell = GridCell(
            topology="B4", seed=0, failure_count=0, scheme="Teal",
            run=SchemeRun(scheme="Teal"),
        )
        record = cell.to_dict()
        record["a_future_field"] = "ignored"
        assert GridCell.from_dict(record).coords == cell.coords

    def test_missing_extras_defaults_empty(self):
        record = GridCell(
            topology="B4", seed=0, failure_count=0, scheme="Teal",
            run=SchemeRun(scheme="Teal"),
        ).to_dict()
        del record["extras"]
        assert GridCell.from_dict(record).extras == {}


class TestScenarioSuiteRoundTrip:
    @pytest.mark.parametrize("seed", range(15))
    def test_randomized(self, seed):
        suite = random_suite(np.random.default_rng(seed + 200))
        back = ScenarioSuite.from_dict(json.loads(json.dumps(suite.to_dict())))
        assert back == suite

    def test_unknown_keys_ignored(self):
        """Documents from newer library versions stay loadable."""
        suite = random_suite(np.random.default_rng(3))
        record = suite.to_dict()
        record["a_future_axis"] = ["x", "y"]
        if record["training"] is not None:
            record["training"]["a_future_knob"] = 7
        assert ScenarioSuite.from_dict(record) == suite

    def test_training_none_roundtrip(self):
        suite = ScenarioSuite(topologies=("B4",), training=None)
        assert ScenarioSuite.from_dict(suite.to_dict()).training is None


class TestGridResultRoundTrip:
    @pytest.mark.parametrize("seed", range(12))
    def test_randomized(self, seed):
        result = random_result(np.random.default_rng(seed + 300))
        back = GridResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert_results_equal(result, back)

    def test_empty_grid(self):
        result = random_result(np.random.default_rng(4), empty=True)
        assert result.cells == [] and result.timings == []
        back = GridResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert_results_equal(result, back)

    def test_unknown_keys_ignored_at_every_level(self):
        result = random_result(np.random.default_rng(5))
        record = json.loads(json.dumps(result.to_dict()))
        record["a_future_section"] = {"k": 1}
        record["suite"]["a_future_axis"] = [1]
        for cell in record["cells"]:
            cell["a_future_field"] = True
            cell["run"]["a_future_series"] = [1.0]
        back = GridResult.from_dict(record)
        assert_results_equal(result, back)

    def test_file_roundtrip_with_nonfinite(self, tmp_path):
        rng = np.random.default_rng(6)
        result = random_result(rng)
        # Force at least one non-finite cell timing into the document.
        if result.cells:
            result.cells[0].run.add(
                satisfied=0.0, compute_time=float("nan")
            )
        path = tmp_path / "grid.json"
        result.to_json(path)
        assert_results_equal(result, GridResult.from_json(path))
