"""Tests for the ADMM fine-tuner (Appendix C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AdmmConfig
from repro.core import AdmmFineTuner
from repro.exceptions import ModelError
from repro.lp import TotalFlowObjective, solve_te_lp


@pytest.fixture(scope="module")
def tuner(b4_pathset):
    return AdmmFineTuner(b4_pathset, AdmmConfig(iterations=10, rho=3.0))


class TestAdmmConfig:
    def test_paper_iteration_defaults(self):
        config = AdmmConfig()
        assert config.resolve_iterations(12) == 2  # <100 nodes
        assert config.resolve_iterations(754) == 5

    def test_explicit_override(self):
        assert AdmmConfig(iterations=7).resolve_iterations(12) == 7


class TestFineTune:
    def test_output_is_valid_ratio_matrix(self, tuner, b4_pathset, b4_demands):
        rng = np.random.default_rng(0)
        ratios = rng.uniform(0, 1, (b4_pathset.num_demands, 4))
        ratios /= ratios.sum(axis=1, keepdims=True)
        tuned = tuner.fine_tune(ratios, b4_demands)
        assert np.all(tuned >= -1e-12)
        assert np.all(tuned.sum(axis=1) <= 1.0 + 1e-9)

    def test_reduces_constraint_violation(self, tuner, b4_pathset, b4_trace):
        """ADMM's purpose: shrink capacity overshoot (§3.4)."""
        heavy = b4_pathset.demand_volumes(b4_trace[0].scaled(4.0).values)
        ratios = np.zeros((b4_pathset.num_demands, 4))
        ratios[:, 0] = 1.0  # everything on shortest paths: heavy overload
        before = tuner.constraint_violation(ratios, heavy)
        tuned = tuner.fine_tune(ratios, heavy)
        after = tuner.constraint_violation(tuned, heavy)
        assert after < before

    def test_optimal_point_is_first_iteration_fixed_point(
        self, b4_pathset, b4_demands
    ):
        """The dual warm start makes a feasible optimum a fixed point of
        the first ADMM iteration (see the lam1 initialization note)."""
        solution = solve_te_lp(b4_pathset, b4_demands, TotalFlowObjective())
        ratios = np.clip(
            b4_pathset.path_flows_to_split_ratios(solution.path_flows, b4_demands),
            0,
            1,
        )
        tuner = AdmmFineTuner(b4_pathset, AdmmConfig(iterations=1, rho=3.0))
        tuned = tuner.fine_tune(ratios, b4_demands)
        violation = tuner.constraint_violation(tuned, b4_demands)
        assert violation <= 1e-4 * b4_demands.sum()

    def test_fine_tune_improves_delivered_flow(self, b4_pathset, b4_trace):
        """Delivered (post-drop) flow improves from a lossy warm start."""
        from repro.simulation import evaluate_allocation

        heavy = b4_pathset.demand_volumes(b4_trace[0].scaled(3.0).values)
        rng = np.random.default_rng(2)
        ratios = rng.dirichlet(np.ones(4), size=b4_pathset.num_demands)
        ratios = ratios * b4_pathset.path_mask
        before = evaluate_allocation(
            b4_pathset, ratios, heavy
        ).delivered_total
        tuner = AdmmFineTuner(b4_pathset, AdmmConfig(iterations=5, rho=3.0))
        tuned = tuner.fine_tune(ratios, heavy)
        after = evaluate_allocation(b4_pathset, tuned, heavy).delivered_total
        assert after >= before * 0.98

    def test_zero_iterations_is_identity_up_to_clipping(
        self, b4_pathset, b4_demands
    ):
        tuner = AdmmFineTuner(b4_pathset, AdmmConfig(iterations=5))
        rng = np.random.default_rng(1)
        ratios = rng.uniform(0, 0.25, (b4_pathset.num_demands, 4))
        out = tuner.fine_tune(ratios, b4_demands, iterations=0)
        assert np.allclose(out, ratios)

    def test_handles_zero_demands(self, tuner, b4_pathset):
        ratios = np.full((b4_pathset.num_demands, 4), 0.25)
        tuned = tuner.fine_tune(ratios, np.zeros(b4_pathset.num_demands))
        assert np.all(np.isfinite(tuned))

    def test_handles_failed_links(self, tuner, b4_pathset, b4_demands):
        caps = b4_pathset.topology.capacities.copy()
        caps[:6] = 0.0
        ratios = np.full((b4_pathset.num_demands, 4), 0.25)
        tuned = tuner.fine_tune(ratios, b4_demands, caps)
        assert np.all(np.isfinite(tuned))

    def test_path_values_shape_check(self, b4_pathset):
        with pytest.raises(ModelError):
            AdmmFineTuner(b4_pathset, path_values=np.ones(3))

    @given(scale=st.floats(0.5, 8.0))
    @settings(max_examples=15, deadline=None)
    def test_violation_never_increases_much(
        self, b4_pathset, b4_demands, scale
    ):
        """Property: across demand scales, ADMM shrinks or holds violations."""
        tuner = AdmmFineTuner(b4_pathset, AdmmConfig(iterations=10, rho=3.0))
        ratios = np.zeros((b4_pathset.num_demands, 4))
        ratios[:, 0] = 1.0
        demands = b4_demands * scale
        before = tuner.constraint_violation(ratios, demands)
        after = tuner.constraint_violation(
            tuner.fine_tune(ratios, demands), demands
        )
        assert after <= before * 1.05 + 1e-6
