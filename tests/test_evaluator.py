"""Tests for feasible-flow evaluation (the satisfied-demand semantics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.paths import PathSet
from repro.simulation import Allocation, evaluate_allocation


@pytest.fixture(scope="module")
def diamond_pathset():
    from repro.topology import Topology

    edges = [
        (0, 1), (1, 3), (0, 2), (2, 3), (0, 3),
        (1, 0), (3, 1), (2, 0), (3, 2), (3, 0),
    ]
    topo = Topology(4, edges, capacities=10.0, name="diamond")
    return PathSet.from_topology(topo, pairs=[(0, 3)])


class TestAllocation:
    def test_clipped_normalizes_oversum(self):
        alloc = Allocation(np.array([[0.8, 0.8, 0.0, 0.0]]))
        clipped = alloc.clipped()
        assert clipped.split_ratios.sum() == pytest.approx(1.0)

    def test_clipped_keeps_undersum(self):
        alloc = Allocation(np.array([[0.3, 0.2, 0.0, 0.0]]))
        clipped = alloc.clipped()
        assert np.allclose(clipped.split_ratios, [[0.3, 0.2, 0.0, 0.0]])

    def test_clipped_removes_negatives(self):
        alloc = Allocation(np.array([[-0.5, 0.5, 0.0, 0.0]]))
        assert clipped_min(alloc) >= 0.0


def clipped_min(alloc: Allocation) -> float:
    return float(alloc.clipped().split_ratios.min())


class TestEvaluateAllocation:
    def test_feasible_allocation_delivered_fully(self, diamond_pathset):
        demands = np.array([5.0])
        ratios = np.zeros((1, 4))
        ratios[0, 0] = 1.0  # direct edge 0->3, capacity 10
        report = evaluate_allocation(diamond_pathset, ratios, demands)
        assert report.satisfied_fraction == pytest.approx(1.0)
        assert report.max_link_utilization <= 1.0 + 1e-9

    def test_overload_scaled_back(self, diamond_pathset):
        demands = np.array([30.0])  # direct path capacity is 10
        ratios = np.zeros((1, 4))
        ratios[0, 0] = 1.0
        report = evaluate_allocation(diamond_pathset, ratios, demands)
        # 30 units on a 10-capacity path -> 1/3 delivered.
        assert report.delivered_total == pytest.approx(10.0)
        assert report.satisfied_fraction == pytest.approx(1 / 3)

    def test_multipath_uses_capacity(self, diamond_pathset):
        demands = np.array([30.0])
        ratios = np.full((1, 4), 0.25) * diamond_pathset.path_mask[0]
        report = evaluate_allocation(diamond_pathset, ratios, demands)
        # Spreading over 3+ disjoint-ish paths delivers more than one path.
        assert report.delivered_total > 10.0

    def test_zero_capacity_link_drops_flow(self, diamond_pathset):
        demands = np.array([5.0])
        ratios = np.zeros((1, 4))
        ratios[0, 0] = 1.0
        caps = diamond_pathset.topology.capacities.copy()
        direct = diamond_pathset.topology.edge_id(0, 3)
        caps[direct] = 0.0
        report = evaluate_allocation(diamond_pathset, ratios, demands, caps)
        assert report.delivered_total == pytest.approx(0.0)

    def test_zero_demand(self, diamond_pathset):
        report = evaluate_allocation(
            diamond_pathset, np.zeros((1, 4)), np.zeros(1)
        )
        assert report.satisfied_fraction == 0.0
        assert report.delivered_total == 0.0

    def test_shape_validation(self, diamond_pathset):
        with pytest.raises(SimulationError):
            evaluate_allocation(diamond_pathset, np.zeros((1, 4)), np.zeros(2))
        with pytest.raises(SimulationError):
            evaluate_allocation(
                diamond_pathset, np.zeros((1, 4)), np.zeros(1), np.ones(3)
            )


class TestCapacityInvariant:
    """Property: delivered loads never exceed capacity (paper's semantics)."""

    @given(
        ratios=st.lists(
            st.lists(st.floats(0, 1), min_size=4, max_size=4),
            min_size=1,
            max_size=1,
        ),
        demand=st.floats(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_capacity(self, diamond_pathset, ratios, demand):
        report = evaluate_allocation(
            diamond_pathset, np.array(ratios), np.array([demand])
        )
        caps = diamond_pathset.topology.capacities
        assert np.all(report.edge_loads <= caps * (1 + 1e-9) + 1e-9)

    @given(demand=st.floats(0.1, 1000))
    @settings(max_examples=30, deadline=None)
    def test_delivered_bounded_by_demand(self, diamond_pathset, demand):
        ratios = np.full((1, 4), 0.25)
        report = evaluate_allocation(
            diamond_pathset, ratios, np.array([demand])
        )
        assert report.delivered_total <= demand * (1 + 1e-9)

    @given(
        scale=st.floats(0.1, 3.0),
        demand=st.floats(1.0, 100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_capacity(self, diamond_pathset, scale, demand):
        """More capacity never delivers less traffic."""
        ratios = np.full((1, 4), 0.25)
        base = evaluate_allocation(diamond_pathset, ratios, np.array([demand]))
        more = evaluate_allocation(
            diamond_pathset,
            ratios,
            np.array([demand]),
            diamond_pathset.topology.capacities * (1 + scale),
        )
        assert more.delivered_total >= base.delivered_total - 1e-9
