"""Tests for the Figure 14 ablation model variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core import (
    ComaTrainer,
    DirectLossTrainer,
    GlobalPolicyModel,
    NaiveDnnModel,
    NaiveGnnModel,
    TealModel,
)
from repro.core.ablations import GLOBAL_POLICY_PARAM_LIMIT
from repro.exceptions import ModelError
from repro.lp import TotalFlowObjective
from repro.paths import PathSet
from repro.topology import b4
from repro.traffic import TrafficTrace


@pytest.fixture(scope="module")
def setup():
    topo = b4(capacity=60.0)
    pathset = PathSet.from_topology(topo)
    trace = TrafficTrace.generate(12, 10, seed=4)
    return pathset, trace.matrices


@pytest.mark.parametrize(
    "factory",
    [NaiveDnnModel, NaiveGnnModel, GlobalPolicyModel],
    ids=["naive-dnn", "naive-gnn", "global-policy"],
)
class TestVariantInterface:
    def test_ratio_output_valid(self, setup, factory):
        pathset, matrices = setup
        model = factory(pathset, seed=0)
        demands = pathset.demand_volumes(matrices[0].values)
        ratios = model.split_ratios(demands)
        assert ratios.shape == (pathset.num_demands, 4)
        assert np.all(ratios >= 0)
        assert np.allclose(ratios.sum(axis=1), 1.0)

    def test_trainable_with_direct_loss(self, setup, factory):
        pathset, matrices = setup
        model = factory(pathset, seed=0)
        trainer = DirectLossTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(steps=10, warm_start_steps=0, log_every=5),
        )
        history = trainer.train(matrices[:4])
        assert history.losses

    def test_trainable_with_coma(self, setup, factory):
        pathset, matrices = setup
        model = factory(pathset, seed=0)
        trainer = ComaTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(steps=3, warm_start_steps=0, log_every=2),
            counterfactual_samples=1,
        )
        history = trainer.train(matrices[:2])
        assert history.rewards


class TestGlobalPolicyMemoryModel:
    def test_parameter_budget_enforced(self, setup):
        """The paper reports memory errors on ASN: we model this as a
        parameter-budget failure on large demand sets (§5.7)."""
        pathset, _ = setup
        needed = (
            pathset.num_demands * 4 * 6 * 256
            + 256 * pathset.num_demands * 4
        )
        if needed > GLOBAL_POLICY_PARAM_LIMIT:
            with pytest.raises(ModelError):
                GlobalPolicyModel(pathset, seed=0)
        else:
            GlobalPolicyModel(pathset, seed=0)  # fits on B4

    def test_global_policy_is_topology_size_coupled(self, setup):
        """The per-demand policy's parameter count is size-independent;
        the global policy's grows with the demand count (§3.3)."""
        pathset, _ = setup
        teal = TealModel(pathset, seed=0)
        global_model = GlobalPolicyModel(pathset, hidden=64, seed=0)
        teal_policy_params = sum(p.size for p in teal.policy.parameters())
        global_policy_params = sum(p.size for p in global_model.net.parameters())
        assert global_policy_params > teal_policy_params * 10


class TestVariantQuality:
    def test_flowgnn_beats_naive_dnn_after_training(self, setup):
        """The core Figure 14 claim at miniature scale: structure helps."""
        pathset, matrices = setup
        config = TrainingConfig(steps=0, warm_start_steps=120, log_every=60)
        objective = TotalFlowObjective()

        teal = TealModel(pathset, seed=0)
        DirectLossTrainer(teal, objective, config).train(matrices[:8])
        naive = NaiveDnnModel(pathset, seed=0)
        DirectLossTrainer(naive, objective, config).train(matrices[:8])

        demands = pathset.demand_volumes(matrices[9].values)
        teal_value = objective.evaluate(
            pathset, teal.split_ratios(demands), demands
        )
        naive_value = objective.evaluate(
            pathset, naive.split_ratios(demands), demands
        )
        # Allow slack: at this scale the gap is small but FlowGNN should
        # never be meaningfully worse.
        assert teal_value >= naive_value * 0.9
