"""Tests for grid analytics reductions and the ``repro.cli analyze`` command.

Reductions are verified against small hand-computed fixtures — including
the two checked-in mini ``GridResult`` JSONs under ``tests/fixtures/``
(regenerate with ``tests/fixtures/make_grid_fixtures.py``), whose
round-number compute times make the expected speedup curve
20x/25x/30x/40x by construction.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.simulation.metrics import SchemeRun
from repro.sweep import (
    GridAnalytics,
    GridCell,
    GridResult,
    ScenarioSuite,
    analyze,
    format_analytics,
    load_grid_results,
    phase_breakdown,
    precision_table,
    scheme_distributions,
    speedup_curve,
)
from repro.sweep.analytics import resolve_baseline

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
GRID_SMALL = os.path.join(FIXTURES, "grid_mini_small.json")
GRID_LARGE = os.path.join(FIXTURES, "grid_mini_large.json")


def scheme_run(name: str, satisfied, times, objectives=None) -> SchemeRun:
    run = SchemeRun(scheme=name)
    for i, (s, t) in enumerate(zip(satisfied, times)):
        run.add(
            satisfied=s,
            compute_time=t,
            objective_value=objectives[i] if objectives else 0.0,
        )
    return run


def make_result(
    sizes: dict[str, tuple[int, int, int]],
    runs: dict[tuple[str, int, str], SchemeRun],
    schemes: tuple[str, ...] = ("LP-all", "Teal"),
    failure_counts: tuple[int, ...] = (0,),
    precision: str = "float32",
    timing_seconds: tuple[float, float, float] = (0.1, 2.0, 0.5),
) -> GridResult:
    """A GridResult from hand-chosen per-cell runs and instance sizes."""
    suite = ScenarioSuite(
        topologies=tuple(sizes),
        failure_counts=failure_counts,
        seeds=(0,),
        schemes=schemes,
        precision=precision,
    )
    cells = [
        GridCell(
            topology=topology, seed=0, failure_count=count, scheme=scheme,
            run=runs[(topology, count, scheme)],
        )
        for topology in sizes
        for count in failure_counts
        for scheme in schemes
    ]
    build, train, sweep = timing_seconds
    timings = [
        {
            "topology": topology, "seed": 0,
            "num_nodes": nodes, "num_edges": edges, "num_demands": demands,
            "build_seconds": build, "train_seconds": train,
            "sweep_seconds": sweep,
        }
        for topology, (nodes, edges, demands) in sizes.items()
    ]
    return GridResult(suite=suite, cells=cells, timings=timings, metadata={})


@pytest.fixture()
def two_topology_result() -> GridResult:
    """B4 + SWAN, one failure level, hand-picked times and quality."""
    return make_result(
        sizes={"B4": (12, 38, 132), "SWAN": (24, 62, 300)},
        runs={
            ("B4", 0, "LP-all"): scheme_run(
                "LP-all", [0.9, 0.8], [0.2, 0.4], objectives=[90.0, 80.0]
            ),
            ("B4", 0, "Teal"): scheme_run(
                "Teal", [0.8, 0.7], [0.01, 0.02], objectives=[80.0, 70.0]
            ),
            ("SWAN", 0, "LP-all"): scheme_run(
                "LP-all", [0.85, 0.75], [1.0, 1.0]
            ),
            ("SWAN", 0, "Teal"): scheme_run("Teal", [0.7, 0.6], [0.04, 0.04]),
        },
    )


class TestSpeedupCurve:
    def test_hand_computed_points(self, two_topology_result):
        curve = speedup_curve([two_topology_result])
        assert [p.topology for p in curve] == ["B4", "SWAN"]
        b4, swan = curve
        # B4: mean(0.2, 0.4) / mean(0.01, 0.02) = 0.3 / 0.015 = 20.
        assert b4.baseline_mean_time == pytest.approx(0.3)
        assert b4.accelerated_mean_time == pytest.approx(0.015)
        assert b4.speedup == pytest.approx(20.0)
        assert (b4.num_nodes, b4.num_edges, b4.num_demands) == (12, 38, 132)
        assert b4.num_samples == 2
        # SWAN: 1.0 / 0.04 = 25.
        assert swan.speedup == pytest.approx(25.0)
        assert swan.precision == "float32"
        assert swan.baseline == "LP-all" and swan.accelerated == "Teal"

    def test_pools_across_results(self, two_topology_result):
        """Two results with the same topology pool their samples."""
        other = make_result(
            sizes={"B4": (12, 38, 132)},
            runs={
                ("B4", 0, "LP-all"): scheme_run("LP-all", [0.9], [0.6]),
                ("B4", 0, "Teal"): scheme_run("Teal", [0.8], [0.03]),
            },
        )
        curve = speedup_curve([two_topology_result, other])
        b4 = [p for p in curve if p.topology == "B4"][0]
        # Pooled: mean(0.2, 0.4, 0.6) / mean(0.01, 0.02, 0.03) = 0.4 / 0.02.
        assert b4.speedup == pytest.approx(20.0)
        assert b4.num_samples == 3

    def test_same_name_different_scale_stays_split(self, two_topology_result):
        """A topology rerun at another size is its own curve point."""
        bigger = make_result(
            sizes={"B4": (48, 150, 400)},
            runs={
                ("B4", 0, "LP-all"): scheme_run("LP-all", [0.9], [2.0]),
                ("B4", 0, "Teal"): scheme_run("Teal", [0.8], [0.04]),
            },
        )
        curve = speedup_curve([two_topology_result, bigger])
        b4_points = [p for p in curve if p.topology == "B4"]
        assert [(p.num_nodes, p.speedup) for p in b4_points] == [
            (12, pytest.approx(20.0)),
            (48, pytest.approx(50.0)),
        ]

    def test_sorted_by_size(self, two_topology_result):
        curve = speedup_curve([two_topology_result])
        assert [p.num_nodes for p in curve] == sorted(p.num_nodes for p in curve)

    def test_missing_pairing_raises(self):
        only_teal = make_result(
            sizes={"B4": (12, 38, 132)},
            runs={("B4", 0, "Teal"): scheme_run("Teal", [0.8], [0.01])},
            schemes=("Teal",),
        )
        with pytest.raises(ReproError):
            speedup_curve([only_teal], baseline="LP-all")

    def test_resolve_baseline_default_and_failure(self, two_topology_result):
        assert resolve_baseline([two_topology_result], None) == "LP-all"
        assert resolve_baseline([two_topology_result], "POP") == "POP"
        only_teal = make_result(
            sizes={"B4": (12, 38, 132)},
            runs={("B4", 0, "Teal"): scheme_run("Teal", [0.8], [0.01])},
            schemes=("Teal",),
        )
        with pytest.raises(ReproError):
            resolve_baseline([only_teal], None)


class TestSchemeDistributions:
    def test_hand_computed_percentiles(self, two_topology_result):
        distributions = scheme_distributions([two_topology_result])
        by_key = {(d.scheme, d.failure_count): d for d in distributions}
        lp = by_key[("LP-all", 0)]
        # Pooled over B4 + SWAN: [0.9, 0.8, 0.85, 0.75].
        assert lp.num_samples == 4
        assert lp.mean_satisfied == pytest.approx(0.825)
        assert lp.p50_satisfied == pytest.approx(
            np.percentile([0.9, 0.8, 0.85, 0.75], 50)
        )
        assert lp.min_satisfied == pytest.approx(0.75)
        assert lp.max_satisfied == pytest.approx(0.9)
        # Objectives recorded only for B4 cells; zeros elsewhere.
        assert by_key[("Teal", 0)].mean_objective == pytest.approx(
            (80.0 + 70.0 + 0.0 + 0.0) / 4
        )
        assert lp.mean_compute_time == pytest.approx(
            np.mean([0.2, 0.4, 1.0, 1.0])
        )

    def test_split_by_failure_level(self):
        result = make_result(
            sizes={"B4": (12, 38, 132)},
            runs={
                ("B4", 0, "Teal"): scheme_run("Teal", [0.9], [0.01]),
                ("B4", 2, "Teal"): scheme_run("Teal", [0.5], [0.01]),
            },
            schemes=("Teal",),
            failure_counts=(0, 2),
        )
        distributions = scheme_distributions([result])
        by_count = {d.failure_count: d.mean_satisfied for d in distributions}
        assert by_count == {0: pytest.approx(0.9), 2: pytest.approx(0.5)}


class TestPhaseBreakdown:
    def test_means_over_jobs(self, two_topology_result):
        other = make_result(
            sizes={"B4": (12, 38, 132)},
            runs={
                ("B4", 0, "LP-all"): scheme_run("LP-all", [0.9], [0.6]),
                ("B4", 0, "Teal"): scheme_run("Teal", [0.8], [0.03]),
            },
            timing_seconds=(0.3, 4.0, 1.5),
        )
        phases = phase_breakdown([two_topology_result, other])
        b4 = [p for p in phases if p.topology == "B4"][0]
        assert b4.num_jobs == 2
        assert b4.build_seconds == pytest.approx(0.2)
        assert b4.train_seconds == pytest.approx(3.0)
        assert b4.sweep_seconds == pytest.approx(1.0)
        assert b4.total_seconds == pytest.approx(4.2)
        assert [p.num_nodes for p in phases] == sorted(
            p.num_nodes for p in phases
        )


class TestPrecisionTable:
    def make_pair(self, teal32, teal64, lp32=0.3, lp64=0.3, sat32=0.8, sat64=0.8):
        r32 = make_result(
            sizes={"B4": (12, 38, 132)},
            runs={
                ("B4", 0, "LP-all"): scheme_run("LP-all", [0.9], [lp32]),
                ("B4", 0, "Teal"): scheme_run("Teal", [sat32], [teal32]),
            },
            precision="float32",
        )
        r64 = make_result(
            sizes={"B4": (12, 38, 132)},
            runs={
                ("B4", 0, "LP-all"): scheme_run("LP-all", [0.9], [lp64]),
                ("B4", 0, "Teal"): scheme_run("Teal", [sat64], [teal64]),
            },
            precision="float64",
        )
        return r32, r64

    def test_speedup_and_parity(self):
        r32, r64 = self.make_pair(
            teal32=0.01, teal64=0.03, sat32=0.8008, sat64=0.8
        )
        rows = precision_table([r32, r64])
        assert len(rows) == 1
        row = rows[0]
        assert row.speedup == pytest.approx(3.0)
        assert row.float32_mean_time == pytest.approx(0.01)
        assert row.float64_mean_time == pytest.approx(0.03)
        # Worst scheme disagreement: Teal |0.8008 - 0.8| / 0.8 = 1e-3.
        assert row.max_satisfied_rel_diff == pytest.approx(1e-3)

    def test_empty_without_both_precisions(self, two_topology_result):
        assert precision_table([two_topology_result]) == []


class TestAnalyzeBundle:
    def test_bundle_and_roundtrip(self, two_topology_result, tmp_path):
        analytics = analyze([two_topology_result], sources=["a.json"])
        assert analytics.num_results == 1
        assert analytics.num_cells == 4
        assert analytics.objectives == ["total_flow"]
        assert analytics.precisions == ["float32"]
        assert analytics.sources == ["a.json"]
        path = tmp_path / "analytics.json"
        analytics.to_json(path)
        back = GridAnalytics.from_json(path)
        assert back.to_dict() == analytics.to_dict()

    def test_csv_export(self, two_topology_result, tmp_path):
        analytics = analyze([two_topology_result])
        path = tmp_path / "curve.csv"
        analytics.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",") == list(GridAnalytics.CSV_COLUMNS)
        assert len(lines) == 1 + len(analytics.curve)
        assert lines[1].startswith("B4,12,38,132,float32,LP-all,Teal,")

    def test_empty_results_rejected(self):
        with pytest.raises(ReproError):
            analyze([])

    def test_format_contains_sections(self, two_topology_result):
        text = format_analytics(analyze([two_topology_result]))
        assert "speedup vs topology size" in text
        assert "satisfied demand per scheme x failure level" in text
        assert "phase breakdown" in text
        assert "20.0x" in text


class TestLoadGridResults:
    def test_loads_checked_in_fixtures(self):
        results = load_grid_results([GRID_SMALL, GRID_LARGE])
        assert [r.suite.topologies for r in results] == [
            ("B4", "SWAN"),
            ("UsCarrier", "Kdl"),
        ]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_grid_results([tmp_path / "nope.json"])

    def test_malformed_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="malformed"):
            load_grid_results([bad])

    def test_wrong_document_raises(self, tmp_path):
        bad = tmp_path / "wrong.json"
        bad.write_text(json.dumps({"benchmark": "something else"}))
        with pytest.raises(ReproError, match="malformed"):
            load_grid_results([bad])

    def test_empty_list_raises(self):
        with pytest.raises(ReproError):
            load_grid_results([])


class TestAnalyzeCli:
    def test_fixture_curve_end_to_end(self, capsys, tmp_path):
        """The acceptance-shape smoke: two GridResult JSONs reduce into a
        speedup-vs-size curve covering B4/SWAN/UsCarrier + Kdl."""
        out = tmp_path / "analytics.json"
        csv_out = tmp_path / "curve.csv"
        code = main(
            [
                "analyze", GRID_SMALL, GRID_LARGE,
                "--output", str(out), "--csv", str(csv_out),
            ]
        )
        assert code == 0
        analytics = GridAnalytics.from_json(out)
        assert [(p.topology, p.num_nodes) for p in analytics.curve] == [
            ("B4", 12), ("SWAN", 24), ("UsCarrier", 40), ("Kdl", 64),
        ]
        # The fixtures' round-number times: 20x/25x/30x/40x by construction.
        assert [p.speedup for p in analytics.curve] == [20.0, 25.0, 30.0, 40.0]
        speedups = [p.speedup for p in analytics.curve]
        assert speedups == sorted(speedups)  # grows with topology size
        assert csv_out.read_text().count("\n") == 5  # header + 4 points
        assert "speedup vs topology size" in capsys.readouterr().out

    def test_missing_input_exit_code(self, capsys, tmp_path):
        code = main(["analyze", str(tmp_path / "missing.json")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_input_exit_code(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2")
        code = main(["analyze", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unresolvable_baseline_exit_code(self, capsys):
        code = main(["analyze", GRID_SMALL, "--accelerated", "NCFlow"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["analyze", "grid.json"])
        assert args.inputs == ["grid.json"]
        assert args.baseline is None
        assert args.accelerated == "Teal"
        assert args.output is None and args.csv is None
