"""Regenerate the checked-in mini ``GridResult`` fixtures.

The two JSONs under this directory are hand-computable grid results used
by ``tests/test_grid_analytics.py`` and the CI ``repro.cli analyze``
smoke: together they cover the paper's size ladder (B4 < SWAN <
UsCarrier < Kdl) with round-number compute times, so the expected
speedup curve is 20x/25x/30x/40x by construction.

Run from the repo root to refresh them::

    PYTHONPATH=src python tests/fixtures/make_grid_fixtures.py
"""

from __future__ import annotations

import os

from repro.simulation.metrics import SchemeRun
from repro.sweep import GridCell, GridResult, ScenarioSuite

_HERE = os.path.dirname(os.path.abspath(__file__))

#: topology -> (num_nodes, num_edges, num_demands, LP-all time, Teal time)
#: Times are exact binary fractions so means survive JSON bit for bit.
SMALL = {
    "B4": (12, 38, 132, 0.25, 0.0125),
    "SWAN": (24, 62, 300, 0.5, 0.02),
}
LARGE = {
    "UsCarrier": (40, 94, 300, 1.5, 0.05),
    "Kdl": (64, 150, 300, 2.5, 0.0625),
}

#: Per-matrix satisfied fractions (2 test matrices per cell).
SATISFIED = {"LP-all": [0.9, 0.8], "Teal": [0.8, 0.7]}


def build(topologies: dict) -> GridResult:
    suite = ScenarioSuite(
        topologies=tuple(topologies),
        failure_counts=(0,),
        seeds=(0,),
        schemes=("LP-all", "Teal"),
        test=2,
    )
    cells, timings = [], []
    for name, (nodes, edges, demands, lp_time, teal_time) in topologies.items():
        for scheme in suite.schemes:
            run = SchemeRun(scheme=scheme)
            time = lp_time if scheme == "LP-all" else teal_time
            for satisfied in SATISFIED[scheme]:
                run.add(
                    satisfied=satisfied,
                    compute_time=time,
                    objective_value=satisfied * 100.0,
                )
            cells.append(
                GridCell(
                    topology=name, seed=0, failure_count=0, scheme=scheme,
                    run=run, extras={"failed_edges": []},
                )
            )
        timings.append(
            {
                "topology": name, "seed": 0,
                "num_nodes": nodes, "num_edges": edges, "num_demands": demands,
                "build_seconds": 0.125, "train_seconds": 2.0,
                "sweep_seconds": 0.5,
            }
        )
    return GridResult(
        suite=suite, cells=cells, timings=timings,
        metadata={"executor": "serial", "num_cells": len(cells)},
    )


def main() -> None:
    build(SMALL).to_json(os.path.join(_HERE, "grid_mini_small.json"))
    build(LARGE).to_json(os.path.join(_HERE, "grid_mini_large.json"))


if __name__ == "__main__":
    main()
