"""Tests for the autodiff tensor engine, including finite-difference checks."""

from __future__ import annotations

import numpy as np
import pytest
from helpers import numerical_gradient
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.nn import Parameter, Tensor, as_tensor


class TestBasics:
    def test_construction_and_shape(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_item_requires_scalar(self):
        assert Tensor(3.0).item() == 3.0

    def test_as_tensor_passthrough(self):
        t = Tensor(1.0)
        assert as_tensor(t) is t
        assert isinstance(as_tensor(2.0), Tensor)

    def test_detach_cuts_tape(self):
        p = Parameter(np.ones(3))
        out = (p * 2.0).detach() * 3.0
        out.sum().backward()
        assert p.grad is None

    def test_backward_requires_scalar_or_gradient(self):
        t = Parameter(np.ones(3))
        with pytest.raises(ModelError):
            (t * 2).backward()

    def test_backward_gradient_shape_check(self):
        t = Parameter(np.ones(3))
        with pytest.raises(ModelError):
            (t * 2).backward(np.ones(2))


class TestGradients:
    def test_add_mul_chain(self):
        a = Parameter(np.array([1.0, 2.0]))
        b = Parameter(np.array([3.0, 4.0]))
        out = (a * b + a).sum()
        out.backward()
        assert np.allclose(a.grad, b.data + 1)
        assert np.allclose(b.grad, a.data)

    def test_broadcasting_gradient(self):
        a = Parameter(np.ones((3, 2)))
        b = Parameter(np.array([10.0, 20.0]))  # broadcast over rows
        (a * b).sum().backward()
        assert np.allclose(b.grad, [3.0, 3.0])

    def test_matmul_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        a = Parameter(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4, 2)))

        def loss():
            return float(((a.data @ b.data) ** 2).sum())

        out = a @ b
        (out * out).sum().backward()
        assert np.allclose(a.grad, numerical_gradient(loss, a.data), atol=1e-5)
        assert np.allclose(b.grad, numerical_gradient(loss, b.data), atol=1e-5)

    def test_division_gradient(self):
        a = Parameter(np.array([4.0]))
        b = Parameter(np.array([2.0]))
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_pow_gradient(self):
        a = Parameter(np.array([3.0]))
        (a ** 2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_reshape_and_transpose(self):
        a = Parameter(np.arange(6, dtype=float).reshape(2, 3))
        out = a.reshape(3, 2).T.sum()
        out.backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        a = Parameter(np.ones((2, 3)))
        a.zero_grad()
        a_sum = a.sum(axis=1, keepdims=True)
        (a_sum * 2).sum().backward()
        assert np.allclose(a.grad, 2 * np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Parameter(np.ones(4))
        a.mean().backward()
        assert np.allclose(a.grad, 0.25 * np.ones(4))

    def test_gradient_accumulates_on_reuse(self):
        a = Parameter(np.array([2.0]))
        out = a * a  # a used twice
        out.backward()
        assert np.allclose(a.grad, [4.0])

    def test_diamond_graph_gradient(self):
        """f(x) = (x*2) + (x*3); gradient must be 5 (no double count)."""
        x = Parameter(np.array([1.0]))
        out = x * 2 + x * 3
        out.backward()
        assert np.allclose(x.grad, [5.0])

    @given(
        st.lists(st.floats(-5, 5), min_size=4, max_size=4),
        st.lists(st.floats(-5, 5), min_size=4, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_sub_neg_property(self, xs, ys):
        a = Parameter(np.array(xs))
        b = Parameter(np.array(ys))
        (a - b).sum().backward()
        assert np.allclose(a.grad, np.ones(4))
        assert np.allclose(b.grad, -np.ones(4))

    def test_rsub_rtruediv(self):
        a = Parameter(np.array([2.0]))
        (1.0 - a).backward()
        assert np.allclose(a.grad, [-1.0])
        a.zero_grad()
        (1.0 / a).backward()
        assert np.allclose(a.grad, [-0.25])
