"""Tests for LP formulation, objectives, and the HiGHS solver wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.lp import (
    DelayPenalizedFlowObjective,
    MinMaxLinkUtilizationObjective,
    TotalFlowObjective,
    build_flow_lp,
    build_lp,
    build_mlu_lp,
    build_restricted_flow_lp,
    demand_constraint_matrix,
    get_objective,
    lp_split_ratios,
    solve_te_lp,
)
from repro.paths import PathSet
from repro.simulation import evaluate_allocation
from repro.topology import Topology


@pytest.fixture(scope="module")
def two_path_pathset():
    """0->2 via two disjoint 2-hop paths with capacities 5 and 3."""
    edges = [(0, 1), (1, 2), (0, 3), (3, 2)]
    topo = Topology(4, edges, capacities=[5.0, 5.0, 3.0, 3.0])
    return PathSet.from_topology(topo, pairs=[(0, 2)])


class TestObjectives:
    def test_registry(self):
        assert get_objective("total_flow").name == "total_flow"
        assert get_objective("min_mlu").sense == "min"
        with pytest.raises(SolverError):
            get_objective("nope")

    def test_total_flow_evaluate(self, two_path_pathset):
        ratios = np.zeros((1, 4))
        ratios[0, :2] = [0.5, 0.5]
        obj = TotalFlowObjective()
        value = obj.evaluate(two_path_pathset, ratios, np.array([4.0]))
        assert value == pytest.approx(4.0)

    def test_total_flow_reward_sign(self, two_path_pathset):
        obj = TotalFlowObjective()
        ratios = np.zeros((1, 4))
        ratios[0, 0] = 1.0
        demands = np.array([4.0])
        assert obj.reward(two_path_pathset, ratios, demands) == pytest.approx(
            obj.evaluate(two_path_pathset, ratios, demands)
        )

    def test_mlu_reward_negated(self, two_path_pathset):
        obj = MinMaxLinkUtilizationObjective()
        ratios = np.zeros((1, 4))
        ratios[0, 0] = 1.0
        demands = np.array([4.0])
        assert obj.reward(two_path_pathset, ratios, demands) == pytest.approx(
            -obj.evaluate(two_path_pathset, ratios, demands)
        )

    def test_mlu_normalizes_ratios(self, two_path_pathset):
        obj = MinMaxLinkUtilizationObjective()
        # Ratios summing to 0.5 must be renormalized to route everything:
        # half weight on one path == full weight on that path after
        # normalization.
        half = np.zeros((1, 4))
        half[0, 0] = 0.5
        full = np.zeros((1, 4))
        full[0, 0] = 1.0
        demands = np.array([5.0])
        assert obj.evaluate(two_path_pathset, half, demands) == pytest.approx(
            obj.evaluate(two_path_pathset, full, demands)
        )

    def test_delay_penalized_path_values(self, b4_pathset):
        obj = DelayPenalizedFlowObjective(beta=0.5)
        values = obj.path_values(b4_pathset)
        assert values.shape == (b4_pathset.num_paths,)
        assert np.all(values <= 1.0 + 1e-12)
        # Shortest path of each demand gets full value.
        shortest = b4_pathset.demand_path_ids[:, 0]
        assert np.allclose(values[shortest], 1.0)

    def test_delay_penalized_validation(self):
        with pytest.raises(SolverError):
            DelayPenalizedFlowObjective(beta=-0.1)

    def test_flow_objective_has_no_mlu_path_values(self, b4_pathset):
        with pytest.raises(SolverError):
            MinMaxLinkUtilizationObjective().path_values(b4_pathset)


class TestFormulation:
    def test_demand_constraint_matrix(self, b4_pathset):
        matrix = demand_constraint_matrix(b4_pathset)
        assert matrix.shape == (b4_pathset.num_demands, b4_pathset.num_paths)
        row_sums = np.asarray(matrix.sum(axis=1)).reshape(-1)
        expected = b4_pathset.path_mask.sum(axis=1)
        assert np.array_equal(row_sums, expected)

    def test_flow_lp_shapes(self, b4_pathset, b4_demands):
        program = build_flow_lp(b4_pathset, b4_demands, TotalFlowObjective())
        assert program.c.shape == (b4_pathset.num_paths,)
        assert program.a_ub.shape == (
            b4_pathset.num_demands + 38,
            b4_pathset.num_paths,
        )

    def test_mlu_lp_has_aux_variable(self, b4_pathset, b4_demands):
        program = build_mlu_lp(b4_pathset, b4_demands)
        assert program.c.shape == (b4_pathset.num_paths + 1,)
        assert program.num_path_vars == b4_pathset.num_paths

    def test_mlu_lp_rejects_subset(self, b4_pathset, b4_demands):
        with pytest.raises(SolverError):
            build_lp(
                b4_pathset,
                b4_demands,
                MinMaxLinkUtilizationObjective(),
                demand_subset=np.array([0]),
            )

    def test_restricted_lp_smaller(self, b4_pathset, b4_demands):
        subset = np.arange(10)
        program, path_ids = build_restricted_flow_lp(
            b4_pathset,
            b4_demands,
            TotalFlowObjective(),
            b4_pathset.topology.capacities,
            subset,
        )
        assert program.c.shape[0] == len(path_ids)
        assert len(path_ids) < b4_pathset.num_paths

    def test_restricted_lp_empty_subset(self, b4_pathset, b4_demands):
        with pytest.raises(SolverError):
            build_restricted_flow_lp(
                b4_pathset,
                b4_demands,
                TotalFlowObjective(),
                b4_pathset.topology.capacities,
                np.array([], dtype=int),
            )


class TestSolver:
    def test_two_path_optimum(self, two_path_pathset):
        """Max flow 0->2 = 5 + 3 = 8 regardless of demand above 8."""
        solution = solve_te_lp(
            two_path_pathset, np.array([20.0]), TotalFlowObjective()
        )
        assert solution.objective_value == pytest.approx(8.0)

    def test_demand_bounded(self, two_path_pathset):
        solution = solve_te_lp(
            two_path_pathset, np.array([2.0]), TotalFlowObjective()
        )
        assert solution.objective_value == pytest.approx(2.0)

    def test_lp_solution_is_feasible(self, b4_pathset, b4_demands):
        solution = solve_te_lp(b4_pathset, b4_demands, TotalFlowObjective())
        ratios = lp_split_ratios(b4_pathset, solution, b4_demands)
        report = evaluate_allocation(b4_pathset, ratios, b4_demands)
        # Optimal LP flow should survive feasibility enforcement intact.
        assert report.delivered_total == pytest.approx(
            solution.objective_value, rel=1e-6
        )

    def test_lp_beats_shortest_path(self, b4_pathset, b4_trace):
        heavy = b4_pathset.demand_volumes(b4_trace[0].scaled(3.0).values)
        lp = solve_te_lp(b4_pathset, heavy, TotalFlowObjective())
        sp_ratios = np.zeros((b4_pathset.num_demands, 4))
        sp_ratios[:, 0] = 1.0
        sp_report = evaluate_allocation(b4_pathset, sp_ratios, heavy)
        assert lp.objective_value >= sp_report.delivered_total - 1e-6

    def test_mlu_solution(self, two_path_pathset):
        solution = solve_te_lp(
            two_path_pathset, np.array([8.0]), MinMaxLinkUtilizationObjective()
        )
        # Perfect balance: 5 on cap-5 and 3 on cap-3 -> MLU = 1.0.
        assert solution.objective_value == pytest.approx(1.0, abs=1e-6)

    def test_solution_metadata(self, two_path_pathset):
        solution = solve_te_lp(
            two_path_pathset, np.array([4.0]), TotalFlowObjective()
        )
        assert solution.solve_time > 0
        assert solution.status
