"""Tests for the shared experiment harness."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import POP_REPLICAS, TrainingConfig
from repro.exceptions import ReproError
from repro.harness import (
    BENCH_POP_REPLICA_CAP,
    BENCH_POP_REPLICAS,
    BENCH_SCALES,
    Scenario,
    bench_pop_replicas,
    build_scenario,
    clear_caches,
    make_baselines,
    run_failure_sweep,
    run_offline_comparison,
    run_online_failure_sweep,
    trained_teal,
)


@pytest.fixture(scope="module")
def b4_scenario() -> Scenario:
    clear_caches()
    return build_scenario("B4", train=8, validation=2, test=4)


class TestBuildScenario:
    def test_scenario_components(self, b4_scenario):
        assert b4_scenario.topology.num_nodes == 12
        assert len(b4_scenario.split.train) == 8
        assert len(b4_scenario.split.test) == 4
        assert b4_scenario.pathset.topology is b4_scenario.topology

    def test_capacities_provisioned(self, b4_scenario):
        """§5.1 calibration: the LP satisfies a majority of demand."""
        from repro.baselines import LpAll
        from repro.simulation import evaluate_allocation

        matrix = b4_scenario.split.test[0]
        demands = b4_scenario.demands(matrix)
        allocation = LpAll().allocate(b4_scenario.pathset, demands)
        report = evaluate_allocation(
            b4_scenario.pathset, allocation.split_ratios, demands
        )
        assert report.satisfied_fraction > 0.5

    def test_cache_returns_same_object(self):
        a = build_scenario("B4", train=8, validation=2, test=4)
        b = build_scenario("B4", train=8, validation=2, test=4)
        assert a is b

    def test_cache_bypass(self):
        a = build_scenario("B4", train=8, validation=2, test=4)
        b = build_scenario("B4", train=8, validation=2, test=4, use_cache=False)
        assert a is not b

    def test_all_bench_scales_defined(self):
        assert set(BENCH_SCALES) == {"B4", "SWAN", "UsCarrier", "Kdl", "ASN"}

    def test_demand_extraction(self, b4_scenario):
        demands = b4_scenario.demands(b4_scenario.split.train[0])
        assert demands.shape == (b4_scenario.pathset.num_demands,)

    def test_provisioning_uses_train_split_only(self):
        """§5.1: held-out test matrices must not leak into provisioning.

        The traffic generator is prefix-stable, so growing only the test
        split leaves the train matrices unchanged — capacities must not
        move either.
        """
        a = build_scenario("B4", train=6, validation=2, test=2, use_cache=False)
        b = build_scenario("B4", train=6, validation=2, test=6, use_cache=False)
        np.testing.assert_allclose(a.capacities, b.capacities)
        c = build_scenario("B4", train=4, validation=2, test=2, use_cache=False)
        assert not np.allclose(a.capacities, c.capacities)


class TestBenchPopReplicas:
    def test_derived_from_config_table(self):
        """One source of truth: the §5.1 table clamped to the bench cap."""
        assert BENCH_POP_REPLICAS == {
            name: min(replicas, BENCH_POP_REPLICA_CAP)
            for name, replicas in POP_REPLICAS.items()
        }

    def test_small_topologies_keep_paper_counts(self):
        assert bench_pop_replicas("B4") == POP_REPLICAS["B4"]
        assert bench_pop_replicas("SWAN") == POP_REPLICAS["SWAN"]
        assert bench_pop_replicas("UsCarrier") == POP_REPLICAS["UsCarrier"]

    def test_large_topologies_clamped(self):
        assert bench_pop_replicas("Kdl") == BENCH_POP_REPLICA_CAP
        assert bench_pop_replicas("ASN") == BENCH_POP_REPLICA_CAP

    def test_unknown_topology_default(self):
        assert bench_pop_replicas("Mystery") == 4


class TestMakeBaselines:
    def test_default_set(self, b4_scenario):
        schemes = make_baselines(b4_scenario)
        assert set(schemes) == {"LP-all", "LP-top", "NCFlow", "POP"}

    def test_teavar_included_on_request(self, b4_scenario):
        schemes = make_baselines(b4_scenario, include=("TEAVAR*",))
        assert "TEAVAR*" in schemes

    def test_unknown_scheme_rejected(self, b4_scenario):
        with pytest.raises(ReproError):
            make_baselines(b4_scenario, include=("Mystery",))


class TestTrainedTeal:
    def test_training_and_cache(self, b4_scenario):
        config = TrainingConfig(steps=4, warm_start_steps=20, log_every=4)
        a = trained_teal(b4_scenario, config=config)
        b = trained_teal(b4_scenario, config=config)
        assert a is b
        assert a.trained

    def test_cache_distinguishes_every_config_field(self, b4_scenario):
        """Regression: the cache once keyed only on (steps, warm_start_steps).

        A model trained with failure augmentation was silently returned
        for a no-augmentation request (and vice versa); every
        TrainingConfig field must produce a distinct cache entry.
        """
        base = TrainingConfig(steps=4, warm_start_steps=10, log_every=10)
        cached = trained_teal(b4_scenario, config=base)
        for changed in (
            dataclasses.replace(base, failure_rate=0.25),
            dataclasses.replace(base, batch_matrices=2),
            dataclasses.replace(base, batch_demands=16),
            dataclasses.replace(base, seed=7),
            dataclasses.replace(base, max_training_failures=1),
        ):
            assert trained_teal(b4_scenario, config=changed) is not cached, (
                f"cache collision for {changed}"
            )
        assert trained_teal(b4_scenario, config=base) is cached

    def test_cache_distinguishes_scenario_build_params(self):
        """Scenarios sharing (name, seed, num_demands) but built with
        different splits/headroom must not share a trained model."""
        config = TrainingConfig(steps=2, warm_start_steps=4, log_every=10)
        a = build_scenario("B4", train=4, validation=1, test=2)
        b = build_scenario("B4", train=6, validation=1, test=2)
        assert a.pathset.num_demands == b.pathset.num_demands
        teal_a = trained_teal(a, config=config)
        teal_b = trained_teal(b, config=config)
        assert teal_a is not teal_b
        assert trained_teal(a, config=config) is teal_a

    def test_cache_distinguishes_admm_config(self, b4_scenario):
        from repro.config import AdmmConfig

        config = TrainingConfig(steps=4, warm_start_steps=10, log_every=10)
        default = trained_teal(b4_scenario, config=config)
        other = trained_teal(
            b4_scenario, config=config, admm=AdmmConfig(iterations=3)
        )
        assert other is not default
        assert other.admm.config.iterations == 3

    def test_cache_distinguishes_precision(self, b4_scenario):
        config = TrainingConfig(steps=2, warm_start_steps=4, log_every=10)
        f32 = trained_teal(b4_scenario, config=config)  # default float32
        f64 = trained_teal(b4_scenario, config=config, precision="float64")
        assert f32 is not f64
        assert f32.precision.name == "float32"
        assert f64.precision.name == "float64"
        assert trained_teal(b4_scenario, config=config, precision="float32") is f32


class TestTrainedTealDiskCache:
    """The persistent model-cache tier (``cache_dir=``)."""

    _CONFIG = TrainingConfig(steps=2, warm_start_steps=6, log_every=10)

    @pytest.fixture(autouse=True)
    def _cold_memory_cache(self, b4_scenario):
        # The disk tier is only exercised on in-memory misses; start each
        # test cold so earlier tests' entries cannot short-circuit it.
        # (build_scenario re-fetch keeps the module-scoped scenario valid.)
        from repro import harness

        harness._TEAL_CACHE.clear()

    def test_checkpoint_written_and_reused(self, b4_scenario, tmp_path):
        first = trained_teal(
            b4_scenario, config=self._CONFIG, cache_dir=tmp_path
        )
        checkpoints = list(tmp_path.glob("teal-*.npz"))
        assert len(checkpoints) == 1

        # A fresh process is simulated by clearing the in-memory cache;
        # the second call must load the checkpoint instead of retraining.
        clear_caches()
        from repro.core import TealScheme

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("disk-cached model must not retrain")

        original = TealScheme.train
        TealScheme.train = boom
        try:
            second = trained_teal(
                b4_scenario, config=self._CONFIG, cache_dir=tmp_path
            )
        finally:
            TealScheme.train = original
        assert second is not first
        assert second.trained

        demands = b4_scenario.demands(b4_scenario.split.test[0])
        a = first.allocate(b4_scenario.pathset, demands)
        b = second.allocate(b4_scenario.pathset, demands)
        assert np.allclose(a.split_ratios, b.split_ratios)

    def test_memory_hit_still_materializes_checkpoint(
        self, b4_scenario, tmp_path
    ):
        """Asking for persistence after an in-memory hit writes the
        checkpoint (even when the cached model was already cast for
        inference — the float64 masters make the save lossless)."""
        teal = trained_teal(b4_scenario, config=self._CONFIG)  # no cache_dir
        demands = b4_scenario.demands(b4_scenario.split.test[0])
        teal.allocate(b4_scenario.pathset, demands)  # lazy float32 cast
        assert teal.model.dtype == np.float32

        again = trained_teal(
            b4_scenario, config=self._CONFIG, cache_dir=tmp_path
        )
        assert again is teal
        assert teal.model.dtype == np.float32  # cast state untouched
        checkpoints = list(tmp_path.glob("teal-*.npz"))
        assert len(checkpoints) == 1
        # The checkpoint holds float64 weights loadable into a fresh model.
        from repro.core import TealModel, load_model

        fresh = TealModel(b4_scenario.pathset, seed=0)
        load_model(fresh, checkpoints[0])
        assert fresh.dtype == np.float64

    def test_disk_entry_shared_across_precisions(self, b4_scenario, tmp_path):
        """Checkpoints store float64 weights, so float32 and float64
        schemes share one on-disk entry (training ran once)."""
        trained_teal(
            b4_scenario, config=self._CONFIG, cache_dir=tmp_path,
            precision="float32",
        )
        trained_teal(
            b4_scenario, config=self._CONFIG, cache_dir=tmp_path,
            precision="float64",
        )
        assert len(list(tmp_path.glob("teal-*.npz"))) == 1

    def test_use_cache_false_bypasses_disk_tier(self, b4_scenario, tmp_path):
        """use_cache=False means 'do not reuse' on disk too: the call
        retrains (never loads) and refreshes the stored entry."""
        trained_teal(b4_scenario, config=self._CONFIG, cache_dir=tmp_path)
        [checkpoint] = tmp_path.glob("teal-*.npz")
        before = checkpoint.stat().st_mtime_ns

        from repro.core import TealScheme

        calls = {"train": 0}
        original = TealScheme.train

        def counting(self, *args, **kwargs):
            calls["train"] += 1
            return original(self, *args, **kwargs)

        TealScheme.train = counting
        try:
            trained_teal(
                b4_scenario, config=self._CONFIG, cache_dir=tmp_path,
                use_cache=False,
            )
        finally:
            TealScheme.train = original
        assert calls["train"] == 1  # retrained despite the existing entry
        assert checkpoint.stat().st_mtime_ns > before  # entry refreshed

    def test_distinct_configs_distinct_checkpoints(self, b4_scenario, tmp_path):
        from repro.config import AdmmConfig

        default = trained_teal(b4_scenario, config=self._CONFIG, cache_dir=tmp_path)
        other = dataclasses.replace(self._CONFIG, steps=3)
        trained_teal(b4_scenario, config=other, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("teal-*.npz"))) == 2
        # The default admm kwarg is resolved before keying, so an explicit
        # request for the same resolved config hits the cache (no third
        # checkpoint, same in-memory object).
        explicit = trained_teal(
            b4_scenario, config=self._CONFIG, cache_dir=tmp_path,
            admm=AdmmConfig(iterations=12),
        )
        assert explicit is default
        assert len(list(tmp_path.glob("teal-*.npz"))) == 2

    def test_runs_comparison(self, b4_scenario):
        config = TrainingConfig(steps=4, warm_start_steps=20, log_every=4)
        teal = trained_teal(b4_scenario, config=config)
        schemes = {"Teal": teal, **make_baselines(b4_scenario, include=("LP-all",))}
        runs = run_offline_comparison(
            b4_scenario, schemes, matrices=b4_scenario.split.test[:2]
        )
        assert set(runs) == {"Teal", "LP-all"}
        for run in runs.values():
            assert len(run.satisfied) == 2
            assert all(0 <= s <= 1 for s in run.satisfied)

    def test_lp_all_quality_dominates(self, b4_scenario):
        """LP-all is offline-optimal: nothing beats it on satisfied demand."""
        config = TrainingConfig(steps=4, warm_start_steps=30, log_every=4)
        teal = trained_teal(b4_scenario, config=config)
        schemes = {"Teal": teal, **make_baselines(b4_scenario)}
        runs = run_offline_comparison(
            b4_scenario, schemes, matrices=b4_scenario.split.test[:2]
        )
        best = max(run.mean_satisfied for run in runs.values())
        assert runs["LP-all"].mean_satisfied >= best - 1e-6


class TestSweepEmptyContracts:
    """Both sweep runners share one empty-input contract (no raising)."""

    def test_offline_empty_levels(self, b4_scenario):
        schemes = make_baselines(b4_scenario, include=("LP-all",))
        assert run_failure_sweep(b4_scenario, schemes, {}) == {}

    def test_offline_empty_matrices(self, b4_scenario):
        schemes = make_baselines(b4_scenario, include=("LP-all",))
        caps = {0: b4_scenario.capacities}
        result = run_failure_sweep(b4_scenario, schemes, caps, matrices=[])
        assert set(result) == {0}
        assert result[0]["LP-all"].satisfied == []

    def test_online_empty_cases(self, b4_scenario):
        schemes = make_baselines(b4_scenario, include=("LP-all",))
        assert (
            run_online_failure_sweep(
                b4_scenario, schemes, interval_seconds=1.0, failure_cases={}
            )
            == {}
        )

    def test_online_empty_matrices(self, b4_scenario):
        schemes = make_baselines(b4_scenario, include=("LP-all",))
        result = run_online_failure_sweep(
            b4_scenario,
            schemes,
            interval_seconds=1.0,
            failure_cases={"none": (None, None)},
            matrices=[],
        )
        assert set(result) == {"none"}
        assert result["none"]["LP-all"].intervals == []
        assert result["none"]["LP-all"].mean_satisfied == 0.0
