"""Tests for the shared experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.exceptions import ReproError
from repro.harness import (
    BENCH_SCALES,
    Scenario,
    build_scenario,
    clear_caches,
    make_baselines,
    run_offline_comparison,
    trained_teal,
)


@pytest.fixture(scope="module")
def b4_scenario() -> Scenario:
    clear_caches()
    return build_scenario("B4", train=8, validation=2, test=4)


class TestBuildScenario:
    def test_scenario_components(self, b4_scenario):
        assert b4_scenario.topology.num_nodes == 12
        assert len(b4_scenario.split.train) == 8
        assert len(b4_scenario.split.test) == 4
        assert b4_scenario.pathset.topology is b4_scenario.topology

    def test_capacities_provisioned(self, b4_scenario):
        """§5.1 calibration: the LP satisfies a majority of demand."""
        from repro.baselines import LpAll
        from repro.simulation import evaluate_allocation

        matrix = b4_scenario.split.test[0]
        demands = b4_scenario.demands(matrix)
        allocation = LpAll().allocate(b4_scenario.pathset, demands)
        report = evaluate_allocation(
            b4_scenario.pathset, allocation.split_ratios, demands
        )
        assert report.satisfied_fraction > 0.5

    def test_cache_returns_same_object(self):
        a = build_scenario("B4", train=8, validation=2, test=4)
        b = build_scenario("B4", train=8, validation=2, test=4)
        assert a is b

    def test_cache_bypass(self):
        a = build_scenario("B4", train=8, validation=2, test=4)
        b = build_scenario("B4", train=8, validation=2, test=4, use_cache=False)
        assert a is not b

    def test_all_bench_scales_defined(self):
        assert set(BENCH_SCALES) == {"B4", "SWAN", "UsCarrier", "Kdl", "ASN"}

    def test_demand_extraction(self, b4_scenario):
        demands = b4_scenario.demands(b4_scenario.split.train[0])
        assert demands.shape == (b4_scenario.pathset.num_demands,)


class TestMakeBaselines:
    def test_default_set(self, b4_scenario):
        schemes = make_baselines(b4_scenario)
        assert set(schemes) == {"LP-all", "LP-top", "NCFlow", "POP"}

    def test_teavar_included_on_request(self, b4_scenario):
        schemes = make_baselines(b4_scenario, include=("TEAVAR*",))
        assert "TEAVAR*" in schemes

    def test_unknown_scheme_rejected(self, b4_scenario):
        with pytest.raises(ReproError):
            make_baselines(b4_scenario, include=("Mystery",))


class TestTrainedTeal:
    def test_training_and_cache(self, b4_scenario):
        config = TrainingConfig(steps=4, warm_start_steps=20, log_every=4)
        a = trained_teal(b4_scenario, config=config)
        b = trained_teal(b4_scenario, config=config)
        assert a is b
        assert a.trained

    def test_runs_comparison(self, b4_scenario):
        config = TrainingConfig(steps=4, warm_start_steps=20, log_every=4)
        teal = trained_teal(b4_scenario, config=config)
        schemes = {"Teal": teal, **make_baselines(b4_scenario, include=("LP-all",))}
        runs = run_offline_comparison(
            b4_scenario, schemes, matrices=b4_scenario.split.test[:2]
        )
        assert set(runs) == {"Teal", "LP-all"}
        for run in runs.values():
            assert len(run.satisfied) == 2
            assert all(0 <= s <= 1 for s in run.satisfied)

    def test_lp_all_quality_dominates(self, b4_scenario):
        """LP-all is offline-optimal: nothing beats it on satisfied demand."""
        config = TrainingConfig(steps=4, warm_start_steps=30, log_every=4)
        teal = trained_teal(b4_scenario, config=config)
        schemes = {"Teal": teal, **make_baselines(b4_scenario)}
        runs = run_offline_comparison(
            b4_scenario, schemes, matrices=b4_scenario.split.test[:2]
        )
        best = max(run.mean_satisfied for run in runs.values())
        assert runs["LP-all"].mean_satisfied >= best - 1e-6
