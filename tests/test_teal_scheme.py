"""Integration tests for the end-to-end Teal scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LpAll
from repro.config import AdmmConfig, TrainingConfig
from repro.core import TealScheme
from repro.exceptions import ModelError
from repro.lp import (
    DelayPenalizedFlowObjective,
    MinMaxLinkUtilizationObjective,
    TotalFlowObjective,
)
from repro.paths import PathSet
from repro.simulation import evaluate_allocation
from repro.topology import b4
from repro.traffic import TrafficTrace


@pytest.fixture(scope="module")
def trained_setup():
    """A Teal scheme trained briefly on a tight B4 instance."""
    topo = b4(capacity=80.0)
    pathset = PathSet.from_topology(topo)
    trace = TrafficTrace.generate(12, 20, seed=9)
    teal = TealScheme(pathset, seed=0)
    teal.train(
        trace.matrices[:14],
        config=TrainingConfig(steps=30, warm_start_steps=120, log_every=30),
    )
    return pathset, trace, teal


class TestTrainingPipeline:
    def test_histories_returned(self, trained_setup):
        pathset, trace, teal = trained_setup
        assert teal.trained

    def test_near_lp_quality_after_training(self, trained_setup):
        pathset, trace, teal = trained_setup
        demands = pathset.demand_volumes(trace[15].values)
        teal_alloc = teal.allocate(pathset, demands)
        lp_alloc = LpAll().allocate(pathset, demands)
        teal_sat = evaluate_allocation(
            pathset, teal_alloc.split_ratios, demands
        ).satisfied_fraction
        lp_sat = evaluate_allocation(
            pathset, lp_alloc.split_ratios, demands
        ).satisfied_fraction
        # Near-optimal at small scale: within 15 points of LP-all after a
        # seconds-long training budget (the paper trains for a week).
        assert teal_sat >= lp_sat - 0.15

    def test_inference_faster_than_lp(self, trained_setup):
        pathset, trace, teal = trained_setup
        demands = pathset.demand_volumes(trace[15].values)
        teal_alloc = teal.allocate(pathset, demands)
        lp_alloc = LpAll().allocate(pathset, demands)
        assert teal_alloc.compute_time < lp_alloc.compute_time


class TestAllocateBehaviour:
    def test_allocation_metadata(self, trained_setup):
        pathset, trace, teal = trained_setup
        demands = pathset.demand_volumes(trace[15].values)
        allocation = teal.allocate(pathset, demands)
        assert allocation.scheme == "Teal"
        assert allocation.extras["admm_iterations"] == 2  # B4 < 100 nodes
        assert allocation.extras["forward_time"] > 0

    def test_admm_never_hurts_objective(self, trained_setup):
        """The acceptance check keeps ADMM monotone (§3.4 claim)."""
        pathset, trace, teal = trained_setup
        objective = TotalFlowObjective()
        for matrix in trace.matrices[15:18]:
            demands = pathset.demand_volumes(matrix.values)
            with_admm = teal.allocate(pathset, demands)
            without = teal.allocate_without_admm(pathset, demands)
            v_admm = objective.evaluate(
                pathset, with_admm.split_ratios, demands
            )
            v_raw = objective.evaluate(pathset, without.split_ratios, demands)
            assert v_admm >= v_raw - 1e-9

    def test_reacts_to_failures_without_retraining(self, trained_setup):
        """§5.3: failures only change capacities; the model still runs."""
        pathset, trace, teal = trained_setup
        demands = pathset.demand_volumes(trace[15].values)
        caps = pathset.topology.capacities.copy()
        caps[:4] = 0.0
        allocation = teal.allocate(pathset, demands, caps)
        report = evaluate_allocation(
            pathset, allocation.split_ratios, demands, caps
        )
        assert 0 < report.satisfied_fraction <= 1
        assert np.all(report.edge_loads[:4] <= 1e-9)

    def test_incompatible_pathset_rejected(self, trained_setup, small_swan_pathset):
        _, trace, teal = trained_setup
        demands = np.ones(small_swan_pathset.num_demands)
        with pytest.raises(ModelError):
            teal.allocate(small_swan_pathset, demands)


class TestObjectiveVariants:
    def test_mlu_scheme_skips_admm_by_default(self, b4_pathset):
        teal = TealScheme(b4_pathset, objective=MinMaxLinkUtilizationObjective())
        assert not teal.use_admm

    def test_delay_penalized_scheme_builds(self, b4_pathset):
        teal = TealScheme(
            b4_pathset, objective=DelayPenalizedFlowObjective(beta=0.5)
        )
        assert not teal.use_admm  # §5.5 omits ADMM off the default objective

    def test_total_flow_uses_admm(self, b4_pathset):
        teal = TealScheme(b4_pathset)
        assert teal.use_admm

    def test_explicit_admm_override(self, b4_pathset):
        teal = TealScheme(
            b4_pathset,
            objective=MinMaxLinkUtilizationObjective(),
            use_admm=True,
            admm=AdmmConfig(iterations=3),
        )
        assert teal.use_admm

    def test_mlu_training_runs(self, b4_pathset):
        """MLU trains with the p-norm warm start plus COMA* (§5.5)."""
        trace = TrafficTrace.generate(12, 6, seed=3)
        teal = TealScheme(
            b4_pathset, objective=MinMaxLinkUtilizationObjective(), seed=0
        )
        histories = teal.train(
            trace.matrices,
            config=TrainingConfig(steps=6, warm_start_steps=50, log_every=3),
        )
        assert "coma" in histories
        assert "warm_start" in histories
