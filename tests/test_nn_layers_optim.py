"""Tests for NN layers, module system, and optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn import Adam, Linear, Parameter, ReLU, SGD, Sequential, Tensor, mlp
from repro.nn.init import kaiming_uniform, xavier_uniform


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(3, 5)
        out = layer(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 5)

    def test_linear_no_bias(self):
        layer = Linear(3, 5, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_recursive(self):
        net = Sequential(Linear(2, 4), ReLU(), Linear(4, 1))
        assert len(net.parameters()) == 4  # two weights + two biases

    def test_num_parameters(self):
        net = Linear(3, 5)
        assert net.num_parameters() == 3 * 5 + 5

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        a = mlp([3, 8, 2], rng=rng)
        b = mlp([3, 8, 2], rng=np.random.default_rng(99))
        state = a.state_dict()
        b.load_state_dict(state)
        x = np.ones((1, 3))
        assert np.allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_load_state_dict_mismatch(self):
        a = mlp([3, 8, 2])
        b = mlp([3, 4, 2])
        with pytest.raises(ModelError):
            b.load_state_dict(a.state_dict())

    def test_mlp_validation(self):
        with pytest.raises(ModelError):
            mlp([3])
        with pytest.raises(ModelError):
            mlp([3, 2], activation="bogus")

    def test_mlp_final_activation(self):
        net = mlp([2, 3, 1], final_activation=True)
        out = net(Tensor(-np.ones((1, 2))))
        assert out.data.min() >= 0  # ReLU after final layer

    def test_zero_grad(self):
        net = Linear(2, 2)
        out = net(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None


class TestInit:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform(100, 50, rng)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_kaiming_bounds(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform(100, 50, rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 100))

    def test_invalid_fans(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            xavier_uniform(0, 5, rng)
        with pytest.raises(ModelError):
            kaiming_uniform(5, 0, rng)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        return param, target

    def test_sgd_converges(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            diff = param - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            diff = param - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_adam_converges(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            diff = param - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_adam_skips_gradless_params(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.ones(2))
        opt = Adam([a, b], lr=0.1)
        (a.sum()).backward()
        opt.step()
        assert np.allclose(b.data, np.ones(2))  # untouched

    def test_optimizer_validation(self):
        with pytest.raises(ModelError):
            Adam([])
        with pytest.raises(ModelError):
            Adam([Parameter(np.ones(1))], lr=0.0)
        with pytest.raises(ModelError):
            SGD([Parameter(np.ones(1))], momentum=1.0)

    def test_mlp_regression_end_to_end(self):
        rng = np.random.default_rng(7)
        net = mlp([3, 16, 1], rng=rng)
        opt = Adam(net.parameters(), lr=1e-2)
        x = rng.normal(size=(64, 3))
        y = x.sum(axis=1, keepdims=True)
        loss_value = np.inf
        for _ in range(300):
            opt.zero_grad()
            err = net(Tensor(x)) - Tensor(y)
            loss = (err * err).mean()
            loss.backward()
            opt.step()
            loss_value = loss.item()
        assert loss_value < 0.05
