"""Tests for the functional ops: activations, softmax, sparse matmul, etc."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from helpers import numerical_gradient

from repro.exceptions import ModelError
from repro.nn import Parameter, Tensor
from repro.nn import functional as F


class TestActivations:
    def test_relu_values_and_grad(self):
        x = Parameter(np.array([-1.0, 0.0, 2.0]))
        out = F.relu(x)
        assert np.allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu(self):
        x = Parameter(np.array([-2.0, 3.0]))
        out = F.leaky_relu(x, 0.1)
        assert np.allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        assert np.allclose(x.grad, [0.1, 1.0])

    def test_tanh_gradient_numeric(self):
        x = Parameter(np.array([0.3, -0.7]))
        F.tanh(x).sum().backward()
        numeric = numerical_gradient(
            lambda: float(np.tanh(x.data).sum()), x.data
        )
        assert np.allclose(x.grad, numeric, atol=1e-6)

    def test_sigmoid_range(self):
        x = Tensor(np.array([-50.0, 0.0, 50.0]))
        out = F.sigmoid(x)
        assert np.all(out.data >= 0) and np.all(out.data <= 1)

    def test_exp_log_inverse(self):
        x = Parameter(np.array([0.5, 1.5]))
        out = F.log(F.exp(x))
        assert np.allclose(out.data, x.data)
        out.sum().backward()
        assert np.allclose(x.grad, np.ones(2), atol=1e-9)

    def test_log_floors_at_eps(self):
        out = F.log(Tensor(np.array([0.0])))
        assert np.isfinite(out.data).all()


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        out = F.softmax(x)
        assert np.allclose(out.data.sum(axis=1), np.ones(5))

    def test_mask_zeroes_invalid(self):
        x = Tensor(np.zeros((2, 4)))
        mask = np.array([[True, True, False, False], [True, False, False, False]])
        out = F.softmax(x, mask=mask)
        assert np.allclose(out.data[0], [0.5, 0.5, 0.0, 0.0])
        assert np.allclose(out.data[1], [1.0, 0.0, 0.0, 0.0])

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        x = Parameter(rng.normal(size=(3, 4)))
        weights = rng.normal(size=(3, 4))
        mask = rng.random((3, 4)) > 0.3
        mask[:, 0] = True

        def loss():
            logits = np.where(mask, x.data, -1e30)
            shifted = logits - logits.max(axis=1, keepdims=True)
            exps = np.where(mask, np.exp(shifted), 0.0)
            probs = exps / exps.sum(axis=1, keepdims=True)
            return float((probs * weights).sum())

        (F.softmax(x, mask=mask) * Tensor(weights)).sum().backward()
        assert np.allclose(x.grad, numerical_gradient(loss, x.data), atol=1e-5)

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1000.0, -1000.0, 0.0, 0.0]]))
        out = F.softmax(x)
        assert np.isfinite(out.data).all()


class TestStructuralOps:
    def test_concat_and_grad(self):
        a = Parameter(np.ones((2, 2)))
        b = Parameter(2 * np.ones((2, 3)))
        out = F.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 3).sum().backward()
        assert np.allclose(a.grad, 3 * np.ones((2, 2)))
        assert np.allclose(b.grad, 3 * np.ones((2, 3)))

    def test_concat_empty_raises(self):
        with pytest.raises(ModelError):
            F.concat([])

    def test_take_rows_forward_backward(self):
        x = Parameter(np.arange(12, dtype=float).reshape(4, 3))
        idx = np.array([0, 2, 2])
        out = F.take_rows(x, idx)
        assert np.allclose(out.data, x.data[idx])
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 1
        expected[2] = 2  # row 2 gathered twice
        assert np.allclose(x.grad, expected)

    def test_take_rows_2d_index(self):
        x = Parameter(np.arange(8, dtype=float).reshape(4, 2))
        idx = np.array([[0, 1], [3, 3]])
        out = F.take_rows(x, idx)
        assert out.shape == (2, 2, 2)
        out.sum().backward()
        assert x.grad[3].sum() == pytest.approx(4.0)

    def test_sparse_matmul_matches_dense(self):
        rng = np.random.default_rng(2)
        matrix = sp.random(6, 5, density=0.5, random_state=3, format="csr")
        x = Parameter(rng.normal(size=(5, 2)))
        out = F.sparse_matmul(matrix, x)
        assert np.allclose(out.data, matrix.toarray() @ x.data)
        weights = rng.normal(size=(6, 2))
        (out * Tensor(weights)).sum().backward()
        assert np.allclose(x.grad, matrix.toarray().T @ weights)

    def test_sparse_matmul_requires_sparse(self):
        with pytest.raises(ModelError):
            F.sparse_matmul(np.eye(3), Tensor(np.ones((3, 1))))

    def test_clip_gradient_gates(self):
        x = Parameter(np.array([-2.0, 0.5, 2.0]))
        out = F.clip(x, 0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestGaussianLogProb:
    def test_matches_scipy(self):
        from scipy.stats import norm

        mean = Tensor(np.array([[0.0, 1.0]]))
        log_std = Tensor(np.array([0.0, np.log(2.0)]))
        actions = np.array([[0.5, 2.0]])
        lp = F.gaussian_log_prob(mean, log_std, actions)
        expected = norm.logpdf(0.5, 0, 1) + norm.logpdf(2.0, 1, 2)
        assert lp.data[0] == pytest.approx(expected)

    def test_gradient_wrt_mean_numeric(self):
        rng = np.random.default_rng(4)
        mean = Parameter(rng.normal(size=(3, 2)))
        log_std = Parameter(np.zeros(2))
        actions = rng.normal(size=(3, 2))

        def loss():
            std = np.exp(log_std.data)
            z = (actions - mean.data) / std
            per = -0.5 * z**2 - log_std.data - 0.5 * np.log(2 * np.pi)
            return float(per.sum())

        F.gaussian_log_prob(mean, log_std, actions).sum().backward()
        assert np.allclose(mean.grad, numerical_gradient(loss, mean.data), atol=1e-5)
        assert np.allclose(
            log_std.grad, numerical_gradient(loss, log_std.data), atol=1e-5
        )
