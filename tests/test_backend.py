"""Tests for the array-backend dispatch layer (``repro.core.backend``).

Milestone-1 bar (see README "Backend substrate"): the numpy backend
must be *bit-identical* to the pre-dispatch kernels. The namespace
guarantees this by construction — every ufunc attribute is a direct
alias of the numpy callable the kernels historically invoked — and the
tests here assert both the aliases and end-to-end bitwise equality of
the dispatched fused pipeline against the untouched Tensor reference
path on B4/SWAN/UsCarrier at both precisions. Torch coverage is a
parity-*tolerance* test, skipped when torch is absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AdmmConfig
from repro.core.admm import AdmmFineTuner
from repro.core.backend import (
    DEFAULT_BACKEND,
    ENV_BACKEND,
    NUMPY,
    NUMPY_OPS,
    TORCH,
    Backend,
    NumpyOps,
    array_ops,
    foreign_ops,
    register_array_ops,
    resolve_backend,
    resolve_ops,
)
from repro.core.batching import (
    Workspace,
    linear_into,
    masked_softmax_into,
    pair_linear_into,
    relu_,
    tanh_,
)
from repro.core.model import TealModel
from repro.exceptions import ReproError
from repro.paths import PathSet
from repro.topology import get_topology
from repro.traffic import TrafficTrace


# ----------------------------------------------------------------------
# Selection policy
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None) is DEFAULT_BACKEND
        assert resolve_backend(None).name == "numpy"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "torch")
        assert resolve_backend(None) == TORCH

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "torch")
        assert resolve_backend("numpy") == NUMPY
        assert resolve_backend(NUMPY) is NUMPY

    def test_blank_env_falls_through(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "  ")
        assert resolve_backend(None) == NUMPY

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ReproError, match="unsupported backend"):
            Backend("cupy")
        with pytest.raises(ReproError, match="unsupported backend"):
            resolve_backend("cupy")
        monkeypatch.setenv(ENV_BACKEND, "cupy")
        with pytest.raises(ReproError, match="unsupported backend"):
            resolve_backend(None)

    def test_hashable_for_cache_keys(self):
        assert Backend("numpy") == NUMPY
        assert len({Backend("numpy"), NUMPY, TORCH}) == 2
        with pytest.raises(Exception):
            NUMPY.name = "torch"  # frozen

    def test_numpy_always_available(self):
        assert NUMPY.available
        assert NUMPY.ops is NUMPY_OPS

    def test_torch_ops_raise_cleanly_when_absent(self):
        if TORCH.available:
            pytest.skip("torch installed; the gate is exercised elsewhere")
        with pytest.raises(ReproError, match="torch is not installed"):
            TORCH.ops

    def test_resolve_ops_never_consults_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "torch")
        # Workspace construction with backend=None must stay numpy even
        # under REPRO_BACKEND=torch: env resolution happens only at the
        # scheme/CLI selection points.
        assert resolve_ops(None) is NUMPY_OPS
        assert resolve_ops("numpy") is NUMPY_OPS
        sentinel = object()
        assert resolve_ops(sentinel) is sentinel  # duck-typed passthrough


# ----------------------------------------------------------------------
# Value dispatch
# ----------------------------------------------------------------------
class TestArrayOps:
    def test_numpy_arrays_hit_the_shared_namespace(self):
        assert array_ops(np.zeros(3)) is NUMPY_OPS
        assert foreign_ops(np.zeros(3)) is None
        assert foreign_ops([1.0, 2.0]) is None  # builtins -> host/numpy

    def test_unregistered_foreign_type_rejected(self):
        class Alien:
            pass

        Alien.__module__ = "alienlib.arrays"
        with pytest.raises(ReproError, match="no array backend registered"):
            array_ops(Alien())

    def test_register_array_ops_extends_dispatch(self):
        class Alien2:
            pass

        Alien2.__module__ = "alienlib2.arrays"
        ops = object()
        register_array_ops("alienlib2", ops)
        try:
            assert array_ops(Alien2()) is ops
        finally:
            from repro.core.backend import _FOREIGN_OPS

            _FOREIGN_OPS.pop("alienlib2", None)


# ----------------------------------------------------------------------
# Numpy bit-identity: aliases and dispatched kernels
# ----------------------------------------------------------------------
class TestNumpyBitIdentity:
    def test_ufunc_attributes_are_numpy_aliases(self):
        # The structural guarantee: dispatching through the namespace
        # runs the identical C routine the kernels always called.
        assert NUMPY_OPS.multiply is np.multiply
        assert NUMPY_OPS.subtract is np.subtract
        assert NUMPY_OPS.add is np.add
        assert NUMPY_OPS.maximum is np.maximum
        assert NUMPY_OPS.matmul is np.matmul
        assert NUMPY_OPS.exp is np.exp
        assert NUMPY_OPS.tanh is np.tanh
        assert NUMPY_OPS.clip is np.clip
        assert NUMPY_OPS.copyto is np.copyto
        assert NUMPY_OPS.take is np.take
        assert NUMPY_OPS.empty is np.empty
        assert NUMPY_OPS.default_rng is np.random.default_rng

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dispatched_kernels_match_inline_numpy(self, dtype):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((5, 8)).astype(dtype)
        w = rng.standard_normal((8, 6)).astype(dtype)
        b = rng.standard_normal(6).astype(dtype)

        out = np.empty((5, 6), dtype=dtype)
        linear_into(x, w, b, out)
        expected = np.matmul(x, w)
        np.add(expected, b, out=expected)
        assert np.array_equal(out, expected)

        y = rng.standard_normal((5, 6)).astype(dtype)
        w2 = rng.standard_normal((8 + 6, 7)).astype(dtype)
        b2 = rng.standard_normal(7).astype(dtype)
        pair_out = np.empty((5, 7), dtype=dtype)
        scratch = np.empty((5, 7), dtype=dtype)
        pair_linear_into(x, y, w2, b2, pair_out, scratch)
        ref2 = np.matmul(x, w2[:8])
        ref2 += np.matmul(y, w2[8:])
        ref2 += b2
        assert np.array_equal(pair_out, ref2)

        t = x.copy()
        tanh_(t)
        assert np.array_equal(t, np.tanh(x))
        r = x.copy()
        relu_(r)
        assert np.array_equal(r, np.maximum(x, 0.0))

        logits = rng.standard_normal((3, 5, 4)).astype(dtype)
        mask = rng.random((5, 4)) < 0.3
        soft = np.empty_like(logits)
        reduce_buf = np.empty((3, 5, 1), dtype=dtype)
        masked_softmax_into(logits, mask, soft, reduce_buf)
        ref = logits.copy()
        ref[..., mask] = dtype(-1e30)
        ref = ref - ref.max(axis=-1, keepdims=True)
        ref = np.exp(ref)
        denom = np.maximum(ref.sum(axis=-1, keepdims=True), np.finfo(dtype).tiny)
        assert np.allclose(soft, ref / denom, rtol=0, atol=0) or np.array_equal(
            soft, ref / denom
        )


# ----------------------------------------------------------------------
# Scheme-level bit-identity across topologies and precisions
# ----------------------------------------------------------------------
def _small_case(name: str):
    scale = {"B4": 1.0, "SWAN": 0.2, "UsCarrier": 0.12}[name]
    topology = get_topology(name, scale=scale, seed=1)
    pathset = PathSet.from_topology(topology, max_pairs=60, seed=5)
    trace = TrafficTrace.generate(topology.num_nodes, 3, seed=11)
    demands = np.stack(
        [pathset.demand_volumes(m.values) for m in trace]
    )
    return pathset, demands


@pytest.mark.parametrize("name", ["B4", "SWAN", "UsCarrier"])
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_numpy_backend_bit_identical_end_to_end(name, dtype, monkeypatch):
    """backend="numpy" fused pipeline == the pre-refactor reference.

    The Tensor path (``fused=False``) was untouched by the backend
    refactor, so bitwise equality of the dispatched fused path against
    it — plus equality between explicit and default backend selection —
    is the milestone-1 acceptance assertion.
    """
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    pathset, demands = _small_case(name)
    explicit = TealModel(pathset, seed=3, backend="numpy").astype(dtype)
    default = TealModel(pathset, seed=3).astype(dtype)
    assert explicit.backend == NUMPY
    assert default.backend == NUMPY

    fused = explicit.split_ratios_batch(demands, fused=True)
    assert fused.dtype == dtype
    assert np.array_equal(fused, default.split_ratios_batch(demands, fused=True))
    assert np.array_equal(fused, default.split_ratios_batch(demands, fused=False))
    one = explicit.split_ratios(demands[0], fused=True)
    assert np.array_equal(one, default.split_ratios(demands[0], fused=False))

    tuner = AdmmFineTuner(
        pathset, AdmmConfig(iterations=5), backend="numpy",
        precision="float32" if dtype == np.float32 else "float64",
    )
    tuner_default = AdmmFineTuner(
        pathset, AdmmConfig(iterations=5),
        precision="float32" if dtype == np.float32 else "float64",
    )
    capacities = pathset.topology.capacities
    tuned = tuner.fine_tune_batch(fused, demands, capacities)
    assert np.array_equal(
        tuned, tuner_default.fine_tune_batch(fused, demands, capacities)
    )
    assert isinstance(tuned, np.ndarray)  # the boundary stays numpy


# ----------------------------------------------------------------------
# Workspace per-device keying
# ----------------------------------------------------------------------
class TestWorkspaceDeviceKeying:
    def test_same_key_on_two_devices_gets_two_buffers(self):
        class SecondDevice(NumpyOps):
            device_key = "numpy-dev2"

        ws = Workspace()
        a = ws.buffer("acts", (4, 4), np.float64)
        ws._ops = SecondDevice()
        b = ws.buffer("acts", (4, 4), np.float64)
        assert a is not b
        # Both device slots stay live: switching back is not a realloc.
        ws._ops = NUMPY_OPS
        assert ws.buffer("acts", (4, 4), np.float64) is a
        assert ws.num_buffers == 2

    def test_workspace_accepts_backend_spec(self):
        assert Workspace("numpy").ops is NUMPY_OPS
        assert Workspace(NUMPY).ops is NUMPY_OPS
        assert Workspace().ops is NUMPY_OPS


# ----------------------------------------------------------------------
# Workspace growth backing (cell-batched sweeps resize per chunk)
# ----------------------------------------------------------------------
class TestWorkspaceGrowthBacking:
    def test_same_shape_rerequest_is_identity(self):
        ws = Workspace()
        a = ws.buffer("scratch", (3, 5), np.float64)
        assert ws.buffer("scratch", (3, 5), np.float64) is a

    def test_shrink_reuses_backing(self):
        """A ragged tail chunk must not reallocate the big chunk's buffer."""
        ws = Workspace()
        big = ws.buffer("scratch", (6, 8), np.float64)
        small = ws.buffer("scratch", (2, 8), np.float64)
        assert small.shape == (2, 8)
        assert np.shares_memory(big, small)
        bytes_after_shrink = ws.total_bytes
        # Growing back within capacity reuses the same backing too.
        again = ws.buffer("scratch", (6, 8), np.float64)
        assert np.shares_memory(big, again)
        assert ws.total_bytes == bytes_after_shrink

    def test_growth_reallocates(self):
        ws = Workspace()
        small = ws.buffer("scratch", (2, 8), np.float64)
        before = ws.total_bytes
        big = ws.buffer("scratch", (6, 8), np.float64)
        assert big.shape == (6, 8)
        assert not np.shares_memory(small, big)
        assert ws.total_bytes > before

    def test_dtype_switch_reallocates(self):
        ws = Workspace()
        f64 = ws.buffer("scratch", (4, 4), np.float64)
        f32 = ws.buffer("scratch", (4, 4), np.float32)
        assert f32.dtype == np.float32
        assert not np.shares_memory(f64, f32)

    def test_total_bytes_tracks_backing_capacity(self):
        ws = Workspace()
        ws.buffer("scratch", (6, 8), np.float64)
        assert ws.total_bytes == 6 * 8 * 8
        ws.buffer("scratch", (2, 8), np.float64)  # shrink: capacity kept
        assert ws.total_bytes == 6 * 8 * 8
        ws.clear()
        assert ws.total_bytes == 0

    def test_sanitizer_poisons_every_shape_transition(self, monkeypatch):
        """Unwritten scratch must trip NaN checks even on a reused backing."""
        from repro.core import batching

        monkeypatch.setattr(batching, "_SANITIZE", True)
        ws = Workspace()
        big = ws.buffer("scratch", (6, 8), np.float64)
        assert np.isnan(big).all()
        big[...] = 1.0
        # Shrinking serves a view of the written backing: without
        # re-poisoning, stale finite values would mask missing writes.
        small = ws.buffer("scratch", (2, 8), np.float64)
        assert np.isnan(small).all()
        small[...] = 2.0
        # Same shape and dtype: the served buffer is returned as-is so
        # chunk loops keep their contents between kernel calls.
        assert not np.isnan(ws.buffer("scratch", (2, 8), np.float64)).any()


# ----------------------------------------------------------------------
# Torch parity (tolerance bar, skipped without torch)
# ----------------------------------------------------------------------
class TestTorchParity:
    def test_torch_fused_forward_parity(self, b4_pathset, b4_trace):
        pytest.importorskip("torch")
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace[:3]]
        )
        reference = TealModel(b4_pathset, seed=3, backend="numpy")
        model = TealModel(b4_pathset, seed=3, backend="torch")
        assert model.backend == TORCH
        expected = reference.split_ratios_batch(demands, fused=True)
        got = model.split_ratios_batch(demands, fused=True)
        assert isinstance(got, np.ndarray)  # boundary stays numpy
        np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-8)

    def test_torch_admm_parity(self, b4_pathset, b4_trace):
        pytest.importorskip("torch")
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace[:3]]
        )
        model = TealModel(b4_pathset, seed=3)
        ratios = model.split_ratios_batch(demands)
        capacities = b4_pathset.topology.capacities
        ref = AdmmFineTuner(b4_pathset, AdmmConfig(iterations=5))
        tuner = AdmmFineTuner(
            b4_pathset, AdmmConfig(iterations=5), backend="torch"
        )
        np.testing.assert_allclose(
            tuner.fine_tune_batch(ratios, demands, capacities),
            ref.fine_tune_batch(ratios, demands, capacities),
            rtol=1e-6, atol=1e-8,
        )
