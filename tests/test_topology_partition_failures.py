"""Tests for graph partitioning (NCFlow substrate) and failure models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import (
    apply_failures,
    bfs_balanced_partition,
    cut_edges,
    failure_scenarios,
    partition_quality,
    physical_links,
    sample_link_failures,
)


class TestPartition:
    def test_labels_cover_all_nodes(self, b4_topology):
        labels = bfs_balanced_partition(b4_topology, 3)
        assert labels.shape == (12,)
        assert set(labels.tolist()) == {0, 1, 2}

    def test_single_cluster(self, b4_topology):
        labels = bfs_balanced_partition(b4_topology, 1)
        assert np.all(labels == 0)

    def test_balance(self, small_swan):
        labels = bfs_balanced_partition(small_swan, 4)
        sizes = np.bincount(labels)
        assert sizes.max() - sizes.min() <= small_swan.num_nodes // 2

    def test_deterministic_given_seed(self, b4_topology):
        a = bfs_balanced_partition(b4_topology, 3, seed=5)
        b = bfs_balanced_partition(b4_topology, 3, seed=5)
        assert np.array_equal(a, b)

    def test_invalid_cluster_count(self, b4_topology):
        with pytest.raises(TopologyError):
            bfs_balanced_partition(b4_topology, 0)
        with pytest.raises(TopologyError):
            bfs_balanced_partition(b4_topology, 13)

    def test_cut_edges_cross_clusters(self, b4_topology):
        labels = bfs_balanced_partition(b4_topology, 3)
        for eid in cut_edges(b4_topology, labels):
            u, v = b4_topology.endpoints(eid)
            assert labels[u] != labels[v]

    def test_cut_edges_label_shape(self, b4_topology):
        with pytest.raises(TopologyError):
            cut_edges(b4_topology, np.zeros(5))

    def test_partition_quality_fields(self, b4_topology):
        labels = bfs_balanced_partition(b4_topology, 2)
        quality = partition_quality(b4_topology, labels)
        assert quality["num_clusters"] == 2
        assert 0 <= quality["cut_fraction"] <= 1


class TestFailures:
    def test_physical_links_undirected(self, b4_topology):
        links = physical_links(b4_topology)
        assert len(links) == b4_topology.num_edges // 2
        assert all(u < v for u, v in links)

    def test_sample_fails_both_directions(self, b4_topology):
        failed = sample_link_failures(b4_topology, 2, seed=1)
        assert len(failed) == 4  # two physical links, both directions
        pairs = {b4_topology.endpoints(e) for e in failed}
        for u, v in list(pairs):
            assert (v, u) in pairs

    def test_sample_zero_failures(self, b4_topology):
        assert sample_link_failures(b4_topology, 0) == []

    def test_sample_too_many_failures(self, b4_topology):
        with pytest.raises(TopologyError):
            sample_link_failures(b4_topology, 100)

    def test_sample_negative(self, b4_topology):
        with pytest.raises(TopologyError):
            sample_link_failures(b4_topology, -1)

    def test_apply_failures_zeroes_capacity(self, b4_topology):
        failed_topo = apply_failures(b4_topology, 2, seed=3)
        assert (failed_topo.capacities == 0).sum() == 4
        assert b4_topology.capacities.min() > 0  # original intact

    def test_failure_scenarios_probabilities(self, b4_topology):
        scenarios = failure_scenarios(b4_topology, 0.01)
        probs = [p for p, _ in scenarios]
        assert abs(sum(probs) - 1.0) < 1e-9
        # No-failure scenario dominates at low failure probability.
        assert probs[0] == max(probs)
        # One scenario per physical link plus the no-failure scenario.
        assert len(scenarios) == len(physical_links(b4_topology)) + 1

    def test_failure_scenarios_validation(self, b4_topology):
        with pytest.raises(TopologyError):
            failure_scenarios(b4_topology, 1.5)

    def test_failure_scenarios_rejects_non_single_max_failures(
        self, b4_topology
    ):
        """The documented contract: only the single-failure scenario set
        is implemented; every other max_failures raises."""
        for max_failures in (0, 2, 5, -1):
            with pytest.raises(TopologyError):
                failure_scenarios(b4_topology, 0.1, max_failures=max_failures)
        # max_failures=1 is the supported (default) contract.
        assert failure_scenarios(b4_topology, 0.1, max_failures=1)
