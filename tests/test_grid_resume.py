"""Tests for resumable checkpointed grid runs (``repro.sweep.checkpoint``).

The contract under test: a grid interrupted at *any* cell boundary and
resumed with ``resume=True`` produces a :class:`GridResult` bit-identical
to an uninterrupted run — across precisions, executors, and every
``cell_batch`` setting — and every persistence failure mode (truncated
writes, stale schema versions, foreign suites) degrades to a recompute,
never to wrong data.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import atomic_write_json, atomic_write_text
from repro.config import TrainingConfig
from repro.exceptions import ReproError
from repro.harness import clear_caches
from repro.sweep import (
    GRID_CHECKPOINT_VERSION,
    GridResult,
    ScenarioSuite,
    cell_checkpoint_path,
    load_cell_checkpoint,
    load_completed_cells,
    load_manifest,
    manifest_path,
    run_scenario_grid,
    save_cell_checkpoint,
    suite_token,
    write_manifest,
)

#: Tiny training budget shared by every resume test.
TINY = TrainingConfig(steps=2, warm_start_steps=6, log_every=10)


def tiny_suite(**overrides) -> ScenarioSuite:
    defaults = dict(
        topologies=("B4",),
        failure_counts=(0, 1),
        seeds=(0, 1),  # 2 jobs x 4 cells = 8 cells
        schemes=("LP-all", "Teal"),
        train=4,
        validation=1,
        test=2,
        training=TINY,
    )
    defaults.update(overrides)
    return ScenarioSuite(**defaults)


def comparable(result: GridResult) -> list[tuple]:
    """Deterministic per-cell payload (wall-clock timings excluded)."""
    return [
        (cell.coords, cell.run.satisfied, cell.run.objective_values)
        for cell in result.cells
    ]


class TestSuiteToken:
    def test_deterministic(self):
        assert suite_token(tiny_suite()) == suite_token(tiny_suite())

    def test_any_spec_change_changes_the_token(self):
        base = suite_token(tiny_suite())
        assert suite_token(tiny_suite(failure_counts=(0, 1, 2))) != base
        assert suite_token(tiny_suite(precision="float64")) != base
        assert suite_token(tiny_suite(train=5)) != base


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory):
    """One full checkpointed run: (suite, token, result, cache_dir)."""
    suite = tiny_suite()
    cache_dir = tmp_path_factory.mktemp("grid_cache")
    clear_caches()
    result = run_scenario_grid(suite, cache_dir=cache_dir)
    return suite, suite_token(suite), result, cache_dir


class TestCellCheckpointEntries:
    def test_every_cell_has_a_verified_entry(self, checkpointed):
        suite, token, result, cache_dir = checkpointed
        for cell in result.cells:
            path = cell_checkpoint_path(cache_dir, token, cell.coords)
            assert path.exists()
            loaded, timing = load_cell_checkpoint(path, token, cell.coords)
            assert loaded.coords == cell.coords
            assert loaded.run.satisfied == cell.run.satisfied
            assert timing["train_seconds"] > 0.0

    def test_save_then_load_roundtrip(self, checkpointed, tmp_path):
        suite, token, result, _ = checkpointed
        cell = result.cells[0]
        path = save_cell_checkpoint(
            tmp_path, token, cell, {"train_seconds": 1.0}
        )
        assert path == cell_checkpoint_path(tmp_path, token, cell.coords)
        loaded, timing = load_cell_checkpoint(path, token, cell.coords)
        assert loaded.to_dict() == cell.to_dict()
        assert timing == {"train_seconds": 1.0}

    def test_no_temp_residue(self, checkpointed):
        _, _, _, cache_dir = checkpointed
        assert not list(cache_dir.glob("*.tmp-*"))

    def test_foreign_suite_token_is_rejected(self, checkpointed):
        suite, token, result, cache_dir = checkpointed
        coords = result.cells[0].coords
        path = cell_checkpoint_path(cache_dir, token, coords)
        with pytest.raises(ReproError, match="belongs to suite"):
            load_cell_checkpoint(path, "0" * 16, coords)

    def test_foreign_coords_are_rejected(self, checkpointed):
        suite, token, result, cache_dir = checkpointed
        coords = result.cells[0].coords
        path = cell_checkpoint_path(cache_dir, token, coords)
        other = (coords[0], coords[1], coords[2], "NCFlow")
        with pytest.raises(ReproError, match="key mismatch"):
            load_cell_checkpoint(path, token, other)

    def test_stale_schema_version_is_rejected(self, checkpointed, tmp_path):
        suite, token, result, cache_dir = checkpointed
        coords = result.cells[0].coords
        payload = json.loads(
            cell_checkpoint_path(cache_dir, token, coords).read_text()
        )
        payload["version"] = GRID_CHECKPOINT_VERSION + 1
        stale = tmp_path / "gridcell-stale.json"
        atomic_write_json(stale, payload)
        with pytest.raises(ReproError, match="stale grid checkpoint"):
            load_cell_checkpoint(stale, token, coords)

    def test_cell_seed_mismatch_is_rejected(self, checkpointed, tmp_path):
        suite, token, result, cache_dir = checkpointed
        coords = result.cells[0].coords
        payload = json.loads(
            cell_checkpoint_path(cache_dir, token, coords).read_text()
        )
        payload["cell_seed"] += 1
        bad = tmp_path / "gridcell-seed.json"
        atomic_write_json(bad, payload)
        with pytest.raises(ReproError, match="cell-seed mismatch"):
            load_cell_checkpoint(bad, token, coords)

    def test_truncated_entry_is_a_clean_error(self, checkpointed, tmp_path):
        suite, token, result, cache_dir = checkpointed
        coords = result.cells[0].coords
        text = cell_checkpoint_path(cache_dir, token, coords).read_text()
        truncated = tmp_path / "gridcell-cut.json"
        truncated.write_text(text[: len(text) // 2])
        with pytest.raises(ReproError, match="malformed grid checkpoint"):
            load_cell_checkpoint(truncated, token, coords)

    def test_missing_file_is_a_clean_error(self, checkpointed, tmp_path):
        suite, token, result, _ = checkpointed
        with pytest.raises(ReproError, match="cannot read grid checkpoint"):
            load_cell_checkpoint(
                tmp_path / "absent.json", token, result.cells[0].coords
            )


class TestManifest:
    def test_manifest_covers_the_grid(self, checkpointed):
        suite, token, result, cache_dir = checkpointed
        payload = load_manifest(manifest_path(cache_dir, token), token)
        assert payload["suite"] == token
        assert payload["num_cells"] == suite.num_cells
        assert set(payload["completed"]) == {c.coords for c in result.cells}
        assert ScenarioSuite.from_dict(payload["spec"]) == suite

    def test_foreign_token_is_rejected(self, checkpointed):
        _, token, _, cache_dir = checkpointed
        with pytest.raises(ReproError, match="belongs to suite"):
            load_manifest(manifest_path(cache_dir, token), "0" * 16)

    def test_stale_version_is_rejected(self, checkpointed, tmp_path):
        suite, token, _, cache_dir = checkpointed
        payload = json.loads(manifest_path(cache_dir, token).read_text())
        payload["version"] = GRID_CHECKPOINT_VERSION + 1
        stale = tmp_path / "gridmanifest-stale.json"
        atomic_write_json(stale, payload)
        with pytest.raises(ReproError, match="stale grid manifest"):
            load_manifest(stale, token)

    def test_write_is_idempotent_per_completed_set(self, checkpointed, tmp_path):
        suite, token, result, _ = checkpointed
        completed = [c.coords for c in result.cells]
        first = write_manifest(tmp_path, suite, token, completed)
        text = first.read_text()
        write_manifest(tmp_path, suite, token, completed)
        assert first.read_text() == text


class TestAtomicWrite:
    def test_interrupted_write_preserves_the_old_file(
        self, tmp_path, monkeypatch
    ):
        """A crash inside the write window must never truncate the entry."""
        import repro.cache as cache_mod

        target = tmp_path / "entry.json"
        atomic_write_json(target, {"version": 1, "ok": True})
        before = target.read_text()

        def explode(src, dst):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr(cache_mod.os, "replace", explode)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_json(target, {"version": 1, "ok": False})
        assert target.read_text() == before
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_text_round_trips(self, tmp_path):
        path = atomic_write_text(tmp_path / "deep" / "file.txt", "payload")
        assert path.read_text() == "payload"


class TestLoadCompletedCells:
    def test_full_cache_loads_every_cell(self, checkpointed):
        suite, token, result, cache_dir = checkpointed
        completed = load_completed_cells(cache_dir, suite, token)
        assert set(completed) == {c.coords for c in result.cells}

    def test_empty_dir_loads_nothing(self, checkpointed, tmp_path):
        suite, _, _, _ = checkpointed
        assert load_completed_cells(tmp_path, suite) == {}

    def test_unusable_entries_warn_and_miss(self, checkpointed, tmp_path):
        suite, token, result, cache_dir = checkpointed
        # Clone the cache, then corrupt one entry in the clone.
        for path in cache_dir.glob("grid*.json"):
            (tmp_path / path.name).write_text(path.read_text())
        victim = cell_checkpoint_path(tmp_path, token, result.cells[0].coords)
        victim.write_text(victim.read_text()[:10])
        with pytest.warns(RuntimeWarning, match="1 grid checkpoint entry is"):
            completed = load_completed_cells(tmp_path, suite, token)
        assert len(completed) == suite.num_cells - 1
        assert result.cells[0].coords not in completed


class TestResumeValidation:
    def test_resume_requires_a_cache_dir(self):
        with pytest.raises(ReproError, match="requires a cache_dir"):
            run_scenario_grid(tiny_suite(), resume=True)

    def test_max_cells_must_be_positive(self, tmp_path):
        with pytest.raises(ReproError, match="max_cells must be positive"):
            run_scenario_grid(tiny_suite(), cache_dir=tmp_path, max_cells=0)


class TestResumeDeterminism:
    """Interrupt at any cell boundary; resume must be bit-identical."""

    @pytest.fixture(scope="class")
    def reference(self) -> GridResult:
        clear_caches()
        return run_scenario_grid(tiny_suite())

    # 2 = mid-job interrupt (partial job recomputes whole), 4 = clean
    # job boundary, 6 = one full job + a partial one.
    @pytest.mark.parametrize("k", (2, 4, 6))
    def test_interrupt_then_resume_is_bit_identical(
        self, k, reference, tmp_path
    ):
        suite = tiny_suite()
        partial = run_scenario_grid(suite, cache_dir=tmp_path, max_cells=k)
        assert len(partial.cells) == k
        assert comparable(partial) == comparable(reference)[:k]
        resumed = run_scenario_grid(suite, cache_dir=tmp_path, resume=True)
        assert comparable(resumed) == comparable(reference)
        info = resumed.metadata["checkpointing"]
        # Only fully-checkpointed jobs load; partial jobs recompute whole.
        cells_per_job = len(suite.failure_counts) * len(suite.schemes)
        assert info["loaded_cells"] == (k // cells_per_job) * cells_per_job
        assert resumed.metadata["resumed"] is True

    @pytest.mark.parametrize("cell_batch", (0, 1, 2))
    def test_resume_matches_across_cell_batches(
        self, cell_batch, reference, tmp_path
    ):
        suite = tiny_suite()
        run_scenario_grid(
            suite, cache_dir=tmp_path, max_cells=4, cell_batch=cell_batch
        )
        resumed = run_scenario_grid(
            suite, cache_dir=tmp_path, resume=True, cell_batch=cell_batch
        )
        assert comparable(resumed) == comparable(reference)

    def test_resume_matches_at_float64(self, tmp_path):
        suite = tiny_suite(precision="float64")
        clear_caches()
        reference = run_scenario_grid(suite)
        run_scenario_grid(suite, cache_dir=tmp_path, max_cells=4)
        resumed = run_scenario_grid(suite, cache_dir=tmp_path, resume=True)
        assert comparable(resumed) == comparable(reference)

    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_pool_executors_resume_bit_identically(
        self, executor, reference, tmp_path
    ):
        suite = tiny_suite()
        run_scenario_grid(suite, cache_dir=tmp_path, max_cells=4)
        resumed = run_scenario_grid(
            suite,
            executor=executor,
            max_workers=2,
            cache_dir=tmp_path,
            resume=True,
        )
        assert comparable(resumed) == comparable(reference)
        assert resumed.metadata["checkpointing"]["loaded_cells"] == 4

    def test_fully_checkpointed_grid_resumes_without_execution(
        self, reference, tmp_path
    ):
        suite = tiny_suite()
        run_scenario_grid(suite, cache_dir=tmp_path)
        resumed = run_scenario_grid(
            suite, executor="process", cache_dir=tmp_path, resume=True
        )
        assert comparable(resumed) == comparable(reference)
        info = resumed.metadata["checkpointing"]
        assert info["loaded_cells"] == suite.num_cells
        assert info["executed_jobs"] == 0

    def test_stale_entry_recomputes_bit_identically(self, reference, tmp_path):
        suite = tiny_suite()
        token = suite_token(suite)
        full = run_scenario_grid(suite, cache_dir=tmp_path)
        victim = cell_checkpoint_path(tmp_path, token, full.cells[0].coords)
        payload = json.loads(victim.read_text())
        payload["version"] = GRID_CHECKPOINT_VERSION + 1
        atomic_write_json(victim, payload)
        with pytest.warns(RuntimeWarning, match="unusable"):
            resumed = run_scenario_grid(
                suite, cache_dir=tmp_path, resume=True
            )
        assert comparable(resumed) == comparable(reference)
        # The stale job recomputed: only the untouched job loaded.
        assert resumed.metadata["checkpointing"]["loaded_cells"] == 4

    def test_spec_change_invalidates_the_checkpoints(self, tmp_path):
        """A changed suite spec must never resurface foreign cells."""
        run_scenario_grid(tiny_suite(seeds=(0,)), cache_dir=tmp_path)
        changed = tiny_suite(seeds=(0,), precision="float64")
        resumed = run_scenario_grid(changed, cache_dir=tmp_path, resume=True)
        assert resumed.metadata["checkpointing"]["loaded_cells"] == 0
