"""Tests for the traffic substrate: matrices, generators, traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TOP10_VOLUME_SHARE
from repro.exceptions import TrafficError
from repro.traffic import (
    TrafficGenerator,
    TrafficMatrix,
    TrafficTrace,
    calibrate_sigma,
    gravity_base_matrix,
    top_fraction_share,
)


class TestTrafficMatrix:
    def test_diagonal_forced_zero(self):
        values = np.ones((3, 3))
        matrix = TrafficMatrix(values)
        assert np.all(np.diag(matrix.values) == 0)
        assert matrix.total_demand() == pytest.approx(6.0)

    def test_rejects_non_square(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(np.ones((2, 3)))

    def test_rejects_negative(self):
        values = np.ones((2, 2))
        values[0, 1] = -1
        with pytest.raises(TrafficError):
            TrafficMatrix(values)

    def test_rejects_nan(self):
        values = np.ones((2, 2))
        values[0, 1] = np.nan
        with pytest.raises(TrafficError):
            TrafficMatrix(values)

    def test_scaled(self):
        matrix = TrafficMatrix(np.ones((2, 2)))
        assert matrix.scaled(2.0).total_demand() == pytest.approx(4.0)
        with pytest.raises(TrafficError):
            matrix.scaled(-1.0)

    def test_nonzero_pairs(self):
        values = np.zeros((3, 3))
        values[0, 1] = 5.0
        matrix = TrafficMatrix(values)
        assert matrix.nonzero_pairs() == [(0, 1)]

    def test_top_fraction_share_bounds(self):
        matrix = TrafficMatrix(np.ones((4, 4)))
        share = matrix.top_fraction_share(0.25)
        assert 0.25 <= share <= 0.3  # uniform demands: share ~ fraction
        with pytest.raises(TrafficError):
            matrix.top_fraction_share(0.0)


class TestGenerators:
    def test_gravity_matrix_normalized(self):
        base = gravity_base_matrix(10, sigma=1.0, mean_total=500.0, seed=0)
        assert base.sum() == pytest.approx(500.0)
        assert np.all(np.diag(base) == 0)

    def test_gravity_validation(self):
        with pytest.raises(TrafficError):
            gravity_base_matrix(1)
        with pytest.raises(TrafficError):
            gravity_base_matrix(5, sigma=0.0)

    def test_calibration_hits_paper_share(self):
        """§5.1: top 10% of demands should carry ~88.4% of volume."""
        sigma = calibrate_sigma(40, seed=0)
        base = gravity_base_matrix(40, sigma=sigma, seed=0)
        assert top_fraction_share(base) == pytest.approx(
            TOP10_VOLUME_SHARE, abs=0.03
        )

    def test_generator_temporal_correlation(self):
        gen = TrafficGenerator(10, sigma=1.5, phi=0.95, seed=1)
        matrices = gen.generate(50)
        stacked = np.stack([m.values for m in matrices])
        flat = stacked.reshape(50, -1)
        # Consecutive matrices should be strongly correlated (AR(1)).
        corr = np.corrcoef(flat[:-1].ravel(), flat[1:].ravel())[0, 1]
        assert corr > 0.9

    def test_generator_validation(self):
        with pytest.raises(TrafficError):
            TrafficGenerator(10, phi=1.0)
        with pytest.raises(TrafficError):
            TrafficGenerator(10, volatility=-0.1)
        gen = TrafficGenerator(10, sigma=1.0)
        with pytest.raises(TrafficError):
            gen.generate(0)

    def test_generator_deterministic(self):
        a = TrafficGenerator(8, sigma=1.0, seed=5).generate(3)
        b = TrafficGenerator(8, sigma=1.0, seed=5).generate(3)
        for ma, mb in zip(a, b):
            assert np.allclose(ma.values, mb.values)


class TestTrace:
    def test_split_sizes(self):
        trace = TrafficTrace.generate(6, 20, seed=0)
        split = trace.split(train=10, validation=4, test=6)
        assert len(split.train) == 10
        assert len(split.validation) == 4
        assert len(split.test) == 6

    def test_split_disjoint_and_consecutive(self):
        trace = TrafficTrace.generate(6, 12, seed=0)
        split = trace.split(train=6, validation=3, test=3)
        intervals = [m.interval for part in (split.train, split.validation, split.test) for m in part]
        assert intervals == sorted(set(intervals))

    def test_split_too_short(self):
        trace = TrafficTrace.generate(6, 5, seed=0)
        with pytest.raises(TrafficError):
            trace.split(train=10, validation=2, test=2)

    def test_empty_trace_rejected(self):
        with pytest.raises(TrafficError):
            TrafficTrace([])

    def test_inconsistent_sizes_rejected(self):
        a = TrafficMatrix(np.ones((3, 3)), interval=0)
        b = TrafficMatrix(np.ones((4, 4)), interval=1)
        with pytest.raises(TrafficError):
            TrafficTrace([a, b])

    def test_non_consecutive_rejected(self):
        a = TrafficMatrix(np.ones((3, 3)), interval=0)
        b = TrafficMatrix(np.ones((3, 3)), interval=2)
        with pytest.raises(TrafficError):
            TrafficTrace([a, b])

    def test_mean_matrix(self):
        trace = TrafficTrace.generate(5, 8, seed=2)
        mean = trace.mean_matrix()
        stacked = np.stack([m.values for m in trace])
        assert np.allclose(mean.values, stacked.mean(axis=0))

    def test_temporal_variances_shape(self):
        trace = TrafficTrace.generate(5, 8, seed=2)
        variances = trace.temporal_variances()
        assert variances.shape == (5, 5)
        assert np.all(variances >= 0)
