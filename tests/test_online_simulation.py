"""Tests for the online control loop with computation delay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation import Allocation, DeploymentTracker, OnlineSimulator
from repro.simulation.metrics import SchemeRun, format_comparison_table, speedup


class FixedTimeScheme:
    """Test double: LP-quality allocation with a configurable compute time.

    The allocation is demand-aware (it solves the real LP), so stale
    routes actually cost performance, as in the paper's online setting.
    """

    def __init__(self, compute_time: float, name: str = "fixed") -> None:
        self.compute_time = compute_time
        self.name = name
        self.calls = 0
        self._lp = None

    def allocate(self, pathset, demands, capacities=None):
        from repro.baselines import LpAll

        self.calls += 1
        if self._lp is None:
            self._lp = LpAll()
        allocation = self._lp.allocate(pathset, demands, capacities)
        return Allocation(
            split_ratios=allocation.split_ratios,
            compute_time=self.compute_time,
            scheme=self.name,
        )


class TestOnlineSimulator:
    def test_fast_scheme_never_stale(self, b4_pathset, b4_trace):
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        result = sim.run(FixedTimeScheme(1.0), b4_trace.matrices[:6])
        assert result.stale_fraction == 0.0
        assert all(r.allocation_age == 0 for r in result.intervals)

    def test_slow_scheme_uses_stale_routes(self, b4_pathset, b4_trace):
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        # 700s compute -> allocation arrives 3 intervals later.
        result = sim.run(FixedTimeScheme(700.0), b4_trace.matrices[:8])
        assert result.stale_fraction > 0.5
        # First interval: only the shortest-path default exists.
        assert result.intervals[0].allocation_age == 0

    def test_slow_scheme_satisfies_less(self, b4_pathset, b4_trace):
        """The §5.1 mechanism: stale routes lose demand."""
        heavy = [m.scaled(2.0) for m in b4_trace.matrices[:8]]
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        fast = sim.run(FixedTimeScheme(1.0), heavy)
        slow = sim.run(FixedTimeScheme(900.0), heavy)
        assert fast.mean_satisfied >= slow.mean_satisfied - 1e-9

    def test_failure_injection_changes_capacities(self, b4_pathset, b4_trace):
        caps = b4_pathset.topology.capacities.copy()
        failed = caps.copy()
        failed[:10] = 0.0
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        result = sim.run(
            FixedTimeScheme(1.0),
            b4_trace.matrices[:6],
            failure_at=3,
            failed_capacities=failed,
        )
        before = np.mean([r.satisfied_fraction for r in result.intervals[:3]])
        after = np.mean([r.satisfied_fraction for r in result.intervals[3:]])
        assert after <= before + 1e-9

    def test_validation(self, b4_pathset, b4_trace):
        with pytest.raises(SimulationError):
            OnlineSimulator(b4_pathset, interval_seconds=0.0)
        sim = OnlineSimulator(b4_pathset)
        with pytest.raises(SimulationError):
            sim.run(FixedTimeScheme(1.0), [])
        with pytest.raises(SimulationError):
            sim.run(FixedTimeScheme(1.0), b4_trace.matrices[:2], failure_at=1)

    def test_satisfied_series_length(self, b4_pathset, b4_trace):
        sim = OnlineSimulator(b4_pathset)
        result = sim.run(FixedTimeScheme(1.0), b4_trace.matrices[:5])
        assert result.satisfied_series().shape == (5,)


def _marked_allocation(marker: float, compute_time: float) -> Allocation:
    """An allocation whose ratios identify it (ratios[0, 0] == marker)."""
    ratios = np.zeros((2, 2))
    ratios[0, 0] = marker
    return Allocation(
        split_ratios=ratios, compute_time=compute_time, scheme="marked"
    )


class TestDeploymentTracker:
    """Regression tests for the §5.1 deployment-schedule semantics."""

    def _tracker(self) -> DeploymentTracker:
        return DeploymentTracker(
            _marked_allocation(-1.0, 0.0), interval_seconds=300.0
        )

    def test_within_budget_deploys_immediately(self):
        tracker = self._tracker()
        assert tracker.submit(0, _marked_allocation(0.0, 10.0)) == 0
        assert tracker.deployed.split_ratios[0, 0] == 0.0
        assert tracker.age(0) == 0

    def test_slow_allocation_queues_then_deploys(self):
        tracker = self._tracker()
        assert tracker.submit(0, _marked_allocation(0.0, 700.0)) == 2
        tracker.resolve(1)
        assert tracker.deployed.split_ratios[0, 0] == -1.0  # still default
        assert tracker.age(1) == 1
        tracker.resolve(2)
        assert tracker.deployed.split_ratios[0, 0] == 0.0
        assert tracker.age(2) == 2

    def test_slow_inflight_does_not_regress_fresh_deployment(self):
        """The fixed bug: a slow allocation started at interval 0 finishing
        at interval 2 must not overwrite interval 1's fresh deployment."""
        tracker = self._tracker()
        tracker.submit(0, _marked_allocation(0.0, 700.0))  # ready at t=2
        tracker.resolve(1)
        tracker.submit(1, _marked_allocation(1.0, 10.0))  # deploys now
        assert tracker.deployed.split_ratios[0, 0] == 1.0
        tracker.resolve(2)  # interval 0's stale result is discarded
        assert tracker.deployed.split_ratios[0, 0] == 1.0
        assert tracker.deployed_started == 1
        assert tracker.age(2) == 1

    def test_freshest_of_several_ready_wins(self):
        tracker = self._tracker()
        tracker.submit(0, _marked_allocation(0.0, 900.0))  # ready at t=3
        tracker.resolve(1)
        tracker.submit(1, _marked_allocation(1.0, 600.0))  # ready at t=3
        tracker.resolve(3)
        assert tracker.deployed.split_ratios[0, 0] == 1.0
        assert tracker.deployed_started == 1

    def test_interval_zero_delayed_allocation_still_deploys(self):
        """The default predates every decision: interval 0's delayed
        result must replace it (guard is strict on real decisions only)."""
        tracker = self._tracker()
        tracker.submit(0, _marked_allocation(0.0, 400.0))  # ready at t=1
        tracker.resolve(1)
        assert tracker.deployed.split_ratios[0, 0] == 0.0
        assert tracker.deployed_started == 0

    def test_run_ages_with_heterogeneous_compute_times(
        self, b4_pathset, b4_trace
    ):
        """End to end: ages reflect the anti-regression guard (interval 2
        keeps interval 1's allocation at age 1, not interval 0's at 2)."""

        class ScriptedTimeScheme(FixedTimeScheme):
            def __init__(self, times):
                super().__init__(times[0])
                self.times = times

            def allocate(self, pathset, demands, capacities=None):
                self.compute_time = self.times[
                    min(self.calls, len(self.times) - 1)
                ]
                return super().allocate(pathset, demands, capacities)

        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        result = sim.run(
            ScriptedTimeScheme([700.0, 10.0, 400.0, 10.0]),
            b4_trace.matrices[:4],
        )
        assert [r.allocation_age for r in result.intervals] == [0, 0, 1, 0]


class TestMetrics:
    def test_scheme_run_statistics(self):
        run = SchemeRun(scheme="x")
        for satisfied, t in [(0.8, 1.0), (0.9, 2.0), (1.0, 3.0)]:
            run.add(satisfied, t)
        assert run.mean_satisfied == pytest.approx(0.9)
        assert run.mean_compute_time == pytest.approx(2.0)
        assert run.satisfied_percentile(50) == pytest.approx(0.9)
        assert run.time_percentile(100) == pytest.approx(3.0)

    def test_empty_run_defaults(self):
        run = SchemeRun(scheme="x")
        assert run.mean_satisfied == 0.0
        assert run.time_percentile(50) == 0.0

    def test_cdf_monotone(self):
        run = SchemeRun(scheme="x")
        values, fractions = run.cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert fractions[-1] == pytest.approx(1.0)

    def test_speedup(self):
        slow = SchemeRun(scheme="slow")
        slow.add(0.9, 10.0)
        fast = SchemeRun(scheme="fast")
        fast.add(0.9, 2.0)
        assert speedup(slow, fast) == pytest.approx(5.0)

    def test_speedup_zero_time_rejected(self):
        slow = SchemeRun(scheme="slow")
        slow.add(0.9, 10.0)
        fast = SchemeRun(scheme="fast")
        fast.add(0.9, 0.0)
        with pytest.raises(SimulationError):
            speedup(slow, fast)

    def test_time_breakdown_collects_components(self):
        run = SchemeRun(scheme="x")
        run.add(0.9, 1.0, extras={"forward_time": 0.2, "admm_time": 0.1})
        run.add(0.9, 2.0, extras={"forward_time": 0.4, "admm_time": 0.3})
        breakdown = run.time_breakdown()
        assert breakdown["forward_time"] == pytest.approx(0.3)
        assert breakdown["total_time"] == pytest.approx(1.5)

    def test_format_table_contains_schemes(self):
        run = SchemeRun(scheme="Teal")
        run.add(0.9, 0.5)
        table = format_comparison_table([run])
        assert "Teal" in table
        assert "90.0%" in table
