"""Batched-vs-looped agreement for the training stack and ADMM, plus
regression tests for the training-loop correctness fixes.

Every batched path introduced by the batched-training PR must reproduce
its per-TM counterpart to 1e-8 (the ADMM tiling is bit-exact by
construction; the trainers go through the batched forward, which agrees
to float tolerance): direct-loss losses *and gradients*, the COMA*
advantage/per-step loss under fixed action samples, and
``fine_tune_batch`` against a ``fine_tune`` loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AdmmConfig, TrainingConfig
from repro.core import (
    AdmmFineTuner,
    ComaTrainer,
    DirectLossTrainer,
    SegmentOps,
    TealModel,
    TealScheme,
    masked_softmax_np,
    mlu_surrogate_loss,
    mlu_surrogate_loss_batch,
    model_path_flows_batch,
    surrogate_loss,
    surrogate_loss_batch,
)
from repro.core import coma as coma_module
from repro.core import direct_loss as direct_loss_module
from repro.core.coma import sample_training_capacities
from repro.exceptions import TrainingError
from repro.lp import MinMaxLinkUtilizationObjective, TotalFlowObjective
from repro.lp.objectives import DelayPenalizedFlowObjective
from repro.paths import PathSet
from repro.topology import b4
from repro.traffic import TrafficTrace

TOL = 1e-8


@pytest.fixture(scope="module")
def tight_b4():
    """B4 sized so capacity binds during training (shared with trainers)."""
    topo = b4(capacity=60.0)
    pathset = PathSet.from_topology(topo)
    trace = TrafficTrace.generate(12, 16, seed=5)
    return pathset, trace.matrices


@pytest.fixture(scope="module")
def stacked_inputs(tight_b4):
    """A (T,) stack of demands and per-matrix capacities."""
    pathset, matrices = tight_b4
    T = 5
    demands = np.stack(
        [pathset.demand_volumes(m.values) for m in matrices[:T]]
    )
    rng = np.random.default_rng(3)
    caps = pathset.topology.capacities * (
        0.5 + rng.random((T, pathset.topology.num_edges))
    )
    return demands, caps


class TestSegmentOps:
    def test_sum_matches_bincount_rows(self):
        rng = np.random.default_rng(0)
        index = rng.integers(0, 7, size=40)
        ops = SegmentOps(index, 7)
        weights = rng.normal(size=(3, 40))
        out = ops.sum(weights)
        for t in range(3):
            expected = np.bincount(index, weights=weights[t], minlength=7)
            assert np.array_equal(out[t], expected)

    def test_max_matches_scatter_rows(self):
        rng = np.random.default_rng(1)
        index = rng.integers(0, 5, size=30)
        ops = SegmentOps(index, 5)
        values = rng.random((4, 30))
        out = ops.max(values)
        for t in range(4):
            expected = np.zeros(5)
            np.maximum.at(expected, index, values[t])
            assert np.array_equal(out[t], expected)

    def test_empty_segments_keep_initial(self):
        ops = SegmentOps(np.array([0, 0, 2]), 4)
        out = ops.max(np.array([[1.0, 2.0, 3.0]]), initial=-1.0)
        assert np.array_equal(out[0], [2.0, -1.0, 3.0, -1.0])

    def test_tiled_index_cached(self):
        ops = SegmentOps(np.array([0, 1]), 2)
        assert ops.tiled_index(3) is ops.tiled_index(3)


class TestBatchedDirectLoss:
    def test_flow_surrogate_matches_per_tm_mean(self, tight_b4, stacked_inputs):
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        model = TealModel(pathset, seed=0)
        values = np.ones(pathset.num_paths)
        batched = surrogate_loss_batch(model, demands, caps, values)
        singles = [
            surrogate_loss(model, demands[t], caps[t], values).item()
            for t in range(demands.shape[0])
        ]
        assert batched.item() == pytest.approx(np.mean(singles), abs=TOL)

    def test_flow_surrogate_gradients_match(self, tight_b4, stacked_inputs):
        """Batched gradients equal the mean of the per-TM gradients."""
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        T = demands.shape[0]
        values = np.ones(pathset.num_paths)

        model = TealModel(pathset, seed=0)
        surrogate_loss_batch(model, demands, caps, values).backward()
        batched_grads = [
            None if p.grad is None else p.grad.copy() for p in model.parameters()
        ]

        for p in model.parameters():
            p.zero_grad()
        for t in range(T):
            (surrogate_loss(model, demands[t], caps[t], values) / T).backward()

        for p, batched in zip(model.parameters(), batched_grads):
            if batched is None:
                assert p.grad is None
            else:
                assert np.allclose(batched, p.grad, atol=TOL)

    def test_mlu_surrogate_matches_per_tm_mean(self, tight_b4, stacked_inputs):
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        model = TealModel(pathset, seed=1)
        batched = mlu_surrogate_loss_batch(model, demands, caps)
        singles = [
            mlu_surrogate_loss(model, demands[t], caps[t]).item()
            for t in range(demands.shape[0])
        ]
        assert batched.item() == pytest.approx(np.mean(singles), abs=TOL)

    def test_model_path_flows_batch_shape(self, tight_b4, stacked_inputs):
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        model = TealModel(pathset, seed=0)
        flows = model_path_flows_batch(model, demands, caps)
        assert flows.shape == (demands.shape[0], pathset.num_paths)

    def test_batched_training_runs_and_improves(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=0)
        trainer = DirectLossTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(
                steps=30, warm_start_steps=0, log_every=10, batch_matrices=4
            ),
        )
        history = trainer.train(matrices[:8])
        assert history.losses[-1] < history.losses[0]

    def test_invalid_batch_size(self, tight_b4):
        pathset, matrices = tight_b4
        trainer = DirectLossTrainer(TealModel(pathset, seed=0))
        with pytest.raises(TrainingError):
            trainer.train(matrices[:2], steps=1, batch_size=0)


class TestMluSurrogateStability:
    """Regression: the p=8 norm must not overflow on overloaded links."""

    def test_extreme_utilization_is_finite(self, tight_b4):
        pathset, matrices = tight_b4
        model = TealModel(pathset, seed=0)
        demands = pathset.demand_volumes(matrices[0].values)
        # Utilizations ~1e38: u^8 ~ 1e304+ overflows the naive p-norm.
        tiny_caps = np.full(pathset.topology.num_edges, 1e-36)
        loss = mlu_surrogate_loss(model, demands, tiny_caps)
        assert np.isfinite(loss.item())
        loss.backward()
        for p in model.parameters():
            if p.grad is not None:
                assert np.all(np.isfinite(p.grad))

    def test_factored_norm_matches_naive_in_safe_range(self, tight_b4):
        from repro.nn import Tensor
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        u = rng.random(40) * 2.0
        factored = F.p_norm(Tensor(u), 8.0).item()
        naive = float((np.sum(u ** 8.0) + 1e-12) ** (1.0 / 8.0))
        assert factored == pytest.approx(naive, rel=1e-9)

    def test_p_norm_gradient_is_true_p_norm_gradient(self):
        from repro.nn import Tensor
        from repro.nn import functional as F

        u = np.array([0.5, 1.2, 3.0, 0.1])
        x = Tensor(u, requires_grad=True)
        F.p_norm(x, 8.0).backward()
        norm = float(np.sum(u ** 8.0) ** (1.0 / 8.0))
        expected = (u / norm) ** 7.0
        assert np.allclose(x.grad, expected, atol=1e-9)


class TestBatchedComa:
    def test_advantages_match_per_tm_math(self, tight_b4, stacked_inputs):
        """Batched advantages equal the classic per-TM computation."""
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        T = demands.shape[0]
        samples = 3
        model = TealModel(pathset, seed=0)
        trainer = ComaTrainer(
            model,
            TotalFlowObjective(),
            TrainingConfig(steps=1, warm_start_steps=0),
            counterfactual_samples=samples,
        )
        rng = np.random.default_rng(11)
        logits = model.logits_batch(demands, caps)
        actions = model.policy.sample_actions(logits, rng)
        alts = np.stack(
            [model.policy.sample_actions(logits, rng) for _ in range(samples)]
        )
        batched = trainer.step_advantages(actions, alts, demands, caps)

        reward_model = trainer.reward_model
        mask = pathset.path_mask
        _EPS = 1e-12
        for t in range(T):
            ratios = masked_softmax_np(actions[t], mask)
            base_flows = pathset.split_ratios_to_path_flows(ratios, demands[t])
            base_loads = pathset.edge_loads(base_flows)
            base_own = reward_model._own_edge_load(base_flows)
            base_values = reward_model.demand_values(
                base_flows, base_flows, caps[t], base_loads, base_own
            )
            baseline = np.zeros(pathset.num_demands)
            for s in range(samples):
                alt_ratios = masked_softmax_np(alts[s, t], mask)
                alt_flows = pathset.split_ratios_to_path_flows(
                    alt_ratios, demands[t]
                )
                baseline += reward_model.demand_values(
                    base_flows, alt_flows, caps[t], base_loads, base_own
                )
            baseline /= samples
            advantage = base_values - baseline
            std = advantage.std()
            if std > _EPS:
                advantage = (advantage - advantage.mean()) / std
            assert np.allclose(batched[t], advantage, atol=TOL)

    def test_demand_values_batch_matches_loop(self, tight_b4, stacked_inputs):
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        reward = coma_module.DecomposableReward(pathset, TotalFlowObjective())
        rng = np.random.default_rng(2)
        base = masked_softmax_np(
            rng.normal(size=(demands.shape[0], pathset.num_demands, 4)),
            pathset.path_mask,
        )
        alt = masked_softmax_np(
            rng.normal(size=(demands.shape[0], pathset.num_demands, 4)),
            pathset.path_mask,
        )
        base_flows = pathset.split_ratios_to_path_flows_batch(base, demands)
        alt_flows = pathset.split_ratios_to_path_flows_batch(alt, demands)
        batched = reward.demand_values_batch(base_flows, alt_flows, caps)
        for t in range(demands.shape[0]):
            single = reward.demand_values(base_flows[t], alt_flows[t], caps[t])
            assert np.allclose(batched[t], single, atol=TOL)

    def test_demand_values_batch_mlu(self, tight_b4, stacked_inputs):
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        reward = coma_module.DecomposableReward(
            pathset, MinMaxLinkUtilizationObjective()
        )
        rng = np.random.default_rng(4)
        ratios = masked_softmax_np(
            rng.normal(size=(demands.shape[0], pathset.num_demands, 4)),
            pathset.path_mask,
        )
        flows = pathset.split_ratios_to_path_flows_batch(ratios, demands)
        batched = reward.demand_values_batch(flows, flows, caps)
        for t in range(demands.shape[0]):
            single = reward.demand_values(flows[t], flows[t], caps[t])
            assert np.allclose(batched[t], single, atol=TOL)

    def test_batch_of_one_reproduces_classic_training(self, tight_b4):
        """batch_size=1 consumes the same RNG stream -> identical history."""
        pathset, matrices = tight_b4
        config = TrainingConfig(steps=6, warm_start_steps=0, log_every=2, seed=7)
        h_default = ComaTrainer(
            TealModel(pathset, seed=0), TotalFlowObjective(), config
        ).train(matrices[:4])
        h_explicit = ComaTrainer(
            TealModel(pathset, seed=0), TotalFlowObjective(), config
        ).train(matrices[:4], batch_size=1)
        assert h_default.losses == h_explicit.losses
        assert h_default.rewards == h_explicit.rewards

    def test_batched_training_improves_reward(self, tight_b4):
        pathset, matrices = tight_b4
        trainer = ComaTrainer(
            TealModel(pathset, seed=0),
            TotalFlowObjective(),
            TrainingConfig(
                steps=12, warm_start_steps=0, log_every=4, seed=0,
                batch_matrices=4,
            ),
        )
        history = trainer.train(matrices[:8])
        assert history.rewards[-1] >= history.rewards[0] * 0.9

    def test_invalid_batch_size(self, tight_b4):
        pathset, matrices = tight_b4
        trainer = ComaTrainer(TealModel(pathset, seed=0))
        with pytest.raises(TrainingError):
            trainer.train(matrices[:2], steps=1, batch_size=0)


class TestLoggedRewardCapacities:
    """Regression: logged rewards score the failure-sampled capacities."""

    def _zero_caps(self, pathset, capacities, config, rng):
        return np.zeros_like(np.asarray(capacities, dtype=float))

    def test_coma_logs_under_step_capacities(self, tight_b4, monkeypatch):
        pathset, matrices = tight_b4
        monkeypatch.setattr(
            coma_module, "sample_training_capacities", self._zero_caps
        )
        trainer = ComaTrainer(
            TealModel(pathset, seed=0),
            TotalFlowObjective(),
            TrainingConfig(steps=2, warm_start_steps=0, log_every=1, seed=0),
        )
        history = trainer.train(matrices[:2])
        # All links failed in every step: the greedy allocation delivers
        # nothing under the capacities it was computed for. Before the
        # fix the log scored nominal capacities and reported > 0.
        assert all(r == 0.0 for r in history.rewards)

    def test_direct_loss_logs_under_step_capacities(self, tight_b4, monkeypatch):
        pathset, matrices = tight_b4
        monkeypatch.setattr(
            direct_loss_module, "sample_training_capacities", self._zero_caps
        )
        trainer = DirectLossTrainer(
            TealModel(pathset, seed=0),
            TotalFlowObjective(),
            TrainingConfig(steps=2, warm_start_steps=0, log_every=1, seed=0),
        )
        history = trainer.train(matrices[:2])
        assert all(r == 0.0 for r in history.rewards)


class TestSampleTrainingCapacitiesCopy:
    """Regression: the no-failure branch must not alias the input."""

    def test_no_failure_branch_copies(self, tight_b4):
        pathset, _ = tight_b4
        caps = pathset.topology.capacities.copy()
        config = TrainingConfig(failure_rate=0.0)
        out = sample_training_capacities(
            pathset, caps, config, np.random.default_rng(0)
        )
        assert out is not caps
        out[:] = -5.0
        assert np.all(caps > 0)


class TestBatchedAdmm:
    @pytest.fixture(scope="class")
    def tuner(self, tight_b4):
        pathset, _ = tight_b4
        return AdmmFineTuner(pathset, AdmmConfig(iterations=8, rho=3.0))

    @pytest.fixture(scope="class")
    def warm_ratios(self, tight_b4, stacked_inputs):
        pathset, _ = tight_b4
        demands, _ = stacked_inputs
        rng = np.random.default_rng(9)
        ratios = rng.dirichlet(np.ones(4), size=(demands.shape[0], pathset.num_demands))
        return ratios * pathset.path_mask

    def test_matches_per_tm_loop(self, tuner, stacked_inputs, warm_ratios):
        demands, caps = stacked_inputs
        batched = tuner.fine_tune_batch(warm_ratios, demands, caps)
        for t in range(demands.shape[0]):
            single = tuner.fine_tune(warm_ratios[t], demands[t], caps[t])
            assert np.allclose(batched[t], single, atol=TOL)

    def test_matches_with_shared_capacities(self, tuner, stacked_inputs, warm_ratios):
        demands, _ = stacked_inputs
        batched = tuner.fine_tune_batch(warm_ratios, demands)
        for t in range(demands.shape[0]):
            single = tuner.fine_tune(warm_ratios[t], demands[t])
            assert np.allclose(batched[t], single, atol=TOL)

    def test_matches_with_failed_links(self, tuner, tight_b4, stacked_inputs, warm_ratios):
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        caps = caps.copy()
        caps[:, :6] = 0.0
        batched = tuner.fine_tune_batch(warm_ratios, demands, caps)
        for t in range(demands.shape[0]):
            single = tuner.fine_tune(warm_ratios[t], demands[t], caps[t])
            assert np.allclose(batched[t], single, atol=TOL)
        assert np.all(np.isfinite(batched))

    def test_zero_iterations_projects_batch(self, tuner, stacked_inputs):
        demands, caps = stacked_inputs
        rng = np.random.default_rng(1)
        ratios = rng.uniform(0, 0.8, size=(demands.shape[0], demands.shape[1], 4))
        out = tuner.fine_tune_batch(ratios, demands, caps, iterations=0)
        assert np.all(out.sum(axis=-1) <= 1.0 + 1e-9)

    def test_empty_batch(self, tuner, tight_b4):
        pathset, _ = tight_b4
        out = tuner.fine_tune_batch(
            np.zeros((0, pathset.num_demands, 4)),
            np.zeros((0, pathset.num_demands)),
        )
        assert out.shape == (0, pathset.num_demands, 4)


class TestAdmmZeroIterationExit:
    """Regression: iterations<=0 applies the same simplex renormalization
    as the full path (it used to return clipped-only ratios whose rows
    could sum past 1)."""

    def test_oversubscribed_rows_renormalized(self, tight_b4):
        pathset, _ = tight_b4
        tuner = AdmmFineTuner(pathset, AdmmConfig(iterations=5))
        ratios = np.full((pathset.num_demands, 4), 0.4)  # rows sum to 1.6
        out = tuner.fine_tune(
            ratios, np.ones(pathset.num_demands), iterations=0
        )
        assert np.all(out.sum(axis=1) <= 1.0 + 1e-9)

    def test_feasible_rows_untouched(self, tight_b4):
        pathset, _ = tight_b4
        tuner = AdmmFineTuner(pathset, AdmmConfig(iterations=5))
        rng = np.random.default_rng(1)
        ratios = rng.uniform(0, 0.2, (pathset.num_demands, 4))
        out = tuner.fine_tune(
            ratios, np.ones(pathset.num_demands), iterations=0
        )
        assert np.allclose(out, ratios)


class TestObjectiveRewardBatch:
    @pytest.mark.parametrize(
        "objective",
        [
            TotalFlowObjective(),
            MinMaxLinkUtilizationObjective(),
            DelayPenalizedFlowObjective(),
        ],
        ids=["total_flow", "min_mlu", "delay_penalized"],
    )
    def test_matches_per_tm_reward(self, tight_b4, stacked_inputs, objective):
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        rng = np.random.default_rng(6)
        ratios = masked_softmax_np(
            rng.normal(size=(demands.shape[0], pathset.num_demands, 4)),
            pathset.path_mask,
        )
        batched = objective.reward_batch(pathset, ratios, demands, caps)
        for t in range(demands.shape[0]):
            single = objective.reward(pathset, ratios[t], demands[t], caps[t])
            assert batched[t] == pytest.approx(single, abs=TOL)

    def test_default_loop_fallback(self, tight_b4, stacked_inputs):
        """Objectives without a vectorized override still batch correctly."""
        pathset, _ = tight_b4
        demands, caps = stacked_inputs

        class LoopedFlow(TotalFlowObjective):
            evaluate_batch = coma_module.Objective.evaluate_batch

        objective = LoopedFlow()
        rng = np.random.default_rng(8)
        ratios = masked_softmax_np(
            rng.normal(size=(demands.shape[0], pathset.num_demands, 4)),
            pathset.path_mask,
        )
        batched = objective.reward_batch(pathset, ratios, demands, caps)
        reference = TotalFlowObjective().reward_batch(
            pathset, ratios, demands, caps
        )
        assert np.allclose(batched, reference, atol=TOL)


class TestTealAllocateBatchWithAdmm:
    def test_matches_looped_allocate_per_matrix_caps(
        self, tight_b4, stacked_inputs
    ):
        """The batched ADMM tail reproduces the per-TM pipeline."""
        pathset, _ = tight_b4
        demands, caps = stacked_inputs
        teal = TealScheme(pathset, seed=5)  # total flow -> ADMM enabled
        assert teal.use_admm
        batched = teal.allocate_batch(pathset, demands, caps)
        for t, allocation in enumerate(batched):
            single = teal.allocate(pathset, demands[t], caps[t])
            assert np.allclose(
                allocation.split_ratios, single.split_ratios, atol=TOL
            )
            assert allocation.extras["batched"] is True
            assert allocation.extras["admm_iterations"] > 0


class TestHarnessFailureSweep:
    @pytest.fixture(scope="class")
    def small_scenario(self):
        from repro.harness import build_scenario

        return build_scenario("B4", train=3, validation=1, test=3, seed=0)

    def test_matches_per_level_offline_comparison(self, small_scenario):
        from repro.harness import run_failure_sweep, run_offline_comparison

        teal = TealScheme(small_scenario.pathset, seed=0)
        schemes = {"Teal": teal}
        caps0 = small_scenario.capacities.copy()
        caps1 = small_scenario.capacities.copy()
        caps1[:4] = 0.0
        sweep = run_failure_sweep(
            small_scenario, schemes, {0: caps0, 1: caps1}
        )
        for key, caps in ((0, caps0), (1, caps1)):
            reference = run_offline_comparison(
                small_scenario, schemes, capacities=caps
            )
            assert sweep[key]["Teal"].mean_satisfied == pytest.approx(
                reference["Teal"].mean_satisfied, abs=TOL
            )

    def test_online_sweep_matches_per_case_runs(self, small_scenario):
        from repro.harness import run_online_comparison, run_online_failure_sweep

        teal = TealScheme(small_scenario.pathset, seed=0, use_admm=False)
        schemes = {"Teal": teal}
        failed = small_scenario.capacities.copy()
        failed[:4] = 0.0
        cases = {"none": (None, None), "hit": (1, failed)}
        sweep = run_online_failure_sweep(
            small_scenario, schemes, interval_seconds=1e9, failure_cases=cases
        )
        for key, (failure_at, failed_caps) in cases.items():
            reference = run_online_comparison(
                small_scenario,
                schemes,
                interval_seconds=1e9,
                failure_at=failure_at,
                failed_capacities=failed_caps,
            )
            assert np.allclose(
                sweep[key]["Teal"].satisfied_series(),
                reference["Teal"].satisfied_series(),
                atol=TOL,
            )
