"""Tests for ``repro.lint``: rules, baseline, CLI, and runtime sanitizers.

Static-rule fixtures are tiny synthetic modules written under a temp dir
whose layout mirrors the repo (``<tmp>/repro/nn/...``), because the
rules scope by repo-relative path. Each rule gets at least one true
positive and one true negative. The sanitizer tests exercise
``wrap_kernel`` in-process and the full ``REPRO_SANITIZE=1`` install
path in a subprocess (the env var is read at ``repro.core.batching``
import time, which has already happened in this process).
"""

from __future__ import annotations

import inspect
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core import batching
from repro.core.batching import KERNEL_CONTRACTS, KernelContract
from repro.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    save_baseline,
    updated_entries,
)
from repro.lint.engine import lint_paths
from repro.lint.report import format_json, format_text
from repro.lint.rules import RULES, in_hot_path, in_precision_scope, in_timing_scope
from repro.lint.sanitize import SanitizerError, sanitize_enabled, wrap_kernel

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write_module(root: Path, relpath: str, source: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


def _lint(root: Path) -> list:
    return lint_paths([str(root)], root=str(root))


def _rules_hit(root: Path) -> set[str]:
    return {f.rule for f in _lint(root)}


# ----------------------------------------------------------------------
# Rule registry & scoping
# ----------------------------------------------------------------------


def test_rule_registry_documents_all_four_rules():
    assert sorted(RULES) == ["RL001", "RL002", "RL003", "RL004"]
    for rule in RULES.values():
        assert rule.title and rule.rationale and rule.scope


def test_path_scoping():
    assert in_precision_scope("src/repro/nn/tensor.py")
    assert in_precision_scope("src/repro/simulation/evaluator.py")
    assert not in_precision_scope("src/repro/nn/precision.py")  # exempt
    assert not in_precision_scope("src/repro/sweep/grid.py")
    assert in_timing_scope("src/repro/sweep/grid.py")
    assert in_timing_scope("benchmarks/bench_online.py")
    assert not in_timing_scope("src/repro/core/admm.py")
    assert in_hot_path("src/repro/core/flowgnn.py")
    # Since the backend refactor the fused kernels are hot-path too...
    assert in_hot_path("src/repro/core/batching.py")
    # ...and the ops-namespace module is the sole exempt seam.
    assert not in_hot_path("src/repro/core/backend.py")
    assert not in_hot_path("src/repro/lp/solver.py")


# ----------------------------------------------------------------------
# RL001 dtype-policy
# ----------------------------------------------------------------------


def test_rl001_flags_dtype_literals_in_precision_scope(tmp_path):
    _write_module(
        tmp_path,
        "repro/nn/mod.py",
        """
        import numpy as np

        def f(x, precision):
            a = np.zeros(3, dtype=float)          # positive: keyword literal
            b = np.asarray(x, np.float64)          # positive: positional literal
            c = x.astype("float32")                # positive: astype literal
            d = np.zeros(3, dtype=precision.dtype) # negative: policy-derived
            return a, b, c, d
        """,
    )
    findings = [f for f in _lint(tmp_path) if f.rule == "RL001"]
    assert len(findings) == 3
    assert {f.line for f in findings} == {5, 6, 7}


def test_rl001_ignores_out_of_scope_and_policy_module(tmp_path):
    source = """
        import numpy as np
        X = np.zeros(3, dtype=float)
        """
    _write_module(tmp_path, "repro/sweep/mod.py", source)
    _write_module(tmp_path, "repro/nn/precision.py", source)
    assert "RL001" not in _rules_hit(tmp_path)


# ----------------------------------------------------------------------
# RL002 kernel-aliasing
# ----------------------------------------------------------------------


def test_rl002_flags_out_aliasing_an_input(tmp_path):
    _write_module(
        tmp_path,
        "repro/core/mod.py",
        """
        from .batching import linear_into, pair_linear_into

        def f(x, w, b, scratch):
            linear_into(x, w, b, x)                      # positive: out is x
            pair_linear_into(x, x, w, None, out=scratch, scratch=scratch)
        """,
    )
    findings = [f for f in _lint(tmp_path) if f.rule == "RL002"]
    # line 5: out aliases x; line 6: scratch aliases out (a/b may repeat).
    assert {f.line for f in findings} == {5, 6}


def test_rl002_respects_may_alias_and_distinct_buffers(tmp_path):
    _write_module(
        tmp_path,
        "repro/core/mod.py",
        """
        from .batching import linear_into, masked_softmax_into

        def f(logits, not_mask, buf, x, w, b, out):
            masked_softmax_into(logits, not_mask, logits, buf)  # allowed alias
            linear_into(x, w, b, out)                            # distinct
        """,
    )
    assert "RL002" not in _rules_hit(tmp_path)


def test_rl002_method_kernel_binding(tmp_path):
    _write_module(
        tmp_path,
        "repro/core/mod.py",
        """
        def f(ops, values, out):
            ops.expand_into(values, values)   # positive: out aliases values
            ops.expand_into(values, out)      # negative
        """,
    )
    findings = [f for f in _lint(tmp_path) if f.rule == "RL002"]
    assert [f.line for f in findings] == [3]


# ----------------------------------------------------------------------
# RL003 determinism
# ----------------------------------------------------------------------


def test_rl003_flags_global_rng_set_iteration_and_wall_clock(tmp_path):
    _write_module(
        tmp_path,
        "repro/core/mod.py",
        """
        import time
        import numpy as np

        def f(items):
            np.random.seed(0)                    # positive: global RNG
            for x in {1, 2, 3}:                  # positive: set iteration
                pass
            ordered = list({"a", "b"})           # positive: list(set)
            t = time.perf_counter()              # positive: stray wall clock
            return ordered, t
        """,
    )
    findings = [f for f in _lint(tmp_path) if f.rule == "RL003"]
    assert {f.line for f in findings} == {6, 7, 9, 10}


def test_rl003_allows_generator_api_sorted_sets_and_timing_modules(tmp_path):
    _write_module(
        tmp_path,
        "repro/core/mod.py",
        """
        import numpy as np

        def f(items):
            rng = np.random.default_rng(0)
            x = rng.normal(size=3)               # Generator API: fine
            for k in sorted({1, 2, 3}):          # sorted first: fine
                pass
            return x
        """,
    )
    _write_module(
        tmp_path,
        "repro/sweep/grid.py",
        """
        import time

        def f():
            return time.perf_counter()           # timing-designated module
        """,
    )
    assert "RL003" not in _rules_hit(tmp_path)


# ----------------------------------------------------------------------
# RL004 dispatch-seam
# ----------------------------------------------------------------------


def test_rl004_flags_direct_matmul_in_hot_path(tmp_path):
    _write_module(
        tmp_path,
        "repro/core/flowgnn.py",
        """
        import numpy as np

        def f(a, b):
            c = a @ b                    # positive
            d = np.matmul(a, b)          # positive
            e = a.dot(b)                 # positive
            return c, d, e
        """,
    )
    findings = [f for f in _lint(tmp_path) if f.rule == "RL004"]
    assert {f.line for f in findings} == {5, 6, 7}


def test_rl004_ignores_non_hot_path_and_the_seam_itself(tmp_path):
    source = """
        import numpy as np

        def f(a, b):
            return np.matmul(a @ b, b)
        """
    _write_module(tmp_path, "repro/lp/solver.py", source)
    _write_module(tmp_path, "repro/core/backend.py", source)
    assert "RL004" not in _rules_hit(tmp_path)


def test_rl004_flags_raw_allocations_in_hot_path(tmp_path):
    _write_module(
        tmp_path,
        "repro/core/model.py",
        """
        import numpy as np

        def f(n, ops):
            a = np.empty(n)              # positive
            b = np.zeros((n, n))         # positive
            c = ops.empty(n)             # negative: dispatched
            d = np.ones(n)               # negative: not an allocator we flag
            return a, b, c, d
        """,
    )
    findings = [f for f in _lint(tmp_path) if f.rule == "RL004"]
    assert {f.line for f in findings} == {5, 6}


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------


def _violating_root(tmp_path: Path) -> Path:
    _write_module(
        tmp_path,
        "repro/nn/mod.py",
        """
        import numpy as np
        A = np.zeros(3, dtype=float)
        """,
    )
    return tmp_path


def test_baseline_round_trip_suppresses_known_findings(tmp_path):
    root = _violating_root(tmp_path)
    findings = _lint(root)
    assert findings, "fixture must produce findings"

    baseline_file = tmp_path / "baseline.json"
    save_baseline(str(baseline_file), updated_entries(findings, []))
    entries = load_baseline(str(baseline_file))
    assert all(isinstance(e, BaselineEntry) for e in entries)

    match = apply_baseline(_lint(root), entries)
    assert match.new == []
    assert len(match.suppressed) == len(findings)
    assert match.stale == []


def test_baseline_only_budgets_known_counts(tmp_path):
    root = _violating_root(tmp_path)
    entries = updated_entries(_lint(root), [])
    # A second, textually identical violation exceeds the fingerprint's
    # count budget -> reported as new, not silently absorbed.
    _write_module(
        tmp_path,
        "repro/nn/mod.py",
        """
        import numpy as np
        A = np.zeros(3, dtype=float)
        A = np.zeros(3, dtype=float)
        """,
    )
    match = apply_baseline(_lint(root), entries)
    assert len(match.new) == 1
    assert len(match.suppressed) == 1


def test_baseline_reports_stale_entries_and_keeps_justifications(tmp_path):
    root = _violating_root(tmp_path)
    entries = updated_entries(_lint(root), [])
    entries = [
        BaselineEntry(
            rule=e.rule,
            path=e.path,
            line_text=e.line_text,
            count=e.count,
            justification="grandfathered",
        )
        for e in entries
    ]
    # Fix the violation: the entry goes stale.
    _write_module(tmp_path, "repro/nn/mod.py", "X = 1\n")
    match = apply_baseline(_lint(root), entries)
    assert match.new == []
    assert [e.justification for e in match.stale] == ["grandfathered"]
    # updated_entries drops stale rows but keeps live justifications.
    assert updated_entries(_lint(root), entries) == []


def test_format_text_and_json(tmp_path):
    root = _violating_root(tmp_path)
    match = apply_baseline(_lint(root), [])
    text = format_text(match)
    assert "RL001" in text and "new finding" in text
    payload = json.loads(format_json(match))
    assert payload["summary"]["new"] == len(match.new)
    assert payload["new"][0]["rule"] == "RL001"


# ----------------------------------------------------------------------
# CLI exit codes (subprocess: the real entry point)
# ----------------------------------------------------------------------


def _run_cli(*args: str, env_extra: dict | None = None):
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    env.pop("REPRO_SANITIZE", None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def test_cli_lint_exit_codes(tmp_path):
    root = _violating_root(tmp_path)
    baseline = tmp_path / "baseline.json"

    dirty = _run_cli("lint", str(root), "--baseline", str(baseline))
    assert dirty.returncode == 1
    assert "RL001" in dirty.stdout

    update = _run_cli(
        "lint", str(root), "--baseline", str(baseline), "--update-baseline"
    )
    assert update.returncode == 0
    assert baseline.exists()

    clean = _run_cli("lint", str(root), "--baseline", str(baseline))
    assert clean.returncode == 0

    as_json = _run_cli(
        "lint", str(root), "--baseline", str(baseline), "--format", "json"
    )
    assert as_json.returncode == 0
    assert json.loads(as_json.stdout)["summary"]["new"] == 0


def test_cli_lint_repo_src_is_clean():
    result = _run_cli("lint")
    assert result.returncode == 0, result.stdout + result.stderr


# ----------------------------------------------------------------------
# Kernel contracts
# ----------------------------------------------------------------------


def test_kernel_contracts_match_signatures():
    for name, contract in KERNEL_CONTRACTS.items():
        if contract.method:
            owner_name, _, attr = name.partition(".")
            func = inspect.unwrap(getattr(getattr(batching, owner_name), attr))
        else:
            func = inspect.unwrap(getattr(batching, name))
        params = tuple(inspect.signature(func).parameters)
        assert params == contract.params, name
        declared = set(
            contract.writes + contract.inout + contract.scratch
        ) | {p for pair in contract.may_alias for p in pair}
        assert declared <= set(contract.params), name
        assert isinstance(contract, KernelContract)


# ----------------------------------------------------------------------
# Runtime sanitizers
# ----------------------------------------------------------------------


def test_sanitize_enabled_env_parsing():
    assert not sanitize_enabled({})
    assert not sanitize_enabled({"REPRO_SANITIZE": ""})
    assert not sanitize_enabled({"REPRO_SANITIZE": "0"})
    assert sanitize_enabled({"REPRO_SANITIZE": "1"})
    assert sanitize_enabled({"REPRO_SANITIZE": "yes"})


def test_wrap_kernel_trips_on_forbidden_aliasing():
    contract = KERNEL_CONTRACTS["pair_linear_into"]
    wrapped = wrap_kernel(batching.pair_linear_into, contract)
    a = np.ones((2, 3))
    b = np.ones((2, 3))
    w = np.ones((6, 4))
    out = np.empty((2, 4))
    scratch = np.empty((2, 4))

    # Clean call: identical to the unwrapped kernel.
    expected = batching.pair_linear_into(a, b, w, None, out.copy(), scratch.copy())
    np.testing.assert_array_equal(wrapped(a, b, w, None, out, scratch), expected)

    with pytest.raises(SanitizerError, match="shares memory"):
        wrapped(a, b, w, None, out, out)  # scratch aliases out
    with pytest.raises(SanitizerError, match="shares memory"):
        wrapped(out, b, w, None, out, scratch)  # out aliases input a


def test_wrap_kernel_allows_exact_may_alias_but_not_partial_overlap():
    contract = KERNEL_CONTRACTS["masked_softmax_into"]
    wrapped = wrap_kernel(batching.masked_softmax_into, contract)
    logits = np.random.default_rng(0).normal(size=(2, 4))
    not_mask = np.zeros((2, 4), dtype=bool)
    buf = np.empty((2, 1))
    # Exact self-alias is contract-sanctioned (in-place softmax).
    wrapped(logits, not_mask, logits, buf)
    # Partial overlap of the same pair is never allowed.
    with pytest.raises(SanitizerError, match="shares memory"):
        wrapped(logits, not_mask, logits[:, :4][::-1], buf)


def test_wrap_kernel_trips_on_non_finite_output():
    contract = KERNEL_CONTRACTS["linear_into"]
    wrapped = wrap_kernel(batching.linear_into, contract)
    x = np.array([[np.inf, 1.0]])
    w = np.ones((2, 2))
    out = np.empty((1, 2))
    with pytest.raises(SanitizerError, match="non-finite"):
        wrapped(x, w, None, out)


_SANITIZER_E2E = """
import numpy as np
from repro.core import batching

assert batching._SANITIZE, "REPRO_SANITIZE=1 must arm the module flag"
assert getattr(batching.pair_linear_into, "__repro_sanitized__", False)
assert getattr(batching.SegmentOps.expand_into, "__repro_sanitized__", False)

# Workspace poisoning: fresh float buffers are NaN, reuse keeps contents.
ws = batching.Workspace()
buf = ws.buffer("k", (4,), np.float64)
assert np.isnan(buf).all()
buf[:] = 1.0
assert not np.isnan(ws.buffer("k", (4,), np.float64)).any()

a = np.ones((2, 3)); b = np.ones((2, 3)); w = np.ones((6, 4))
out = np.empty((2, 4)); scratch = np.empty((2, 4))
batching.pair_linear_into(a, b, w, None, out, scratch)  # clean: passes

try:
    batching.pair_linear_into(a, b, w, None, out, out)
except Exception as exc:
    assert type(exc).__name__ == "SanitizerError", exc
else:
    raise AssertionError("aliased pair_linear_into did not trip")
print("E2E-OK")
"""


def test_sanitizer_end_to_end_under_env_flag():
    result = subprocess.run(
        [sys.executable, "-c", _SANITIZER_E2E],
        capture_output=True,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "REPRO_SANITIZE": "1",
        },
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "E2E-OK" in result.stdout


def test_sanitizer_off_by_default_in_this_process():
    # This suite imports repro.core.batching without REPRO_SANITIZE, so
    # the kernels must be the raw functions: aliasing is *not* trapped.
    if batching._SANITIZE:
        pytest.skip("suite is running under REPRO_SANITIZE=1")
    assert not hasattr(batching.pair_linear_into, "__repro_sanitized__")
    ws = batching.Workspace()
    ws.buffer("k", (4,), np.float64)  # plain np.empty, no poisoning
