"""Tests of the dtype-polymorphic compute substrate (repro.nn.precision).

Three contracts are pinned here:

1. **Dtype preservation** — float32 payloads stay float32 through the
   tensor substrate, models cast cleanly with ``astype``, and every
   component's outputs carry the requested storage dtype.
2. **Fused == naive, bit for bit, at fixed dtype** — the fused
   inference kernels (preallocated buffers + ufunc ``out=``) compute
   exactly the elementwise chains of the Tensor path, at float64 *and*
   float32.
3. **float32 == float64 at the documented tolerance** — end-to-end
   allocations (forward + ADMM + acceptance) agree on delivered
   flow and MLU within 1e-4 relative across schemes and topologies.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.config import AdmmConfig, TrainingConfig
from repro.core import AdmmFineTuner, TealModel, TealScheme
from repro.core.batching import (
    SegmentOps,
    Workspace,
    csr_matmul_into,
    masked_softmax_into,
    pair_linear_into,
)
from repro.exceptions import ReproError
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.precision import (
    DEFAULT_INFERENCE_PRECISION,
    FLOAT32,
    FLOAT64,
    Precision,
    resolve_precision,
)
from repro.nn.tensor import Parameter, Tensor
from repro.simulation.evaluator import evaluate_allocations_batch

#: Documented float32-vs-float64 relative tolerance on allocation
#: quality (delivered flow, MLU) — see README "Precision & performance".
PARITY_RTOL = 1e-4


# ----------------------------------------------------------------------
# The Precision policy object
# ----------------------------------------------------------------------
class TestPrecisionPolicy:
    def test_dtypes(self):
        assert FLOAT32.dtype == np.float32
        assert FLOAT64.dtype == np.float64
        assert FLOAT32.accumulate_dtype == np.float64
        assert FLOAT32.itemsize == 4 and FLOAT64.itemsize == 8

    def test_resolve(self):
        assert resolve_precision(None) is FLOAT64
        assert resolve_precision(None, default="float32") == FLOAT32
        assert resolve_precision("float32") == FLOAT32
        assert resolve_precision(FLOAT32) is FLOAT32
        assert resolve_precision(np.float32) == FLOAT32
        assert resolve_precision(np.dtype(np.float64)) == FLOAT64

    def test_unknown_precision_rejected(self):
        with pytest.raises(ReproError):
            Precision("float16")
        with pytest.raises(ReproError):
            resolve_precision("bfloat16")

    def test_hashable_for_cache_keys(self):
        assert hash(Precision("float32")) == hash(FLOAT32)
        assert len({FLOAT32, FLOAT64, Precision("float32")}) == 2

    def test_inference_default_is_float32(self):
        assert DEFAULT_INFERENCE_PRECISION == FLOAT32


# ----------------------------------------------------------------------
# Dtype preservation in the tensor substrate
# ----------------------------------------------------------------------
class TestTensorDtype:
    def test_payload_dtype_preserved(self):
        assert Tensor(np.ones(3, dtype=np.float32)).data.dtype == np.float32
        assert Tensor(np.ones(3, dtype=np.float64)).data.dtype == np.float64
        # Non-float payloads still convert to the float64 default.
        assert Tensor([1, 2, 3]).data.dtype == np.float64
        assert Tensor(np.arange(3)).data.dtype == np.float64

    def test_ops_preserve_float32(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        y = F.tanh(x * 2.0 + 1.0)
        assert y.data.dtype == np.float32
        z = F.softmax(y, axis=-1)
        assert z.data.dtype == np.float32

    def test_numpy_scalars_stay_strong(self):
        """Only *Python* scalars are weak: a float64 numpy scalar (which
        subclasses float) must promote a float32 tensor, not be rounded
        into it (NEP 50 semantics)."""
        x = Tensor(np.ones(3, dtype=np.float32))
        y = x * np.float64(1e40)
        assert y.data.dtype == np.float64
        assert np.all(np.isfinite(y.data))
        z = x * np.float32(2.0)
        assert z.data.dtype == np.float32

    def test_backward_grad_dtype_follows_data(self):
        x = Parameter(np.ones((2, 3), dtype=np.float32))
        loss = (F.relu(x * 3.0)).sum()
        loss.backward()
        assert x.grad is not None
        assert x.grad.dtype == np.float32

    def test_module_astype_roundtrip(self):
        layer = Linear(4, 2)
        layer.astype(np.float32)
        assert layer.weight.data.dtype == np.float32
        assert layer.dtype == np.float32
        out = layer(Tensor(np.ones((5, 4), dtype=np.float32)))
        assert out.data.dtype == np.float32
        layer.astype(np.float64)
        assert layer.dtype == np.float64


# ----------------------------------------------------------------------
# Fused kernels == naive elementwise chains (bit-for-bit, fixed dtype)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
class TestFusedKernels:
    def test_pair_linear_into_matches_functional(self, dtype):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 7, 4)).astype(dtype)
        b = rng.normal(size=(3, 7, 5)).astype(dtype)
        w = rng.normal(size=(9, 6)).astype(dtype)
        bias = rng.normal(size=6).astype(dtype)
        out = np.empty((3, 7, 6), dtype=dtype)
        scratch = np.empty_like(out)
        pair_linear_into(a, b, w, bias, out, scratch)
        reference = F.pair_linear(Tensor(a), Tensor(b), Tensor(w), Tensor(bias))
        assert out.dtype == dtype
        assert np.array_equal(out, reference.numpy())

    def test_masked_softmax_into_matches_functional(self, dtype):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 4)).astype(dtype)
        mask = rng.random(size=(5, 4)) > 0.3
        mask[:, 0] = True  # no all-masked rows
        out = logits.copy()
        reduce_buf = np.empty((5, 1), dtype=dtype)
        masked_softmax_into(logits.copy(), ~mask, out, reduce_buf)
        reference = F.softmax(Tensor(logits), axis=-1, mask=mask)
        assert out.dtype == dtype
        assert np.array_equal(out, reference.numpy())

    def test_csr_matmul_into_matches_product(self, dtype):
        rng = np.random.default_rng(2)
        dense_full = (rng.random((6, 8)) < 0.4) * rng.normal(size=(6, 8))
        csr = sp.csr_matrix(dense_full.astype(dtype))
        x = rng.normal(size=(8, 3)).astype(dtype)
        out = np.empty((6, 3), dtype=dtype)
        csr_matmul_into(csr, x, out)
        assert np.array_equal(out, csr @ x)
        # Batched operand: one call per batch row, still bit-identical.
        xb = rng.normal(size=(4, 8, 3)).astype(dtype)
        outb = np.empty((4, 6, 3), dtype=dtype)
        csr_matmul_into(csr, xb, outb)
        expected = np.stack([csr @ xb[i] for i in range(4)])
        assert np.array_equal(outb, expected)

    def test_model_fused_equals_naive(self, dtype, b4_pathset, b4_trace):
        model = TealModel(b4_pathset, seed=3).astype(dtype)
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace[:4]]
        )
        naive = model.split_ratios_batch(demands, fused=False)
        fused = model.split_ratios_batch(demands, fused=True)
        assert fused.dtype == dtype
        assert np.array_equal(naive, fused)
        one_naive = model.split_ratios(demands[2], fused=False)
        one_fused = model.split_ratios(demands[2], fused=True)
        assert np.array_equal(one_naive, one_fused)

    def test_fused_forward_reuses_buffers(self, dtype, b4_pathset, b4_trace):
        model = TealModel(b4_pathset, seed=0).astype(dtype)
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace[:3]]
        )
        first = model.split_ratios_batch(demands)
        count = model.flow_gnn.workspace.num_buffers
        again = model.split_ratios_batch(demands)
        assert model.flow_gnn.workspace.num_buffers == count
        # Reused buffers must not alias the returned allocations.
        assert np.array_equal(first, again)
        assert first is not again


class TestWorkspace:
    def test_buffer_identity_and_rekeying(self):
        ws = Workspace()
        a = ws.buffer("x", (3, 2), np.float64)
        assert ws.buffer("x", (3, 2), np.float64) is a
        b = ws.buffer("x", (3, 2), np.float32)  # dtype switch reallocates
        assert b is not a and b.dtype == np.float32
        ws.clear()
        assert ws.num_buffers == 0

    def test_total_bytes(self):
        ws = Workspace()
        ws.buffer("x", (4,), np.float32)
        assert ws.total_bytes == 16


class TestSegmentOpsDtype:
    def test_sum_storage_dtype(self):
        ops = SegmentOps(np.array([0, 1, 0, 2]), 3)
        weights = np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        default = ops.sum(weights)
        assert default.dtype == np.float64  # historic behaviour
        stored = ops.sum(weights, dtype=np.float32)
        assert stored.dtype == np.float32
        assert np.array_equal(stored.astype(np.float64), default)

    def test_max_dtype_follows_values(self):
        ops = SegmentOps(np.array([0, 0, 1]), 2)
        values = np.array([[1.0, 5.0, 2.0]], dtype=np.float32)
        assert ops.max(values).dtype == np.float32
        assert ops.max(values, dtype=np.float64).dtype == np.float64


# ----------------------------------------------------------------------
# ADMM precision
# ----------------------------------------------------------------------
class TestAdmmPrecision:
    def test_single_tm_delegates_to_batch(self, b4_pathset, b4_demands):
        model = TealModel(b4_pathset, seed=1)
        ratios = model.split_ratios(b4_demands)
        tuner = AdmmFineTuner(b4_pathset, AdmmConfig(iterations=6))
        single = tuner.fine_tune(ratios, b4_demands)
        batch = tuner.fine_tune_batch(ratios[None], b4_demands[None])
        assert np.array_equal(single, batch[0])

    def test_float32_output_dtype(self, b4_pathset, b4_demands):
        model = TealModel(b4_pathset, seed=1)
        ratios = model.split_ratios(b4_demands)
        tuner = AdmmFineTuner(
            b4_pathset, AdmmConfig(iterations=6), precision="float32"
        )
        out = tuner.fine_tune(ratios, b4_demands)
        assert out.dtype == np.float32

    def test_float32_quality_parity(self, b4_pathset, b4_trace):
        model = TealModel(b4_pathset, seed=2)
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace[:4]]
        )
        ratios = model.split_ratios_batch(demands)
        caps = b4_pathset.topology.capacities
        t64 = AdmmFineTuner(b4_pathset, AdmmConfig(iterations=12))
        t32 = AdmmFineTuner(
            b4_pathset, AdmmConfig(iterations=12), precision="float32"
        )
        r64 = evaluate_allocations_batch(
            b4_pathset, t64.fine_tune_batch(ratios, demands), demands, caps
        )
        r32 = evaluate_allocations_batch(
            b4_pathset,
            t32.fine_tune_batch(ratios, demands).astype(float),
            demands,
            caps,
        )
        np.testing.assert_allclose(
            r32.delivered_total, r64.delivered_total, rtol=PARITY_RTOL
        )
        np.testing.assert_allclose(
            r32.max_link_utilization,
            r64.max_link_utilization,
            rtol=PARITY_RTOL,
        )


# ----------------------------------------------------------------------
# Scheme-level float32 vs float64 parity (forward + ADMM + acceptance)
# ----------------------------------------------------------------------
_LITE = TrainingConfig(steps=4, warm_start_steps=40, log_every=20)


def _parity_case(pathset, trace, objective, use_admm):
    """Train float64 and float32 twins and compare allocation quality."""
    matrices = list(trace[:8])
    demands = np.stack(
        [pathset.demand_volumes(m.values) for m in trace[8:12]]
    )
    schemes = {}
    for precision in ("float64", "float32"):
        scheme = TealScheme(
            pathset,
            objective=objective,
            admm=AdmmConfig(iterations=8),
            seed=0,
            use_admm=use_admm,
            precision=precision,
        )
        scheme.train(matrices, config=_LITE)
        schemes[precision] = scheme
    caps = pathset.topology.capacities
    reports = {}
    for precision, scheme in schemes.items():
        allocations = scheme.allocate_batch(pathset, demands)
        ratios = np.stack([a.split_ratios for a in allocations]).astype(float)
        reports[precision] = evaluate_allocations_batch(
            pathset, ratios, demands, caps
        )
    return reports["float64"], reports["float32"]


class TestSchemePrecisionParity:
    @pytest.mark.parametrize("fixture", ["b4_pathset", "small_swan_pathset"])
    @pytest.mark.parametrize(
        "objective_name,use_admm",
        [("total_flow", True), ("min_mlu", False)],
    )
    def test_float32_matches_float64(
        self, request, fixture, objective_name, use_admm
    ):
        """Schemes x topologies: quality parity at the documented rtol."""
        from repro.lp.objectives import get_objective
        from repro.traffic import TrafficTrace

        pathset = request.getfixturevalue(fixture)
        trace = TrafficTrace.generate(
            pathset.topology.num_nodes, 12, seed=17
        )
        r64, r32 = _parity_case(
            pathset, trace, get_objective(objective_name), use_admm
        )
        np.testing.assert_allclose(
            r32.delivered_total, r64.delivered_total, rtol=PARITY_RTOL
        )
        np.testing.assert_allclose(
            r32.max_link_utilization,
            r64.max_link_utilization,
            rtol=PARITY_RTOL,
        )

    def test_training_stays_float64_cast_is_lazy(self, b4_pathset, b4_trace):
        scheme = TealScheme(b4_pathset, seed=0, precision="float32")
        scheme.train(
            list(b4_trace[:4]),
            config=TrainingConfig(steps=2, warm_start_steps=4, log_every=10),
        )
        # Post-training the weights are still full precision (this is
        # what the harness' on-disk checkpoints store)...
        assert scheme.model.dtype == np.float64
        demands = b4_pathset.demand_volumes(b4_trace[5].values)
        allocation = scheme.allocate(b4_pathset, demands)
        # ...and the first inference call casts to the scheme precision.
        assert scheme.model.dtype == np.float32
        assert allocation.split_ratios.dtype == np.float32

    def test_precision_round_trip_is_lossless(self, b4_pathset, b4_demands):
        """float64 -> float32 -> float64 restores the exact weights and
        aggregation matrices (the float64 masters are stashed), so an
        inference cast never perturbs later training."""
        model = TealModel(b4_pathset, seed=4)
        reference_params = [p.data.copy() for p in model.parameters()]
        reference_scale = model.flow_gnn.edge_scale.copy()
        reference_out = model.split_ratios(b4_demands)

        model.astype(np.float32).astype(np.float64)
        for p, ref in zip(model.parameters(), reference_params):
            assert p.data.dtype == np.float64
            assert np.array_equal(p.data, ref)
        assert np.array_equal(model.flow_gnn.edge_scale, reference_scale)
        assert np.array_equal(model.split_ratios(b4_demands), reference_out)

    def test_transfer_weights_preserves_target_dtype(self, b4_pathset):
        """A float32-cast donor must not turn a float64 target into a
        mixed-precision model (regression for the astype early-return)."""
        from repro.core import transfer_weights

        donor = TealModel(b4_pathset, seed=0).astype(np.float32)
        target = TealModel(b4_pathset, seed=1)
        transfer_weights(donor, target)
        assert all(p.data.dtype == np.float64 for p in target.parameters())
        assert target.dtype == np.float64
        assert target.flow_gnn.edge_agg.dtype == np.float64
        # And astype still repairs a model cast out-of-band.
        for p in target.parameters():
            p.data = p.data.astype(np.float32)
        target.astype(np.float64)
        assert all(p.data.dtype == np.float64 for p in target.parameters())

    def test_allocate_batch_matches_allocate_at_float32(
        self, b4_pathset, b4_trace
    ):
        scheme = TealScheme(
            b4_pathset, seed=0, precision="float32",
            admm=AdmmConfig(iterations=4),
        )
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace[:3]]
        )
        batched = scheme.allocate_batch(b4_pathset, demands)
        for t in range(3):
            single = scheme.allocate(b4_pathset, demands[t])
            np.testing.assert_allclose(
                batched[t].split_ratios, single.split_ratios, atol=1e-6
            )


# ----------------------------------------------------------------------
# Parity at Kdl-class scale (where the (T, I) ADMM arrays dominate)
# ----------------------------------------------------------------------
class TestKdlScaleParity:
    """float32 vs float64 on a Kdl-class carrier backbone.

    The small-topology parity cases above leave the fused kernels'
    accumulation behaviour mostly untested at the sizes where the win
    matters: on a Kdl-class instance the (T, I) ADMM iterates (I ≈
    thousands of path variables) dominate the compute, and rounding
    error compounds across far more segment-sum terms than on B4. This
    pins the documented 1e-4 relative tolerance at that scale, through
    the full float32 inference chain (fused forward + single-precision
    ADMM with float64-accumulated segment sums).
    """

    @pytest.fixture(scope="class")
    def kdl_case(self):
        from repro.harness import BENCH_SCALES
        from repro.paths import PathSet
        from repro.topology.generators import kdl
        from repro.traffic import TrafficTrace

        topology = kdl(scale=BENCH_SCALES["Kdl"], seed=2)
        pathset = PathSet.from_topology(topology, max_pairs=300, seed=5)
        trace = TrafficTrace.generate(topology.num_nodes, 4, seed=11)
        demands = np.stack(
            [pathset.demand_volumes(m.values) for m in trace]
        )
        return pathset, demands

    def test_instance_is_kdl_class(self, kdl_case):
        """The case really is beyond the small parity topologies."""
        pathset, _ = kdl_case
        assert pathset.topology.num_nodes >= 60
        assert pathset.num_paths >= 1000  # the ADMM I axis

    def test_fused_forward_parity_at_scale(self, kdl_case):
        pathset, demands = kdl_case
        model64 = TealModel(pathset, seed=3)
        model32 = TealModel(pathset, seed=3).astype(np.float32)
        ratios64 = model64.split_ratios_batch(demands)
        ratios32 = model32.split_ratios_batch(demands).astype(np.float64)
        caps = pathset.topology.capacities
        r64 = evaluate_allocations_batch(pathset, ratios64, demands, caps)
        r32 = evaluate_allocations_batch(pathset, ratios32, demands, caps)
        np.testing.assert_allclose(
            r32.delivered_total, r64.delivered_total, rtol=PARITY_RTOL
        )
        np.testing.assert_allclose(
            r32.max_link_utilization,
            r64.max_link_utilization,
            rtol=PARITY_RTOL,
        )

    def test_forward_plus_admm_parity_at_scale(self, kdl_case):
        """The full inference chain (forward + ADMM repair) at each
        precision agrees on delivered flow and MLU within tolerance."""
        pathset, demands = kdl_case
        config = AdmmConfig(iterations=12)
        caps = pathset.topology.capacities

        model64 = TealModel(pathset, seed=3)
        tuned64 = AdmmFineTuner(pathset, config).fine_tune_batch(
            model64.split_ratios_batch(demands), demands
        )
        model32 = TealModel(pathset, seed=3).astype(np.float32)
        tuned32 = AdmmFineTuner(
            pathset, config, precision="float32"
        ).fine_tune_batch(model32.split_ratios_batch(demands), demands)
        assert tuned32.dtype == np.float32

        r64 = evaluate_allocations_batch(pathset, tuned64, demands, caps)
        r32 = evaluate_allocations_batch(
            pathset, tuned32.astype(np.float64), demands, caps
        )
        np.testing.assert_allclose(
            r32.delivered_total, r64.delivered_total, rtol=PARITY_RTOL
        )
        np.testing.assert_allclose(
            r32.max_link_utilization,
            r64.max_link_utilization,
            rtol=PARITY_RTOL,
        )


# ----------------------------------------------------------------------
# Precision through the sweep grid spec
# ----------------------------------------------------------------------
class TestSuitePrecision:
    def test_default_and_roundtrip(self):
        from repro.sweep import ScenarioSuite

        suite = ScenarioSuite(topologies=("B4",))
        assert suite.precision == "float32"
        explicit = ScenarioSuite(topologies=("B4",), precision="float64")
        assert ScenarioSuite.from_dict(explicit.to_dict()) == explicit

    def test_invalid_precision_rejected(self):
        from repro.sweep import ScenarioSuite

        with pytest.raises(ReproError):
            ScenarioSuite(topologies=("B4",), precision="float16")
