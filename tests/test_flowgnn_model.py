"""Tests for FlowGNN, the policy network, and TealModel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TealHyperparameters
from repro.core import (
    ActionHead,
    FlowGNN,
    PolicyNetwork,
    TealModel,
    grid_scatter_index,
)
from repro.exceptions import ModelError
from repro.nn import Tensor


class TestFlowGNN:
    def test_embedding_dim_equals_layers(self, b4_pathset):
        gnn = FlowGNN(b4_pathset, num_layers=6)
        assert gnn.embedding_dim == 6

    def test_forward_shapes(self, b4_pathset, b4_demands):
        gnn = FlowGNN(b4_pathset, num_layers=4)
        emb = gnn(b4_demands, b4_pathset.topology.capacities)
        assert emb.shape == (b4_pathset.num_paths, 4)

    def test_grouped_embeddings_shape(self, b4_pathset, b4_demands):
        gnn = FlowGNN(b4_pathset, num_layers=3)
        emb = gnn(b4_demands, b4_pathset.topology.capacities)
        grouped = gnn.grouped_embeddings(emb)
        assert grouped.shape == (b4_pathset.num_demands, 4 * 3)

    def test_embeddings_depend_on_demands(self, b4_pathset, b4_demands):
        gnn = FlowGNN(b4_pathset, num_layers=3)
        caps = b4_pathset.topology.capacities
        a = gnn(b4_demands, caps).numpy()
        b = gnn(b4_demands * 2.0, caps).numpy()
        assert not np.allclose(a, b)

    def test_embeddings_depend_on_capacities(self, b4_pathset, b4_demands):
        gnn = FlowGNN(b4_pathset, num_layers=3)
        caps = b4_pathset.topology.capacities
        a = gnn(b4_demands, caps).numpy()
        failed = caps.copy()
        failed[:4] = 0.0
        b = gnn(b4_demands, failed).numpy()
        assert not np.allclose(a, b)

    def test_gradient_flows_to_all_layers(self, b4_pathset, b4_demands):
        gnn = FlowGNN(b4_pathset, num_layers=2)
        emb = gnn(b4_demands, b4_pathset.topology.capacities)
        emb.sum().backward()
        for p in gnn.parameters():
            assert p.grad is not None

    def test_invalid_layer_count(self, b4_pathset):
        with pytest.raises(ModelError):
            FlowGNN(b4_pathset, num_layers=0)

    def test_shape_validation(self, b4_pathset):
        gnn = FlowGNN(b4_pathset, num_layers=2)
        with pytest.raises(ModelError):
            gnn(np.ones(3), b4_pathset.topology.capacities)
        with pytest.raises(ModelError):
            gnn(np.ones(b4_pathset.num_demands), np.ones(3))


class TestPolicy:
    def test_logits_shape(self):
        policy = PolicyNetwork(input_dim=24, num_paths=4)
        out = policy(Tensor(np.zeros((7, 24))))
        assert out.shape == (7, 4)

    def test_split_ratios_masked(self):
        head = ActionHead(num_paths=4)
        logits = Tensor(np.zeros((2, 4)))
        mask = np.array([[True] * 4, [True, True, False, False]])
        ratios = head.split_ratios(logits, mask)
        assert np.allclose(ratios.data[0], 0.25)
        assert np.allclose(ratios.data[1], [0.5, 0.5, 0.0, 0.0])

    def test_sampling_uses_log_std(self):
        head = ActionHead(num_paths=4, action_log_std=-10.0)  # ~deterministic
        logits = Tensor(np.ones((5, 4)))
        rng = np.random.default_rng(0)
        actions = head.sample_actions(logits, rng)
        assert np.allclose(actions, 1.0, atol=1e-3)

    def test_log_prob_highest_at_mean(self):
        head = ActionHead(num_paths=2)
        logits = Tensor(np.zeros((1, 2)))
        at_mean = head.log_prob(logits, np.zeros((1, 2))).item()
        off_mean = head.log_prob(logits, np.ones((1, 2))).item()
        assert at_mean > off_mean

    def test_hidden_layer_validation(self):
        with pytest.raises(ModelError):
            PolicyNetwork(input_dim=24, num_paths=4, num_hidden_layers=0)


class TestTealModel:
    def test_ratio_rows_are_distributions(self, b4_pathset, b4_demands):
        model = TealModel(b4_pathset)
        ratios = model.split_ratios(b4_demands)
        assert ratios.shape == (b4_pathset.num_demands, 4)
        assert np.all(ratios >= 0)
        assert np.allclose(ratios.sum(axis=1), 1.0)

    def test_paper_hyperparameters(self, b4_pathset):
        model = TealModel(b4_pathset)
        assert model.flow_gnn.num_layers == 6
        assert model.flow_gnn.embedding_dim == 6
        hyper = TealHyperparameters()
        assert hyper.embedding_dim == 6
        assert hyper.policy_input_dim == 24

    def test_deterministic_given_seed(self, b4_pathset, b4_demands):
        a = TealModel(b4_pathset, seed=1).split_ratios(b4_demands)
        b = TealModel(b4_pathset, seed=1).split_ratios(b4_demands)
        assert np.allclose(a, b)
        c = TealModel(b4_pathset, seed=2).split_ratios(b4_demands)
        assert not np.allclose(a, c)

    def test_check_compatible(self, b4_pathset, small_swan_pathset):
        model = TealModel(b4_pathset)
        model.check_compatible(b4_pathset)
        with pytest.raises(ModelError):
            model.check_compatible(small_swan_pathset)

    def test_flow_embeddings_shape(self, b4_pathset, b4_demands):
        model = TealModel(b4_pathset)
        emb = model.flow_embeddings(b4_demands)
        assert emb.shape == (b4_pathset.num_paths, 6)

    def test_scatter_index_roundtrip(self, b4_pathset):
        scatter = grid_scatter_index(b4_pathset)
        grid = b4_pathset.demand_path_ids.reshape(-1)
        for pid in range(0, b4_pathset.num_paths, 50):
            assert grid[scatter[pid]] == pid

    def test_fixed_computation_independent_of_values(self, b4_pathset):
        """Flop count is input-independent — the basis of Figure 7a.

        We verify the weaker observable property: wildly different inputs
        produce outputs of identical shape through an identical graph.
        """
        model = TealModel(b4_pathset)
        tiny = model.split_ratios(np.full(b4_pathset.num_demands, 1e-6))
        huge = model.split_ratios(np.full(b4_pathset.num_demands, 1e6))
        assert tiny.shape == huge.shape
