"""End-to-end integration tests of the paper's headline shapes.

Miniature versions of the benchmark assertions so that ``pytest tests/``
alone validates the reproduction's qualitative claims (the benchmarks
re-check them at larger scale with timing).
"""

from __future__ import annotations

import pytest

from repro.config import TrainingConfig
from repro.harness import (
    build_scenario,
    make_baselines,
    run_offline_comparison,
    run_online_comparison,
    scaled_te_interval,
    trained_teal,
)

_BUDGET = TrainingConfig(steps=20, warm_start_steps=120, log_every=60, failure_rate=0.2)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        "SWAN", scale=0.18, train=16, validation=4, test=6, max_pairs=306
    )


@pytest.fixture(scope="module")
def runs(scenario):
    schemes = dict(make_baselines(scenario))
    schemes["Teal"] = trained_teal(scenario, config=_BUDGET)
    return run_offline_comparison(
        scenario, schemes, matrices=scenario.split.test[:3]
    ), schemes


class TestHeadlineShapes:
    def test_lp_all_is_offline_optimal(self, runs):
        results, _ = runs
        best = max(r.mean_satisfied for r in results.values())
        assert results["LP-all"].mean_satisfied >= best - 1e-9

    def test_teal_beats_decomposition_baselines(self, runs, scenario):
        results, _ = runs
        assert results["Teal"].mean_satisfied >= results["NCFlow"].mean_satisfied
        # The harness POP follows the §5.1 replica table, which gives SWAN
        # a single replica — no decomposition, exactly LP-all. Build a POP
        # that actually decomposes for this shape check.
        from repro.baselines import Pop

        pop = run_offline_comparison(
            scenario,
            {"POP-2": Pop(num_replicas=2, seed=scenario.seed)},
            matrices=scenario.split.test[:3],
        )["POP-2"]
        assert results["Teal"].mean_satisfied >= pop.mean_satisfied - 0.05

    def test_teal_faster_than_lp_schemes(self, runs):
        results, _ = runs
        assert (
            results["Teal"].mean_compute_time
            < results["LP-all"].mean_compute_time
        )
        assert (
            results["Teal"].mean_compute_time
            < results["LP-top"].mean_compute_time
        )

    def test_teal_near_optimal(self, runs):
        results, _ = runs
        assert (
            results["Teal"].mean_satisfied
            >= results["LP-all"].mean_satisfied - 0.2
        )

    def test_teal_runtime_stable(self, runs):
        """Figure 7a's shape: Teal's compute time barely varies."""
        results, _ = runs
        teal = results["Teal"]
        spread = teal.time_percentile(100) / max(teal.time_percentile(0), 1e-9)
        assert spread < 5.0

    def test_online_staleness_penalizes_lp_all(self, runs, scenario):
        """Figure 18's mechanism at miniature scale."""
        results, schemes = runs
        interval = scaled_te_interval(results)
        online = run_online_comparison(
            scenario,
            {"Teal": schemes["Teal"], "LP-all": schemes["LP-all"]},
            interval_seconds=interval,
            matrices=scenario.split.test,
        )
        assert online["Teal"].stale_fraction == 0.0
        assert online["LP-all"].stale_fraction > 0.0
        # Online, fresh Teal closes (or flips) the offline quality gap.
        offline_gap = (
            results["LP-all"].mean_satisfied - results["Teal"].mean_satisfied
        )
        online_gap = (
            online["LP-all"].mean_satisfied - online["Teal"].mean_satisfied
        )
        assert online_gap <= offline_gap + 0.02

    def test_failure_reaction_without_retraining(self, runs, scenario):
        """§5.3: capacity-only reaction keeps most of the demand."""
        results, schemes = runs
        teal = schemes["Teal"]
        caps = scenario.capacities.copy()
        caps[: max(2, len(caps) // 20)] = 0.0
        matrix = scenario.split.test[0]
        demands = scenario.demands(matrix)
        allocation = teal.allocate(scenario.pathset, demands, caps)
        from repro.simulation import evaluate_allocation

        report = evaluate_allocation(
            scenario.pathset, allocation.split_ratios, demands, caps
        )
        nominal = results["Teal"].mean_satisfied
        assert report.satisfied_fraction >= 0.5 * nominal
