"""Tests for LRU cache eviction (``repro.cache`` + ``cache prune`` CLI)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache import (
    CacheEntry,
    atomic_write_json,
    cache_entries,
    entry_schema_version,
    expected_schema_version,
    parse_size,
    prune_cache_dir,
    stale_entries,
    touch,
)
from repro.cli import main
from repro.exceptions import ReproError


def _make_entry(cache_dir, name: str, size: int, mtime: float):
    path = cache_dir / name
    path.write_bytes(b"x" * size)
    os.utime(path, (mtime, mtime))
    return path


class TestParseSize:
    def test_plain_and_suffixed(self):
        assert parse_size(123) == 123
        assert parse_size("123") == 123
        assert parse_size("64K") == 64 * 1024
        assert parse_size("64KB") == 64 * 1024
        assert parse_size("500m") == 500 * 1024**2
        assert parse_size("2G") == 2 * 1024**3
        assert parse_size("1.5M") == int(1.5 * 1024**2)
        assert parse_size("0") == 0

    def test_rejects_garbage_and_negatives(self):
        with pytest.raises(ReproError, match="unparseable cache size"):
            parse_size("lots")
        with pytest.raises(ReproError, match="non-negative"):
            parse_size("-1")
        with pytest.raises(ReproError, match="non-negative"):
            parse_size(-1)


class TestCacheEntries:
    def test_lru_order_and_prefix_filtering(self, tmp_path):
        _make_entry(tmp_path, "scenario-aa.npz", 10, 300.0)
        _make_entry(tmp_path, "teal-bb.npz", 20, 100.0)
        _make_entry(tmp_path, "teal-cc.npz", 30, 200.0)
        _make_entry(tmp_path, "unrelated.npz", 99, 50.0)  # not ours
        _make_entry(tmp_path, "scenario-dd.txt", 99, 50.0)  # wrong suffix
        entries = cache_entries(tmp_path)
        assert [e.path.name for e in entries] == [
            "teal-bb.npz", "teal-cc.npz", "scenario-aa.npz",
        ]
        assert [e.bytes for e in entries] == [20, 30, 10]
        assert all(isinstance(e, CacheEntry) for e in entries)

    def test_mtime_ties_break_by_name(self, tmp_path):
        _make_entry(tmp_path, "teal-b.npz", 1, 100.0)
        _make_entry(tmp_path, "teal-a.npz", 1, 100.0)
        entries = cache_entries(tmp_path)
        assert [e.path.name for e in entries] == ["teal-a.npz", "teal-b.npz"]

    def test_missing_dir_is_empty(self, tmp_path):
        assert cache_entries(tmp_path / "absent") == []


class TestPruneCacheDir:
    def test_evicts_oldest_first_down_to_budget(self, tmp_path):
        old = _make_entry(tmp_path, "teal-old.npz", 40, 100.0)
        mid = _make_entry(tmp_path, "scenario-mid.npz", 40, 200.0)
        new = _make_entry(tmp_path, "teal-new.npz", 40, 300.0)
        removed = prune_cache_dir(tmp_path, 100)
        assert removed == [old]
        assert not old.exists() and mid.exists() and new.exists()

    def test_touch_refreshes_lru_recency(self, tmp_path):
        a = _make_entry(tmp_path, "teal-a.npz", 40, 100.0)
        b = _make_entry(tmp_path, "teal-b.npz", 40, 200.0)
        touch(a)  # a was just read: b becomes the eviction candidate
        removed = prune_cache_dir(tmp_path, 50)
        assert removed == [b]
        assert a.exists() and not b.exists()

    def test_zero_budget_empties_string_sizes_parse(self, tmp_path):
        _make_entry(tmp_path, "teal-a.npz", 10, 100.0)
        _make_entry(tmp_path, "scenario-b.npz", 10, 200.0)
        removed = prune_cache_dir(tmp_path, "0")
        assert len(removed) == 2
        assert cache_entries(tmp_path) == []

    def test_under_budget_removes_nothing(self, tmp_path):
        _make_entry(tmp_path, "teal-a.npz", 10, 100.0)
        assert prune_cache_dir(tmp_path, "1K") == []

    def test_dry_run_reports_without_deleting(self, tmp_path):
        a = _make_entry(tmp_path, "teal-a.npz", 40, 100.0)
        removed = prune_cache_dir(tmp_path, 0, dry_run=True)
        assert removed == [a]
        assert a.exists()

    def test_missing_dir_is_noop(self, tmp_path):
        assert prune_cache_dir(tmp_path / "absent", 0) == []


def _grid_entry(cache_dir, name: str, version):
    path = cache_dir / name
    atomic_write_json(path, {"version": version, "cell": {}})
    return path


class TestSchemaVersions:
    def test_expected_versions_per_prefix(self, tmp_path):
        from repro.core.checkpoint import CHECKPOINT_FORMAT
        from repro.harness import SCENARIO_CACHE_FORMAT
        from repro.sweep.checkpoint import GRID_CHECKPOINT_VERSION

        assert expected_schema_version("scenario-x.npz") == SCENARIO_CACHE_FORMAT
        assert expected_schema_version("teal-x.npz") == CHECKPOINT_FORMAT
        assert (
            expected_schema_version("gridcell-x.json")
            == GRID_CHECKPOINT_VERSION
        )
        assert (
            expected_schema_version("gridmanifest-x.json")
            == GRID_CHECKPOINT_VERSION
        )

    def test_json_entry_versions(self, tmp_path):
        current = _grid_entry(tmp_path, "gridcell-a.json", 1)
        unstamped = tmp_path / "gridcell-b.json"
        atomic_write_json(unstamped, {"cell": {}})
        corrupt = tmp_path / "gridcell-c.json"
        corrupt.write_text("{broken")
        nondict = tmp_path / "gridcell-d.json"
        nondict.write_text("[1, 2]")
        assert entry_schema_version(current) == 1
        assert entry_schema_version(unstamped) == 0
        assert entry_schema_version(corrupt) is None
        assert entry_schema_version(nondict) is None

    def test_npz_entry_versions(self, tmp_path):
        import json

        import numpy as np

        from repro.harness import SCENARIO_CACHE_FORMAT

        scenario = tmp_path / "scenario-a.npz"
        with open(scenario, "wb") as handle:
            np.savez(
                handle,
                meta=json.dumps({"format": SCENARIO_CACHE_FORMAT}),
            )
        assert entry_schema_version(scenario) == SCENARIO_CACHE_FORMAT
        teal_unstamped = tmp_path / "teal-a.npz"
        with open(teal_unstamped, "wb") as handle:
            np.savez(handle, weights=np.zeros(2))
        assert entry_schema_version(teal_unstamped) == 0
        teal_bad = tmp_path / "teal-b.npz"
        teal_bad.write_bytes(b"not a zip")
        assert entry_schema_version(teal_bad) is None

    def test_stale_entries_finds_only_mismatches(self, tmp_path):
        from repro.sweep.checkpoint import GRID_CHECKPOINT_VERSION

        fresh = _grid_entry(
            tmp_path, "gridcell-fresh.json", GRID_CHECKPOINT_VERSION
        )
        old = _grid_entry(tmp_path, "gridcell-old.json", 0)
        corrupt = tmp_path / "gridmanifest-bad.json"
        corrupt.write_text("{broken")
        _make_entry(tmp_path, "unrelated.json", 5, 100.0)  # not ours
        stale = {entry.path for entry in stale_entries(tmp_path)}
        assert stale == {old, corrupt}
        assert fresh not in stale


class TestCliCachePrune:
    def test_prune_end_to_end(self, tmp_path, capsys):
        _make_entry(tmp_path, "teal-old.npz", 40, 100.0)
        keep = _make_entry(tmp_path, "teal-new.npz", 40, 200.0)
        rc = main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", "50"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "teal-old.npz" in out
        assert "removed 1 entry" in out
        assert keep.exists()

    def test_dry_run_keeps_files(self, tmp_path, capsys):
        a = _make_entry(tmp_path, "scenario-a.npz", 40, 100.0)
        rc = main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", "0", "--dry-run"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "would remove" in out
        assert a.exists()

    def test_bad_size_is_a_clean_error(self, tmp_path, capsys):
        rc = main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", "lots"]
        )
        assert rc == 2
        assert "unparseable cache size" in capsys.readouterr().err

    def test_no_action_flags_is_an_error(self, tmp_path, capsys):
        rc = main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_stale_entries_reported_without_eviction(self, tmp_path, capsys):
        stale = _grid_entry(tmp_path, "gridcell-old.json", 0)
        rc = main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", "1G"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "stale schema version" in out
        assert "--evict-stale" in out
        assert stale.exists()

    def test_evict_stale_removes_only_stale_entries(self, tmp_path, capsys):
        from repro.sweep.checkpoint import GRID_CHECKPOINT_VERSION

        stale = _grid_entry(tmp_path, "gridcell-old.json", 0)
        fresh = _grid_entry(
            tmp_path, "gridcell-new.json", GRID_CHECKPOINT_VERSION
        )
        rc = main(
            ["cache", "prune", "--cache-dir", str(tmp_path), "--evict-stale"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "gridcell-old.json" in out
        assert not stale.exists()
        assert fresh.exists()

    def test_evict_stale_dry_run_keeps_files(self, tmp_path, capsys):
        stale = _grid_entry(tmp_path, "gridcell-old.json", 0)
        rc = main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--evict-stale", "--dry-run"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "would remove" in out
        assert stale.exists()

    def test_evict_stale_composes_with_byte_budget(self, tmp_path):
        from repro.sweep.checkpoint import GRID_CHECKPOINT_VERSION

        stale = _grid_entry(tmp_path, "gridcell-old.json", 0)
        lru = _grid_entry(tmp_path, "gridcell-a.json", GRID_CHECKPOINT_VERSION)
        os.utime(lru, (100.0, 100.0))
        keep = _grid_entry(tmp_path, "gridcell-b.json", GRID_CHECKPOINT_VERSION)
        os.utime(keep, (200.0, 200.0))
        rc = main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--evict-stale", "--max-bytes", str(keep.stat().st_size)]
        )
        assert rc == 0
        # Stale eviction and LRU pruning both applied in one pass.
        assert not stale.exists() and not lru.exists() and keep.exists()


class TestHarnessTouchesOnHit:
    def test_scenario_and_model_disk_hits_refresh_mtime(self, tmp_path):
        from repro.config import TrainingConfig
        from repro.harness import build_scenario, clear_caches, trained_teal

        config = TrainingConfig(steps=1, warm_start_steps=2, log_every=10)
        kwargs = dict(
            max_pairs=20, train=2, validation=1, test=1,
            cache_dir=tmp_path,
        )
        scenario = build_scenario("B4", seed=0, **kwargs)
        trained_teal(scenario, config=config, cache_dir=tmp_path)
        entries = cache_entries(tmp_path)
        assert len(entries) == 2  # one scenario + one checkpoint
        stale = 1000.0
        for entry in entries:
            os.utime(entry.path, (stale, stale))
        clear_caches()  # force the disk tier on the next lookup
        scenario = build_scenario("B4", seed=0, **kwargs)
        trained_teal(scenario, config=config, cache_dir=tmp_path)
        for entry in cache_entries(tmp_path):
            assert entry.path.stat().st_mtime > stale
