"""Tests for the paper-figure plotting layer (``repro.sweep.plotting``)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.sweep import (
    build_figures,
    cdf_figure,
    have_matplotlib,
    load_grid_results,
    render_figures,
    render_svg,
    robustness_figure,
    satisfied_samples,
    scheme_colors,
    speedup_figure,
)
from repro.sweep.analytics import analyze
from repro.sweep.plotting import PALETTE, SCHEME_SLOTS

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE_PATHS = [
    str(FIXTURES / "grid_mini_small.json"),
    str(FIXTURES / "grid_mini_large.json"),
]

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def results():
    return load_grid_results(FIXTURE_PATHS)


@pytest.fixture(scope="module")
def analytics(results):
    return analyze(results, sources=FIXTURE_PATHS)


def svg_texts(svg: str) -> list[str]:
    root = ET.fromstring(svg)  # raises on malformed XML
    return ["".join(t.itertext()) for t in root.iter(f"{SVG_NS}text")]


class TestSchemeColors:
    def test_paper_schemes_keep_their_fixed_slots(self):
        colors = scheme_colors(["LP-all", "Teal"])
        assert colors["Teal"] == PALETTE[SCHEME_SLOTS["Teal"]]
        assert colors["LP-all"] == PALETTE[SCHEME_SLOTS["LP-all"]]

    def test_color_follows_the_entity_not_the_series_count(self):
        # Filtering schemes away must not repaint the survivors.
        assert (
            scheme_colors(["Teal"])["Teal"]
            == scheme_colors(["LP-all", "NCFlow", "Teal"])["Teal"]
        )

    def test_unknown_schemes_get_deterministic_free_slots(self):
        a = scheme_colors(["Zeta", "Alpha"])
        b = scheme_colors(["Alpha", "Zeta"])
        assert a == b  # order-insensitive assignment
        assert len(set(a.values())) == 2

    def test_unknowns_never_steal_a_present_schemes_slot(self):
        colors = scheme_colors(["Teal", "Mystery"])
        assert colors["Teal"] == PALETTE[SCHEME_SLOTS["Teal"]]
        assert colors["Mystery"] != colors["Teal"]


class TestSatisfiedSamples:
    def test_pools_across_results_sorted_by_scheme(self, results):
        samples = satisfied_samples(results)
        assert list(samples) == sorted(samples)
        expected = sum(
            len(c.run.satisfied)
            for r in results
            for c in r.cells
            if c.scheme == "Teal"
        )
        assert len(samples["Teal"]) == expected

    def test_failure_filter_restricts_the_pool(self, results):
        all_levels = satisfied_samples(results)
        nominal = satisfied_samples(results, failure_count=0)
        assert len(nominal["Teal"]) <= len(all_levels["Teal"])
        assert satisfied_samples(results, failure_count=99) == {}


class TestFigureBuilders:
    def test_speedup_series_per_precision(self, analytics):
        spec = speedup_figure(analytics)
        assert spec.slug == "speedup"
        names = {series.name for series in spec.series}
        assert names == {p.precision for p in analytics.curve}
        for series in spec.series:
            assert list(series.x) == sorted(series.x)

    def test_cdf_is_a_monotone_step_to_one(self, results):
        spec = cdf_figure(results)
        assert spec.slug == "satisfied_cdf"
        assert spec.step and spec.x_percent and spec.y_percent
        for series in spec.series:
            assert series.y[0] == 0.0
            assert series.y[-1] == 1.0
            assert list(series.y) == sorted(series.y)
            assert list(series.x) == sorted(series.x)

    def test_robustness_ticks_cover_failure_levels(self, results, analytics):
        spec = robustness_figure(analytics)
        assert spec.slug == "failure_robustness"
        levels = {float(c.failure_count) for r in results for c in r.cells}
        assert set(spec.xticks) == levels

    def test_build_figures_is_the_full_set(self, results, analytics):
        specs = build_figures(results, analytics)
        assert [s.slug for s in specs] == [
            "speedup", "satisfied_cdf", "failure_robustness",
        ]

    def test_empty_inputs_raise_clean_errors(self, analytics):
        with pytest.raises(ReproError, match="no satisfied-demand samples"):
            cdf_figure([])


class TestRenderSvg:
    def test_figures_render_to_wellformed_svg(self, results, analytics):
        for spec in build_figures(results, analytics):
            svg = render_svg(spec)
            texts = svg_texts(svg)
            assert spec.title in texts
            assert spec.xlabel in texts

    def test_schemes_are_directly_labeled(self, results):
        texts = svg_texts(render_svg(cdf_figure(results)))
        # Legend chip + direct line label: each scheme appears twice.
        assert sum(t == "Teal" for t in texts) == 2
        assert sum(t == "LP-all" for t in texts) == 2

    def test_rendering_is_deterministic(self, results, analytics):
        spec = speedup_figure(analytics)
        assert render_svg(spec) == render_svg(spec)


class TestRenderFigures:
    def test_writes_the_figure_set(self, results, analytics, tmp_path):
        written = render_figures(results, analytics, tmp_path, prefix="mini")
        assert [p.name for p in written] == [
            "mini_speedup.svg",
            "mini_satisfied_cdf.svg",
            "mini_failure_robustness.svg",
        ]
        for path in written:
            assert svg_texts(path.read_text())

    def test_unknown_format_is_rejected(self, results, analytics, tmp_path):
        with pytest.raises(ReproError, match="unknown figure format"):
            render_figures(
                results, analytics, tmp_path, formats=("pdf",)
            )

    def test_png_without_matplotlib_falls_back_to_svg(
        self, results, analytics, tmp_path
    ):
        if have_matplotlib():
            written = render_figures(
                results, analytics, tmp_path, formats=("png",)
            )
            assert all(p.suffix == ".png" for p in written)
            return
        with pytest.warns(RuntimeWarning, match="falling back"):
            written = render_figures(
                results, analytics, tmp_path, formats=("png",)
            )
        assert written and all(p.suffix == ".svg" for p in written)


class TestCliPlot:
    def test_plot_end_to_end(self, tmp_path, capsys):
        rc = main(
            ["plot", *FIXTURE_PATHS, "--output-dir", str(tmp_path),
             "--prefix", "mini"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        for slug in ("speedup", "satisfied_cdf", "failure_robustness"):
            path = tmp_path / f"mini_{slug}.svg"
            assert path.exists()
            assert str(path) in out

    def test_malformed_input_is_a_clean_failure(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text('{"suite": ')
        rc = main(["plot", str(bad), "--output-dir", str(tmp_path)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err and "broken.json" in err

    def test_missing_input_is_a_clean_failure(self, tmp_path, capsys):
        rc = main(
            ["plot", str(tmp_path / "absent.json"),
             "--output-dir", str(tmp_path)]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err
