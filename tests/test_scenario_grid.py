"""Tests for the cross-topology scenario-grid sweep engine."""

from __future__ import annotations

import pytest

from repro.config import TrainingConfig
from repro.exceptions import ReproError
from repro.harness import (
    build_scenario,
    clear_caches,
    make_baselines,
    run_failure_sweep,
    trained_teal,
)
from repro.lp.objectives import get_objective
from repro.sweep import (
    GridResult,
    ScenarioSuite,
    cell_seed,
    run_scenario_grid,
    single_topology,
)
from repro.topology import sample_link_failures

#: Tiny training budget shared by every grid test.
TINY = TrainingConfig(steps=2, warm_start_steps=6, log_every=10)


def tiny_suite(**overrides) -> ScenarioSuite:
    defaults = dict(
        topologies=("B4",),
        failure_counts=(0, 1),
        seeds=(0,),
        schemes=("LP-all", "Teal"),
        train=4,
        validation=1,
        test=2,
        training=TINY,
    )
    defaults.update(overrides)
    return ScenarioSuite(**defaults)


def comparable(result: GridResult) -> list[tuple]:
    """Deterministic per-cell payload (wall-clock timings excluded)."""
    return [
        (cell.coords, cell.run.satisfied, cell.run.objective_values)
        for cell in result.cells
    ]


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed("B4", 0, 1) == cell_seed("B4", 0, 1)

    def test_distinct_cells_distinct_seeds(self):
        seeds = {
            cell_seed(topology, seed, count)
            for topology in ("B4", "SWAN", "UsCarrier")
            for seed in (0, 1)
            for count in (0, 1, 2)
        }
        assert len(seeds) == 3 * 2 * 3

    def test_stable_value(self):
        """Pinned: a changed derivation would silently reshuffle failures."""
        import zlib

        assert cell_seed("B4", 0, 1) == zlib.crc32(b"B4|0|1")


class TestScenarioSuite:
    def test_axes_normalized_to_tuples(self):
        suite = tiny_suite(topologies=["B4"], failure_counts=[0], seeds=[0])
        assert suite.topologies == ("B4",)
        assert suite.failure_counts == (0,)
        assert suite.seeds == (0,)

    def test_empty_axis_rejected(self):
        with pytest.raises(ReproError):
            tiny_suite(topologies=())

    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError):
            tiny_suite(mode="streaming")

    def test_duplicate_axis_values_rejected(self):
        for overrides in (
            {"schemes": ("Teal", "Teal")},
            {"topologies": ("B4", "B4")},
            {"failure_counts": (1, 1)},
            {"seeds": (0, 0)},
        ):
            with pytest.raises(ReproError):
                tiny_suite(**overrides)

    def test_cell_and_job_counts(self):
        suite = tiny_suite(
            topologies=("B4", "SWAN"), seeds=(0, 1), failure_counts=(0, 1, 2)
        )
        assert suite.num_jobs == 4
        assert suite.num_cells == 4 * 3 * 2
        assert suite.jobs() == [("B4", 0), ("B4", 1), ("SWAN", 0), ("SWAN", 1)]

    def test_dict_roundtrip(self):
        suite = tiny_suite(mode="online", failure_at=1)
        back = ScenarioSuite.from_dict(suite.to_dict())
        assert back == suite
        assert back.training == TINY

    def test_single_topology(self):
        suite = tiny_suite(topologies=("B4", "SWAN"))
        narrowed = single_topology(suite, "SWAN")
        assert narrowed.topologies == ("SWAN",)
        with pytest.raises(ReproError):
            single_topology(suite, "Kdl")


class TestRunScenarioGrid:
    @pytest.fixture(scope="class")
    def suite(self) -> ScenarioSuite:
        return tiny_suite(seeds=(0, 1))

    @pytest.fixture(scope="class")
    def serial_result(self, suite) -> GridResult:
        clear_caches()
        return run_scenario_grid(suite)

    def test_grid_shape(self, suite, serial_result):
        assert len(serial_result.cells) == suite.num_cells
        assert len(serial_result.timings) == suite.num_jobs
        assert serial_result.metadata["executor"] == "serial"
        coords = [cell.coords for cell in serial_result.cells]
        assert coords == [
            (topology, seed, count, scheme)
            for topology, seed in suite.jobs()
            for count in suite.failure_counts
            for scheme in suite.schemes
        ]

    def test_matches_handwritten_loop(self, suite, serial_result):
        """Grid engine == per-topology build/train/sweep loop, bit for bit."""
        clear_caches()  # force real rebuild + retrain, not a cache echo
        objective = get_objective(suite.objective)
        expected: list[tuple] = []
        for topology, seed in suite.jobs():
            scenario = build_scenario(
                topology,
                scale=suite.scale,
                seed=seed,
                max_pairs=suite.max_pairs,
                train=suite.train,
                validation=suite.validation,
                test=suite.test,
                headroom=suite.headroom,
            )
            schemes = dict(
                make_baselines(scenario, objective=objective, include=("LP-all",))
            )
            schemes["Teal"] = trained_teal(
                scenario,
                objective_name=suite.objective,
                config=suite.training,
                seed=seed,
            )
            capacity_sets = {}
            for count in suite.failure_counts:
                caps = scenario.capacities.copy()
                if count:
                    failed = sample_link_failures(
                        scenario.topology,
                        count,
                        seed=cell_seed(topology, seed, count),
                    )
                    caps[failed] = 0.0
                capacity_sets[count] = caps
            sweep = run_failure_sweep(
                scenario, schemes, capacity_sets, objective=objective
            )
            for count in suite.failure_counts:
                for name in suite.schemes:
                    run = sweep[count][name]
                    expected.append(
                        (
                            (topology, seed, count, name),
                            run.satisfied,
                            run.objective_values,
                        )
                    )
        assert comparable(serial_result) == expected

    def test_thread_pool_matches_serial(self, suite, serial_result):
        clear_caches()  # cold cache: concurrent jobs really build and train
        threaded = run_scenario_grid(suite, executor="thread", max_workers=2)
        assert comparable(threaded) == comparable(serial_result)
        assert threaded.metadata["executor"] == "thread"

    def test_process_pool_matches_serial(self, suite, serial_result):
        clear_caches()  # cold cache: workers retrain rather than echo a fork
        forked = run_scenario_grid(suite, executor="process", max_workers=2)
        assert comparable(forked) == comparable(serial_result)

    def test_unknown_executor_rejected(self, suite):
        with pytest.raises(ReproError):
            run_scenario_grid(suite, executor="cluster")

    def test_cell_lookup(self, serial_result):
        cell = serial_result.cell("B4", 1, 1, "Teal")
        assert cell.extras["failed_edges"]
        assert len(cell.run.satisfied) == 2
        with pytest.raises(ReproError):
            serial_result.cell("B4", 9, 0, "Teal")

    def test_runs_slice_shape(self, serial_result):
        runs = serial_result.runs("B4", 0, 0)
        assert set(runs) == {"LP-all", "Teal"}
        assert runs["Teal"].scheme == "Teal"

    def test_timings_record_work(self, serial_result):
        for timing in serial_result.timings:
            assert timing["train_seconds"] > 0.0
            assert timing["num_demands"] > 0

    def test_summary_table_covers_grid(self, suite, serial_result):
        table = serial_result.summary_table()
        assert table.count("[B4") == len(suite.seeds) * len(suite.failure_counts)
        assert "Teal" in table and "LP-all" in table


class TestOnlineGrid:
    def test_online_mode_records_intervals(self):
        suite = tiny_suite(
            schemes=("Teal",), mode="online", test=3, interval_seconds=1e9
        )
        result = run_scenario_grid(suite)
        cell = result.cell("B4", 0, 1, "Teal")
        assert len(cell.run.satisfied) == 3
        assert "stale_fraction" in cell.extras
        assert all("stale" in extras for extras in cell.run.extras)

    def test_failure_hurts_satisfied_demand(self):
        suite = tiny_suite(
            schemes=("LP-all",), mode="online", test=3, failure_at=0
        )
        result = run_scenario_grid(suite)
        nominal = result.cell("B4", 0, 0, "LP-all").run.mean_satisfied
        failed = result.cell("B4", 0, 1, "LP-all").run.mean_satisfied
        assert failed <= nominal + 1e-9


class TestGridResultJson:
    def test_json_roundtrip(self, tmp_path):
        result = run_scenario_grid(tiny_suite())
        path = tmp_path / "grid.json"
        result.to_json(path)
        back = GridResult.from_json(path)
        assert back.suite == result.suite
        assert comparable(back) == comparable(result)
        assert back.metadata["num_cells"] == result.metadata["num_cells"]
        assert [c.run.compute_times for c in back.cells] == [
            c.run.compute_times for c in result.cells
        ]
