"""Tests for the cross-topology scenario-grid sweep engine."""

from __future__ import annotations

import pytest

from repro.config import TrainingConfig
from repro.exceptions import ReproError
from repro.harness import (
    build_scenario,
    clear_caches,
    make_baselines,
    run_failure_sweep,
    trained_teal,
)
from repro.lp.objectives import get_objective
from repro.sweep import (
    ENV_CELL_BATCH,
    GridResult,
    ScenarioSuite,
    cell_bucket_key,
    cell_seed,
    chunk_level_keys,
    plan_cell_batches,
    resolve_cell_batch,
    run_scenario_grid,
    single_topology,
)
from repro.topology import sample_link_failures

#: Tiny training budget shared by every grid test.
TINY = TrainingConfig(steps=2, warm_start_steps=6, log_every=10)


def tiny_suite(**overrides) -> ScenarioSuite:
    defaults = dict(
        topologies=("B4",),
        failure_counts=(0, 1),
        seeds=(0,),
        schemes=("LP-all", "Teal"),
        train=4,
        validation=1,
        test=2,
        training=TINY,
    )
    defaults.update(overrides)
    return ScenarioSuite(**defaults)


def comparable(result: GridResult) -> list[tuple]:
    """Deterministic per-cell payload (wall-clock timings excluded)."""
    return [
        (cell.coords, cell.run.satisfied, cell.run.objective_values)
        for cell in result.cells
    ]


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed("B4", 0, 1) == cell_seed("B4", 0, 1)

    def test_distinct_cells_distinct_seeds(self):
        seeds = {
            cell_seed(topology, seed, count)
            for topology in ("B4", "SWAN", "UsCarrier")
            for seed in (0, 1)
            for count in (0, 1, 2)
        }
        assert len(seeds) == 3 * 2 * 3

    def test_stable_value(self):
        """Pinned: a changed derivation would silently reshuffle failures."""
        import zlib

        assert cell_seed("B4", 0, 1) == zlib.crc32(b"B4|0|1")


class TestScenarioSuite:
    def test_axes_normalized_to_tuples(self):
        suite = tiny_suite(topologies=["B4"], failure_counts=[0], seeds=[0])
        assert suite.topologies == ("B4",)
        assert suite.failure_counts == (0,)
        assert suite.seeds == (0,)

    def test_empty_axis_rejected(self):
        with pytest.raises(ReproError):
            tiny_suite(topologies=())

    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError):
            tiny_suite(mode="streaming")

    def test_duplicate_axis_values_rejected(self):
        for overrides in (
            {"schemes": ("Teal", "Teal")},
            {"topologies": ("B4", "B4")},
            {"failure_counts": (1, 1)},
            {"seeds": (0, 0)},
        ):
            with pytest.raises(ReproError):
                tiny_suite(**overrides)

    def test_cell_and_job_counts(self):
        suite = tiny_suite(
            topologies=("B4", "SWAN"), seeds=(0, 1), failure_counts=(0, 1, 2)
        )
        assert suite.num_jobs == 4
        assert suite.num_cells == 4 * 3 * 2
        assert suite.jobs() == [("B4", 0), ("B4", 1), ("SWAN", 0), ("SWAN", 1)]

    def test_dict_roundtrip(self):
        suite = tiny_suite(mode="online", failure_at=1)
        back = ScenarioSuite.from_dict(suite.to_dict())
        assert back == suite
        assert back.training == TINY

    def test_single_topology(self):
        suite = tiny_suite(topologies=("B4", "SWAN"))
        narrowed = single_topology(suite, "SWAN")
        assert narrowed.topologies == ("SWAN",)
        with pytest.raises(ReproError):
            single_topology(suite, "Kdl")


class TestRunScenarioGrid:
    @pytest.fixture(scope="class")
    def suite(self) -> ScenarioSuite:
        return tiny_suite(seeds=(0, 1))

    @pytest.fixture(scope="class")
    def serial_result(self, suite) -> GridResult:
        clear_caches()
        return run_scenario_grid(suite)

    def test_grid_shape(self, suite, serial_result):
        assert len(serial_result.cells) == suite.num_cells
        assert len(serial_result.timings) == suite.num_jobs
        assert serial_result.metadata["executor"] == "serial"
        coords = [cell.coords for cell in serial_result.cells]
        assert coords == [
            (topology, seed, count, scheme)
            for topology, seed in suite.jobs()
            for count in suite.failure_counts
            for scheme in suite.schemes
        ]

    def test_matches_handwritten_loop(self, suite, serial_result):
        """Grid engine == per-topology build/train/sweep loop, bit for bit."""
        clear_caches()  # force real rebuild + retrain, not a cache echo
        objective = get_objective(suite.objective)
        expected: list[tuple] = []
        for topology, seed in suite.jobs():
            scenario = build_scenario(
                topology,
                scale=suite.scale,
                seed=seed,
                max_pairs=suite.max_pairs,
                train=suite.train,
                validation=suite.validation,
                test=suite.test,
                headroom=suite.headroom,
            )
            schemes = dict(
                make_baselines(scenario, objective=objective, include=("LP-all",))
            )
            schemes["Teal"] = trained_teal(
                scenario,
                objective_name=suite.objective,
                config=suite.training,
                seed=seed,
            )
            capacity_sets = {}
            for count in suite.failure_counts:
                caps = scenario.capacities.copy()
                if count:
                    failed = sample_link_failures(
                        scenario.topology,
                        count,
                        seed=cell_seed(topology, seed, count),
                    )
                    caps[failed] = 0.0
                capacity_sets[count] = caps
            sweep = run_failure_sweep(
                scenario, schemes, capacity_sets, objective=objective
            )
            for count in suite.failure_counts:
                for name in suite.schemes:
                    run = sweep[count][name]
                    expected.append(
                        (
                            (topology, seed, count, name),
                            run.satisfied,
                            run.objective_values,
                        )
                    )
        assert comparable(serial_result) == expected

    def test_thread_pool_matches_serial(self, suite, serial_result):
        clear_caches()  # cold cache: concurrent jobs really build and train
        threaded = run_scenario_grid(suite, executor="thread", max_workers=2)
        assert comparable(threaded) == comparable(serial_result)
        assert threaded.metadata["executor"] == "thread"

    def test_process_pool_matches_serial(self, suite, serial_result):
        clear_caches()  # cold cache: workers retrain rather than echo a fork
        forked = run_scenario_grid(suite, executor="process", max_workers=2)
        assert comparable(forked) == comparable(serial_result)

    def test_unknown_executor_rejected(self, suite):
        with pytest.raises(ReproError):
            run_scenario_grid(suite, executor="cluster")

    def test_cell_lookup(self, serial_result):
        cell = serial_result.cell("B4", 1, 1, "Teal")
        assert cell.extras["failed_edges"]
        assert len(cell.run.satisfied) == 2
        with pytest.raises(ReproError):
            serial_result.cell("B4", 9, 0, "Teal")

    def test_runs_slice_shape(self, serial_result):
        runs = serial_result.runs("B4", 0, 0)
        assert set(runs) == {"LP-all", "Teal"}
        assert runs["Teal"].scheme == "Teal"

    def test_timings_record_work(self, serial_result):
        for timing in serial_result.timings:
            assert timing["train_seconds"] > 0.0
            assert timing["num_demands"] > 0

    def test_summary_table_covers_grid(self, suite, serial_result):
        table = serial_result.summary_table()
        assert table.count("[B4") == len(suite.seeds) * len(suite.failure_counts)
        assert "Teal" in table and "LP-all" in table


class TestOnlineGrid:
    def test_online_mode_records_intervals(self):
        suite = tiny_suite(
            schemes=("Teal",), mode="online", test=3, interval_seconds=1e9
        )
        result = run_scenario_grid(suite)
        cell = result.cell("B4", 0, 1, "Teal")
        assert len(cell.run.satisfied) == 3
        assert "stale_fraction" in cell.extras
        assert all("stale" in extras for extras in cell.run.extras)

    def test_failure_hurts_satisfied_demand(self):
        suite = tiny_suite(
            schemes=("LP-all",), mode="online", test=3, failure_at=0
        )
        result = run_scenario_grid(suite)
        nominal = result.cell("B4", 0, 0, "LP-all").run.mean_satisfied
        failed = result.cell("B4", 0, 1, "LP-all").run.mean_satisfied
        assert failed <= nominal + 1e-9


class TestResolveCellBatch:
    def test_default_is_fully_fused(self, monkeypatch):
        monkeypatch.delenv(ENV_CELL_BATCH, raising=False)
        assert resolve_cell_batch(None) == 0

    def test_env_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_BATCH, "3")
        assert resolve_cell_batch(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_BATCH, "3")
        assert resolve_cell_batch(1) == 1
        assert resolve_cell_batch(0) == 0

    def test_string_specs_accepted(self):
        assert resolve_cell_batch("4") == 4

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ReproError):
            resolve_cell_batch(-1)
        with pytest.raises(ReproError):
            resolve_cell_batch("many")
        monkeypatch.setenv(ENV_CELL_BATCH, "-2")
        with pytest.raises(ReproError):
            resolve_cell_batch(None)

    def test_suite_validates_cell_batch(self):
        assert tiny_suite(cell_batch=2).cell_batch == 2
        with pytest.raises(ReproError):
            tiny_suite(cell_batch=-1)


class TestChunkLevelKeys:
    def test_zero_fuses_everything(self):
        assert chunk_level_keys([0, 1, 2], 0) == [[0, 1, 2]]

    def test_one_is_the_per_cell_loop(self):
        assert chunk_level_keys([0, 1, 2], 1) == [[0], [1], [2]]

    def test_uneven_tail_chunk(self):
        assert chunk_level_keys([0, 1, 2, 3, 4], 2) == [[0, 1], [2, 3], [4]]

    def test_bound_at_least_length_fuses(self):
        assert chunk_level_keys([0, 1], 5) == [[0, 1]]

    def test_empty_keys(self):
        assert chunk_level_keys([], 0) == []
        assert chunk_level_keys([], 2) == []

    def test_order_preserved(self):
        chunks = chunk_level_keys([3, 0, 2], 2)
        assert [key for chunk in chunks for key in chunk] == [3, 0, 2]

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            chunk_level_keys([0, 1], -1)


class TestCellBucketKey:
    def test_failure_and_seed_variants_share_a_bucket(self):
        suite = tiny_suite(failure_counts=(0, 1, 2), seeds=(0, 1))
        plan = plan_cell_batches(suite, 0)
        # One bucket per scheme: every (seed, failure) cell of a
        # (topology, scheme) pair is compatible work.
        assert len(plan.buckets) == len(suite.schemes)
        for bucket in plan.buckets:
            assert len(bucket.cells) == len(suite.seeds) * len(
                suite.failure_counts
            )

    def test_topology_precision_scheme_split_buckets(self):
        base = tiny_suite(topologies=("B4", "SWAN"))
        keys = {
            cell_bucket_key(base, topology, scheme)
            for topology in base.topologies
            for scheme in base.schemes
        }
        assert len(keys) == 4  # 2 topologies x 2 schemes, no sharing
        f32 = cell_bucket_key(base, "B4", "Teal")
        f64 = cell_bucket_key(
            tiny_suite(topologies=("B4", "SWAN"), precision="float64"),
            "B4",
            "Teal",
        )
        assert f32 != f64
        torch_key = cell_bucket_key(
            tiny_suite(topologies=("B4", "SWAN"), backend="torch"),
            "B4",
            "Teal",
        )
        assert torch_key != f32

    def test_plan_counts_and_chunks(self):
        suite = tiny_suite(
            topologies=("B4", "SWAN"),
            failure_counts=(0, 1, 2),
            seeds=(0, 1),
            cell_batch=2,
        )
        plan = plan_cell_batches(suite)
        assert plan.cell_batch == 2
        assert plan.num_cells == suite.num_cells
        # Per bucket: 2 seed jobs x ceil(3 levels / 2) = 4 invocations.
        assert plan.num_invocations == len(plan.buckets) * 4
        for bucket in plan.buckets:
            for chunk in bucket.chunks:
                assert len(chunk) <= 2
                # A chunk never mixes jobs: one (topology, seed) each.
                assert len({cell[:2] for cell in chunk}) == 1
        record = plan.to_dict()
        assert record["cell_batch"] == 2
        assert record["num_invocations"] == plan.num_invocations

    def test_fused_plan_has_one_invocation_per_job_scheme(self):
        suite = tiny_suite(failure_counts=(0, 1, 2), seeds=(0, 1))
        plan = plan_cell_batches(suite, 0)
        assert plan.num_invocations == suite.num_jobs * len(suite.schemes)


class TestCellBatchedGrid:
    """Batched execution must equal the per-cell loop bit for bit."""

    @pytest.fixture(scope="class", params=("float32", "float64"))
    def suite(self, request) -> ScenarioSuite:
        return tiny_suite(
            topologies=("B4", "SWAN"),
            failure_counts=(0, 1, 2),
            precision=request.param,
        )

    @pytest.fixture(scope="class")
    def fused(self, suite) -> GridResult:
        # cell_batch unset: resolves to 0, the fully-fused stack.
        return run_scenario_grid(suite)

    def test_fused_metadata(self, fused):
        assert fused.metadata["cell_batch"] == 0
        assert fused.metadata["cell_batching"]["num_buckets"] == 4
        # One stacked invocation per (job, scheme) when fully fused.
        assert fused.metadata["cell_batching"]["num_invocations"] == 4

    def test_per_cell_loop_matches_fused(self, suite, fused):
        looped = run_scenario_grid(suite, cell_batch=1)
        assert looped.metadata["cell_batch"] == 1
        assert comparable(looped) == comparable(fused)

    def test_uneven_chunks_match_fused(self, suite, fused):
        # 3 failure levels in chunks of 2: one full + one ragged chunk.
        chunked = run_scenario_grid(suite, cell_batch=2)
        assert comparable(chunked) == comparable(fused)

    def test_argument_overrides_suite_field(self, suite, fused):
        pinned = ScenarioSuite.from_dict({**suite.to_dict(), "cell_batch": 1})
        overridden = run_scenario_grid(pinned, cell_batch=2)
        assert overridden.metadata["cell_batch"] == 2
        assert comparable(overridden) == comparable(fused)

    def test_env_overridden_by_suite_field(self, suite, fused, monkeypatch):
        monkeypatch.setenv(ENV_CELL_BATCH, "many")  # would raise if read
        pinned = ScenarioSuite.from_dict({**suite.to_dict(), "cell_batch": 1})
        result = run_scenario_grid(pinned)
        assert result.metadata["cell_batch"] == 1
        assert comparable(result) == comparable(fused)


class TestOnlineCellBatchedGrid:
    def test_online_chunks_match_fused(self):
        suite = tiny_suite(
            failure_counts=(0, 1, 2), mode="online", test=3, failure_at=1
        )
        fused = run_scenario_grid(suite)
        for cell_batch in (1, 2):
            chunked = run_scenario_grid(suite, cell_batch=cell_batch)
            assert comparable(chunked) == comparable(fused)


class TestGridResultJson:
    def test_json_roundtrip(self, tmp_path):
        result = run_scenario_grid(tiny_suite())
        path = tmp_path / "grid.json"
        result.to_json(path)
        back = GridResult.from_json(path)
        assert back.suite == result.suite
        assert comparable(back) == comparable(result)
        assert back.metadata["num_cells"] == result.metadata["num_cells"]
        assert [c.run.compute_times for c in back.cells] == [
            c.run.compute_times for c in result.cells
        ]
