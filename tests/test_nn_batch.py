"""Edge-case tests for the batch dimension in the nn substrate.

The batched scenario engine leans on three primitives: gradient
unbroadcasting over leading batch axes, batched (sparse) matrix products,
and batched row gathers. These tests pin their semantics down directly.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from helpers import numerical_gradient

from repro.nn import Parameter, Tensor
from repro.nn import functional as F
from repro.nn.tensor import _unbroadcast


class TestUnbroadcastBatchAxes:
    def test_sums_single_leading_batch_axis(self):
        grad = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = _unbroadcast(grad, (3, 4))
        assert out.shape == (3, 4)
        assert np.allclose(out, grad.sum(axis=0))

    def test_sums_multiple_leading_axes(self):
        grad = np.ones((2, 5, 3, 4))
        out = _unbroadcast(grad, (3, 4))
        assert out.shape == (3, 4)
        assert np.allclose(out, 10 * np.ones((3, 4)))

    def test_sums_broadcast_middle_axis_with_batch(self):
        grad = np.ones((2, 3, 4))
        out = _unbroadcast(grad, (3, 1))
        assert out.shape == (3, 1)
        assert np.allclose(out, 8 * np.ones((3, 1)))

    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 3, 4))
        assert _unbroadcast(grad, (2, 3, 4)) is grad


class TestBatchedMatmul:
    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4, 5)))
        w = Tensor(rng.normal(size=(5, 2)))
        out = x @ w
        assert out.shape == (3, 4, 2)
        assert np.allclose(out.data, x.data @ w.data)

    def test_shared_weight_gradient_sums_over_batch(self):
        rng = np.random.default_rng(1)
        x = Parameter(rng.normal(size=(3, 4, 5)))
        w = Parameter(rng.normal(size=(5, 2)))
        (x @ w).sum().backward()

        def loss_w():
            return float((x.data @ w.data).sum())

        assert np.allclose(w.grad, numerical_gradient(loss_w, w.data), atol=1e-5)
        assert np.allclose(x.grad, numerical_gradient(loss_w, x.data), atol=1e-5)

    def test_batched_both_operands(self):
        rng = np.random.default_rng(2)
        a = Parameter(rng.normal(size=(2, 3, 4)))
        b = Parameter(rng.normal(size=(2, 4, 5)))
        weights = rng.normal(size=(2, 3, 5))
        ((a @ b) * Tensor(weights)).sum().backward()

        def loss():
            return float(((a.data @ b.data) * weights).sum())

        assert np.allclose(a.grad, numerical_gradient(loss, a.data), atol=1e-5)
        assert np.allclose(b.grad, numerical_gradient(loss, b.data), atol=1e-5)

    def test_linear_layer_accepts_batch(self):
        from repro.nn.layers import Linear

        layer = Linear(4, 3, rng=np.random.default_rng(3))
        x = Tensor(np.random.default_rng(4).normal(size=(2, 5, 4)))
        out = layer(x)
        assert out.shape == (2, 5, 3)
        looped = np.stack([(layer(Tensor(x.data[i]))).data for i in range(2)])
        assert np.allclose(out.data, looped)


class TestBatchedSparseMatmul:
    def test_forward_matches_dense_per_batch(self):
        rng = np.random.default_rng(5)
        matrix = sp.random(6, 5, density=0.5, random_state=6, format="csr")
        x = Tensor(rng.normal(size=(3, 5, 2)))
        out = F.sparse_matmul(matrix, x)
        assert out.shape == (3, 6, 2)
        for i in range(3):
            assert np.allclose(out.data[i], matrix.toarray() @ x.data[i])

    def test_gradient_matches_dense_per_batch(self):
        rng = np.random.default_rng(7)
        matrix = sp.random(6, 5, density=0.5, random_state=8, format="csr")
        x = Parameter(rng.normal(size=(3, 5, 2)))
        weights = rng.normal(size=(3, 6, 2))
        (F.sparse_matmul(matrix, x) * Tensor(weights)).sum().backward()
        for i in range(3):
            assert np.allclose(x.grad[i], matrix.toarray().T @ weights[i])

    def test_unbatched_path_unchanged(self):
        rng = np.random.default_rng(9)
        matrix = sp.random(4, 3, density=0.6, random_state=10, format="csr")
        x = Parameter(rng.normal(size=(3, 2)))
        out = F.sparse_matmul(matrix, x)
        assert np.allclose(out.data, matrix.toarray() @ x.data)
        out.sum().backward()
        assert np.allclose(x.grad, matrix.toarray().T @ np.ones((4, 2)))


class TestBatchedTakeRows:
    def test_forward_gathers_per_batch(self):
        x = Tensor(np.arange(24, dtype=float).reshape(2, 4, 3))
        idx = np.array([[0, 2], [1, 1]])
        out = F.take_rows(x, idx)
        assert out.shape == (2, 2, 2, 3)
        assert np.allclose(out.data, x.data[:, idx])

    def test_backward_scatter_adds_per_batch(self):
        x = Parameter(np.zeros((2, 4, 3)))
        idx = np.array([0, 2, 2])
        out = F.take_rows(x, idx)
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 1.0
        expected[2] = 2.0
        for i in range(2):
            assert np.allclose(x.grad[i], expected)

    def test_backward_matches_numeric(self):
        rng = np.random.default_rng(11)
        x = Parameter(rng.normal(size=(2, 4, 3)))
        idx = np.array([[3, 0], [1, 3]])
        weights = rng.normal(size=(2, 2, 2, 3))
        (F.take_rows(x, idx) * Tensor(weights)).sum().backward()

        def loss():
            return float((x.data[:, idx] * weights).sum())

        assert np.allclose(x.grad, numerical_gradient(loss, x.data), atol=1e-5)

    def test_rejects_vectors(self):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            F.take_rows(Tensor(np.ones(3)), np.array([0]))


class TestPairLinear:
    """Split-weight fused concat+linear (the FlowGNN message-passing op)."""

    def test_matches_concat_linear(self):
        rng = np.random.default_rng(20)
        a = Tensor(rng.normal(size=(2, 7, 3)))
        b = Tensor(rng.normal(size=(2, 7, 4)))
        w = Tensor(rng.normal(size=(7, 5)))
        bias = Tensor(rng.normal(size=5))
        out = F.pair_linear(a, b, w, bias)
        expected = np.concatenate([a.data, b.data], axis=-1) @ w.data + bias.data
        assert np.allclose(out.data, expected, atol=1e-12)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(21)
        a = Parameter(rng.normal(size=(3, 4, 2)))
        b = Parameter(rng.normal(size=(3, 4, 3)))
        w = Parameter(rng.normal(size=(5, 2)))
        bias = Parameter(rng.normal(size=2))
        weights = rng.normal(size=(3, 4, 2))
        (F.pair_linear(a, b, w, bias) * Tensor(weights)).sum().backward()

        def loss():
            out = np.concatenate([a.data, b.data], axis=-1) @ w.data + bias.data
            return float((out * weights).sum())

        for param in (a, b, w, bias):
            assert np.allclose(
                param.grad, numerical_gradient(loss, param.data), atol=1e-5
            )

    def test_rejects_mismatched_weight(self):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            F.pair_linear(
                Tensor(np.ones((2, 3))), Tensor(np.ones((2, 3))),
                Tensor(np.ones((5, 4))),
            )


class TestTakeRowsPadded:
    """Sentinel (-1) gather used for padded path grids."""

    def test_padding_slots_are_zero(self):
        x = Tensor(np.arange(12, dtype=float).reshape(4, 3) + 1.0)
        idx = np.array([[0, -1], [3, 2]])
        out = F.take_rows_padded(x, idx)
        assert np.allclose(out.data[0, 0], x.data[0])
        assert np.allclose(out.data[0, 1], 0.0)
        assert np.allclose(out.data[1, 0], x.data[3])

    def test_no_gradient_into_padding(self):
        x = Parameter(np.ones((4, 3)))
        idx = np.array([[0, -1], [0, 2]])
        F.take_rows_padded(x, idx).sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0  # gathered twice
        expected[2] = 1.0
        assert np.allclose(x.grad, expected)

    def test_batched_matches_numeric(self):
        rng = np.random.default_rng(22)
        x = Parameter(rng.normal(size=(2, 4, 3)))
        idx = np.array([[1, -1], [-1, 3]])
        weights = rng.normal(size=(2, 2, 2, 3))
        (F.take_rows_padded(x, idx) * Tensor(weights)).sum().backward()

        def loss():
            safe = np.where(idx < 0, 0, idx)
            gathered = x.data[:, safe]
            gathered[:, idx < 0] = 0.0
            return float((gathered * weights).sum())

        assert np.allclose(x.grad, numerical_gradient(loss, x.data), atol=1e-5)


class TestBatchedSoftmaxMask:
    def test_shared_mask_broadcasts_over_batch(self):
        rng = np.random.default_rng(12)
        logits = Tensor(rng.normal(size=(3, 2, 4)))
        mask = np.array([[True, True, False, False], [True, False, False, False]])
        out = F.softmax(logits, axis=-1, mask=mask)
        assert out.shape == (3, 2, 4)
        assert np.allclose(out.data.sum(axis=-1), 1.0)
        assert np.allclose(out.data[:, 0, 2:], 0.0)
        assert np.allclose(out.data[:, 1, 1:], 0.0)
