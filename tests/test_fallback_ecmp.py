"""Tests for the fallback combinator (§5.4) and the reference baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import EqualSplit, LpAll, ShortestPath
from repro.exceptions import SimulationError
from repro.simulation import FallbackScheme, evaluate_allocation


class ConstantScheme:
    """Test double with a fixed allocation quality."""

    def __init__(self, ratio_on_first: float, name: str) -> None:
        self.ratio = ratio_on_first
        self.name = name

    def allocate(self, pathset, demands, capacities=None):
        from repro.simulation import Allocation

        ratios = np.zeros((pathset.num_demands, pathset.max_paths))
        ratios[:, 0] = self.ratio
        return Allocation(
            split_ratios=ratios * pathset.path_mask,
            compute_time=0.001,
            scheme=self.name,
        )


class TestReferenceBaselines:
    def test_shortest_path_all_on_first(self, b4_pathset, b4_demands):
        allocation = ShortestPath().allocate(b4_pathset, b4_demands)
        assert np.allclose(allocation.split_ratios[:, 0], 1.0)
        assert np.allclose(allocation.split_ratios[:, 1:], 0.0)

    def test_equal_split_uniform(self, b4_pathset, b4_demands):
        allocation = EqualSplit().allocate(b4_pathset, b4_demands)
        counts = b4_pathset.path_mask.sum(axis=1)
        expected = 1.0 / counts
        assert np.allclose(
            allocation.split_ratios[np.arange(len(counts)), 0], expected
        )
        sums = allocation.split_ratios.sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_lp_beats_reference_floors(self, b4_pathset, b4_trace):
        heavy = b4_pathset.demand_volumes(b4_trace[0].scaled(3.0).values)
        lp = LpAll().allocate(b4_pathset, heavy)
        lp_value = evaluate_allocation(
            b4_pathset, lp.split_ratios, heavy
        ).delivered_total
        for scheme in (ShortestPath(), EqualSplit()):
            allocation = scheme.allocate(b4_pathset, heavy)
            value = evaluate_allocation(
                b4_pathset, allocation.split_ratios, heavy
            ).delivered_total
            assert lp_value >= value - 1e-6


class TestFallbackScheme:
    def test_prefers_primary_when_better(self, b4_pathset, b4_demands):
        good = ConstantScheme(1.0, "good")
        bad = ConstantScheme(0.1, "bad")
        fallback = FallbackScheme(good, bad, window=2)
        for _ in range(4):
            allocation = fallback.allocate(b4_pathset, b4_demands)
            assert allocation.extras["deployed"] == "primary"
        assert not fallback.using_safety

    def test_switches_after_consecutive_safety_wins(
        self, b4_pathset, b4_demands
    ):
        bad = ConstantScheme(0.1, "bad")
        good = ConstantScheme(1.0, "good")
        fallback = FallbackScheme(bad, good, window=3)
        deployments = []
        for _ in range(5):
            allocation = fallback.allocate(b4_pathset, b4_demands)
            deployments.append(allocation.extras["deployed"])
        assert deployments[:3] == ["primary", "primary", "safety"]
        assert fallback.using_safety

    def test_switches_back_when_primary_recovers(self, b4_pathset, b4_demands):
        primary = ConstantScheme(0.1, "flaky")
        safety = ConstantScheme(0.5, "steady")
        fallback = FallbackScheme(primary, safety, window=2)
        for _ in range(3):
            fallback.allocate(b4_pathset, b4_demands)
        assert fallback.using_safety
        primary.ratio = 1.0  # primary recovers
        for _ in range(3):
            allocation = fallback.allocate(b4_pathset, b4_demands)
        assert allocation.extras["deployed"] == "primary"
        assert not fallback.using_safety

    def test_charges_concurrent_time(self, b4_pathset, b4_demands):
        fallback = FallbackScheme(
            ConstantScheme(1.0, "a"), ConstantScheme(0.5, "b")
        )
        allocation = fallback.allocate(b4_pathset, b4_demands)
        assert allocation.compute_time == pytest.approx(
            max(
                allocation.extras["primary_time"],
                allocation.extras["safety_time"],
            )
        )

    def test_validation(self):
        a = ConstantScheme(1.0, "a")
        b = ConstantScheme(0.5, "b")
        with pytest.raises(SimulationError):
            FallbackScheme(a, b, window=0)
        with pytest.raises(SimulationError):
            FallbackScheme(a, b, margin=-0.1)

    def test_margin_suppresses_noise_switching(self, b4_pathset, b4_demands):
        primary = ConstantScheme(0.98, "primary")
        safety = ConstantScheme(1.0, "safety")  # only ~2% better
        fallback = FallbackScheme(primary, safety, window=2, margin=0.05)
        for _ in range(4):
            allocation = fallback.allocate(b4_pathset, b4_demands)
        assert allocation.extras["deployed"] == "primary"
