"""Tests for model checkpointing, weight transfer, and data serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core import (
    TealModel,
    TealScheme,
    load_model,
    save_model,
    transfer_weights,
)
from repro.exceptions import ModelError, ReproError
from repro.io import load_topology, load_trace, save_topology, save_trace
from repro.paths import PathSet
from repro.topology import Topology, b4, swan
from repro.traffic import TrafficTrace


class TestCheckpoint:
    def test_save_load_roundtrip(self, b4_pathset, b4_demands, tmp_path):
        model = TealModel(b4_pathset, seed=3)
        reference = model.split_ratios(b4_demands)
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"

        fresh = TealModel(b4_pathset, seed=99)
        assert not np.allclose(fresh.split_ratios(b4_demands), reference)
        load_model(fresh, path)
        assert np.allclose(fresh.split_ratios(b4_demands), reference)

    def test_load_rejects_architecture_mismatch(self, b4_pathset, tmp_path):
        model = TealModel(b4_pathset, seed=0)
        path = save_model(model, tmp_path / "model")
        from repro.config import TealHyperparameters

        other = TealModel(
            b4_pathset, hyper=TealHyperparameters(num_gnn_layers=4), seed=0
        )
        with pytest.raises(ModelError):
            load_model(other, path)

    def test_corrupt_checkpoint_raises_model_error(self, b4_pathset, tmp_path):
        bad = tmp_path / "model.npz"
        bad.write_bytes(b"definitely not a zip archive")
        with pytest.raises(ModelError, match="corrupt"):
            load_model(TealModel(b4_pathset, seed=0), bad)

    def test_load_clears_pending_gradients(self, b4_pathset, b4_demands, tmp_path):
        """Gradients computed against pre-load weights must not survive
        the load (they would corrupt the next optimizer step)."""
        model = TealModel(b4_pathset, seed=0)
        path = save_model(model, tmp_path / "model")
        loss = model(b4_demands, b4_pathset.topology.capacities).sum()
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())
        load_model(model, path)
        assert all(p.grad is None for p in model.parameters())

    def test_dtype_mismatch_rejected(self, b4_pathset, tmp_path):
        """Regression: a float32-trained checkpoint used to load silently
        into a float64 model (leaving it mixed-precision); the stored
        dtype metadata now makes the mismatch an explicit error."""
        model = TealModel(b4_pathset, seed=0).astype(np.float32)
        path = save_model(model, tmp_path / "model32")

        target = TealModel(b4_pathset, seed=1)  # float64
        with pytest.raises(ModelError, match="float32"):
            load_model(target, path)
        # Casting the target first makes the load legal again.
        load_model(target.astype(np.float32), path)
        for a, b in zip(model.parameters(), target.parameters()):
            assert a.data.dtype == np.float32
            assert np.array_equal(a.data, b.data)

    def test_legacy_checkpoint_without_dtype_metadata(
        self, b4_pathset, b4_demands, tmp_path
    ):
        """Checkpoints written before dtype metadata existed load as
        float64 (the only dtype the old substrate produced)."""
        model = TealModel(b4_pathset, seed=5)
        reference = model.split_ratios(b4_demands)
        path = save_model(model, tmp_path / "model")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "meta_dtype"}
        np.savez(path, **payload)

        fresh = TealModel(b4_pathset, seed=9)
        load_model(fresh, path)
        assert np.allclose(fresh.split_ratios(b4_demands), reference)

    def test_stale_schema_version_rejected(self, b4_pathset, tmp_path):
        """A checkpoint stamped with a foreign schema version must read
        as stale (a miss), not deserialize an unknown layout."""
        from repro.core.checkpoint import CHECKPOINT_FORMAT

        model = TealModel(b4_pathset, seed=0)
        path = save_model(model, tmp_path / "model")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["meta_format"] = np.array(CHECKPOINT_FORMAT + 1)
        np.savez(path, **payload)
        with pytest.raises(ModelError, match="stale"):
            load_model(TealModel(b4_pathset, seed=0), path)

    def test_unstamped_checkpoint_is_stale(self, b4_pathset, tmp_path):
        """Pre-versioning checkpoints (no ``meta_format`` key) report
        version 0 and are rejected as stale rather than guessed at."""
        model = TealModel(b4_pathset, seed=0)
        path = save_model(model, tmp_path / "model")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "meta_format"}
        np.savez(path, **payload)
        with pytest.raises(ModelError, match="schema version 0"):
            load_model(TealModel(b4_pathset, seed=0), path)

    def test_harness_retrains_past_a_stale_checkpoint(self, tmp_path):
        """A stale on-disk model is a warning + retrain, never a crash
        and never a silent load of the stale weights."""
        from repro.config import TrainingConfig
        from repro.core.checkpoint import CHECKPOINT_FORMAT
        from repro.harness import build_scenario, clear_caches, trained_teal

        config = TrainingConfig(steps=1, warm_start_steps=2, log_every=10)
        kwargs = dict(max_pairs=20, train=2, validation=1, test=1,
                      cache_dir=tmp_path)
        scenario = build_scenario("B4", seed=0, **kwargs)
        trained_teal(scenario, config=config, cache_dir=tmp_path)
        [checkpoint] = list(tmp_path.glob("teal-*.npz"))
        with np.load(checkpoint) as data:
            payload = {k: data[k] for k in data.files}
        payload["meta_format"] = np.array(CHECKPOINT_FORMAT + 1)
        np.savez(checkpoint, **payload)

        clear_caches()  # force the disk tier
        scenario = build_scenario("B4", seed=0, **kwargs)
        with pytest.warns(RuntimeWarning, match="retraining"):
            teal = trained_teal(scenario, config=config, cache_dir=tmp_path)
        assert teal.trained
        # The retrain re-saved a freshly stamped checkpoint.
        with np.load(checkpoint) as data:
            assert int(data["meta_format"]) == CHECKPOINT_FORMAT

    def test_transfer_weights_across_topologies(self, b4_pathset):
        """Teal's weights are topology-size agnostic (§3.2-§3.3, §4)."""
        other_topology = swan(num_nodes=15, seed=2, capacity=90.0)
        other_pathset = PathSet.from_topology(other_topology)
        source = TealModel(b4_pathset, seed=0)
        target = TealModel(other_pathset, seed=1)
        copied = transfer_weights(source, target)
        assert copied == len(source.parameters())
        for a, b in zip(source.parameters(), target.parameters()):
            assert np.allclose(a.data, b.data)

    def test_transfer_rejects_different_architectures(self, b4_pathset):
        from repro.config import TealHyperparameters

        source = TealModel(b4_pathset, seed=0)
        target = TealModel(
            b4_pathset, hyper=TealHyperparameters(num_gnn_layers=3), seed=0
        )
        with pytest.raises(ModelError):
            transfer_weights(source, target)


class TestRetraining:
    def test_retrain_for_new_topology(self):
        """§4: retraining warm-starts from the old weights and recovers
        performance on the updated topology quickly."""
        from repro.simulation import evaluate_allocation

        old_topology = b4(capacity=80.0)
        old_pathset = PathSet.from_topology(old_topology)
        trace = TrafficTrace.generate(12, 14, seed=6)
        teal = TealScheme(old_pathset, seed=0)
        teal.train(
            trace.matrices[:10],
            config=TrainingConfig(steps=10, warm_start_steps=80, log_every=30),
        )

        # Permanent change: add a node connected to sites 0 and 6.
        new_edges = old_topology.edges + [(0, 12), (12, 0), (6, 12), (12, 6)]
        new_topology = Topology(13, new_edges, capacities=80.0, name="B4+1")
        new_pathset = PathSet.from_topology(new_topology)
        new_trace = TrafficTrace.generate(13, 10, seed=7)

        retrained = teal.retrain_for(
            new_pathset,
            new_trace.matrices[:8],
            config=TrainingConfig(steps=5, warm_start_steps=30, log_every=10),
        )
        demands = new_pathset.demand_volumes(new_trace[9].values)
        allocation = retrained.allocate(new_pathset, demands)
        report = evaluate_allocation(
            new_pathset, allocation.split_ratios, demands
        )
        assert report.satisfied_fraction > 0.4
        assert retrained.pathset is new_pathset

    def test_warm_start_better_than_cold_at_same_budget(self):
        """The value of §4's warm start: same tiny budget, better result."""
        from repro.lp import TotalFlowObjective

        topology = b4(capacity=60.0)
        pathset = PathSet.from_topology(topology)
        trace = TrafficTrace.generate(12, 16, seed=8)
        budget = TrainingConfig(steps=0, warm_start_steps=15, log_every=10)

        donor = TealScheme(pathset, seed=0)
        donor.train(
            trace.matrices[:10],
            config=TrainingConfig(steps=0, warm_start_steps=150, log_every=50),
        )
        warm = donor.retrain_for(pathset, trace.matrices[:10], config=budget)
        cold = TealScheme(pathset, seed=5)
        cold.train(trace.matrices[:10], config=budget)

        objective = TotalFlowObjective()
        demands = pathset.demand_volumes(trace[12].values)
        warm_value = objective.evaluate(
            pathset, warm.allocate(pathset, demands).split_ratios, demands
        )
        cold_value = objective.evaluate(
            pathset, cold.allocate(pathset, demands).split_ratios, demands
        )
        assert warm_value >= cold_value * 0.95


class TestTopologyIo:
    def test_roundtrip(self, tmp_path):
        topology = swan(num_nodes=12, seed=4, capacity=55.0)
        path = save_topology(topology, tmp_path / "swan")
        loaded = load_topology(path)
        assert loaded == topology
        assert loaded.name == topology.name

    def test_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError):
            load_topology(bad)

    def test_unknown_format(self, tmp_path):
        bad = tmp_path / "v99.json"
        bad.write_text('{"format": 99}')
        with pytest.raises(ReproError):
            load_topology(bad)


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        trace = TrafficTrace.generate(8, 6, seed=11)
        path = save_trace(trace, tmp_path / "trace")
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.interval == b.interval
            assert np.allclose(a.values, b.values)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.npz")
