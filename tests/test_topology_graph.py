"""Unit tests for the Topology substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology import Topology


def test_basic_construction():
    topo = Topology(3, [(0, 1), (1, 2), (2, 0)], capacities=5.0)
    assert topo.num_nodes == 3
    assert topo.num_edges == 3
    assert topo.capacity(0, 1) == 5.0
    assert topo.edge_id(1, 2) == 1
    assert topo.endpoints(2) == (2, 0)


def test_per_edge_capacities_and_latencies():
    topo = Topology(
        3,
        [(0, 1), (1, 2)],
        capacities=[1.0, 2.0],
        latencies=[3.0, 4.0],
    )
    assert topo.capacities.tolist() == [1.0, 2.0]
    assert topo.latencies.tolist() == [3.0, 4.0]


def test_rejects_self_loop():
    with pytest.raises(TopologyError):
        Topology(2, [(0, 0)])


def test_rejects_duplicate_edge():
    with pytest.raises(TopologyError):
        Topology(2, [(0, 1), (0, 1)])


def test_rejects_out_of_range_node():
    with pytest.raises(TopologyError):
        Topology(2, [(0, 2)])


def test_rejects_negative_capacity():
    with pytest.raises(TopologyError):
        Topology(2, [(0, 1)], capacities=[-1.0])


def test_rejects_capacity_shape_mismatch():
    with pytest.raises(TopologyError):
        Topology(2, [(0, 1)], capacities=[1.0, 2.0])


def test_rejects_nonpositive_num_nodes():
    with pytest.raises(TopologyError):
        Topology(0, [])


def test_missing_edge_raises():
    topo = Topology(3, [(0, 1)])
    with pytest.raises(TopologyError):
        topo.edge_id(1, 0)


def test_adjacency_indexes():
    topo = Topology(3, [(0, 1), (0, 2), (1, 2)])
    assert topo.out_edges(0) == [(0, 1), (1, 2)]
    assert topo.in_edges(2) == [(1, 0), (2, 1)]
    assert sorted(topo.neighbors(0)) == [1, 2]


def test_with_failed_edges_zeroes_capacity():
    topo = Topology(3, [(0, 1), (1, 2)], capacities=7.0)
    failed = topo.with_failed_edges([0])
    assert failed.capacities[0] == 0.0
    assert failed.capacities[1] == 7.0
    # Original untouched.
    assert topo.capacities[0] == 7.0


def test_with_failed_edges_bad_id():
    topo = Topology(3, [(0, 1)])
    with pytest.raises(TopologyError):
        topo.with_failed_edges([5])


def test_scaled_capacities():
    topo = Topology(2, [(0, 1)], capacities=4.0)
    assert topo.scaled_capacities(0.5).capacities[0] == 2.0
    with pytest.raises(TopologyError):
        topo.scaled_capacities(-1.0)


def test_networkx_roundtrip():
    topo = Topology(
        3, [(0, 1), (1, 2)], capacities=[1.0, 2.0], latencies=[5.0, 6.0]
    )
    back = Topology.from_networkx(topo.to_networkx(), name="rt")
    assert back == topo


def test_strong_connectivity(b4_topology):
    assert b4_topology.is_strongly_connected()


def test_equality_and_repr():
    a = Topology(2, [(0, 1)], capacities=1.0, name="a")
    b = Topology(2, [(0, 1)], capacities=1.0, name="b")
    c = Topology(2, [(0, 1)], capacities=2.0)
    assert a == b  # names do not affect equality
    assert a != c
    assert "nodes=2" in repr(a)


def test_total_capacity():
    topo = Topology(3, [(0, 1), (1, 2)], capacities=[1.5, 2.5])
    assert topo.total_capacity() == pytest.approx(4.0)
