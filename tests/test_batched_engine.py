"""Equivalence tests for the batched multi-matrix inference engine.

Every batched path must reproduce its per-TM counterpart to tight
tolerance: the evaluator, the FlowGNN forward, Teal's allocate, and the
online replay. A fixed-seed B4 scenario anchors the end-to-end check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TealScheme
from repro.core.model import TealModel
from repro.simulation import (
    Allocation,
    OnlineSimulator,
    evaluate_allocation,
    evaluate_allocations_batch,
)

TOL = 1e-8


class DeterministicScheme:
    """Demand-aware allocation with a fixed compute time (no timing noise).

    Deterministic by construction, so the batched and streaming replays
    must agree exactly — including staleness decisions.
    """

    name = "deterministic"

    def __init__(self, compute_time: float = 0.0) -> None:
        self.compute_time = compute_time

    def allocate(self, pathset, demands, capacities=None):
        weights = (1.0 + np.arange(pathset.max_paths))[None, :] * (
            1.0 + demands[:, None] / (1.0 + demands.max())
        )
        weights = weights * pathset.path_mask
        ratios = weights / np.maximum(weights.sum(axis=1, keepdims=True), 1e-12)
        return Allocation(
            split_ratios=ratios, compute_time=self.compute_time, scheme=self.name
        )


@pytest.fixture(scope="module")
def ratio_stack(b4_pathset):
    rng = np.random.default_rng(123)
    T = 7
    ratios = rng.random((T, b4_pathset.num_demands, b4_pathset.max_paths))
    demands = 50.0 * rng.random((T, b4_pathset.num_demands))
    return ratios, demands


class TestBatchedEvaluator:
    def test_matches_looped_evaluation(self, b4_pathset, ratio_stack):
        ratios, demands = ratio_stack
        batch = evaluate_allocations_batch(b4_pathset, ratios, demands)
        for t in range(len(batch)):
            single = evaluate_allocation(b4_pathset, ratios[t], demands[t])
            assert batch.satisfied_fraction[t] == pytest.approx(
                single.satisfied_fraction, abs=TOL
            )
            assert batch.delivered_total[t] == pytest.approx(
                single.delivered_total, abs=TOL
            )
            assert np.allclose(
                batch.delivered_path_flows[t], single.delivered_path_flows, atol=TOL
            )
            assert np.allclose(batch.edge_loads[t], single.edge_loads, atol=TOL)
            assert batch.max_link_utilization[t] == pytest.approx(
                single.max_link_utilization, abs=TOL
            )
            assert batch.intended_mlu[t] == pytest.approx(
                single.intended_mlu, abs=TOL
            )

    def test_per_matrix_capacities(self, b4_pathset, ratio_stack):
        ratios, demands = ratio_stack
        rng = np.random.default_rng(7)
        caps = b4_pathset.topology.capacities * (
            0.5 + rng.random((ratios.shape[0], b4_pathset.topology.num_edges))
        )
        batch = evaluate_allocations_batch(b4_pathset, ratios, demands, caps)
        for t in range(len(batch)):
            single = evaluate_allocation(b4_pathset, ratios[t], demands[t], caps[t])
            assert batch.satisfied_fraction[t] == pytest.approx(
                single.satisfied_fraction, abs=TOL
            )

    def test_zero_capacity_links(self, b4_pathset, ratio_stack):
        ratios, demands = ratio_stack
        caps = b4_pathset.topology.capacities.copy()
        caps[:5] = 0.0
        batch = evaluate_allocations_batch(b4_pathset, ratios, demands, caps)
        for t in range(len(batch)):
            single = evaluate_allocation(b4_pathset, ratios[t], demands[t], caps)
            assert batch.satisfied_fraction[t] == pytest.approx(
                single.satisfied_fraction, abs=TOL
            )

    def test_zero_demand_rows(self, b4_pathset):
        ratios = np.full((2, b4_pathset.num_demands, b4_pathset.max_paths), 0.25)
        demands = np.zeros((2, b4_pathset.num_demands))
        demands[1, 0] = 10.0
        batch = evaluate_allocations_batch(b4_pathset, ratios, demands)
        assert batch.satisfied_fraction[0] == 0.0
        assert batch.delivered_total[0] == 0.0
        assert batch.satisfied_fraction[1] > 0.0

    def test_empty_batch(self, b4_pathset):
        batch = evaluate_allocations_batch(
            b4_pathset,
            np.zeros((0, b4_pathset.num_demands, b4_pathset.max_paths)),
            np.zeros((0, b4_pathset.num_demands)),
        )
        assert len(batch) == 0
        assert batch.satisfied_fraction.shape == (0,)
        assert batch.reports() == []

    def test_report_roundtrip(self, b4_pathset, ratio_stack):
        ratios, demands = ratio_stack
        batch = evaluate_allocations_batch(b4_pathset, ratios, demands)
        reports = batch.reports()
        assert len(reports) == len(batch)
        assert reports[0].satisfied_fraction == pytest.approx(
            float(batch.satisfied_fraction[0])
        )


class TestBatchedPathSetAlgebra:
    def test_split_ratios_to_path_flows_batch(self, b4_pathset, ratio_stack):
        ratios, demands = ratio_stack
        flows = b4_pathset.split_ratios_to_path_flows_batch(ratios, demands)
        for t in range(ratios.shape[0]):
            assert np.allclose(
                flows[t],
                b4_pathset.split_ratios_to_path_flows(ratios[t], demands[t]),
                atol=TOL,
            )

    def test_edge_loads_batch(self, b4_pathset):
        rng = np.random.default_rng(5)
        flows = rng.random((4, b4_pathset.num_paths))
        loads = b4_pathset.edge_loads_batch(flows)
        for t in range(4):
            assert np.allclose(loads[t], b4_pathset.edge_loads(flows[t]), atol=TOL)

    def test_demand_volumes_batch(self, b4_pathset, b4_trace):
        stack = np.stack([m.values for m in b4_trace.matrices[:4]])
        batched = b4_pathset.demand_volumes_batch(stack)
        for t in range(4):
            assert np.allclose(
                batched[t], b4_pathset.demand_volumes(stack[t]), atol=TOL
            )


class TestBatchedModelForward:
    def test_split_ratios_batch_matches_loop(self, b4_pathset, b4_trace):
        model = TealModel(b4_pathset, seed=3)
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace.matrices[:5]]
        )
        caps = b4_pathset.topology.capacities
        batched = model.split_ratios_batch(demands, caps)
        looped = np.stack(
            [model.split_ratios(demands[t], caps) for t in range(5)]
        )
        assert np.allclose(batched, looped, atol=TOL)

    def test_flowgnn_forward_batch_matches_loop(self, b4_pathset, b4_trace):
        model = TealModel(b4_pathset, seed=3)
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace.matrices[:3]]
        )
        rng = np.random.default_rng(17)
        caps = b4_pathset.topology.capacities * (
            0.5 + rng.random((3, b4_pathset.topology.num_edges))
        )
        batched = model.flow_gnn.forward_batch(demands, caps).numpy()
        for t in range(3):
            looped = model.flow_gnn(demands[t], caps[t]).numpy()
            assert np.allclose(batched[t], looped, atol=TOL)

    def test_teal_allocate_batch_matches_loop(self, b4_pathset, b4_trace):
        teal = TealScheme(b4_pathset, seed=5)
        demands = np.stack(
            [b4_pathset.demand_volumes(m.values) for m in b4_trace.matrices[:4]]
        )
        batched = teal.allocate_batch(b4_pathset, demands)
        assert len(batched) == 4
        for t, allocation in enumerate(batched):
            single = teal.allocate(b4_pathset, demands[t])
            assert np.allclose(
                allocation.split_ratios, single.split_ratios, atol=TOL
            )
            assert allocation.extras["batched"] is True
            assert allocation.extras["batch_size"] == 4

    def test_allocate_batch_empty(self, b4_pathset):
        teal = TealScheme(b4_pathset, seed=5)
        assert teal.allocate_batch(
            b4_pathset, np.zeros((0, b4_pathset.num_demands))
        ) == []


class TestOnlineReplayEquivalence:
    """The rewired replay must match the streaming loop interval-for-interval."""

    @pytest.mark.parametrize("compute_time", [0.0, 450.0, 950.0])
    def test_deterministic_scheme(self, b4_pathset, b4_trace, compute_time):
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        scheme = DeterministicScheme(compute_time)
        matrices = b4_trace.matrices[:8]
        streaming = sim.run(scheme, matrices, batched=False)
        batched = sim.run(scheme, matrices, batched=True)
        for before, after in zip(streaming.intervals, batched.intervals):
            assert after.satisfied_fraction == pytest.approx(
                before.satisfied_fraction, abs=TOL
            )
            assert after.allocation_age == before.allocation_age
            assert after.stale == before.stale
            assert after.compute_time == pytest.approx(before.compute_time)

    def test_with_failure_injection(self, b4_pathset, b4_trace):
        caps = b4_pathset.topology.capacities.copy()
        failed = caps.copy()
        failed[:8] = 0.0
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        scheme = DeterministicScheme(400.0)
        matrices = b4_trace.matrices[:8]
        streaming = sim.run(
            scheme, matrices, failure_at=3, failed_capacities=failed, batched=False
        )
        batched = sim.run(
            scheme, matrices, failure_at=3, failed_capacities=failed, batched=True
        )
        assert np.allclose(
            streaming.satisfied_series(), batched.satisfied_series(), atol=TOL
        )

    def test_teal_scheme_replay(self, b4_pathset, b4_trace):
        """Fixed-seed B4 + Teal: batched replay equals the streaming one.

        A huge interval keeps every allocation fresh, so timing noise in
        measured compute times cannot flip staleness decisions and the
        series must agree to float tolerance.
        """
        teal = TealScheme(b4_pathset, seed=11, use_admm=False)
        sim = OnlineSimulator(b4_pathset, interval_seconds=1e9)
        matrices = b4_trace.matrices[:6]
        streaming = sim.run(teal, matrices, batched=False)
        batched = sim.run(teal, matrices, batched=True)
        assert np.allclose(
            streaming.satisfied_series(), batched.satisfied_series(), atol=TOL
        )
        assert batched.stale_fraction == streaming.stale_fraction == 0.0

    def test_duck_typed_scheme_without_allocate_batch(self, b4_pathset, b4_trace):
        """Schemes exposing only ``allocate`` still work in batched mode."""
        sim = OnlineSimulator(b4_pathset, interval_seconds=300.0)
        result = sim.run(DeterministicScheme(1.0), b4_trace.matrices[:3])
        assert len(result.intervals) == 3
        assert result.stale_fraction == 0.0


class TestPaddedPathsetBatch:
    """Demands with fewer than k paths (padding slots) through the batch."""

    @pytest.fixture(scope="class")
    def padded_pathset(self):
        from repro.paths import PathSet
        from repro.topology import Topology

        edges = [
            (0, 1), (1, 3), (0, 2), (2, 3), (0, 3),
            (1, 0), (3, 1), (2, 0), (3, 2), (3, 0),
        ]
        topo = Topology(4, edges, capacities=10.0, name="diamond")
        return PathSet.from_topology(topo, pairs=[(0, 3), (1, 2)])

    def test_model_batch_with_padding(self, padded_pathset):
        assert not padded_pathset.path_mask.all()  # padding present
        model = TealModel(padded_pathset, seed=0)
        demands = np.array([[4.0, 2.0], [0.0, 0.0], [9.0, 1.0]])
        batched = model.split_ratios_batch(demands)
        looped = np.stack([model.split_ratios(d) for d in demands])
        assert np.allclose(batched, looped, atol=TOL)
        # Padding slots receive zero mass in every batch element.
        assert np.allclose(batched[:, ~padded_pathset.path_mask], 0.0)

    def test_evaluator_batch_with_padding(self, padded_pathset):
        ratios = np.full((3, padded_pathset.num_demands, padded_pathset.max_paths), 0.5)
        demands = np.array([[4.0, 2.0], [0.0, 0.0], [30.0, 30.0]])
        batch = evaluate_allocations_batch(padded_pathset, ratios, demands)
        for t in range(3):
            single = evaluate_allocation(padded_pathset, ratios[t], demands[t])
            assert batch.satisfied_fraction[t] == pytest.approx(
                single.satisfied_fraction, abs=TOL
            )
