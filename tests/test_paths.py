"""Tests for k-shortest paths and PathSet incidence structures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PathError
from repro.paths import (
    PathSet,
    ShortestPathOracle,
    all_ordered_pairs,
    k_shortest_paths_deviation,
    k_shortest_paths_yen,
    path_cost,
    sampled_pairs,
)
from repro.topology import Topology


class TestShortestPathOracle:
    def test_shortest_path_matches_bfs(self, b4_topology):
        oracle = ShortestPathOracle(b4_topology, weight="hops")
        path = oracle.path(0, 11)
        assert path is not None
        assert path[0] == 0 and path[-1] == 11
        # B4 diameter is 5 (Table 3); 0 -> 11 must be within it.
        assert len(path) - 1 <= 5

    def test_unreachable_returns_none(self):
        topo = Topology(3, [(0, 1)])  # 2 unreachable from 0
        oracle = ShortestPathOracle(topo)
        assert oracle.path(0, 2) is None

    def test_reverse_path_consistent(self, b4_topology):
        oracle = ShortestPathOracle(b4_topology)
        forward = oracle.path(2, 9)
        backward = oracle.reverse_path(2, 9)
        assert forward is not None and backward is not None
        assert path_cost(b4_topology, forward, oracle.weights) == pytest.approx(
            path_cost(b4_topology, backward, oracle.weights)
        )


class TestKShortestPaths:
    def test_paths_are_simple_and_sorted(self, b4_topology):
        oracle = ShortestPathOracle(b4_topology)
        paths = k_shortest_paths_deviation(oracle, 0, 11, 4)
        assert 1 <= len(paths) <= 4
        costs = [path_cost(b4_topology, p, oracle.weights) for p in paths]
        assert costs == sorted(costs)
        for p in paths:
            assert len(p) == len(set(p))
            assert p[0] == 0 and p[-1] == 11

    def test_paths_distinct(self, b4_topology):
        oracle = ShortestPathOracle(b4_topology)
        paths = k_shortest_paths_deviation(oracle, 1, 10, 4)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_first_path_is_shortest(self, b4_topology):
        """The deviation algorithm's first path must be the true shortest."""
        oracle = ShortestPathOracle(b4_topology)
        for s, t in [(0, 7), (3, 11), (5, 0)]:
            dev = k_shortest_paths_deviation(oracle, s, t, 4)
            yen = k_shortest_paths_yen(b4_topology, s, t, 1)
            dev_cost = path_cost(b4_topology, dev[0], oracle.weights)
            yen_cost = path_cost(b4_topology, yen[0], oracle.weights)
            assert dev_cost == pytest.approx(yen_cost)

    def test_deviation_close_to_yen(self, b4_topology):
        """Deviation path costs should track exact Yen within a small factor."""
        oracle = ShortestPathOracle(b4_topology)
        for s, t in [(0, 11), (2, 9)]:
            dev = k_shortest_paths_deviation(oracle, s, t, 4)
            yen = k_shortest_paths_yen(b4_topology, s, t, 4)
            dev_total = sum(path_cost(b4_topology, p, oracle.weights) for p in dev)
            yen_total = sum(path_cost(b4_topology, p, oracle.weights) for p in yen)
            assert dev_total <= yen_total * 1.5

    def test_same_source_destination_raises(self, b4_topology):
        oracle = ShortestPathOracle(b4_topology)
        with pytest.raises(PathError):
            k_shortest_paths_deviation(oracle, 3, 3, 4)
        with pytest.raises(PathError):
            k_shortest_paths_yen(b4_topology, 3, 3, 4)


class TestPairHelpers:
    def test_all_ordered_pairs(self):
        pairs = all_ordered_pairs(3)
        assert len(pairs) == 6
        assert (0, 0) not in pairs

    def test_sampled_pairs_deterministic(self):
        a = sampled_pairs(20, 50, seed=1)
        b = sampled_pairs(20, 50, seed=1)
        assert a == b
        assert len(a) == 50

    def test_sampled_pairs_no_truncation_needed(self):
        assert len(sampled_pairs(3, 100)) == 6


class TestPathSet:
    def test_from_topology_all_pairs(self, b4_pathset):
        assert b4_pathset.num_demands == 12 * 11
        assert b4_pathset.max_paths == 4
        # Every demand has at least one path on a connected graph.
        assert b4_pathset.path_mask[:, 0].all()

    def test_incidence_shape_and_content(self, b4_pathset):
        incidence = b4_pathset.edge_path_incidence
        assert incidence.shape == (38, b4_pathset.num_paths)
        # Column sums equal path hop counts.
        col_sums = np.asarray(incidence.sum(axis=0)).reshape(-1)
        assert np.array_equal(col_sums, b4_pathset.path_hop_counts)

    def test_split_ratio_roundtrip(self, b4_pathset):
        rng = np.random.default_rng(0)
        demands = rng.uniform(1, 10, b4_pathset.num_demands)
        ratios = rng.uniform(0, 1, (b4_pathset.num_demands, 4))
        ratios /= ratios.sum(axis=1, keepdims=True)
        ratios = ratios * b4_pathset.path_mask
        flows = b4_pathset.split_ratios_to_path_flows(ratios, demands)
        back = b4_pathset.path_flows_to_split_ratios(flows, demands)
        assert np.allclose(back, ratios)

    def test_split_ratio_shape_validation(self, b4_pathset):
        with pytest.raises(PathError):
            b4_pathset.split_ratios_to_path_flows(
                np.zeros((3, 4)), np.zeros(b4_pathset.num_demands)
            )

    def test_edge_loads_additive(self, b4_pathset):
        flows_a = np.ones(b4_pathset.num_paths)
        flows_b = 2 * np.ones(b4_pathset.num_paths)
        loads = b4_pathset.edge_loads(flows_a + flows_b)
        assert np.allclose(
            loads, b4_pathset.edge_loads(flows_a) + b4_pathset.edge_loads(flows_b)
        )

    def test_demand_volumes_extraction(self, b4_pathset, b4_trace):
        demands = b4_pathset.demand_volumes(b4_trace[0].values)
        s, t = b4_pathset.pairs[5]
        assert demands[5] == b4_trace[0].values[s, t]

    def test_demand_volumes_shape_check(self, b4_pathset):
        with pytest.raises(PathError):
            b4_pathset.demand_volumes(np.ones((3, 3)))

    def test_shortest_path_loads(self, b4_pathset, b4_trace):
        loads = b4_pathset.shortest_path_loads(b4_trace[0].values)
        assert loads.shape == (38,)
        # Total load >= total demand (each unit traverses >= 1 edge).
        assert loads.sum() >= b4_trace[0].total_demand() - 1e-6

    def test_paths_of_demand(self, b4_pathset):
        paths = b4_pathset.paths_of_demand(0)
        s, t = b4_pathset.pairs[0]
        assert all(p[0] == s and p[-1] == t for p in paths)
        with pytest.raises(PathError):
            b4_pathset.paths_of_demand(10**6)

    def test_explicit_pairs_subset(self, b4_topology):
        ps = PathSet.from_topology(b4_topology, pairs=[(0, 5), (3, 9)])
        assert ps.num_demands == 2
        assert ps.pairs == [(0, 5), (3, 9)]

    def test_rejects_bad_path(self, b4_topology):
        with pytest.raises(PathError):
            PathSet(b4_topology, [(0, 5)], [[[0, 1, 2]]])  # wrong endpoint

    def test_rejects_too_many_paths(self, b4_topology):
        ps = PathSet.from_topology(b4_topology, pairs=[(0, 1)], max_paths=1)
        assert ps.max_paths == 1
        with pytest.raises(PathError):
            PathSet(
                b4_topology, [(0, 1)], [[[0, 1], [0, 2, 1]]], max_paths=1
            )

    def test_yen_algorithm_option(self, b4_topology):
        ps = PathSet.from_topology(
            b4_topology, pairs=[(0, 11)], algorithm="yen"
        )
        assert ps.num_demands == 1
        assert ps.path_mask[0].sum() == 4

    def test_unknown_algorithm(self, b4_topology):
        with pytest.raises(PathError):
            PathSet.from_topology(b4_topology, algorithm="bogus")
