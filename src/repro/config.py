"""Global configuration defaults for the Teal reproduction.

The values here mirror the constants reported in the paper (Section 4,
"Implementation of Teal") and the evaluation methodology (Section 5.1).
Every experiment accepts explicit overrides; this module only centralizes
the paper's defaults so benches and examples agree on them.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of precomputed candidate paths per demand (4 shortest paths, §2/§5.1).
NUM_PATHS_PER_DEMAND = 4

#: TE control interval in seconds (5 minutes, §1/§2).
TE_INTERVAL_SECONDS = 300.0

#: Train / validation / test split sizes in consecutive 5-minute intervals (§5.1).
TRAIN_INTERVALS = 700
VALIDATION_INTERVALS = 100
TEST_INTERVALS = 200

#: ADMM iteration counts (§4): 2 for topologies with <100 nodes, 5 otherwise.
ADMM_ITERS_SMALL = 2
ADMM_ITERS_LARGE = 5
ADMM_SMALL_TOPOLOGY_NODES = 100

#: FlowGNN architecture (§4): 6 GNN layers interleaved with 6 DNN layers,
#: final embedding dimension of 6 (grown by one element per layer).
FLOWGNN_NUM_LAYERS = 6

#: Policy network (§4): single hidden layer of 24 neurons; 24 inputs
#: (4 flow embeddings x 6 elements), 4 outputs followed by softmax.
POLICY_HIDDEN_SIZE = 24

#: Adam learning rate used for training Teal (§4).
LEARNING_RATE = 1e-4

#: LP-top ("demand pinning") allocates the top alpha% of demands with an LP (§5.1).
LP_TOP_ALPHA_PERCENT = 10.0

#: Fraction of total volume carried by the top 10% of demands in the
#: paper's production trace (§5.1) — our synthetic traffic is calibrated to it.
TOP10_VOLUME_SHARE = 0.884

#: POP replica counts per topology (§5.1).
POP_REPLICAS = {"B4": 1, "SWAN": 1, "UsCarrier": 4, "Kdl": 128, "ASN": 128}

#: POP client-splitting threshold (§5.1): demands larger than this fraction of
#: the per-replica capacity budget are split across replicas.
POP_SPLIT_THRESHOLD = 0.25


@dataclass(frozen=True)
class TealHyperparameters:
    """Hyperparameters for a Teal model, defaulting to the paper's values.

    Attributes:
        num_gnn_layers: Number of GNN layers (each followed by a DNN
            coordination layer) in FlowGNN.
        embedding_growth: Elements appended to the embedding per layer; the
            paper grows the embedding by one element per layer starting at 1.
        policy_hidden: Width of the policy network's single hidden layer.
        num_paths: Candidate paths per demand.
        learning_rate: Adam step size.
        action_log_std: Initial log standard deviation of the Gaussian policy
            used during COMA* training.
        counterfactual_samples: Monte-Carlo samples drawn to estimate the
            COMA* counterfactual baseline (Appendix B).
    """

    num_gnn_layers: int = FLOWGNN_NUM_LAYERS
    embedding_growth: int = 1
    policy_hidden: int = POLICY_HIDDEN_SIZE
    num_paths: int = NUM_PATHS_PER_DEMAND
    learning_rate: float = LEARNING_RATE
    action_log_std: float = -1.0
    counterfactual_samples: int = 4

    @property
    def embedding_dim(self) -> int:
        """Final embedding dimension produced by FlowGNN."""
        return 1 + self.embedding_growth * (self.num_gnn_layers - 1)

    @property
    def policy_input_dim(self) -> int:
        """Input width of the policy network (num_paths x embedding_dim)."""
        return self.num_paths * self.embedding_dim


@dataclass(frozen=True)
class AdmmConfig:
    """Configuration of the ADMM fine-tuning stage (§3.4, Appendix C).

    Attributes:
        iterations: Number of ADMM iterations; ``None`` selects the paper's
            default based on topology size (2 if <100 nodes else 5).
        rho: Augmented-Lagrangian penalty coefficient.
    """

    iterations: int | None = None
    rho: float = 3.0

    def resolve_iterations(self, num_nodes: int) -> int:
        """Return the iteration count for a topology of ``num_nodes`` nodes."""
        if self.iterations is not None:
            return self.iterations
        if num_nodes < ADMM_SMALL_TOPOLOGY_NODES:
            return ADMM_ITERS_SMALL
        return ADMM_ITERS_LARGE


@dataclass(frozen=True)
class TrainingConfig:
    """Budget and schedule for training a Teal model.

    The paper trains for ~a week on a GPU; this reproduction exposes the
    budget explicitly so tests/benches can train small instances to a
    plateau in seconds.

    Attributes:
        steps: Number of gradient steps (each step consumes one traffic
            matrix sampled from the training trace).
        warm_start_steps: Optional direct-loss (surrogate) pre-training steps
            executed before COMA* fine-tuning; 0 disables warm start.
        batch_demands: If set, subsample this many demands per step for the
            policy-gradient update (variance/time tradeoff on large graphs).
        batch_matrices: Traffic matrices consumed per gradient step. Both
            trainers run the whole minibatch through one batched forward
            (the training analogue of the paper's GPU batching); 1
            reproduces the classic one-matrix-per-step loop exactly.
        seed: RNG seed for action sampling and batching.
        log_every: Emit a progress record every this many steps.
        failure_rate: Probability per training step of sampling a
            failed-link capacity vector (failure augmentation). The paper
            handles transient failures without retraining (§5.3) because a
            week of training covers diverse capacity states; short CPU
            budgets approximate that coverage by explicit augmentation.
        max_training_failures: Cap on simultaneous augmented failures.
    """

    steps: int = 200
    warm_start_steps: int = 100
    batch_demands: int | None = None
    batch_matrices: int = 1
    seed: int = 0
    log_every: int = 50
    failure_rate: float = 0.0
    max_training_failures: int = 2


DEFAULT_HYPERPARAMETERS = TealHyperparameters()
DEFAULT_ADMM = AdmmConfig()
DEFAULT_TRAINING = TrainingConfig()
