"""Online TE simulation with control delay (§5.1 "satisfied demand", Fig 18).

The paper's headline metric is measured in a *practical online setting*:
a scheme that takes longer than the 5-minute interval to compute keeps
serving traffic with stale routes until its new allocation is ready.
:class:`OnlineSimulator` replays a traffic trace through that control
loop:

- at the start of interval ``t`` the scheme begins computing on matrix
  ``t``; the result becomes effective ``floor(compute_time / interval)``
  intervals later — a scheme that finishes within the interval budget
  deploys with delay 0 and serves interval ``t`` itself (§5.1's "within
  budget = fresh" semantics);
- each interval is evaluated with whatever allocation is currently
  deployed (initially: everything on shortest paths);
- link failures can be injected at a chosen interval, changing the
  capacities the schemes see *and* the capacities traffic experiences.

This reproduces both Figure 18's timeline and the mechanism behind
Figures 6b/9 (slow schemes lose demand while recomputing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import TE_INTERVAL_SECONDS
from ..exceptions import SimulationError
from ..nn.precision import EVALUATION_DTYPE
from ..paths.pathset import PathSet
from ..traffic.matrix import TrafficMatrix
from .evaluator import Allocation, evaluate_allocation, evaluate_allocations_batch


@dataclass(frozen=True)
class IntervalResult:
    """Outcome of one 5-minute interval in the online loop.

    Attributes:
        interval: Interval index in the replayed trace.
        satisfied_fraction: Delivered / offered demand this interval.
        allocation_age: Number of intervals since the deployed allocation
            was computed (0 = fresh routes).
        compute_time: Compute time of the allocation *started* this
            interval.
        stale: Whether the deployed allocation is older than one interval.
    """

    interval: int
    satisfied_fraction: float
    allocation_age: int
    compute_time: float
    stale: bool


@dataclass
class OnlineRunResult:
    """Aggregate of an online simulation run."""

    scheme: str
    intervals: list[IntervalResult] = field(default_factory=list)

    @property
    def mean_satisfied(self) -> float:
        """Mean per-interval satisfied fraction."""
        if not self.intervals:
            return 0.0
        return float(np.mean([r.satisfied_fraction for r in self.intervals]))

    @property
    def mean_compute_time(self) -> float:
        """Mean compute time per traffic matrix."""
        if not self.intervals:
            return 0.0
        return float(np.mean([r.compute_time for r in self.intervals]))

    @property
    def stale_fraction(self) -> float:
        """Fraction of intervals served by stale routes."""
        if not self.intervals:
            return 0.0
        return float(np.mean([r.stale for r in self.intervals]))

    def satisfied_series(self) -> np.ndarray:
        """(T,) satisfied fractions in interval order (Figure 18 series)."""
        return np.array([r.satisfied_fraction for r in self.intervals])


def interval_capacities(
    capacities: np.ndarray,
    num_intervals: int,
    failure_at: int | None = None,
    failed_capacities: np.ndarray | None = None,
) -> np.ndarray:
    """(T, E) per-interval capacity stack with an optional failure event.

    The single source of the failure-timeline semantics: nominal
    capacities up to ``failure_at``, failed capacities from then on.
    Shared by :meth:`OnlineSimulator.run` and the harness failure sweeps
    (which stack several of these into one batched forward).

    Raises:
        SimulationError: If ``failure_at`` is set without capacities
            (``np.asarray(None)`` would otherwise broadcast NaN rows).
    """
    capacities = np.asarray(capacities, dtype=EVALUATION_DTYPE)
    stack = np.broadcast_to(
        capacities, (num_intervals, capacities.shape[0])
    ).copy()
    if failure_at is not None:
        if failed_capacities is None:
            raise SimulationError(
                "failure_at requires failed_capacities"
            )
        failed = np.asarray(failed_capacities, dtype=EVALUATION_DTYPE)
        if failed.shape != capacities.shape:
            raise SimulationError(
                f"failed_capacities shape {failed.shape} != {capacities.shape}"
            )
        stack[failure_at:] = failed
    return stack


class DeploymentTracker:
    """Tracks which allocation is deployed as decisions complete (§5.1).

    The single implementation of the control loop's deployment
    semantics, shared by :meth:`OnlineSimulator._deployment_schedule`
    (whole-trace replay) and
    :class:`repro.simulation.streaming.StreamingEngine` (event-driven),
    so both agree bit for bit:

    - a decision started on interval ``t`` deploys
      ``floor(compute_time / interval)`` intervals later (0 = within
      budget = serves interval ``t`` itself);
    - when several in-flight decisions become ready, the one started on
      the *latest* interval wins;
    - a ready decision never replaces a deployment started later than
      it: a slow in-flight allocation must not regress routes to an
      older traffic matrix (e.g. interval 0 finishing at ``t = 2`` must
      not overwrite interval 1's fresh delay-0 deployment).

    Args:
        initial: The allocation deployed before any decision completes
            (the shortest-path default).
        interval_seconds: TE interval length.
    """

    def __init__(self, initial: Allocation, interval_seconds: float) -> None:
        self.interval_seconds = interval_seconds
        self.deployed = initial
        #: Interval whose matrix the deployed allocation was computed on.
        #: The pre-TE default predates every decision, so any completed
        #: decision may replace it.
        self.deployed_started = -1
        # _pending[i] = (ready_interval, started_interval, allocation)
        self._pending: list[tuple[int, int, Allocation]] = []

    def resolve(self, t: int) -> None:
        """Deploy the freshest allocation that finished computing by ``t``.

        Ready allocations older than the current deployment are
        discarded instead of deployed (the anti-regression guard).
        """
        ready = [p for p in self._pending if p[0] <= t]
        if ready:
            ready.sort(key=lambda p: p[1])
            if ready[-1][1] > self.deployed_started:
                self.deployed = ready[-1][2]
                self.deployed_started = ready[-1][1]
            self._pending = [p for p in self._pending if p[0] > t]

    def submit(self, t: int, allocation: Allocation) -> int:
        """Start ``allocation`` (computed on matrix ``t``); return its delay.

        A delay of 0 (compute time within the interval budget) deploys
        immediately; anything slower is queued until
        ``t + floor(compute_time / interval)``.
        """
        delay = int(
            np.floor(allocation.compute_time / self.interval_seconds)
        )
        if delay == 0:
            self.deployed = allocation
            self.deployed_started = t
        else:
            self._pending.append((t + delay, t, allocation))
        return delay

    def age(self, t: int) -> int:
        """Intervals since the deployed allocation was computed.

        The initial default counts as age ``t`` (computed "at interval
        0" for bookkeeping, matching the historical replay semantics).
        """
        return t - max(self.deployed_started, 0)


class OnlineSimulator:
    """Replays traffic through the TE control loop with computation delay.

    Args:
        pathset: The path set (fixed across the run).
        interval_seconds: TE interval length (paper: 300 s).
    """

    def __init__(
        self, pathset: PathSet, interval_seconds: float = TE_INTERVAL_SECONDS
    ) -> None:
        if interval_seconds <= 0:
            raise SimulationError("interval_seconds must be positive")
        self.pathset = pathset
        self.interval_seconds = interval_seconds

    def _initial_allocation(self) -> Allocation:
        """Everything on shortest paths — the pre-TE default routes."""
        ratios = np.zeros((self.pathset.num_demands, self.pathset.max_paths))
        ratios[:, 0] = 1.0
        return Allocation(split_ratios=ratios, scheme="shortest-path-default")

    def run(
        self,
        scheme,
        matrices: list[TrafficMatrix],
        capacities: np.ndarray | None = None,
        failure_at: int | None = None,
        failed_capacities: np.ndarray | None = None,
        batched: bool = True,
        allocations: list[Allocation] | None = None,
    ) -> OnlineRunResult:
        """Run the control loop over a trace.

        With ``batched=True`` (default) the replay is three vectorized
        stages instead of a per-interval Python loop:

        1. every interval's allocation is computed up front — via the
           scheme's ``allocate_batch`` (one batched forward for Teal) or a
           loop for schemes without one — which is equivalent because an
           allocation depends only on that interval's demands and
           capacities, never on the replay state;
        2. the deployment schedule (staleness, §5.1) is resolved in plain
           Python over the precomputed compute times;
        3. all intervals are scored in one
           :func:`evaluate_allocations_batch` call.

        ``batched=False`` preserves the original streaming loop as a
        reference path (equivalence-tested against the batched one).

        Args:
            scheme: A :class:`~repro.baselines.base.TEScheme` (or any
                object with a compatible ``allocate``).
            matrices: Consecutive traffic matrices to replay.
            capacities: Nominal capacities (default: topology's).
            failure_at: Interval index at which failures strike (optional).
            failed_capacities: Capacities in effect from ``failure_at`` on.
            batched: Use the vectorized replay (default) or the
                interval-by-interval reference loop.
            allocations: Optional precomputed per-interval allocations
                (e.g. a slice of one big ``allocate_batch`` covering
                several failure scenarios, see
                :func:`repro.harness.run_online_failure_sweep`); skips
                the allocation stage but keeps scoring and staleness.

        Returns:
            An :class:`OnlineRunResult` with per-interval records.

        Raises:
            SimulationError: On empty traces or inconsistent failure args.
        """
        if not matrices:
            raise SimulationError("online run needs at least one matrix")
        if (failure_at is None) != (failed_capacities is None):
            raise SimulationError(
                "failure_at and failed_capacities must be provided together"
            )
        if capacities is None:
            capacities = self.pathset.topology.capacities

        num_intervals = len(matrices)
        caps_per_interval = interval_capacities(
            capacities, num_intervals, failure_at, failed_capacities
        )
        demands_all = self.pathset.demand_volumes_batch(
            np.stack([m.values for m in matrices])
        )

        if allocations is None:
            allocations = self._compute_allocations(
                scheme, demands_all, caps_per_interval, batched
            )
        elif len(allocations) != num_intervals:
            raise SimulationError(
                f"{len(allocations)} precomputed allocations for "
                f"{num_intervals} intervals"
            )
        deployed_ratios, ages = self._deployment_schedule(allocations)

        results = OnlineRunResult(scheme=getattr(scheme, "name", "scheme"))
        if batched:
            batch_report = evaluate_allocations_batch(
                self.pathset, deployed_ratios, demands_all, caps_per_interval
            )
            satisfied = batch_report.satisfied_fraction
        else:
            satisfied = np.array(
                [
                    evaluate_allocation(
                        self.pathset,
                        deployed_ratios[t],
                        demands_all[t],
                        caps_per_interval[t],
                    ).satisfied_fraction
                    for t in range(num_intervals)
                ]
            )
        for t in range(num_intervals):
            results.intervals.append(
                IntervalResult(
                    interval=t,
                    satisfied_fraction=float(satisfied[t]),
                    allocation_age=int(ages[t]),
                    compute_time=allocations[t].compute_time,
                    stale=bool(ages[t] > 0),
                )
            )
        return results

    def _compute_allocations(
        self,
        scheme,
        demands_all: np.ndarray,
        caps_per_interval: np.ndarray,
        batched: bool,
    ) -> list[Allocation]:
        """Per-interval allocations, via ``allocate_batch`` when available."""
        allocate_batch = getattr(scheme, "allocate_batch", None)
        if batched and allocate_batch is not None:
            return allocate_batch(self.pathset, demands_all, caps_per_interval)
        return [
            scheme.allocate(self.pathset, demands_all[t], caps_per_interval[t])
            for t in range(demands_all.shape[0])
        ]

    def _deployment_schedule(
        self, allocations: list[Allocation]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve which allocation serves each interval (§5.1 staleness).

        Interval ``t`` kicks off computation on matrix ``t``; the result
        deploys ``floor(compute_time / interval)`` intervals later (0 =
        within budget = serves interval ``t`` itself). Deployment
        semantics — including the guard against a slow in-flight
        allocation regressing routes to an older matrix — live in
        :class:`DeploymentTracker`. Returns the stacked (T, D, k)
        deployed ratios and the (T,) allocation ages.
        """
        num_intervals = len(allocations)
        tracker = DeploymentTracker(
            self._initial_allocation(), self.interval_seconds
        )
        ratios = np.empty(
            (num_intervals, self.pathset.num_demands, self.pathset.max_paths)
        )
        ages = np.empty(num_intervals, dtype=int)

        for t in range(num_intervals):
            tracker.resolve(t)
            tracker.submit(t, allocations[t])
            ratios[t] = tracker.deployed.split_ratios
            ages[t] = tracker.age(t)
        return ratios, ages
