"""Feasible-flow evaluation: turning split ratios into delivered traffic.

The paper's headline metric is *satisfied demand*: the fraction of total
demand actually delivered once link capacities are enforced. Neural
outputs (and merged subproblem solutions) may oversubscribe links; the
paper reconciles by "proportionally dropping traffic from each flow"
(§3.3). Concretely, every flow traversing an overloaded link is scaled by
the reciprocal of its bottleneck overutilization:

    delivered(p) = intended(p) / max(1, max_{e in p} load(e) / capacity(e))

which never exceeds any capacity (property-tested) and reduces to the
identity for feasible inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError
from ..paths.pathset import PathSet

#: Utilization assigned to flows crossing a zero-capacity (failed) link.
_INFINITE_UTILIZATION = np.inf


@dataclass(frozen=True)
class Allocation:
    """A TE decision: per-demand split ratios plus bookkeeping.

    Attributes:
        split_ratios: (D, k) array; row d gives the fraction of demand d
            placed on each of its candidate paths (padding slots ignored).
        compute_time: Wall-clock seconds the scheme spent producing this
            allocation (drives the online stale-route simulation).
        scheme: Name of the producing scheme (for reports).
        extras: Free-form diagnostic values (e.g. LP iterations).
    """

    split_ratios: np.ndarray
    compute_time: float = 0.0
    scheme: str = "unknown"
    extras: dict = field(default_factory=dict)

    def clipped(self) -> "Allocation":
        """Return a copy with ratios clipped to [0, 1] and row sums <= 1."""
        ratios = np.clip(self.split_ratios, 0.0, 1.0)
        sums = ratios.sum(axis=1, keepdims=True)
        scale = np.where(sums > 1.0, sums, 1.0)
        return Allocation(ratios / scale, self.compute_time, self.scheme, self.extras)


@dataclass(frozen=True)
class FlowReport:
    """Outcome of evaluating an allocation against capacities.

    Attributes:
        delivered_path_flows: (P,) flow actually delivered on each path.
        intended_path_flows: (P,) flow requested on each path.
        edge_loads: (E,) post-reconciliation link loads.
        total_demand: Sum of all demands.
        delivered_total: Total delivered flow.
        satisfied_fraction: delivered_total / total_demand (0 if no demand).
        max_link_utilization: Max post-reconciliation load/capacity.
        intended_mlu: Max utilization *before* reconciliation (constraint
            violation indicator).
    """

    delivered_path_flows: np.ndarray
    intended_path_flows: np.ndarray
    edge_loads: np.ndarray
    total_demand: float
    delivered_total: float
    satisfied_fraction: float
    max_link_utilization: float
    intended_mlu: float


def path_bottleneck_utilization(
    pathset: PathSet, intended_flows: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Max utilization along each path given intended (pre-drop) flows.

    Paths that traverse a zero-capacity link while carrying flow get
    infinite utilization (their traffic is fully dropped); zero-capacity
    links with zero load contribute nothing.
    """
    loads = pathset.edge_loads(intended_flows)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            capacities > 0,
            loads / np.maximum(capacities, 1e-300),
            np.where(loads > 0, _INFINITE_UTILIZATION, 0.0),
        )
    incidence = pathset.edge_path_incidence.tocsc()
    bottleneck = np.zeros(pathset.num_paths)
    for p in range(pathset.num_paths):
        edges = incidence.indices[incidence.indptr[p] : incidence.indptr[p + 1]]
        if edges.size:
            bottleneck[p] = util[edges].max()
    return bottleneck


def _path_max_utilization(pathset: PathSet, util: np.ndarray) -> np.ndarray:
    """Vectorized per-path max of per-edge utilizations."""
    # Max over the sparse rows of incidence^T: use a masked trick — for
    # non-negative utilizations, max over a path's edges equals the max of
    # util restricted to its edge set; compute via repeated sparse argmax
    # would be slow, so use the COO expansion once.
    coo = pathset.edge_path_incidence.tocoo()
    bottleneck = np.zeros(pathset.num_paths)
    np.maximum.at(bottleneck, coo.col, util[coo.row])
    return bottleneck


def evaluate_allocation(
    pathset: PathSet,
    split_ratios: np.ndarray,
    demands: np.ndarray,
    capacities: np.ndarray | None = None,
) -> FlowReport:
    """Evaluate split ratios: enforce capacities and report delivered flow.

    Args:
        pathset: The path set (supplies incidence structures).
        split_ratios: (D, k) split ratios; negative values are clipped and
            rows summing above 1 are renormalized (demand constraint).
        demands: (D,) demand volumes.
        capacities: Per-edge capacities; defaults to the pathset topology's.

    Returns:
        A :class:`FlowReport`.

    Raises:
        SimulationError: On shape mismatches.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.shape != (pathset.num_demands,):
        raise SimulationError(
            f"demands shape {demands.shape} != ({pathset.num_demands},)"
        )
    if capacities is None:
        capacities = pathset.topology.capacities
    capacities = np.asarray(capacities, dtype=float)
    if capacities.shape != (pathset.topology.num_edges,):
        raise SimulationError("capacities shape mismatch")

    allocation = Allocation(np.asarray(split_ratios, dtype=float)).clipped()
    intended = pathset.split_ratios_to_path_flows(allocation.split_ratios, demands)

    pre_loads = pathset.edge_loads(intended)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            capacities > 0,
            pre_loads / np.maximum(capacities, 1e-300),
            np.where(pre_loads > 0, _INFINITE_UTILIZATION, 0.0),
        )
    bottleneck = _path_max_utilization(pathset, util)
    scale = 1.0 / np.maximum(bottleneck, 1.0)
    scale[~np.isfinite(scale)] = 0.0
    delivered = intended * scale
    post_loads = pathset.edge_loads(delivered)

    with np.errstate(divide="ignore", invalid="ignore"):
        post_util = np.where(
            capacities > 0,
            post_loads / np.maximum(capacities, 1e-300),
            np.where(post_loads > 1e-9, _INFINITE_UTILIZATION, 0.0),
        )
    total_demand = float(demands.sum())
    delivered_total = float(delivered.sum())
    return FlowReport(
        delivered_path_flows=delivered,
        intended_path_flows=intended,
        edge_loads=post_loads,
        total_demand=total_demand,
        delivered_total=delivered_total,
        satisfied_fraction=(delivered_total / total_demand) if total_demand > 0 else 0.0,
        max_link_utilization=float(post_util.max()) if post_util.size else 0.0,
        intended_mlu=float(util.max()) if util.size else 0.0,
    )


def satisfied_demand_fraction(
    pathset: PathSet,
    split_ratios: np.ndarray,
    demands: np.ndarray,
    capacities: np.ndarray | None = None,
) -> float:
    """Shortcut for :func:`evaluate_allocation`'s satisfied fraction."""
    return evaluate_allocation(pathset, split_ratios, demands, capacities).satisfied_fraction
