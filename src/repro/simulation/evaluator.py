"""Feasible-flow evaluation: turning split ratios into delivered traffic.

The paper's headline metric is *satisfied demand*: the fraction of total
demand actually delivered once link capacities are enforced. Neural
outputs (and merged subproblem solutions) may oversubscribe links; the
paper reconciles by "proportionally dropping traffic from each flow"
(§3.3). Concretely, every flow traversing an overloaded link is scaled by
the reciprocal of its bottleneck overutilization:

    delivered(p) = intended(p) / max(1, max_{e in p} load(e) / capacity(e))

which never exceeds any capacity (property-tested) and reduces to the
identity for feasible inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError
from ..nn.precision import EVALUATION_DTYPE
from ..paths.pathset import PathSet
from ..topology.graph import broadcast_capacities

#: Utilization assigned to flows crossing a zero-capacity (failed) link.
_INFINITE_UTILIZATION = np.inf


@dataclass(frozen=True)
class Allocation:
    """A TE decision: per-demand split ratios plus bookkeeping.

    Attributes:
        split_ratios: (D, k) array; row d gives the fraction of demand d
            placed on each of its candidate paths (padding slots ignored).
        compute_time: Wall-clock seconds the scheme spent producing this
            allocation (drives the online stale-route simulation).
        scheme: Name of the producing scheme (for reports).
        extras: Free-form diagnostic values (e.g. LP iterations).
    """

    split_ratios: np.ndarray
    compute_time: float = 0.0
    scheme: str = "unknown"
    extras: dict = field(default_factory=dict)

    def clipped(self) -> "Allocation":
        """Return a copy with ratios clipped to [0, 1] and row sums <= 1."""
        return Allocation(
            _clip_ratios_batch(self.split_ratios),
            self.compute_time,
            self.scheme,
            self.extras,
        )


@dataclass(frozen=True)
class BatchFlowReport:
    """Outcome of evaluating a stack of allocations in one pass.

    Every attribute stacks the corresponding :class:`FlowReport` field
    along a leading batch axis of size T (the number of traffic
    matrices). Use :meth:`report` / :meth:`reports` to recover per-matrix
    views for APIs that expect single reports.

    Attributes:
        delivered_path_flows: (T, P) delivered flow per path.
        intended_path_flows: (T, P) requested flow per path.
        edge_loads: (T, E) post-reconciliation link loads.
        total_demand: (T,) offered demand per matrix.
        delivered_total: (T,) delivered flow per matrix.
        satisfied_fraction: (T,) delivered / offered (0 where no demand).
        max_link_utilization: (T,) post-reconciliation MLU.
        intended_mlu: (T,) pre-reconciliation MLU.
    """

    delivered_path_flows: np.ndarray
    intended_path_flows: np.ndarray
    edge_loads: np.ndarray
    total_demand: np.ndarray
    delivered_total: np.ndarray
    satisfied_fraction: np.ndarray
    max_link_utilization: np.ndarray
    intended_mlu: np.ndarray

    def __len__(self) -> int:
        return int(self.total_demand.shape[0])

    def report(self, index: int) -> "FlowReport":
        """The :class:`FlowReport` of one matrix in the batch."""
        return FlowReport(
            delivered_path_flows=self.delivered_path_flows[index],
            intended_path_flows=self.intended_path_flows[index],
            edge_loads=self.edge_loads[index],
            total_demand=float(self.total_demand[index]),
            delivered_total=float(self.delivered_total[index]),
            satisfied_fraction=float(self.satisfied_fraction[index]),
            max_link_utilization=float(self.max_link_utilization[index]),
            intended_mlu=float(self.intended_mlu[index]),
        )

    def reports(self) -> list["FlowReport"]:
        """Per-matrix :class:`FlowReport` views, in batch order."""
        return [self.report(i) for i in range(len(self))]

    def slice(self, start: int, stop: int) -> "BatchFlowReport":
        """A sub-batch view covering rows ``[start, stop)``.

        The cell-batched sweeps stack several grid cells' matrices into
        one evaluation pass and unstack per-cell reports with this; the
        returned report's arrays are views (no copies), identical row
        for row to evaluating the sub-batch alone.
        """
        return BatchFlowReport(
            delivered_path_flows=self.delivered_path_flows[start:stop],
            intended_path_flows=self.intended_path_flows[start:stop],
            edge_loads=self.edge_loads[start:stop],
            total_demand=self.total_demand[start:stop],
            delivered_total=self.delivered_total[start:stop],
            satisfied_fraction=self.satisfied_fraction[start:stop],
            max_link_utilization=self.max_link_utilization[start:stop],
            intended_mlu=self.intended_mlu[start:stop],
        )


@dataclass(frozen=True)
class FlowReport:
    """Outcome of evaluating an allocation against capacities.

    Attributes:
        delivered_path_flows: (P,) flow actually delivered on each path.
        intended_path_flows: (P,) flow requested on each path.
        edge_loads: (E,) post-reconciliation link loads.
        total_demand: Sum of all demands.
        delivered_total: Total delivered flow.
        satisfied_fraction: delivered_total / total_demand (0 if no demand).
        max_link_utilization: Max post-reconciliation load/capacity.
        intended_mlu: Max utilization *before* reconciliation (constraint
            violation indicator).
    """

    delivered_path_flows: np.ndarray
    intended_path_flows: np.ndarray
    edge_loads: np.ndarray
    total_demand: float
    delivered_total: float
    satisfied_fraction: float
    max_link_utilization: float
    intended_mlu: float


def path_bottleneck_utilization(
    pathset: PathSet, intended_flows: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Max utilization along each path given intended (pre-drop) flows.

    Paths that traverse a zero-capacity link while carrying flow get
    infinite utilization (their traffic is fully dropped); zero-capacity
    links with zero load contribute nothing.
    """
    # Function-level import: a top-level one would cycle through
    # repro.core.__init__ -> coma -> lp.objectives -> this module.
    from ..core.backend import NUMPY_OPS

    loads = pathset.edge_loads(intended_flows)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            capacities > 0,
            loads / np.maximum(capacities, 1e-300),
            np.where(loads > 0, _INFINITE_UTILIZATION, 0.0),
        )
    incidence = pathset.edge_path_incidence.tocsc()
    bottleneck = NUMPY_OPS.zeros(pathset.num_paths)
    for p in range(pathset.num_paths):
        edges = incidence.indices[incidence.indptr[p] : incidence.indptr[p + 1]]
        if edges.size:
            bottleneck[p] = util[edges].max()
    return bottleneck


def _path_max_utilization_batch(
    pathset: PathSet, util: np.ndarray, workspace=None
) -> np.ndarray:
    """Per-path bottleneck utilizations (T, P) from per-edge utils (T, E).

    One unbuffered scatter-max over the COO expansion covers the whole
    batch: the path axis leads so ``maximum.at`` broadcasts each edge's
    (T,) utilization column into the path rows it lies on. With a
    ``workspace`` the (P, T) scatter buffer is reused (zero-filled)
    across calls instead of reallocated — the buffer is internal to
    this function, so workspace reuse never aliases returned arrays.
    """
    # Function-level import: a top-level one would cycle through
    # repro.core.__init__ -> coma -> lp.objectives -> this module.
    from ..core.backend import NUMPY_OPS

    coo = pathset.edge_path_incidence.tocoo()
    shape = (pathset.num_paths, util.shape[0])
    if workspace is None:
        bottleneck = NUMPY_OPS.zeros(shape)
    else:
        bottleneck = workspace.buffer(("evaluator", "bottleneck"), shape, np.float64)
        bottleneck[...] = 0.0
    NUMPY_OPS.segment_max_into(bottleneck, coo.col, util.T[coo.row])
    # A view: the single caller consumes it before its next request, and
    # the downstream scale/delivered arrays are fresh allocations.
    return bottleneck.T


def _row_sums(x: np.ndarray) -> np.ndarray:
    """Per-row sums of a (T, N) stack, invariant to T and base alignment.

    ``x.sum(axis=-1)`` is *not* reproducible across batch sizes: numpy's
    2-D last-axis reduction picks SIMD peeling from the allocation's
    base alignment, so the same row summed inside a (6, N) stack and a
    (2, N) stack can differ in the last ulp — which would break the
    cell-batching bit-identity contract (chunked sweeps re-stack the
    same rows into differently-sized arrays). The 1-D pairwise sum is
    alignment- and offset-invariant, so summing row by row depends only
    on row *contents* — and bit-matches the single-matrix evaluator's
    ``demands.sum()`` by construction. T is a handful of grid rows, so
    the Python loop is noise next to the kernels it sits between.
    """
    from ..core.backend import NUMPY_OPS

    out = NUMPY_OPS.empty((x.shape[0],), x.dtype)
    for i in range(x.shape[0]):
        out[i] = x[i].sum()
    return out


def _clip_ratios_batch(split_ratios: np.ndarray) -> np.ndarray:
    """Batched :meth:`Allocation.clipped`: clip to [0, 1], cap row sums at 1."""
    ratios = np.clip(split_ratios, 0.0, 1.0)
    sums = ratios.sum(axis=-1, keepdims=True)
    return ratios / np.where(sums > 1.0, sums, 1.0)


def evaluate_allocation(
    pathset: PathSet,
    split_ratios: np.ndarray,
    demands: np.ndarray,
    capacities: np.ndarray | None = None,
) -> FlowReport:
    """Evaluate split ratios: enforce capacities and report delivered flow.

    A thin wrapper over :func:`evaluate_allocations_batch` with a batch of
    one (the batched path is the single implementation of the
    reconciliation semantics).

    Args:
        pathset: The path set (supplies incidence structures).
        split_ratios: (D, k) split ratios; negative values are clipped and
            rows summing above 1 are renormalized (demand constraint).
        demands: (D,) demand volumes.
        capacities: Per-edge capacities; defaults to the pathset topology's.

    Returns:
        A :class:`FlowReport`.

    Raises:
        SimulationError: On shape mismatches.
    """
    demands = np.asarray(demands, dtype=EVALUATION_DTYPE)
    if demands.shape != (pathset.num_demands,):
        raise SimulationError(
            f"demands shape {demands.shape} != ({pathset.num_demands},)"
        )
    split_ratios = np.asarray(split_ratios, dtype=EVALUATION_DTYPE)
    batch = evaluate_allocations_batch(
        pathset, split_ratios[None], demands[None], capacities
    )
    return batch.report(0)


def evaluate_allocations_batch(
    pathset: PathSet,
    split_ratios: np.ndarray,
    demands: np.ndarray,
    capacities: np.ndarray | None = None,
    workspace=None,
) -> BatchFlowReport:
    """Evaluate a stack of allocations against a stack of traffic matrices.

    The vectorized core of the scenario engine: T traffic matrices are
    scored in a handful of array ops — two sparse products for edge loads,
    one scatter-max for path bottlenecks — instead of a Python loop per
    matrix. Semantics are identical to :func:`evaluate_allocation` applied
    row by row (the per-TM function is a batch-of-one wrapper).

    Args:
        pathset: The path set (supplies incidence structures).
        split_ratios: (T, D, k) split ratios; clipped and row-normalized
            per matrix exactly as in the single-matrix path.
        demands: (T, D) demand volumes.
        capacities: (E,) shared capacities, (T, E) per-matrix capacities
            (failure sweeps), or None for the topology defaults.
        workspace: Optional :class:`~repro.core.batching.Workspace` for
            the internal scatter-max scratch; sweeps that score many
            stacks in a row (one per grid cell or chunk) pass a shared
            per-job workspace so scoring stops re-allocating. Results
            are unaffected: every returned array is freshly computed,
            never a workspace view.

    Returns:
        A :class:`BatchFlowReport` (empty arrays for T = 0).

    Raises:
        SimulationError: On shape mismatches.
    """
    demands = np.asarray(demands, dtype=EVALUATION_DTYPE)
    if demands.ndim != 2 or demands.shape[1] != pathset.num_demands:
        raise SimulationError(
            f"demands shape {demands.shape} != (T, {pathset.num_demands})"
        )
    num_matrices = demands.shape[0]
    if capacities is None:
        capacities = pathset.topology.capacities
    capacities = broadcast_capacities(capacities, num_matrices)
    if capacities.shape != (num_matrices, pathset.topology.num_edges):
        raise SimulationError("capacities shape mismatch")

    ratios = _clip_ratios_batch(
        np.asarray(split_ratios, dtype=EVALUATION_DTYPE)
    )
    intended = pathset.split_ratios_to_path_flows_batch(ratios, demands)

    pre_loads = pathset.edge_loads_batch(intended)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            capacities > 0,
            pre_loads / np.maximum(capacities, 1e-300),
            np.where(pre_loads > 0, _INFINITE_UTILIZATION, 0.0),
        )
    bottleneck = _path_max_utilization_batch(pathset, util, workspace)
    scale = 1.0 / np.maximum(bottleneck, 1.0)
    scale[~np.isfinite(scale)] = 0.0
    delivered = intended * scale
    post_loads = pathset.edge_loads_batch(delivered)

    with np.errstate(divide="ignore", invalid="ignore"):
        post_util = np.where(
            capacities > 0,
            post_loads / np.maximum(capacities, 1e-300),
            np.where(post_loads > 1e-9, _INFINITE_UTILIZATION, 0.0),
        )
    total_demand = _row_sums(demands)
    delivered_total = _row_sums(delivered)
    with np.errstate(divide="ignore", invalid="ignore"):
        satisfied = np.where(
            total_demand > 0,
            delivered_total / np.maximum(total_demand, 1e-300),
            0.0,
        )
    if post_util.shape[-1]:
        max_util = post_util.max(axis=-1)
        intended_mlu = util.max(axis=-1)
    else:
        # Function-level import; top-level would cycle (see
        # _path_max_utilization_batch).
        from ..core.backend import NUMPY_OPS

        max_util = NUMPY_OPS.zeros(num_matrices)
        intended_mlu = NUMPY_OPS.zeros(num_matrices)
    return BatchFlowReport(
        delivered_path_flows=delivered,
        intended_path_flows=intended,
        edge_loads=post_loads,
        total_demand=total_demand,
        delivered_total=delivered_total,
        satisfied_fraction=satisfied,
        max_link_utilization=max_util,
        intended_mlu=intended_mlu,
    )


def satisfied_demand_fraction(
    pathset: PathSet,
    split_ratios: np.ndarray,
    demands: np.ndarray,
    capacities: np.ndarray | None = None,
) -> float:
    """Shortcut for :func:`evaluate_allocation`'s satisfied fraction."""
    return evaluate_allocation(pathset, split_ratios, demands, capacities).satisfied_fraction
