"""Evaluation substrate: feasible-flow semantics, online loop, metrics."""

from .evaluator import (
    Allocation,
    FlowReport,
    evaluate_allocation,
    path_bottleneck_utilization,
    satisfied_demand_fraction,
)
from .fallback import FallbackScheme
from .metrics import SchemeRun, format_comparison_table, speedup
from .online import IntervalResult, OnlineRunResult, OnlineSimulator

__all__ = [
    "Allocation",
    "FlowReport",
    "evaluate_allocation",
    "path_bottleneck_utilization",
    "satisfied_demand_fraction",
    "OnlineSimulator",
    "OnlineRunResult",
    "IntervalResult",
    "SchemeRun",
    "speedup",
    "format_comparison_table",
    "FallbackScheme",
]
