"""Evaluation substrate: feasible-flow semantics, online loop, metrics."""

from .evaluator import (
    Allocation,
    BatchFlowReport,
    FlowReport,
    evaluate_allocation,
    evaluate_allocations_batch,
    path_bottleneck_utilization,
    satisfied_demand_fraction,
)
from .fallback import FallbackScheme
from .metrics import SchemeRun, format_comparison_table, speedup
from .online import (
    DeploymentTracker,
    IntervalResult,
    OnlineRunResult,
    OnlineSimulator,
    interval_capacities,
)
from .streaming import (
    DecisionRecord,
    EventSchedule,
    LinkFailure,
    LinkRecovery,
    StreamingEngine,
    StreamingRunResult,
    TrafficUpdate,
)

__all__ = [
    "Allocation",
    "BatchFlowReport",
    "FlowReport",
    "evaluate_allocation",
    "evaluate_allocations_batch",
    "path_bottleneck_utilization",
    "satisfied_demand_fraction",
    "OnlineSimulator",
    "OnlineRunResult",
    "IntervalResult",
    "DeploymentTracker",
    "interval_capacities",
    "StreamingEngine",
    "StreamingRunResult",
    "EventSchedule",
    "TrafficUpdate",
    "LinkFailure",
    "LinkRecovery",
    "DecisionRecord",
    "SchemeRun",
    "speedup",
    "format_comparison_table",
    "FallbackScheme",
]
