"""Streaming online TE: an event-driven engine with per-decision latency.

The paper's pitch is sub-second TE decisions on near-Google-scale WANs,
which makes *decision latency* — not sweep throughput — the metric a
production controller is judged on. :class:`StreamingEngine` runs the
control loop the way a long-lived controller would: a time-ordered
stream of events (traffic-matrix updates, link failures, link
recoveries) drives incremental re-allocation, and the engine records the
measured wall-clock of every decision so a run reports p50/p99 decision
latency.

Two decision modes:

- **cold** — every traffic update runs the scheme's full ``allocate``
  pipeline (for Teal: FlowGNN forward + ADMM fine-tuning);
- **warm** — after the first decision, consecutive traffic matrices are
  close enough that the previous interval's split ratios are a good
  primal warm start: the engine skips the forward pass and runs only
  ADMM fine-tuning (:meth:`repro.core.admm.AdmmFineTuner.fine_tune`)
  seeded from the last computed ratios, keeping the fine-tuned result
  only if it scores at least as well (the same acceptance rule as
  :class:`repro.core.teal.TealScheme`). Capacity events (failures,
  recoveries) need no special casing — ADMM repairs violations against
  whatever capacities the next decision sees.

Deployment follows the §5.1 staleness semantics via the same
:class:`~repro.simulation.online.DeploymentTracker` the offline replay
uses, so a failure-at-one-interval schedule replayed through this engine
reproduces :meth:`OnlineSimulator.run` per-interval satisfied fractions
exactly. Scoring reuses the batched evaluator: decisions are made one
event at a time (genuine per-decision wall-clock), but all intervals are
scored in one :func:`~repro.simulation.evaluator.evaluate_allocations_batch`
pass at the end of the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import TE_INTERVAL_SECONDS
from ..exceptions import SimulationError
from ..nn.precision import EVALUATION_DTYPE
from ..paths.pathset import PathSet
from ..traffic.matrix import TrafficMatrix
from .evaluator import Allocation, evaluate_allocations_batch
from .online import DeploymentTracker, IntervalResult, OnlineRunResult


@dataclass(frozen=True)
class TrafficUpdate:
    """A new traffic matrix arrives; the controller must decide.

    Attributes:
        time: Event timestamp (seconds since the start of the run).
        matrix: The traffic matrix in effect from this event on.
    """

    time: float
    matrix: TrafficMatrix


@dataclass(frozen=True)
class LinkFailure:
    """Physical links fail: the listed directed edges drop to capacity 0.

    Attributes:
        time: Event timestamp (seconds).
        edges: Directed edge ids whose capacity drops to zero (e.g. from
            :func:`repro.topology.failures.sample_link_failures`, which
            fails both directions of each physical link).
    """

    time: float
    edges: tuple[int, ...]


@dataclass(frozen=True)
class LinkRecovery:
    """Failed links come back at their nominal capacities, bit for bit.

    Attributes:
        time: Event timestamp (seconds).
        edges: Directed edge ids to restore; an empty tuple restores
            every currently failed edge.
    """

    time: float
    edges: tuple[int, ...] = ()


#: Event types a schedule may contain.
Event = TrafficUpdate | LinkFailure | LinkRecovery

#: Tie-break at equal timestamps: capacity events apply before the
#: traffic update, so a decision made "at" a failure instant already
#: sees the degraded capacities (matching the offline replay, where
#: ``interval_capacities`` degrades interval ``failure_at`` itself).
_PRIORITY = {LinkFailure: 0, LinkRecovery: 0, TrafficUpdate: 1}


@dataclass(frozen=True)
class EventSchedule:
    """A time-ordered stream of control-plane events.

    Events are stored sorted by ``(time, kind)``; capacity events sort
    before the traffic update at the same timestamp (see the tie-break
    note above). The constructors cover the common shapes: a plain
    trace, a failure(-and-recovery) case equivalent to
    :meth:`OnlineSimulator.run`'s ``failure_at`` semantics, and a
    :class:`~repro.sweep.grid.ScenarioSuite` grid cell — closing the
    "online-mode grids with per-cell failure timing" loop: every cell's
    failure sampling and timing becomes an explicit event schedule.

    Attributes:
        events: The sorted event tuple (any iterable is accepted and
            sorted stably on construction).
        interval_seconds: TE interval length (decision staleness budget).
    """

    events: tuple[Event, ...]
    interval_seconds: float = TE_INTERVAL_SECONDS

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise SimulationError("interval_seconds must be positive")
        events = tuple(
            sorted(self.events, key=lambda e: (e.time, _PRIORITY[type(e)]))
        )
        if not any(isinstance(e, TrafficUpdate) for e in events):
            raise SimulationError(
                "an event schedule needs at least one TrafficUpdate"
            )
        object.__setattr__(self, "events", events)

    @property
    def num_intervals(self) -> int:
        """Number of traffic updates (= decisions a run will make)."""
        return sum(1 for e in self.events if isinstance(e, TrafficUpdate))

    def matrices(self) -> list[TrafficMatrix]:
        """Traffic matrices in event order."""
        return [
            e.matrix for e in self.events if isinstance(e, TrafficUpdate)
        ]

    @classmethod
    def from_trace(
        cls,
        matrices: list[TrafficMatrix],
        interval_seconds: float = TE_INTERVAL_SECONDS,
    ) -> "EventSchedule":
        """One traffic update per interval, no capacity events."""
        return cls(
            events=tuple(
                TrafficUpdate(time=t * interval_seconds, matrix=m)
                for t, m in enumerate(matrices)
            ),
            interval_seconds=interval_seconds,
        )

    @classmethod
    def from_failure_case(
        cls,
        matrices: list[TrafficMatrix],
        interval_seconds: float = TE_INTERVAL_SECONDS,
        failed_edges: tuple[int, ...] = (),
        failure_at: int | None = None,
        recover_at: int | None = None,
    ) -> "EventSchedule":
        """A trace with one failure (and optional recovery) event.

        The failure strikes at interval ``failure_at`` *before* that
        interval's traffic update, reproducing
        :meth:`OnlineSimulator.run`'s ``failure_at`` timeline: interval
        ``failure_at`` already computes — and is scored — against the
        degraded capacities. ``recover_at`` (exclusive of further
        degradation) restores the failed edges the same way.

        Args:
            matrices: Consecutive traffic matrices.
            interval_seconds: TE interval length.
            failed_edges: Directed edge ids that fail.
            failure_at: Interval index the failure strikes (required
                when ``failed_edges`` is non-empty).
            recover_at: Optional interval index the links recover.

        Raises:
            SimulationError: On inconsistent failure arguments.
        """
        if bool(failed_edges) != (failure_at is not None):
            raise SimulationError(
                "failed_edges and failure_at must be provided together"
            )
        events: list[Event] = [
            TrafficUpdate(time=t * interval_seconds, matrix=m)
            for t, m in enumerate(matrices)
        ]
        if failure_at is not None:
            events.append(
                LinkFailure(
                    time=failure_at * interval_seconds,
                    edges=tuple(int(e) for e in failed_edges),
                )
            )
            if recover_at is not None:
                if recover_at <= failure_at:
                    raise SimulationError(
                        "recover_at must come after failure_at"
                    )
                events.append(
                    LinkRecovery(
                        time=recover_at * interval_seconds,
                        edges=tuple(int(e) for e in failed_edges),
                    )
                )
        return cls(events=tuple(events), interval_seconds=interval_seconds)

    @classmethod
    def from_grid_cell(
        cls, suite, scenario, failure_count: int
    ) -> "EventSchedule":
        """The event schedule of one online grid cell.

        Reuses the grid's own determinism contract: the failed links are
        sampled with :func:`repro.sweep.grid.cell_seed` (stable across
        processes) and the failure strikes at ``suite.failure_at``
        (mid-trace when unset), so the schedule replays exactly the
        scenario the cell's batched sweep evaluates.

        Args:
            suite: The :class:`~repro.sweep.grid.ScenarioSuite`.
            scenario: The built :class:`~repro.harness.Scenario` of the
                cell's (topology, seed) job.
            failure_count: The cell's simultaneous-failure level
                (0 = a plain trace, no capacity events).
        """
        # Imported lazily: repro.sweep.grid imports repro.simulation.
        from ..sweep.grid import cell_seed
        from ..topology.failures import sample_link_failures

        matrices = scenario.split.test
        if not failure_count:
            return cls.from_trace(matrices, suite.interval_seconds)
        failure_at = suite.failure_at
        if failure_at is None:
            failure_at = len(matrices) // 2
        edges = sample_link_failures(
            scenario.topology,
            failure_count,
            seed=cell_seed(scenario.name, scenario.seed, failure_count),
        )
        return cls.from_failure_case(
            matrices,
            suite.interval_seconds,
            failed_edges=tuple(edges),
            failure_at=failure_at,
        )


@dataclass(frozen=True)
class DecisionRecord:
    """One control decision, with its *measured* latency.

    Attributes:
        interval: Interval index the decision was computed for.
        time: Timestamp of the triggering traffic update.
        latency: Measured wall-clock seconds of the decision pipeline
            (the quantity p50/p99 decision latency is reported over).
        compute_time: The scheme-reported compute time that drives the
            deployment schedule (equals ``latency`` for warm decisions;
            test doubles may report synthetic times).
        warm: Whether the ADMM warm-start path produced this decision.
        deploy_delay: Intervals until deployment (0 = within budget).
    """

    interval: int
    time: float
    latency: float
    compute_time: float
    warm: bool
    deploy_delay: int


@dataclass
class StreamingRunResult:
    """Aggregate of one streaming run: decisions, intervals, latencies."""

    scheme: str
    decisions: list[DecisionRecord] = field(default_factory=list)
    intervals: list[IntervalResult] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile of measured decision latency (seconds)."""
        if not self.decisions:
            return 0.0
        return float(
            np.percentile([d.latency for d in self.decisions], q)
        )

    @property
    def p50_latency(self) -> float:
        """Median decision latency (seconds)."""
        return self.latency_percentile(50)

    @property
    def p99_latency(self) -> float:
        """99th-percentile decision latency (seconds)."""
        return self.latency_percentile(99)

    @property
    def warm_fraction(self) -> float:
        """Fraction of decisions served by the ADMM warm-start path."""
        if not self.decisions:
            return 0.0
        return float(np.mean([d.warm for d in self.decisions]))

    @property
    def mean_satisfied(self) -> float:
        """Mean per-interval satisfied fraction."""
        if not self.intervals:
            return 0.0
        return float(
            np.mean([r.satisfied_fraction for r in self.intervals])
        )

    @property
    def stale_fraction(self) -> float:
        """Fraction of intervals served by stale routes."""
        if not self.intervals:
            return 0.0
        return float(np.mean([r.stale for r in self.intervals]))

    def satisfied_series(self) -> np.ndarray:
        """(T,) satisfied fractions in interval order."""
        return np.array([r.satisfied_fraction for r in self.intervals])

    def to_online_result(self) -> OnlineRunResult:
        """The run as an :class:`OnlineRunResult` (replay-compatible view)."""
        return OnlineRunResult(scheme=self.scheme, intervals=list(self.intervals))

    def to_dict(self) -> dict:
        """JSON-ready summary (CLI/benchmark output)."""
        return {
            "scheme": self.scheme,
            "num_decisions": len(self.decisions),
            "p50_latency": self.p50_latency,
            "p99_latency": self.p99_latency,
            "warm_fraction": self.warm_fraction,
            "mean_satisfied": self.mean_satisfied,
            "stale_fraction": self.stale_fraction,
            "event_counts": dict(self.event_counts),
            "satisfied": [r.satisfied_fraction for r in self.intervals],
            "latencies": [d.latency for d in self.decisions],
            "compute_times": [d.compute_time for d in self.decisions],
        }


class StreamingEngine:
    """Long-lived event-driven TE controller over one scheme.

    Args:
        pathset: The path set (fixed across the run; transient capacity
            events enter via the event stream).
        scheme: A TE scheme (duck-typed ``allocate``; Teal-style schemes
            with ``admm``/``objective`` attributes additionally unlock
            the warm-start path).
        warm_start: Re-allocate incrementally (default) — ADMM
            fine-tuning warm started from the previous interval's split
            ratios — instead of running the full pipeline every
            interval. Falls back to cold decisions for the first
            interval and for schemes without an ADMM seam. Pass False
            for the cold-only mode that reproduces
            :meth:`OnlineSimulator.run` exactly.
        warm_iterations: ADMM iteration budget of warm decisions
            (None = the fine-tuner's configured count).
    """

    def __init__(
        self,
        pathset: PathSet,
        scheme,
        warm_start: bool = True,
        warm_iterations: int | None = None,
    ) -> None:
        self.pathset = pathset
        self.scheme = scheme
        self.warm_start = warm_start
        self.warm_iterations = warm_iterations

    def _initial_allocation(self) -> Allocation:
        """Everything on shortest paths — the pre-TE default routes."""
        ratios = np.zeros((self.pathset.num_demands, self.pathset.max_paths))
        ratios[:, 0] = 1.0
        return Allocation(split_ratios=ratios, scheme="shortest-path-default")

    def _warm_capable(self) -> bool:
        """Whether the scheme exposes the ADMM warm-start seam."""
        return (
            getattr(self.scheme, "admm", None) is not None
            and getattr(self.scheme, "objective", None) is not None
        )

    def _decide(
        self,
        demands: np.ndarray,
        capacities: np.ndarray,
        previous_ratios: np.ndarray | None,
    ) -> tuple[Allocation, bool]:
        """One decision: warm ADMM-only re-allocation or a cold pipeline."""
        if not (
            self.warm_start
            and previous_ratios is not None
            and self._warm_capable()
        ):
            return (
                self.scheme.allocate(self.pathset, demands, capacities),
                False,
            )
        start = time.perf_counter()
        tuned = self.scheme.admm.fine_tune(
            previous_ratios, demands, capacities,
            iterations=self.warm_iterations,
        )
        # The TealScheme acceptance rule, applied to the warm pair: keep
        # the fine-tuned ratios only if they score at least as well as
        # the warm start itself under the new demands/capacities.
        objective = self.scheme.objective
        if objective.reward(
            self.pathset, tuned, demands, capacities
        ) >= objective.reward(
            self.pathset, previous_ratios, demands, capacities
        ):
            ratios = tuned
        else:
            ratios = previous_ratios
        elapsed = time.perf_counter() - start
        allocation = Allocation(
            split_ratios=ratios,
            compute_time=elapsed,
            scheme=getattr(self.scheme, "name", "scheme"),
            extras={
                "warm_start": True,
                "admm_time": elapsed,
                "admm_iterations": (
                    self.warm_iterations
                    if self.warm_iterations is not None
                    else self.scheme.admm.iterations
                ),
            },
        )
        return allocation, True

    def run(
        self,
        schedule: EventSchedule,
        capacities: np.ndarray | None = None,
    ) -> StreamingRunResult:
        """Drive the controller through an event schedule.

        Decisions happen one event at a time — each traffic update
        resolves pending deployments, computes a new allocation (timed
        with ``perf_counter``), and submits it to the deployment
        tracker — while scoring is deferred to one batched
        :func:`evaluate_allocations_batch` pass over all intervals. The
        scoring inputs are constructed through the very same recipe
        :meth:`OnlineSimulator.run` uses (one ``demand_volumes_batch``
        over the schedule's matrices, a broadcast-and-copy capacity
        stack updated row by row, a preallocated deployed-ratio stack),
        so a failure-case schedule reproduces the replay bit for bit —
        identical float construction, not just identical values.

        Args:
            schedule: The event stream.
            capacities: Nominal capacities (default: the topology's).
                Failure events zero edges of these; recovery events
                restore the nominal values exactly.

        Returns:
            A :class:`StreamingRunResult`.
        """
        nominal = np.asarray(
            self.pathset.topology.capacities
            if capacities is None
            else capacities,
            dtype=EVALUATION_DTYPE,
        )
        current = nominal.copy()
        failed: set[int] = set()
        tracker = DeploymentTracker(
            self._initial_allocation(), schedule.interval_seconds
        )
        result = StreamingRunResult(
            scheme=getattr(self.scheme, "name", "scheme")
        )
        counts = {"traffic": 0, "failure": 0, "recovery": 0}
        previous_ratios: np.ndarray | None = None
        interval = -1

        # Scoring stacks, built with the same construction recipe as
        # OnlineSimulator.run so the batched evaluator sees arrays that
        # are not merely equal in value but identically constructed
        # (summation order in numpy reductions is layout-sensitive at
        # the last ulp). The schedule is fully known here, so demand
        # volumes for every traffic update can go through the one
        # batched transform the replay uses; per-decision the engine
        # reads row views of these stacks — exactly what the replay
        # hands its scheme.
        num_intervals = schedule.num_intervals
        demands_all = self.pathset.demand_volumes_batch(
            np.stack([m.values for m in schedule.matrices()])
        )
        caps_stack = np.broadcast_to(
            nominal, (num_intervals, nominal.shape[0])
        ).copy()
        ratio_stack = np.empty(
            (num_intervals, self.pathset.num_demands, self.pathset.max_paths)
        )
        ages = np.empty(num_intervals, dtype=int)

        for event in schedule.events:
            if isinstance(event, LinkFailure):
                counts["failure"] += 1
                edges = list(event.edges)
                current[edges] = 0.0
                failed.update(event.edges)
            elif isinstance(event, LinkRecovery):
                counts["recovery"] += 1
                edges = sorted(event.edges or failed)
                current[edges] = nominal[edges]
                failed.difference_update(edges)
            else:
                counts["traffic"] += 1
                interval += 1
                tracker.resolve(interval)
                caps_stack[interval] = current
                demands = demands_all[interval]
                caps_now = caps_stack[interval]

                start = time.perf_counter()
                allocation, warm = self._decide(
                    demands, caps_now, previous_ratios
                )
                latency = time.perf_counter() - start
                previous_ratios = allocation.split_ratios
                delay = tracker.submit(interval, allocation)

                result.decisions.append(
                    DecisionRecord(
                        interval=interval,
                        time=event.time,
                        latency=latency,
                        compute_time=allocation.compute_time,
                        warm=warm,
                        deploy_delay=delay,
                    )
                )
                ratio_stack[interval] = tracker.deployed.split_ratios
                ages[interval] = tracker.age(interval)

        batch_report = evaluate_allocations_batch(
            self.pathset, ratio_stack, demands_all, caps_stack
        )
        for t in range(num_intervals):
            result.intervals.append(
                IntervalResult(
                    interval=t,
                    satisfied_fraction=float(
                        batch_report.satisfied_fraction[t]
                    ),
                    allocation_age=int(ages[t]),
                    compute_time=result.decisions[t].compute_time,
                    stale=bool(ages[t] > 0),
                )
            )
        result.event_counts = counts
        return result
