"""Production fallback wrapper (§5.4).

The paper's deployment note: "we may concurrently execute an additional
TE scheme, such as LP-top, to compute traffic allocation. We can then
seamlessly fall back to it if it consistently yields superior solutions
than Teal." :class:`FallbackScheme` implements exactly that control
policy as a scheme combinator:

- every interval, both the primary (e.g. Teal) and the safety scheme
  (e.g. LP-top) compute allocations *concurrently* (charged at the max
  of their compute times, matching the paper's accounting for parallel
  work);
- the wrapper deploys the primary's allocation by default;
- if the safety scheme's realized objective beats the primary's in at
  least ``window`` consecutive intervals (by more than ``margin``
  relative), the wrapper switches to the safety scheme — and switches
  back symmetrically once the primary recovers.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exceptions import SimulationError
from ..paths.pathset import PathSet
from .evaluator import Allocation


class FallbackScheme:
    """Run a primary scheme with a concurrently-computed safety net.

    Args:
        primary: Preferred scheme (deployed by default).
        safety: Fallback scheme computed concurrently each interval.
        objective: Objective used to compare realized solutions.
        window: Number of consecutive safety wins required to switch
            (and of primary wins required to switch back).
        margin: Minimum relative improvement that counts as a win.
    """

    name = "Fallback"

    def __init__(
        self,
        primary,
        safety,
        objective=None,
        window: int = 3,
        margin: float = 0.01,
    ) -> None:
        if window < 1:
            raise SimulationError("window must be >= 1")
        if margin < 0:
            raise SimulationError("margin must be non-negative")
        self.primary = primary
        self.safety = safety
        if objective is None:
            # Imported lazily: repro.lp depends on repro.simulation's
            # evaluator, so a module-level import here would be circular.
            from ..lp.objectives import TotalFlowObjective

            objective = TotalFlowObjective()
        self.objective = objective
        self.window = window
        self.margin = margin
        self.using_safety = False
        self._recent: deque[bool] = deque(maxlen=window)
        self.name = f"{getattr(primary, 'name', 'primary')}+fallback"

    def _relative_win(self, challenger: float, incumbent: float) -> bool:
        scale = max(abs(incumbent), 1e-12)
        return (challenger - incumbent) / scale > self.margin

    def allocate(
        self,
        pathset: PathSet,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> Allocation:
        """Compute both allocations, deploy per the fallback policy."""
        primary_alloc = self.primary.allocate(pathset, demands, capacities)
        safety_alloc = self.safety.allocate(pathset, demands, capacities)

        primary_value = self.objective.reward(
            pathset, primary_alloc.split_ratios, demands, capacities
        )
        safety_value = self.objective.reward(
            pathset, safety_alloc.split_ratios, demands, capacities
        )

        if self.using_safety:
            # Track whether the primary has recovered.
            self._recent.append(
                self._relative_win(primary_value, safety_value)
            )
            if len(self._recent) == self.window and all(self._recent):
                self.using_safety = False
                self._recent.clear()
        else:
            self._recent.append(
                self._relative_win(safety_value, primary_value)
            )
            if len(self._recent) == self.window and all(self._recent):
                self.using_safety = True
                self._recent.clear()

        chosen = safety_alloc if self.using_safety else primary_alloc
        return Allocation(
            split_ratios=chosen.split_ratios,
            # Concurrent execution: charged at the slower of the two.
            compute_time=max(
                primary_alloc.compute_time, safety_alloc.compute_time
            ),
            scheme=self.name,
            extras={
                "deployed": "safety" if self.using_safety else "primary",
                "primary_value": primary_value,
                "safety_value": safety_value,
                "primary_time": primary_alloc.compute_time,
                "safety_time": safety_alloc.compute_time,
            },
        )
