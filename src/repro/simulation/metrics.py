"""Metric aggregation and reporting helpers (§5.1, Table 2).

Turns per-matrix scheme results into the rows the paper's tables and
figures report: mean/percentile computation times, satisfied-demand
CDFs, speedup factors, and the Table 2 computation-time breakdown.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError
from ..nn.precision import EVALUATION_DTYPE


@dataclass
class SchemeRun:
    """Accumulated per-matrix results for one scheme on one workload."""

    scheme: str
    satisfied: list[float] = field(default_factory=list)
    compute_times: list[float] = field(default_factory=list)
    objective_values: list[float] = field(default_factory=list)
    extras: list[dict] = field(default_factory=list)

    def add(
        self,
        satisfied: float,
        compute_time: float,
        objective_value: float = 0.0,
        extras: dict | None = None,
    ) -> None:
        """Record one traffic matrix's outcome."""
        self.satisfied.append(float(satisfied))
        self.compute_times.append(float(compute_time))
        self.objective_values.append(float(objective_value))
        self.extras.append(extras or {})

    @property
    def mean_satisfied(self) -> float:
        """Mean satisfied-demand fraction."""
        return float(np.mean(self.satisfied)) if self.satisfied else 0.0

    @property
    def mean_compute_time(self) -> float:
        """Mean compute time per matrix (seconds)."""
        return float(np.mean(self.compute_times)) if self.compute_times else 0.0

    def satisfied_percentile(self, q: float) -> float:
        """q-th percentile of satisfied demand (Figure 7b)."""
        if not self.satisfied:
            return 0.0
        return float(np.percentile(self.satisfied, q))

    def time_percentile(self, q: float) -> float:
        """q-th percentile of compute time (Figure 7a)."""
        if not self.compute_times:
            return 0.0
        return float(np.percentile(self.compute_times, q))

    def cdf(self, values: list[float]) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF points (sorted values, cumulative fractions)."""
        arr = np.sort(np.asarray(values, dtype=EVALUATION_DTYPE))
        if arr.size == 0:
            return arr, arr
        return arr, np.arange(1, arr.size + 1) / arr.size

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`).

        Extras are kept only if every value is a JSON scalar/list — the
        per-matrix timing components survive, scheme-internal objects
        do not.
        """
        record = {
            "scheme": self.scheme,
            "satisfied": list(self.satisfied),
            "compute_times": list(self.compute_times),
            "objective_values": list(self.objective_values),
        }
        def _default(value):
            if isinstance(value, np.generic):
                return value.item()
            if isinstance(value, np.ndarray):
                return value.tolist()
            raise TypeError(f"not JSON-serializable: {type(value)!r}")

        try:
            record["extras"] = json.loads(json.dumps(self.extras, default=_default))
        except (TypeError, ValueError):
            record["extras"] = [{} for _ in self.extras]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "SchemeRun":
        """Rebuild a run from :meth:`to_dict` output."""
        return cls(
            scheme=record["scheme"],
            satisfied=[float(v) for v in record.get("satisfied", [])],
            compute_times=[float(v) for v in record.get("compute_times", [])],
            objective_values=[
                float(v) for v in record.get("objective_values", [])
            ],
            extras=list(record.get("extras", [])) or [
                {} for _ in record.get("satisfied", [])
            ],
        )

    def time_breakdown(self) -> dict[str, float]:
        """Mean per-component compute time (Table 2 row).

        Components come from the ``extras`` each scheme attaches
        (solver time, model rebuild, merge, forward pass, ADMM).
        """
        keys: set[str] = set()
        for e in self.extras:
            keys.update(k for k in e if k.endswith("_time"))
        breakdown = {
            key: float(np.mean([e.get(key, 0.0) for e in self.extras]))
            for key in sorted(keys)
        }
        breakdown["total_time"] = self.mean_compute_time
        return breakdown


def speedup(baseline: SchemeRun, accelerated: SchemeRun) -> float:
    """How many times faster ``accelerated`` runs than ``baseline``.

    Raises:
        SimulationError: If the accelerated scheme has zero mean time.
    """
    fast = accelerated.mean_compute_time
    if fast <= 0:
        raise SimulationError("accelerated scheme has non-positive time")
    return baseline.mean_compute_time / fast


def format_comparison_table(runs: list[SchemeRun]) -> str:
    """Human-readable table of scheme results (benchmark output)."""
    header = f"{'scheme':<14} {'satisfied %':>12} {'time (s)':>12} {'p90 time':>12}"
    lines = [header, "-" * len(header)]
    for run in runs:
        lines.append(
            f"{run.scheme:<14} {100 * run.mean_satisfied:>11.1f}% "
            f"{run.mean_compute_time:>12.4f} {run.time_percentile(90):>12.4f}"
        )
    return "\n".join(lines)
