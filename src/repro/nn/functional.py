"""Differentiable operations beyond the Tensor dunder methods.

Includes everything Teal's models need: activations, (masked) softmax,
sparse aggregation for FlowGNN message passing, row gathering for
per-demand embedding lookup, concatenation, and Gaussian log-densities
for the stochastic policy (Appendix B).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from ..exceptions import ModelError
from .tensor import Tensor, _transpose_last, as_tensor

_LOG_2PI = math.log(2.0 * math.pi)


def relu(x: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    x = as_tensor(x)
    out = Tensor(np.maximum(x.data, 0.0), parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0))

    out._backward_fn = backward
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Elementwise leaky ReLU."""
    x = as_tensor(x)
    out = Tensor(
        np.where(x.data > 0, x.data, negative_slope * x.data), parents=(x,)
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope))

    out._backward_fn = backward
    return out


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = as_tensor(x)
    value = np.tanh(x.data)
    out = Tensor(value, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - value ** 2))

    out._backward_fn = backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    x = as_tensor(x)
    value = 1.0 / (1.0 + np.exp(-x.data))
    out = Tensor(value, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * value * (1.0 - value))

    out._backward_fn = backward
    return out


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    x = as_tensor(x)
    value = np.exp(x.data)
    out = Tensor(value, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * value)

    out._backward_fn = backward
    return out


def log(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Elementwise natural log with an epsilon floor for stability."""
    x = as_tensor(x)
    safe = np.maximum(x.data, eps)
    out = Tensor(np.log(safe), parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / safe)

    out._backward_fn = backward
    return out


def softmax(x: Tensor, axis: int = -1, mask: np.ndarray | None = None) -> Tensor:
    """(Masked) softmax along ``axis``.

    Args:
        x: Logits.
        axis: Softmax axis.
        mask: Optional boolean array broadcastable to ``x``; False entries
            receive zero probability (used for padded path slots).
    """
    x = as_tensor(x)
    logits = x.data
    if mask is not None:
        logits = np.where(mask, logits, -1e30)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    if mask is not None:
        exps = np.where(mask, exps, 0.0)
    denom = exps.sum(axis=axis, keepdims=True)
    value = exps / np.maximum(denom, 1e-30)
    out = Tensor(value, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * value).sum(axis=axis, keepdims=True)
            g = value * (grad - dot)
            if mask is not None:
                g = np.where(mask, g, 0.0)
            x._accumulate(g)

    out._backward_fn = backward
    return out


def p_norm(x: Tensor, p: float, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Overflow-safe p-norm of non-negative values along ``axis``.

    Computing ``(sum x^p)^(1/p)`` directly overflows float64 once
    ``x^p`` exceeds ~1e308 — for the p=8 MLU surrogate that is any link
    utilization above ~1e38, which failed-link sweeps do produce. The
    standard factored form

        max_x * (sum (x / max_x)^p)^(1/p)

    keeps every intermediate in [0, 1]. Because the p-norm is positively
    homogeneous, treating the factored-out maximum as a constant leaves
    the gradient exactly equal to the true p-norm gradient
    ``(x_i / ||x||_p)^(p-1)``, so the stabilization changes no training
    dynamics — only the overflow behaviour.

    Args:
        x: Non-negative values (e.g. link utilizations); may carry
            leading batch axes.
        p: Norm order (> 1).
        axis: Reduction axis.
        eps: Floor for the factored maximum and the inner sum (keeps the
            all-zero row differentiable and the result finite).

    Returns:
        Tensor with ``axis`` reduced.
    """
    x = as_tensor(x)
    scale = np.maximum(np.abs(x.data).max(axis=axis, keepdims=True), eps)
    scaled = x * Tensor(1.0 / scale)
    inner = (scaled ** p).sum(axis=axis) + eps
    return (inner ** (1.0 / p)) * Tensor(np.squeeze(scale, axis=axis))


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ModelError("concat requires at least one tensor")
    out = Tensor(
        np.concatenate([t.data for t in tensors], axis=axis), parents=tuple(tensors)
    )
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                t._accumulate(grad[tuple(slicer)])

    out._backward_fn = backward
    return out


def pair_linear(
    a: Tensor, b: Tensor, weight: Tensor, bias: Tensor | None = None
) -> Tensor:
    """``concat([a, b], axis=-1) @ weight (+ bias)`` without the concat.

    The hot op of every FlowGNN message-passing round: the (2*dim, dim)
    update weight is split row-wise and applied as two matmuls, so the
    doubled-width intermediate is never materialized. Mathematically
    identical to the concat formulation (the dot product is just summed in
    two halves); the weight gradient is reassembled to the full (2*dim,
    dim) shape. Operands may carry leading batch axes.
    """
    a = as_tensor(a)
    b = as_tensor(b)
    weight = as_tensor(weight)
    split = a.data.shape[-1]
    if weight.data.shape[0] != split + b.data.shape[-1]:
        raise ModelError(
            f"weight rows {weight.data.shape[0]} != "
            f"{split} + {b.data.shape[-1]} operand features"
        )
    w_top = weight.data[:split]
    w_bottom = weight.data[split:]
    value = a.data @ w_top + b.data @ w_bottom
    if bias is not None:
        value = value + bias.data
    parents = (a, b, weight) + ((bias,) if bias is not None else ())
    out = Tensor(value, parents=parents)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad @ w_top.T)
        if b.requires_grad:
            b._accumulate(grad @ w_bottom.T)
        if weight.requires_grad:
            weight._accumulate(
                np.concatenate(
                    [
                        _transpose_last(a.data) @ grad,
                        _transpose_last(b.data) @ grad,
                    ],
                    axis=-2,
                )
            )
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad)

    out._backward_fn = backward
    return out


def take_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows along the second-to-last axis with scatter-add backward.

    Args:
        x: (N, F) tensor, or a batched (..., N, F) tensor; the gather
            indexes the N axis and is shared across batch elements.
        indices: Integer row indices (any shape); output shape is
            ``x.shape[:-2] + indices.shape + (F,)``.
    """
    x = as_tensor(x)
    indices = np.asarray(indices, dtype=int)
    if x.ndim < 2:
        raise ModelError("take_rows expects a tensor with at least 2 dims")
    out = Tensor(x.data[..., indices, :], parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        acc = np.zeros_like(x.data)
        flat_idx = indices.reshape(-1)
        features = x.data.shape[-1]
        if x.ndim == 2:
            np.add.at(acc, flat_idx, grad.reshape(-1, features))
        else:
            lead = int(np.prod(x.data.shape[:-2]))
            acc_view = acc.reshape(lead, x.data.shape[-2], features)
            grad_flat = grad.reshape(lead, flat_idx.size, features)
            np.add.at(
                acc_view,
                (np.arange(lead)[:, None], flat_idx[None, :]),
                grad_flat,
            )
        x._accumulate(acc)

    out._backward_fn = backward
    return out


def take_rows_padded(x: Tensor, indices: np.ndarray) -> Tensor:
    """Like :func:`take_rows` but negative indices yield zero rows.

    The gather primitive for padded (D, k) path grids: padding slots are
    marked -1 and produce zeros (forward) and receive no gradient
    (backward), without materializing a sentinel zero row via concat.

    Args:
        x: (N, F) tensor, or a batched (..., N, F) tensor.
        indices: Integer row indices (any shape); -1 marks padding.
    """
    x = as_tensor(x)
    indices = np.asarray(indices, dtype=int)
    if x.ndim < 2:
        raise ModelError("take_rows_padded expects a tensor with at least 2 dims")
    invalid = indices < 0
    safe = np.where(invalid, 0, indices)
    data = x.data[..., safe, :]
    if invalid.any():
        data[..., invalid, :] = 0.0
    out = Tensor(data, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        acc = np.zeros_like(x.data)
        flat_idx = safe.reshape(-1)
        keep = ~invalid.reshape(-1)
        features = x.data.shape[-1]
        if x.ndim == 2:
            grad_flat = grad.reshape(-1, features)
            np.add.at(acc, flat_idx[keep], grad_flat[keep])
        else:
            lead = int(np.prod(x.data.shape[:-2]))
            acc_view = acc.reshape(lead, x.data.shape[-2], features)
            grad_flat = grad.reshape(lead, flat_idx.size, features)
            np.add.at(
                acc_view,
                (np.arange(lead)[:, None], flat_idx[keep][None, :]),
                grad_flat[:, keep],
            )
        x._accumulate(acc)

    out._backward_fn = backward
    return out


def _sparse_apply(csr: sp.csr_matrix, arr: np.ndarray) -> np.ndarray:
    """``csr @ arr`` where ``arr`` may carry leading batch axes.

    A batched (..., N, F) operand is folded into a single (N, batch * F)
    dense matrix so the whole batch costs exactly one sparse product —
    the trick that lets FlowGNN aggregate a stack of traffic matrices in
    one pass.
    """
    if arr.ndim <= 2:
        return csr @ arr
    lead = arr.shape[:-2]
    n, features = arr.shape[-2:]
    folded = np.moveaxis(arr.reshape(-1, n, features), 0, 1).reshape(n, -1)
    product = csr @ folded
    m = product.shape[0]
    return np.moveaxis(product.reshape(m, -1, features), 1, 0).reshape(
        lead + (m, features)
    )


def sparse_matmul(
    matrix: sp.spmatrix, x: Tensor, transposed: sp.spmatrix | None = None
) -> Tensor:
    """Product ``matrix @ x`` for a constant sparse matrix.

    The backward pass is ``matrix.T @ grad``. This is the aggregation
    primitive of FlowGNN: with the (E, P) edge-path incidence matrix it
    sums PathNode embeddings into EdgeNodes (and transposed, back).
    ``x`` may carry leading batch axes; the batch is folded so forward and
    backward each remain a single sparse product.

    Args:
        matrix: Constant sparse matrix.
        x: Dense operand (..., N, F).
        transposed: Optional precomputed ``matrix.T`` (CSR). When omitted
            the transpose is built lazily at the first backward call, so
            pure-inference forwards never pay for it.
    """
    x = as_tensor(x)
    if not sp.issparse(matrix):
        raise ModelError("sparse_matmul expects a scipy sparse matrix")
    csr = matrix.tocsr()
    out = Tensor(_sparse_apply(csr, x.data), parents=(x,))

    def backward(grad: np.ndarray) -> None:
        nonlocal transposed
        if x.requires_grad:
            if transposed is None:
                transposed = csr.T.tocsr()
            x._accumulate(_sparse_apply(transposed, grad))

    out._backward_fn = backward
    return out


def clip(x: Tensor, low: float | None = None, high: float | None = None) -> Tensor:
    """Clamp values; gradient is passed through inside the active range."""
    x = as_tensor(x)
    value = np.clip(x.data, low, high)
    out = Tensor(value, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inside = np.ones_like(x.data, dtype=bool)
            if low is not None:
                inside &= x.data >= low
            if high is not None:
                inside &= x.data <= high
            x._accumulate(grad * inside)

    out._backward_fn = backward
    return out


def gaussian_log_prob(mean: Tensor, log_std: Tensor, actions: np.ndarray) -> Tensor:
    """Log-density of ``actions`` under diagonal Gaussians (summed per row).

    Used by COMA*'s stochastic policy: during training actions are sampled
    around the policy mean (Appendix B), and the policy gradient weights
    ``grad log pi(a|s)`` by the advantage.

    Args:
        mean: (D, A) Gaussian means (the policy output).
        log_std: Broadcastable log standard deviations (a parameter).
        actions: (D, A) constant sampled actions.

    Returns:
        (D,) per-row log probabilities.
    """
    mean = as_tensor(mean)
    log_std = as_tensor(log_std)
    actions_t = Tensor(actions)
    std = exp(log_std)
    z = (actions_t - mean) / std
    per_dim = (z * z) * (-0.5) - log_std - 0.5 * _LOG_2PI
    return per_dim.sum(axis=-1)
