"""Weight initialization schemes for the numpy NN substrate."""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ModelError


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ModelError("fan_in and fan_out must be positive")
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform initialization (ReLU gain)."""
    if fan_in <= 0 or fan_out <= 0:
        raise ModelError("fan_in and fan_out must be positive")
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))
