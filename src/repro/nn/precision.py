"""Precision policy: dtype as an explicit, end-to-end decision.

The paper's headline result is wall-clock acceleration, and production
systems in this space run their hot paths in single precision on
purpose. This module makes the compute dtype a first-class *policy*
instead of an accident of ``np.asarray``: a :class:`Precision` object
names a storage dtype and the accumulation dtype used for reductions and
acceptance checks, and is threaded through the whole stack —
``nn.Tensor`` (dtype-preserving payloads), FlowGNN / ``TealModel``
(float32 forward via :meth:`~repro.nn.layers.Module.astype`), the ADMM
fine-tuner (single-precision F/z/s/dual updates), ``TealScheme``,
``harness.trained_teal`` (precision in the cache key), the sweep grid,
and the CLI (``--precision {float32,float64}``).

Policy defaults:

- **Training stays float64** — gradients through a 6-layer GNN and Adam's
  second-moment accumulation are where single precision actually bites,
  and training is off the deployment hot path.
- **Inference and sweeps default to float32** — the deployment forward +
  ADMM path matches float64 results within 1e-4 relative on the
  benchmark topologies (verified by ``benchmarks/bench_precision.py``
  and ``tests/test_precision.py``) at a measurably lower cost.
- **Reductions accumulate in float64** regardless of storage dtype:
  segment sums run through ``np.bincount`` (a float64 accumulator), and
  the ADMM acceptance check scores allocations through the float64
  evaluator — so float32 storage never degrades the *decisions* made
  about an allocation, only the arithmetic inside it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ReproError

#: The dtypes a Precision may name (half precision is deliberately
#: excluded: numpy has no fast float16 kernels, so it would only add
#: rounding error without saving time).
_SUPPORTED = ("float32", "float64")


@dataclass(frozen=True)
class Precision:
    """A named dtype policy for the compute substrate.

    Frozen and hashable so it can sit inside cache keys (see
    :func:`repro.harness.trained_teal`).

    Attributes:
        name: ``"float32"`` or ``"float64"``.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in _SUPPORTED:
            raise ReproError(
                f"unknown precision {self.name!r}; expected one of {_SUPPORTED}"
            )

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of tensors, parameters, and ADMM iterates."""
        return np.dtype(self.name)

    @property
    def accumulate_dtype(self) -> np.dtype:
        """Dtype of segment reductions and acceptance/residual checks.

        Always float64: ``np.bincount`` accumulates in double whatever
        the weights' storage dtype, and the objective/acceptance scoring
        runs through the float64 evaluator — documented behaviour the
        parity tests rely on.
        """
        return np.dtype(np.float64)

    @property
    def itemsize(self) -> int:
        """Bytes per element of the storage dtype."""
        return self.dtype.itemsize

    def array(self, value) -> np.ndarray:
        """``np.asarray`` in this precision's storage dtype."""
        return np.asarray(value, dtype=self.dtype)

    def __str__(self) -> str:  # readable in logs / JSON records
        return self.name


#: The two supported policies, as shared singletons.
FLOAT32 = Precision("float32")
FLOAT64 = Precision("float64")

#: Scoring/IO dtype: demand volumes, capacities, and evaluator inputs
#: are always float64 regardless of the compute Precision — the
#: "reductions accumulate in float64" half of the policy. Lint rule
#: RL001 (repro.lint) requires dtype literals in precision-threaded
#: modules to route through this constant or a Precision, so every
#: hardcoded dtype is an explicit, greppable policy decision.
EVALUATION_DTYPE = np.dtype(np.float64)

#: Library-wide default: float64 (full-precision, backward compatible).
DEFAULT_PRECISION = FLOAT64

#: Default for inference-heavy entry points (harness, sweeps, CLI):
#: float32, per the measured parity/speedup tradeoff documented above.
DEFAULT_INFERENCE_PRECISION = FLOAT32


def resolve_precision(
    spec: "Precision | str | np.dtype | None",
    default: "Precision | str" = DEFAULT_PRECISION,
) -> Precision:
    """Coerce a user-facing precision spec to a :class:`Precision`.

    Args:
        spec: ``None`` (use ``default``), a :class:`Precision`, a name
            (``"float32"``/``"float64"``), or a numpy dtype.
        default: Policy used when ``spec`` is None.

    Raises:
        ReproError: On unsupported dtypes or unknown names.
    """
    if spec is None:
        spec = default
    if isinstance(spec, Precision):
        return spec
    if isinstance(spec, str):
        return Precision(spec)
    name = np.dtype(spec).name
    return Precision(name)
