"""Neural-network modules: Linear layers, activations, containers.

A tiny module system in the PyTorch mold: :class:`Module` tracks
parameters recursively; :class:`Linear` is an affine map; activations
wrap the functional ops; :class:`Sequential` chains modules.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ModelError
from . import functional as F
from .init import xavier_uniform
from .tensor import Parameter, Tensor


class Module:
    """Base class with recursive parameter discovery and state export."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters in this module tree (depth-first)."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            params.extend(_collect(value, seen))
        return params

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def astype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place (the precision hook).

        Modules that hold non-parameter compute state (e.g. FlowGNN's
        aggregation matrices) override this and call ``super().astype``.
        Pending gradients are dropped — casting mid-backward is a bug.

        Returns:
            ``self`` (chainable).
        """
        dtype = np.dtype(dtype)
        for p in self.parameters():
            p.data = p.data.astype(dtype, copy=False)
            p.grad = None
        return self

    @property
    def dtype(self) -> np.dtype:
        """Parameter dtype (float64 for parameter-free modules)."""
        params = self.parameters()
        return params[0].data.dtype if params else np.dtype(np.float64)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name->array mapping of all parameters (copy)."""
        return {
            f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays exported by :meth:`state_dict` (order-based).

        Raises:
            ModelError: On count or shape mismatch.
        """
        params = self.parameters()
        if len(state) != len(params):
            raise ModelError(
                f"state has {len(state)} entries, model has {len(params)}"
            )
        for i, p in enumerate(params):
            arr = state[f"param_{i}"]
            if arr.shape != p.data.shape:
                raise ModelError(
                    f"param {i}: shape {arr.shape} != {p.data.shape}"
                )
            p.data = arr.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


def _collect(value, seen: set[int]) -> list[Parameter]:
    params: list[Parameter] = []
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            params.append(value)
    elif isinstance(value, Module):
        for p in value.parameters():
            if id(p) not in seen:
                seen.add(id(p))
                params.append(p)
    elif isinstance(value, (list, tuple)):
        for item in value:
            params.extend(_collect(item, seen))
    elif isinstance(value, dict):
        for item in value.values():
            params.extend(_collect(item, seen))
    return params


class Linear(Module):
    """Affine layer ``y = x @ W + b``.

    Args:
        in_features: Input width.
        out_features: Output width.
        bias: Whether to include the bias term.
        rng: Generator for Xavier initialization (deterministic models).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform(in_features, out_features, rng), name="weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class LeakyReLU(Module):
    """Leaky-ReLU activation module."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


def mlp(
    sizes: list[int],
    activation: str = "relu",
    rng: np.random.Generator | None = None,
    final_activation: bool = False,
) -> Sequential:
    """Build a multilayer perceptron.

    Args:
        sizes: Layer widths, e.g. ``[24, 24, 4]``.
        activation: ``"relu"``, ``"tanh"`` or ``"leaky_relu"``.
        rng: Weight-init generator.
        final_activation: Whether to append an activation after the last
            linear layer.

    Raises:
        ModelError: On fewer than two sizes or unknown activation.
    """
    if len(sizes) < 2:
        raise ModelError("mlp needs at least input and output sizes")
    activations = {"relu": ReLU, "tanh": Tanh, "leaky_relu": LeakyReLU}
    if activation not in activations:
        raise ModelError(f"unknown activation {activation!r}")
    if rng is None:
        rng = np.random.default_rng(0)
    layers: list[Module] = []
    for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        layers.append(Linear(fan_in, fan_out, rng=rng))
        if i < len(sizes) - 2 or final_activation:
            layers.append(activations[activation]())
    return Sequential(*layers)
