"""Numpy neural-network substrate: autodiff tensors, layers, optimizers.

The paper implements Teal in PyTorch; this package provides the
equivalent primitives (see DESIGN.md §2 for the substitution rationale).
"""

from . import functional
from .init import kaiming_uniform, xavier_uniform
from .layers import LeakyReLU, Linear, Module, ReLU, Sequential, Tanh, mlp
from .optim import SGD, Adam, Optimizer
from .precision import (
    DEFAULT_INFERENCE_PRECISION,
    DEFAULT_PRECISION,
    FLOAT32,
    FLOAT64,
    Precision,
    resolve_precision,
)
from .tensor import Parameter, Tensor, as_tensor

__all__ = [
    "Tensor",
    "Parameter",
    "as_tensor",
    "Precision",
    "resolve_precision",
    "FLOAT32",
    "FLOAT64",
    "DEFAULT_PRECISION",
    "DEFAULT_INFERENCE_PRECISION",
    "functional",
    "Module",
    "Linear",
    "Sequential",
    "ReLU",
    "Tanh",
    "LeakyReLU",
    "mlp",
    "Optimizer",
    "SGD",
    "Adam",
    "xavier_uniform",
    "kaiming_uniform",
]
