"""Optimizers for the numpy NN substrate (the paper trains with Adam, §4)."""

from __future__ import annotations

import numpy as np

from ..exceptions import ModelError
from .tensor import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: list[Parameter]) -> None:
        if not parameters:
            raise ModelError("optimizer needs at least one parameter")
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ModelError("learning rate must be positive")
        if not 0 <= momentum < 1:
            raise ModelError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update; parameters with no gradient are skipped."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data = p.data + v


class Adam(Optimizer):
    """Adam [Kingma & Ba, 2014] — the paper's optimizer (§4).

    Args:
        parameters: Parameters to optimize.
        lr: Step size (paper: 1e-4).
        betas: Exponential decay rates for the moment estimates.
        eps: Numerical stabilizer.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ModelError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ModelError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update; parameters with no gradient are skipped."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
