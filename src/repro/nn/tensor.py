"""A reverse-mode automatic-differentiation tensor on numpy.

This is the deep-learning substrate of the reproduction: the paper
implements Teal in PyTorch, which is unavailable in this environment, so
we provide the minimal engine its models need — broadcast-aware
elementwise ops, dense and sparse matrix products, reductions, indexing,
and a topological-order backward pass.

Design notes:

- A :class:`Tensor` wraps an ``np.ndarray`` and records its parents and a
  backward closure when produced by a differentiable op.
- Gradients accumulate into ``.grad`` (an ndarray of the same shape).
- Broadcasting is supported; :func:`_unbroadcast` sums gradients over
  broadcast axes so shapes always match.
- No in-place mutation of tensor data after creation (functional style),
  which keeps the tape valid.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..exceptions import ModelError
from .precision import DEFAULT_PRECISION


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


#: Float dtypes a Tensor payload may carry (see repro.nn.precision).
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _as_array(value) -> np.ndarray:
    """Coerce a payload to a float ndarray, *preserving* its precision.

    float32 and float64 arrays pass through unchanged — the substrate is
    dtype-polymorphic and the active precision is whatever dtype the
    inputs (model parameters, demand stacks) carry. Everything else
    (lists, ints, bools, scalars) converts to the float64 default.
    """
    if isinstance(value, np.ndarray) and value.dtype in _FLOAT_DTYPES:
        return value
    if isinstance(value, (np.float32, np.float64)):
        # Reductions of float32 arrays yield numpy scalars; keep them.
        return np.asarray(value)
    if type(value).__module__.partition(".")[0] == "torch":
        # Backend interop (repro.core.backend): torch payloads crossing
        # the no-tape fast-path boundary land on the host, preserving
        # their dtype. Duck-typed so torch is never imported here.
        value = value.detach().cpu().numpy()
        if value.dtype in _FLOAT_DTYPES:
            return value
    return np.asarray(value, dtype=DEFAULT_PRECISION.dtype)


def _transpose_last(arr: np.ndarray) -> np.ndarray:
    """Swap the last two axes (matrix transpose of possibly-batched arrays)."""
    if arr.ndim < 2:
        return arr
    return np.swapaxes(arr, -1, -2)


class Tensor:
    """An autodiff tensor.

    Args:
        data: Array-like payload. float32/float64 ndarrays keep their
            dtype (the substrate is dtype-polymorphic; see
            :mod:`repro.nn.precision`); anything else converts to the
            float64 default.
        requires_grad: Whether gradients should flow to this tensor.
        parents: Tensors this one was computed from (tape edges).
        backward_fn: Closure that, given this tensor's output gradient,
            accumulates gradients into the parents.
        name: Optional label for debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) or any(
            p.requires_grad for p in parents
        )
        self._parents = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (a view; do not mutate)."""
        return self.data

    def item(self) -> float:
        """Scalar value of a 0-d or 1-element tensor."""
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Args:
            gradient: Output gradient; defaults to 1 for scalar tensors.

        Raises:
            ModelError: If called on a non-scalar without a gradient.
        """
        if gradient is None:
            if self.data.size != 1:
                raise ModelError(
                    "backward() on a non-scalar tensor requires a gradient"
                )
            gradient = np.ones_like(self.data)
        gradient = _as_array(gradient)
        if gradient.shape != self.data.shape:
            raise ModelError(
                f"gradient shape {gradient.shape} != tensor shape {self.data.shape}"
            )

        order = self._topological_order()
        self.grad = gradient if self.grad is None else self.grad + gradient
        for node in order:
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def _topological_order(self) -> list["Tensor"]:
        """Nodes reachable from self, in reverse topological order."""
        visited: set[int] = set()
        order: list[Tensor] = []

        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, like=self.data)
        out = Tensor(self.data + other.data, parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        out._backward_fn = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, parents=(self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        out._backward_fn = backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other, like=self.data))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, like=self.data) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, like=self.data)
        out = Tensor(self.data * other.data, parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        out._backward_fn = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, like=self.data)
        out = Tensor(self.data / other.data, parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        out._backward_fn = backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, like=self.data) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ModelError("only scalar exponents are supported")
        out = Tensor(self.data ** exponent, parents=(self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward_fn = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        """Matrix product with stacked (batched) operand support.

        Either operand may carry leading batch axes (numpy matmul
        semantics); ``_unbroadcast`` inside :meth:`_accumulate` sums the
        gradient over axes broadcast across the batch, so e.g. a shared
        (I, O) weight applied to (B, D, I) inputs receives a (I, O)
        gradient summed over the batch.
        """
        other = as_tensor(other)
        out = Tensor(self.data @ other.data, parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ _transpose_last(other.data))
            if other.requires_grad:
                other._accumulate(_transpose_last(self.data) @ grad)

        out._backward_fn = backward
        return out

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = Tensor(self.data.reshape(shape), parents=(self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        out._backward_fn = backward
        return out

    @property
    def T(self) -> "Tensor":
        out = Tensor(self.data.T, parents=(self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        out._backward_fn = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), parents=(self,))

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        out._backward_fn = backward
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)


def as_tensor(value, like: np.ndarray | None = None) -> Tensor:
    """Coerce arrays/scalars to constant tensors; pass tensors through.

    Args:
        value: Tensor, ndarray, or scalar.
        like: Optional reference array. Plain Python scalars adopt its
            dtype — the tensor analogue of numpy's weak scalar
            promotion, so ``float32_tensor * 2.0`` stays float32 instead
            of silently promoting through a float64 scalar tensor.
            Numpy scalars are *strong* (as in NEP 50) and keep their own
            dtype: ``np.float64`` subclasses Python ``float``, so it
            must be excluded here or float64 reduction results would be
            silently rounded into float32.
    """
    if isinstance(value, Tensor):
        return value
    if (
        like is not None
        and isinstance(value, (int, float))
        and not isinstance(value, (bool, np.generic))
    ):
        return Tensor(np.asarray(value, dtype=like.dtype))
    return Tensor(value)


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)
