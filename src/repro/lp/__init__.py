"""LP substrate: path-formulation builders, objectives, HiGHS solver."""

from .formulation import (
    LinearProgram,
    build_flow_lp,
    build_lp,
    build_mlu_lp,
    build_restricted_flow_lp,
    demand_constraint_matrix,
)
from .objectives import (
    OBJECTIVES,
    DelayPenalizedFlowObjective,
    MinMaxLinkUtilizationObjective,
    Objective,
    TotalFlowObjective,
    get_objective,
)
from .solver import LpSolution, lp_split_ratios, solve_lp, solve_te_lp

__all__ = [
    "LinearProgram",
    "build_flow_lp",
    "build_mlu_lp",
    "build_lp",
    "build_restricted_flow_lp",
    "demand_constraint_matrix",
    "Objective",
    "TotalFlowObjective",
    "MinMaxLinkUtilizationObjective",
    "DelayPenalizedFlowObjective",
    "OBJECTIVES",
    "get_objective",
    "LpSolution",
    "solve_lp",
    "solve_te_lp",
    "lp_split_ratios",
]
