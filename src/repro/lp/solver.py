"""LP solving via scipy's HiGHS backend (the Gurobi substitute).

The paper's baselines solve the path-formulation LP with Gurobi; per
DESIGN.md §2 we substitute ``scipy.optimize.linprog(method="highs")`` —
also an exact sparse LP solver with the same iterative, input-dependent
runtime profile that motivates Teal. Wall-clock time is measured around
the solve and surfaced on every result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..exceptions import SolverError
from ..paths.pathset import PathSet
from .formulation import LinearProgram, build_lp
from .objectives import Objective


@dataclass(frozen=True)
class LpSolution:
    """Result of one LP solve.

    Attributes:
        path_flows: (P,) optimal path flows.
        objective_value: Objective in the *paper's* sense (total flow for
            max objectives, MLU for the min-MLU program).
        solve_time: Wall-clock seconds spent inside the solver.
        iterations: Simplex/IPM iteration count reported by HiGHS.
        status: Solver status string.
        auxiliary: Values of non-path variables (e.g. the MLU ``t``).
    """

    path_flows: np.ndarray
    objective_value: float
    solve_time: float
    iterations: int
    status: str
    auxiliary: np.ndarray


def solve_lp(program: LinearProgram) -> LpSolution:
    """Solve a built LP and return flows with timing.

    Raises:
        SolverError: If HiGHS reports failure (status != 0).
    """
    start = time.perf_counter()
    result = linprog(
        c=program.c,
        A_ub=program.a_ub,
        b_ub=program.b_ub,
        A_eq=program.a_eq,
        b_eq=program.b_eq,
        bounds=program.bounds,
        method="highs",
    )
    elapsed = time.perf_counter() - start
    if not result.success:
        raise SolverError(f"LP solve failed: {result.message}")
    x = np.asarray(result.x, dtype=float)
    path_flows = x[: program.num_path_vars]
    auxiliary = x[program.num_path_vars :]
    # linprog minimizes c @ x; for max-flow builders c = -values.
    objective_value = float(-result.fun) if auxiliary.size == 0 else float(result.fun)
    iterations = int(getattr(result, "nit", 0) or 0)
    return LpSolution(
        path_flows=path_flows,
        objective_value=objective_value,
        solve_time=elapsed,
        iterations=iterations,
        status=str(result.message),
        auxiliary=auxiliary,
    )


def solve_te_lp(
    pathset: PathSet,
    demands: np.ndarray,
    objective: Objective,
    capacities: np.ndarray | None = None,
    demand_subset: np.ndarray | None = None,
) -> LpSolution:
    """Build and solve the TE LP for ``objective`` in one call."""
    program = build_lp(pathset, demands, objective, capacities, demand_subset)
    return solve_lp(program)


def lp_split_ratios(
    pathset: PathSet, solution: LpSolution, demands: np.ndarray
) -> np.ndarray:
    """Convert an LP solution's path flows to (D, k) split ratios."""
    ratios = pathset.path_flows_to_split_ratios(solution.path_flows, demands)
    return np.clip(ratios, 0.0, 1.0)
