"""TE objectives (Appendix A, §5.5).

Three operator objectives from the paper:

- :class:`TotalFlowObjective` — maximize total feasible flow (default,
  Equation 1).
- :class:`MinMaxLinkUtilizationObjective` — minimize the maximum link
  utilization while routing all demand (§5.5, Figure 11).
- :class:`DelayPenalizedFlowObjective` — maximize total flow with delay
  penalties (§5.5, Figure 12): each unit of flow on path ``p`` is worth
  ``1 - beta * (latency_p / shortest_latency_d - 1)``, so longer detours
  earn less. This is linear in path flows, hence LP-compatible.

Every objective exposes:

- ``path_values(pathset)``: per-path per-unit-flow value used as the LP
  cost vector (flow-type objectives).
- ``evaluate(pathset, split_ratios, demands, capacities)``: the raw metric.
- ``reward(...)``: the metric signed so that *higher is better*, used as
  the RL reward (§3.3 — "the desired TE objective can be used directly
  as the reward").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import SolverError
from ..paths.pathset import PathSet
from ..simulation.evaluator import evaluate_allocation, evaluate_allocations_batch
from ..topology.graph import broadcast_capacities


class Objective(ABC):
    """A TE objective over path-formulation allocations."""

    #: Short identifier used in reports and model filenames.
    name: str = "objective"
    #: "max" or "min" — direction of the raw metric.
    sense: str = "max"

    @abstractmethod
    def evaluate(
        self,
        pathset: PathSet,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> float:
        """Raw metric of an allocation (feasibility enforced first)."""

    def evaluate_batch(
        self,
        pathset: PathSet,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> np.ndarray:
        """(T,) raw metrics of a stack of allocations.

        The default loops :meth:`evaluate` so every objective supports
        the batched API; objectives whose metric vectorizes (all three
        built-ins) override it with one
        :func:`~repro.simulation.evaluator.evaluate_allocations_batch`
        pass.

        Args:
            pathset: The path set.
            split_ratios: (T, D, k) stacked split ratios.
            demands: (T, D) stacked demand volumes.
            capacities: (E,) shared, (T, E) per-matrix, or None.
        """
        caps = _capacities_stack(pathset, capacities, demands.shape[0])
        return np.array(
            [
                self.evaluate(pathset, split_ratios[t], demands[t], caps[t])
                for t in range(demands.shape[0])
            ]
        )

    def reward(
        self,
        pathset: PathSet,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> float:
        """Metric signed so that higher is better (the RL reward)."""
        value = self.evaluate(pathset, split_ratios, demands, capacities)
        return value if self.sense == "max" else -value

    def reward_batch(
        self,
        pathset: PathSet,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> np.ndarray:
        """(T,) rewards (metric signed so higher is better) for a stack."""
        values = self.evaluate_batch(pathset, split_ratios, demands, capacities)
        return values if self.sense == "max" else -values

    def path_values(self, pathset: PathSet) -> np.ndarray:
        """Per-unit-flow value of each path (flow-type objectives only)."""
        raise SolverError(f"objective {self.name} has no per-path flow values")

    def requires_full_routing(self) -> bool:
        """Whether all demand must be routed (equality demand constraints)."""
        return False


def _capacities_stack(
    pathset: PathSet, capacities: np.ndarray | None, num_matrices: int
) -> np.ndarray:
    """Normalize a (E,)/(T, E)/None capacities argument to a (T, E) stack."""
    if capacities is None:
        capacities = pathset.topology.capacities
    return broadcast_capacities(capacities, num_matrices)


class TotalFlowObjective(Objective):
    """Maximize total feasible flow (Equation 1)."""

    name = "total_flow"
    sense = "max"

    def path_values(self, pathset: PathSet) -> np.ndarray:
        return np.ones(pathset.num_paths)

    def evaluate(self, pathset, split_ratios, demands, capacities=None) -> float:
        report = evaluate_allocation(pathset, split_ratios, demands, capacities)
        return report.delivered_total

    def evaluate_batch(
        self, pathset, split_ratios, demands, capacities=None
    ) -> np.ndarray:
        report = evaluate_allocations_batch(
            pathset, split_ratios, demands, capacities
        )
        return report.delivered_total


class MinMaxLinkUtilizationObjective(Objective):
    """Minimize max link utilization while routing all demand (§5.5).

    Allocations are normalized so each demand's ratios sum to exactly 1
    before measuring utilization (the MLU formulation routes everything;
    capacities may be exceeded — that is what MLU measures).
    """

    name = "min_mlu"
    sense = "min"

    def requires_full_routing(self) -> bool:
        return True

    def evaluate(self, pathset, split_ratios, demands, capacities=None) -> float:
        demands = np.asarray(demands, dtype=float)
        if capacities is None:
            capacities = pathset.topology.capacities
        ratios = np.clip(np.asarray(split_ratios, dtype=float), 0.0, None)
        sums = ratios.sum(axis=1, keepdims=True)
        fallback = np.zeros_like(ratios)
        fallback[:, 0] = 1.0
        ratios = np.where(sums > 1e-12, ratios / np.maximum(sums, 1e-12), fallback)
        flows = pathset.split_ratios_to_path_flows(ratios, demands)
        loads = pathset.edge_loads(flows)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                capacities > 0,
                loads / np.maximum(capacities, 1e-300),
                np.where(loads > 0, np.inf, 0.0),
            )
        return float(util.max()) if util.size else 0.0

    def evaluate_batch(
        self, pathset, split_ratios, demands, capacities=None
    ) -> np.ndarray:
        demands = np.asarray(demands, dtype=float)
        num_matrices = demands.shape[0]
        capacities = _capacities_stack(pathset, capacities, num_matrices)
        ratios = np.clip(np.asarray(split_ratios, dtype=float), 0.0, None)
        sums = ratios.sum(axis=-1, keepdims=True)
        fallback = np.zeros_like(ratios)
        fallback[..., 0] = 1.0
        ratios = np.where(
            sums > 1e-12, ratios / np.maximum(sums, 1e-12), fallback
        )
        flows = pathset.split_ratios_to_path_flows_batch(ratios, demands)
        loads = pathset.edge_loads_batch(flows)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                capacities > 0,
                loads / np.maximum(capacities, 1e-300),
                np.where(loads > 0, np.inf, 0.0),
            )
        if not util.shape[-1]:
            return np.zeros(num_matrices)
        return util.max(axis=-1)


class DelayPenalizedFlowObjective(Objective):
    """Maximize total flow with delay penalties (§5.5, Figure 12).

    Args:
        beta: Penalty strength; a unit of flow on a path whose latency is
            ``r`` times its demand's shortest-path latency is worth
            ``max(0, 1 - beta * (r - 1))``.
    """

    name = "delay_penalized_flow"
    sense = "max"

    def __init__(self, beta: float = 0.5) -> None:
        if beta < 0:
            raise SolverError("beta must be non-negative")
        self.beta = beta

    def path_values(self, pathset: PathSet) -> np.ndarray:
        shortest = np.full(pathset.num_demands, np.inf)
        np.minimum.at(shortest, pathset.path_demand, pathset.path_latencies)
        stretch = pathset.path_latencies / np.maximum(
            shortest[pathset.path_demand], 1e-12
        )
        return np.maximum(0.0, 1.0 - self.beta * (stretch - 1.0))

    def evaluate(self, pathset, split_ratios, demands, capacities=None) -> float:
        report = evaluate_allocation(pathset, split_ratios, demands, capacities)
        return float(report.delivered_path_flows @ self.path_values(pathset))

    def evaluate_batch(
        self, pathset, split_ratios, demands, capacities=None
    ) -> np.ndarray:
        report = evaluate_allocations_batch(
            pathset, split_ratios, demands, capacities
        )
        return report.delivered_path_flows @ self.path_values(pathset)


#: Registry of the paper's objectives by name.
OBJECTIVES: dict[str, Objective] = {
    "total_flow": TotalFlowObjective(),
    "min_mlu": MinMaxLinkUtilizationObjective(),
    "delay_penalized_flow": DelayPenalizedFlowObjective(),
}


def get_objective(name: str) -> Objective:
    """Look up an objective by registry name.

    Raises:
        SolverError: If the name is unknown.
    """
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise SolverError(
            f"unknown objective {name!r}; expected one of {sorted(OBJECTIVES)}"
        ) from None
