"""Sparse LP builders for the path formulation of TE (Appendix A).

Builds the constraint matrices of Equation (1) — and its MLU variant —
directly from a :class:`~repro.paths.pathset.PathSet`'s incidence
structures, as sparse CSR blocks ready for ``scipy.optimize.linprog``.

Variables are path flows ``x_p >= 0`` (absolute volume, not ratios):

- total-flow / delay-penalized:  max  v^T x
      s.t.  sum_{p in P_d} x_p <= demand_d      (demand rows)
            sum_{p ∋ e} x_p <= capacity_e       (edge rows)
- min-MLU:  variables [x; t],  min t
      s.t.  sum_{p in P_d} x_p  = demand_d      (route everything)
            sum_{p ∋ e} x_p - capacity_e * t <= 0
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..exceptions import SolverError
from ..paths.pathset import PathSet
from .objectives import MinMaxLinkUtilizationObjective, Objective


@dataclass(frozen=True)
class LinearProgram:
    """A linear program in scipy's ``linprog`` form (minimization).

    Attributes:
        c: Cost vector.
        a_ub: Sparse inequality matrix (``a_ub @ x <= b_ub``), or None.
        b_ub: Inequality right-hand side.
        a_eq: Sparse equality matrix, or None.
        b_eq: Equality right-hand side.
        bounds: Per-variable (low, high) bounds.
        num_path_vars: Leading variables that are path flows (the rest are
            auxiliaries such as the MLU variable ``t``).
    """

    c: np.ndarray
    a_ub: sp.csr_matrix | None
    b_ub: np.ndarray | None
    a_eq: sp.csr_matrix | None
    b_eq: np.ndarray | None
    bounds: list[tuple[float, float | None]]
    num_path_vars: int


def demand_constraint_matrix(pathset: PathSet) -> sp.csr_matrix:
    """(D, P) matrix summing path flows per demand."""
    rows = pathset.path_demand
    cols = np.arange(pathset.num_paths)
    data = np.ones(pathset.num_paths)
    return sp.csr_matrix(
        (data, (rows, cols)), shape=(pathset.num_demands, pathset.num_paths)
    )


def build_flow_lp(
    pathset: PathSet,
    demands: np.ndarray,
    objective: Objective,
    capacities: np.ndarray | None = None,
    demand_subset: np.ndarray | None = None,
) -> LinearProgram:
    """Build the maximization LP for a flow-type objective.

    Args:
        pathset: Path set with incidence structures.
        demands: (D,) demand volumes.
        objective: A flow-type objective providing ``path_values``.
        capacities: Per-edge capacities (default: topology's).
        demand_subset: Optional demand ids to include; excluded demands get
            zero-volume rows (their paths are still capacity-constrained
            to zero via the demand row). Used by LP-top and POP.

    Returns:
        A :class:`LinearProgram` (minimization of the negated objective).
    """
    demands = np.asarray(demands, dtype=float)
    if demands.shape != (pathset.num_demands,):
        raise SolverError("demands shape mismatch")
    if capacities is None:
        capacities = pathset.topology.capacities
    capacities = np.asarray(capacities, dtype=float)

    effective = demands.copy()
    if demand_subset is not None:
        mask = np.zeros(pathset.num_demands, dtype=bool)
        mask[np.asarray(demand_subset, dtype=int)] = True
        effective = np.where(mask, effective, 0.0)

    values = objective.path_values(pathset)
    a_ub = sp.vstack(
        [demand_constraint_matrix(pathset), pathset.edge_path_incidence],
        format="csr",
    )
    b_ub = np.concatenate([effective, capacities])
    return LinearProgram(
        c=-values,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=None,
        b_eq=None,
        bounds=[(0.0, None)] * pathset.num_paths,
        num_path_vars=pathset.num_paths,
    )


def build_mlu_lp(
    pathset: PathSet,
    demands: np.ndarray,
    capacities: np.ndarray | None = None,
) -> LinearProgram:
    """Build the min-MLU LP (§5.5): route all demand, minimize max utilization."""
    demands = np.asarray(demands, dtype=float)
    if demands.shape != (pathset.num_demands,):
        raise SolverError("demands shape mismatch")
    if capacities is None:
        capacities = pathset.topology.capacities
    capacities = np.asarray(capacities, dtype=float)
    if (capacities <= 0).any():
        # Zero-capacity (failed) links cannot appear in an MLU denominator;
        # treat them as epsilon capacity so the LP stays bounded/meaningful.
        capacities = np.maximum(capacities, 1e-9 * max(capacities.max(), 1.0))

    num_paths = pathset.num_paths
    # Edge rows: incidence @ x - cap * t <= 0.
    edge_block = sp.hstack(
        [
            pathset.edge_path_incidence,
            sp.csr_matrix(-capacities.reshape(-1, 1)),
        ],
        format="csr",
    )
    eq_block = sp.hstack(
        [
            demand_constraint_matrix(pathset),
            sp.csr_matrix((pathset.num_demands, 1)),
        ],
        format="csr",
    )
    c = np.zeros(num_paths + 1)
    c[-1] = 1.0
    bounds = [(0.0, None)] * num_paths + [(0.0, None)]
    return LinearProgram(
        c=c,
        a_ub=edge_block,
        b_ub=np.zeros(pathset.topology.num_edges),
        a_eq=eq_block,
        b_eq=demands,
        bounds=bounds,
        num_path_vars=num_paths,
    )


def build_lp(
    pathset: PathSet,
    demands: np.ndarray,
    objective: Objective,
    capacities: np.ndarray | None = None,
    demand_subset: np.ndarray | None = None,
) -> LinearProgram:
    """Dispatch to the right builder for ``objective``."""
    if isinstance(objective, MinMaxLinkUtilizationObjective):
        if demand_subset is not None:
            raise SolverError("MLU LP does not support demand subsetting")
        return build_mlu_lp(pathset, demands, capacities)
    return build_flow_lp(pathset, demands, objective, capacities, demand_subset)


def build_restricted_flow_lp(
    pathset: PathSet,
    demands: np.ndarray,
    objective: Objective,
    capacities: np.ndarray,
    demand_ids: np.ndarray,
) -> tuple[LinearProgram, np.ndarray]:
    """A genuinely smaller LP over only the paths of ``demand_ids``.

    Decomposition schemes (NCFlow's clusters, POP's replicas) owe their
    speedup to solving *smaller* LPs; zeroing demands in the full program
    would not shrink the matrix, so this builder slices the incidence
    columns down to the subset's paths.

    Args:
        pathset: The full path set.
        demands: (D,) full demand vector.
        objective: Flow-type objective.
        capacities: Per-edge capacities visible to this subproblem.
        demand_ids: Demand ids included in the subproblem.

    Returns:
        ``(program, path_ids)`` where ``path_ids`` maps the program's
        variables back to global path ids.
    """
    demands = np.asarray(demands, dtype=float)
    demand_ids = np.asarray(demand_ids, dtype=int)
    if demand_ids.size == 0:
        raise SolverError("restricted LP needs at least one demand")
    path_selector = np.isin(pathset.path_demand, demand_ids)
    path_ids = np.flatnonzero(path_selector)
    incidence = pathset.edge_path_incidence[:, path_ids].tocsr()

    # Compact demand rows: one row per subset demand.
    local_demand_index = {int(d): i for i, d in enumerate(demand_ids)}
    rows = np.array(
        [local_demand_index[int(pathset.path_demand[p])] for p in path_ids]
    )
    cols = np.arange(path_ids.size)
    demand_rows = sp.csr_matrix(
        (np.ones(path_ids.size), (rows, cols)),
        shape=(demand_ids.size, path_ids.size),
    )
    values = objective.path_values(pathset)[path_ids]
    a_ub = sp.vstack([demand_rows, incidence], format="csr")
    b_ub = np.concatenate([demands[demand_ids], np.asarray(capacities, float)])
    program = LinearProgram(
        c=-values,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=None,
        b_eq=None,
        bounds=[(0.0, None)] * path_ids.size,
        num_path_vars=path_ids.size,
    )
    return program, path_ids
