"""Ablation model variants evaluated in Figure 14 (§5.7).

- :class:`NaiveDnnModel` ("Teal w/ naive DNN") — a 6-layer fully
  connected network mapping the whole demand vector directly to all
  split-ratio logits, ignoring WAN connectivity entirely.
- :class:`NaiveGnnModel` ("Teal w/ naive GNN") — a conventional GNN over
  the WAN graph itself (one node per site, message passing along links);
  per-demand logits come from the source/destination site embeddings.
  Captures connectivity but not edge-path flow structure.
- :class:`GlobalPolicyModel` ("Teal w/ global policy") — FlowGNN features
  feeding one gigantic policy over *all* demands at once; parameter count
  grows with topology size, which is why the paper reports memory errors
  on ASN (we raise :class:`ModelError` above a parameter budget to model
  the same failure).

All variants reuse :class:`~repro.core.policy.ActionHead`, so the COMA*
and direct-loss trainers run on them unchanged.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..config import TealHyperparameters
from ..exceptions import ModelError
from ..nn import functional as F
from ..nn.layers import Linear, mlp
from ..nn.precision import EVALUATION_DTYPE
from ..nn.tensor import Tensor
from ..paths.pathset import PathSet
from .flowgnn import FlowGNN
from .model import AllocatorModel
from .policy import ActionHead

#: Parameter budget above which the global policy "runs out of memory"
#: (models the paper's observed failure on large topologies, §5.7).
GLOBAL_POLICY_PARAM_LIMIT = 40_000_000


class NaiveDnnModel(AllocatorModel):
    """Fully-connected model on the raw demand vector (Figure 14).

    Args:
        pathset: The path set (fixes input/output sizes).
        hyper: Hyperparameters (reuses the learning rate / action std).
        hidden: Hidden width of the 6-layer MLP.
        seed: Weight-init seed.
    """

    def __init__(
        self,
        pathset: PathSet,
        hyper: TealHyperparameters | None = None,
        hidden: int = 128,
        seed: int = 0,
    ) -> None:
        self.pathset = pathset
        self.hyper = hyper if hyper is not None else TealHyperparameters()
        rng = np.random.default_rng(seed)
        in_dim = pathset.num_demands
        out_dim = pathset.num_demands * pathset.max_paths
        self.net = mlp(
            [in_dim, hidden, hidden, hidden, hidden, hidden, out_dim],
            activation="relu",
            rng=rng,
        )
        self.policy = ActionHead(pathset.max_paths, self.hyper.action_log_std)

    def logits(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        scale = max(float(np.mean(capacities)), 1e-9)
        x = Tensor(
            (np.asarray(demands, EVALUATION_DTYPE) / scale).reshape(1, -1)
        )
        out = self.net(x)
        return out.reshape(self.pathset.num_demands, self.pathset.max_paths)


class NaiveGnnModel(AllocatorModel):
    """Site-level GNN over the WAN graph (Figure 14).

    Message passing runs on the topology's node adjacency; each demand's
    logits are produced by a shared head reading the concatenated
    source/destination embeddings. This sees connectivity but cannot
    represent per-path contention — the gap Figure 14 quantifies.

    Args:
        pathset: The path set.
        hyper: Hyperparameters.
        embedding_dim: Node-embedding width.
        num_layers: Message-passing rounds.
        seed: Weight-init seed.
    """

    def __init__(
        self,
        pathset: PathSet,
        hyper: TealHyperparameters | None = None,
        embedding_dim: int = 12,
        num_layers: int = 6,
        seed: int = 0,
    ) -> None:
        self.pathset = pathset
        self.hyper = hyper if hyper is not None else TealHyperparameters()
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers
        rng = np.random.default_rng(seed)
        topo = pathset.topology

        rows = [u for u, _ in topo.edges] + [v for _, v in topo.edges]
        cols = [v for _, v in topo.edges] + [u for u, _ in topo.edges]
        data = np.ones(len(rows))
        adjacency = sp.csr_matrix(
            (data, (rows, cols)), shape=(topo.num_nodes, topo.num_nodes)
        )
        degree = np.asarray(adjacency.sum(axis=1)).reshape(-1, 1)
        self.adjacency = adjacency
        self.degree_scale = 1.0 / np.maximum(degree, 1.0)

        self.input_proj = Linear(2, embedding_dim, rng=rng)
        self.layers = [
            Linear(2 * embedding_dim, embedding_dim, rng=rng)
            for _ in range(num_layers)
        ]
        self.head = mlp(
            [2 * embedding_dim, self.hyper.policy_hidden, pathset.max_paths],
            activation="relu",
            rng=rng,
        )
        self.policy = ActionHead(pathset.max_paths, self.hyper.action_log_std)
        self._src = np.array([s for s, _ in pathset.pairs])
        self._dst = np.array([t for _, t in pathset.pairs])

    def logits(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        topo = self.pathset.topology
        demands = np.asarray(demands, dtype=EVALUATION_DTYPE)
        capacities = np.asarray(capacities, dtype=EVALUATION_DTYPE)
        scale = max(float(capacities.mean()), 1e-9)
        # Node features: total outgoing demand and outgoing capacity.
        out_demand = np.zeros(topo.num_nodes)
        np.add.at(out_demand, self._src, demands)
        out_capacity = np.zeros(topo.num_nodes)
        for eid, (u, _) in enumerate(topo.edges):
            out_capacity[u] += capacities[eid]
        features = np.stack([out_demand / scale, out_capacity / scale], axis=1)

        h = F.tanh(self.input_proj(Tensor(features)))
        for layer in self.layers:
            agg = F.sparse_matmul(self.adjacency, h) * Tensor(self.degree_scale)
            h = F.tanh(layer(F.concat([h, agg])))
        pair_features = F.concat(
            [F.take_rows(h, self._src), F.take_rows(h, self._dst)]
        )
        return self.head(pair_features)


class GlobalPolicyModel(AllocatorModel):
    """FlowGNN + one monolithic policy over all demands (Figure 14).

    Args:
        pathset: The path set.
        hyper: Hyperparameters.
        hidden: Hidden width of the global policy.
        seed: Weight-init seed.

    Raises:
        ModelError: If the flattened policy would exceed the parameter
            budget (the paper's out-of-memory failure mode on ASN).
    """

    def __init__(
        self,
        pathset: PathSet,
        hyper: TealHyperparameters | None = None,
        hidden: int = 256,
        seed: int = 0,
    ) -> None:
        self.pathset = pathset
        self.hyper = hyper if hyper is not None else TealHyperparameters()
        self.flow_gnn = FlowGNN(
            pathset, num_layers=self.hyper.num_gnn_layers, seed=seed
        )
        in_dim = pathset.num_demands * pathset.max_paths * self.flow_gnn.embedding_dim
        out_dim = pathset.num_demands * pathset.max_paths
        approx_params = in_dim * hidden + hidden * out_dim
        if approx_params > GLOBAL_POLICY_PARAM_LIMIT:
            raise ModelError(
                f"global policy would need ~{approx_params / 1e6:.0f}M "
                "parameters; infeasible (matches the paper's memory errors "
                "on large topologies, §5.7)"
            )
        rng = np.random.default_rng(seed + 1)
        self.net = mlp([in_dim, hidden, out_dim], activation="relu", rng=rng)
        self.policy = ActionHead(pathset.max_paths, self.hyper.action_log_std)

    def logits(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        embeddings = self.flow_gnn(demands, capacities)
        features = self.flow_gnn.grouped_embeddings(embeddings)
        flat = features.reshape(1, self.pathset.num_demands * features.shape[1])
        out = self.net(flat)
        return out.reshape(self.pathset.num_demands, self.pathset.max_paths)
