"""Teal core: FlowGNN, multi-agent RL, ADMM, and the end-to-end scheme."""

from .ablations import GlobalPolicyModel, NaiveDnnModel, NaiveGnnModel
from .admm import AdmmFineTuner
from .backend import (
    DEFAULT_BACKEND,
    NUMPY,
    TORCH,
    Backend,
    register_array_ops,
    resolve_backend,
)
from .batching import SegmentOps, Workspace
from .checkpoint import load_model, save_model, transfer_weights
from .coma import ComaTrainer, DecomposableReward, TrainingHistory, masked_softmax_np
from .direct_loss import (
    DirectLossTrainer,
    mlu_surrogate_loss,
    mlu_surrogate_loss_batch,
    model_path_flows,
    model_path_flows_batch,
    surrogate_loss,
    surrogate_loss_batch,
)
from .flowgnn import DemandDNNLayer, FlowGNN, FlowGNNLayer
from .model import AllocatorModel, TealModel, grid_scatter_index
from .policy import ActionHead, PolicyNetwork
from .teal import TealScheme

__all__ = [
    "Backend",
    "DEFAULT_BACKEND",
    "NUMPY",
    "TORCH",
    "register_array_ops",
    "resolve_backend",
    "FlowGNN",
    "FlowGNNLayer",
    "DemandDNNLayer",
    "ActionHead",
    "PolicyNetwork",
    "AllocatorModel",
    "TealModel",
    "grid_scatter_index",
    "ComaTrainer",
    "DecomposableReward",
    "TrainingHistory",
    "masked_softmax_np",
    "DirectLossTrainer",
    "surrogate_loss",
    "surrogate_loss_batch",
    "mlu_surrogate_loss",
    "mlu_surrogate_loss_batch",
    "model_path_flows",
    "model_path_flows_batch",
    "SegmentOps",
    "Workspace",
    "AdmmFineTuner",
    "TealScheme",
    "NaiveDnnModel",
    "NaiveGnnModel",
    "GlobalPolicyModel",
    "save_model",
    "load_model",
    "transfer_weights",
]
