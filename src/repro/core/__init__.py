"""Teal core: FlowGNN, multi-agent RL, ADMM, and the end-to-end scheme."""

from .ablations import GlobalPolicyModel, NaiveDnnModel, NaiveGnnModel
from .admm import AdmmFineTuner
from .checkpoint import load_model, save_model, transfer_weights
from .coma import ComaTrainer, DecomposableReward, TrainingHistory, masked_softmax_np
from .direct_loss import (
    DirectLossTrainer,
    mlu_surrogate_loss,
    model_path_flows,
    surrogate_loss,
)
from .flowgnn import DemandDNNLayer, FlowGNN, FlowGNNLayer
from .model import AllocatorModel, TealModel, grid_scatter_index
from .policy import ActionHead, PolicyNetwork
from .teal import TealScheme

__all__ = [
    "FlowGNN",
    "FlowGNNLayer",
    "DemandDNNLayer",
    "ActionHead",
    "PolicyNetwork",
    "AllocatorModel",
    "TealModel",
    "grid_scatter_index",
    "ComaTrainer",
    "DecomposableReward",
    "TrainingHistory",
    "masked_softmax_np",
    "DirectLossTrainer",
    "surrogate_loss",
    "mlu_surrogate_loss",
    "model_path_flows",
    "AdmmFineTuner",
    "TealScheme",
    "NaiveDnnModel",
    "NaiveGnnModel",
    "GlobalPolicyModel",
    "save_model",
    "load_model",
    "transfer_weights",
]
