"""FlowGNN: the flow-centric graph neural network (§3.2, Figure 4).

FlowGNN represents the *flow-related* entities of TE — edges and paths —
as the nodes of a bipartite GNN:

- an **EdgeNode** per directed link, initialized with the link capacity;
- a **PathNode** per candidate path of each demand, initialized with the
  demand volume (so the node represents a flow, not a physical path);
- an EdgeNode and PathNode are adjacent iff the edge lies on the path.

Each FlowGNN layer is a round of bipartite message passing (capturing
capacity contention) followed by a per-demand DNN layer that jointly
transforms the embeddings of the ≤4 PathNodes belonging to one demand
(capturing the demand constraint). Per §4, the embedding dimension grows
by one element per layer — re-appending the initialization value, the
expressiveness trick of [Nair et al., 2020] — so 6 layers yield 6-element
embeddings.

All aggregation is a constant sparse matrix product (the edge-path
incidence matrix), the numpy stand-in for the paper's GPU scatter ops.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..exceptions import ModelError
from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor
from ..paths.pathset import PathSet


class FlowGNNLayer(Module):
    """One bipartite message-passing round (GNN layer of Figure 4).

    Args:
        dim: Embedding width at this layer.
        rng: Weight-init generator.
    """

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        self.dim = dim
        # Each update sees [own embedding, aggregated neighbor embedding].
        self.edge_update = Linear(2 * dim, dim, rng=rng)
        self.path_update = Linear(2 * dim, dim, rng=rng)

    def forward(
        self,
        edge_emb: Tensor,
        path_emb: Tensor,
        incidence: sp.csr_matrix,
        incidence_t: sp.csr_matrix,
        edge_scale: np.ndarray,
        path_scale: np.ndarray,
    ) -> tuple[Tensor, Tensor]:
        """Run message passing and return updated (edge, path) embeddings.

        Args:
            edge_emb: (E, dim) EdgeNode embeddings.
            path_emb: (P, dim) PathNode embeddings.
            incidence: (E, P) edge-path incidence.
            incidence_t: (P, E) transposed incidence.
            edge_scale: (E, 1) 1/degree normalizer for edge aggregation.
            path_scale: (P, 1) 1/degree normalizer for path aggregation.
        """
        # Paths -> edges: an edge aggregates the flows competing for it.
        path_to_edge = F.sparse_matmul(incidence, path_emb) * Tensor(edge_scale)
        new_edge = F.tanh(self.edge_update(F.concat([edge_emb, path_to_edge])))
        # Edges -> paths: a path aggregates its (possibly bottleneck) links.
        edge_to_path = F.sparse_matmul(incidence_t, new_edge) * Tensor(path_scale)
        new_path = F.tanh(self.path_update(F.concat([path_emb, edge_to_path])))
        return new_edge, new_path


class DemandDNNLayer(Module):
    """Per-demand coordination layer (DNN layer of Figure 4, §3.2).

    Jointly transforms the embeddings of one demand's PathNodes so that
    sibling flows (which a GNN layer cannot see — PathNodes are never
    adjacent) become aware of each other. The same weights are shared by
    every demand, keeping the layer topology-size agnostic.

    Args:
        dim: Per-path embedding width.
        num_paths: Path slots per demand (k).
        rng: Weight-init generator.
    """

    def __init__(self, dim: int, num_paths: int, rng: np.random.Generator) -> None:
        self.dim = dim
        self.num_paths = num_paths
        self.transform = Linear(num_paths * dim, num_paths * dim, rng=rng)

    def forward(
        self,
        path_emb: Tensor,
        gather_index: np.ndarray,
        scatter_index: np.ndarray,
        valid_mask: np.ndarray,
    ) -> Tensor:
        """Update PathNode embeddings demand-by-demand.

        Args:
            path_emb: (P, dim) PathNode embeddings.
            gather_index: (D, k) path ids with padding slots pointing at a
                zero row appended at index P.
            scatter_index: (P,) flat position of each real path inside the
                (D, k) grid.
            valid_mask: (D, k, 1) float mask, 0 at padding slots.

        Returns:
            Updated (P, dim) PathNode embeddings.
        """
        num_demands = gather_index.shape[0]
        padded = F.concat([path_emb, Tensor(np.zeros((1, self.dim)))], axis=0)
        grouped = F.take_rows(padded, gather_index)  # (D, k, dim)
        flat = grouped.reshape(num_demands, self.num_paths * self.dim)
        updated = F.tanh(self.transform(flat))
        updated = updated.reshape(num_demands, self.num_paths, self.dim)
        updated = updated * Tensor(valid_mask)
        # Scatter the grid back to per-path rows.
        grid = updated.reshape(num_demands * self.num_paths, self.dim)
        return F.take_rows(grid, scatter_index)


class FlowGNN(Module):
    """The full FlowGNN stack: alternating GNN and DNN layers (§3.2, §4).

    Args:
        pathset: The path set defining the bipartite structure.
        num_layers: Number of (GNN, DNN) layer pairs (paper: 6).
        seed: Weight-init seed.

    Raises:
        ModelError: On invalid layer counts.
    """

    def __init__(self, pathset: PathSet, num_layers: int = 6, seed: int = 0) -> None:
        if num_layers < 1:
            raise ModelError("FlowGNN needs at least one layer")
        self.pathset = pathset
        self.num_layers = num_layers
        rng = np.random.default_rng(seed)

        self.incidence = pathset.edge_path_incidence.tocsr()
        self.incidence_t = self.incidence.T.tocsr()
        edge_degree = np.asarray(self.incidence.sum(axis=1)).reshape(-1, 1)
        path_degree = np.asarray(self.incidence_t.sum(axis=1)).reshape(-1, 1)
        self.edge_scale = 1.0 / np.maximum(edge_degree, 1.0)
        self.path_scale = 1.0 / np.maximum(path_degree, 1.0)

        # Gather/scatter indices for the per-demand DNN layers.
        gather = pathset.demand_path_ids.copy()
        gather[gather < 0] = pathset.num_paths  # zero row sentinel
        self.gather_index = gather
        positions = np.flatnonzero(pathset.demand_path_ids.reshape(-1) >= 0)
        order = pathset.demand_path_ids.reshape(-1)[positions]
        scatter = np.empty(pathset.num_paths, dtype=int)
        scatter[order] = positions
        self.scatter_index = scatter
        self.valid_mask = pathset.path_mask.astype(float)[:, :, None]

        # Layer dims grow 1, 2, ..., num_layers (§4 embedding growth).
        self.gnn_layers = [
            FlowGNNLayer(layer + 1, rng) for layer in range(num_layers)
        ]
        self.dnn_layers = [
            DemandDNNLayer(layer + 1, pathset.max_paths, rng)
            for layer in range(num_layers)
        ]

    @property
    def embedding_dim(self) -> int:
        """Width of the final PathNode embeddings."""
        return self.num_layers

    def forward(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Compute (P, embedding_dim) flow embeddings.

        Args:
            demands: (D,) demand volumes for this interval.
            capacities: (E,) current link capacities (zero for failed links).

        Returns:
            PathNode embeddings encoding flows for the downstream policy.
        """
        demands = np.asarray(demands, dtype=float)
        capacities = np.asarray(capacities, dtype=float)
        pathset = self.pathset
        if demands.shape != (pathset.num_demands,):
            raise ModelError("demands shape mismatch")
        if capacities.shape != (pathset.topology.num_edges,):
            raise ModelError("capacities shape mismatch")

        # Initialization (§3.2): EdgeNode <- capacity, PathNode <- demand
        # volume, normalized to keep activations in range.
        scale = max(float(capacities.mean()), 1e-9)
        edge_init = (capacities / scale).reshape(-1, 1)
        path_init = (demands[pathset.path_demand] / scale).reshape(-1, 1)

        edge_emb = Tensor(edge_init)
        path_emb = Tensor(path_init)
        for layer in range(self.num_layers):
            edge_emb, path_emb = self.gnn_layers[layer](
                edge_emb,
                path_emb,
                self.incidence,
                self.incidence_t,
                self.edge_scale,
                self.path_scale,
            )
            path_emb = self.dnn_layers[layer](
                path_emb, self.gather_index, self.scatter_index, self.valid_mask
            )
            if layer < self.num_layers - 1:
                # Embedding growth: re-append the initialization value.
                edge_emb = F.concat([edge_emb, Tensor(edge_init)], axis=1)
                path_emb = F.concat([path_emb, Tensor(path_init)], axis=1)
        return path_emb

    def grouped_embeddings(self, path_emb: Tensor) -> Tensor:
        """Arrange path embeddings as (D, k * embedding_dim) policy inputs.

        Padding slots contribute zeros.
        """
        dim = self.embedding_dim
        padded = F.concat([path_emb, Tensor(np.zeros((1, dim)))], axis=0)
        grouped = F.take_rows(padded, self.gather_index)
        grouped = grouped * Tensor(self.valid_mask)
        return grouped.reshape(
            self.pathset.num_demands, self.pathset.max_paths * dim
        )
