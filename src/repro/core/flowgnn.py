"""FlowGNN: the flow-centric graph neural network (§3.2, Figure 4).

FlowGNN represents the *flow-related* entities of TE — edges and paths —
as the nodes of a bipartite GNN:

- an **EdgeNode** per directed link, initialized with the link capacity;
- a **PathNode** per candidate path of each demand, initialized with the
  demand volume (so the node represents a flow, not a physical path);
- an EdgeNode and PathNode are adjacent iff the edge lies on the path.

Each FlowGNN layer is a round of bipartite message passing (capturing
capacity contention) followed by a per-demand DNN layer that jointly
transforms the embeddings of the ≤4 PathNodes belonging to one demand
(capturing the demand constraint). Per §4, the embedding dimension grows
by one element per layer — re-appending the initialization value, the
expressiveness trick of [Nair et al., 2020] — so 6 layers yield 6-element
embeddings.

All aggregation is a constant sparse matrix product (the edge-path
incidence matrix), the numpy stand-in for the paper's GPU scatter ops.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..exceptions import ModelError
from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor
from ..paths.pathset import PathSet
from ..topology.graph import broadcast_capacities
from .backend import Backend, array_ops, resolve_backend
from .batching import (
    Workspace,
    csr_matmul_into,
    linear_into,
    padded_take_rows_into,
    pair_linear_into,
    take_rows_into,
    tanh_,
)


class FlowGNNLayer(Module):
    """One bipartite message-passing round (GNN layer of Figure 4).

    Args:
        dim: Embedding width at this layer.
        rng: Weight-init generator.
    """

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        self.dim = dim
        # Each update sees [own embedding, aggregated neighbor embedding].
        self.edge_update = Linear(2 * dim, dim, rng=rng)
        self.path_update = Linear(2 * dim, dim, rng=rng)

    def forward(
        self,
        edge_emb: Tensor,
        path_emb: Tensor,
        edge_agg: sp.csr_matrix,
        path_agg: sp.csr_matrix,
        edge_agg_t: sp.csr_matrix,
        path_agg_t: sp.csr_matrix,
    ) -> tuple[Tensor, Tensor]:
        """Run message passing and return updated (edge, path) embeddings.

        Embeddings may carry leading batch axes (..., E/P, dim); the
        aggregation then folds the batch into one sparse product.

        Args:
            edge_emb: (..., E, dim) EdgeNode embeddings.
            path_emb: (..., P, dim) PathNode embeddings.
            edge_agg: (E, P) degree-normalized path->edge aggregation
                (the incidence matrix with rows pre-scaled by 1/degree).
            path_agg: (P, E) degree-normalized edge->path aggregation.
            edge_agg_t: Precomputed ``edge_agg.T`` for the backward pass.
            path_agg_t: Precomputed ``path_agg.T`` for the backward pass.
        """
        # Paths -> edges: an edge aggregates the flows competing for it.
        # Each update sees [own embedding, aggregated neighbors] through
        # the split-weight pair_linear (no doubled-width intermediate).
        path_to_edge = F.sparse_matmul(edge_agg, path_emb, transposed=edge_agg_t)
        new_edge = F.tanh(
            F.pair_linear(
                edge_emb, path_to_edge, self.edge_update.weight,
                self.edge_update.bias,
            )
        )
        # Edges -> paths: a path aggregates its (possibly bottleneck) links.
        edge_to_path = F.sparse_matmul(path_agg, new_edge, transposed=path_agg_t)
        new_path = F.tanh(
            F.pair_linear(
                path_emb, edge_to_path, self.path_update.weight,
                self.path_update.bias,
            )
        )
        return new_edge, new_path


class DemandDNNLayer(Module):
    """Per-demand coordination layer (DNN layer of Figure 4, §3.2).

    Jointly transforms the embeddings of one demand's PathNodes so that
    sibling flows (which a GNN layer cannot see — PathNodes are never
    adjacent) become aware of each other. The same weights are shared by
    every demand, keeping the layer topology-size agnostic.

    Args:
        dim: Per-path embedding width.
        num_paths: Path slots per demand (k).
        rng: Weight-init generator.
    """

    def __init__(self, dim: int, num_paths: int, rng: np.random.Generator) -> None:
        self.dim = dim
        self.num_paths = num_paths
        self.transform = Linear(num_paths * dim, num_paths * dim, rng=rng)

    def forward(
        self,
        path_emb: Tensor,
        gather_index: np.ndarray,
        scatter_index: np.ndarray,
    ) -> Tensor:
        """Update PathNode embeddings demand-by-demand.

        Padding slots gather zeros on the way in (-1 indices); on the way
        out no masking is needed because ``scatter_index`` only reads the
        grid positions of real paths — padding positions never reach the
        result or the gradient.

        Args:
            path_emb: (P, dim) PathNode embeddings, optionally with
                leading batch axes (..., P, dim).
            gather_index: (D, k) path ids with -1 marking padding slots.
            scatter_index: (P,) flat position of each real path inside the
                (D, k) grid.

        Returns:
            Updated (..., P, dim) PathNode embeddings.
        """
        lead = path_emb.shape[:-2]
        num_demands = gather_index.shape[0]
        grouped = F.take_rows_padded(path_emb, gather_index)  # (..., D, k, dim)
        flat = grouped.reshape(lead + (num_demands, self.num_paths * self.dim))
        updated = F.tanh(self.transform(flat))
        # Scatter the grid back to per-path rows.
        grid = updated.reshape(lead + (num_demands * self.num_paths, self.dim))
        return F.take_rows(grid, scatter_index)


class FlowGNN(Module):
    """The full FlowGNN stack: alternating GNN and DNN layers (§3.2, §4).

    Args:
        pathset: The path set defining the bipartite structure.
        num_layers: Number of (GNN, DNN) layer pairs (paper: 6).
        seed: Weight-init seed.
        backend: Array backend of the fused inference path (default
            numpy; see :mod:`repro.core.backend`). Weights stay numpy
            (training and checkpointing are numpy-side); the fused
            forward moves them onto the backend through its param
            cache. Inputs/outputs of the public API remain numpy.

    Raises:
        ModelError: On invalid layer counts.
    """

    def __init__(
        self,
        pathset: PathSet,
        num_layers: int = 6,
        seed: int = 0,
        backend: Backend | str | None = None,
    ) -> None:
        if num_layers < 1:
            raise ModelError("FlowGNN needs at least one layer")
        self.pathset = pathset
        self.num_layers = num_layers
        self.backend = resolve_backend(backend)
        rng = self.backend.ops.default_rng(seed)

        self.incidence = pathset.edge_path_incidence.tocsr()
        self.incidence_t = self.incidence.T.tocsr()
        edge_degree = np.asarray(self.incidence.sum(axis=1)).reshape(-1, 1)
        path_degree = np.asarray(self.incidence_t.sum(axis=1)).reshape(-1, 1)
        self.edge_scale = 1.0 / np.maximum(edge_degree, 1.0)
        self.path_scale = 1.0 / np.maximum(path_degree, 1.0)
        # Degree normalization folded into the aggregation matrices (one
        # sparse product per direction instead of product + rescale), with
        # transposes precomputed for the backward pass.
        self.edge_agg = sp.csr_matrix(
            self.incidence.multiply(self.edge_scale)
        )
        self.path_agg = sp.csr_matrix(
            self.incidence_t.multiply(self.path_scale)
        )
        self.edge_agg_t = self.edge_agg.T.tocsr()
        self.path_agg_t = self.path_agg.T.tocsr()

        # Gather/scatter indices for the per-demand DNN layers; -1 marks
        # padding slots (they gather zeros, see take_rows_padded).
        self.gather_index = pathset.demand_path_ids
        positions = np.flatnonzero(pathset.demand_path_ids.reshape(-1) >= 0)
        order = pathset.demand_path_ids.reshape(-1)[positions]
        scatter = np.empty(pathset.num_paths, dtype=int)
        scatter[order] = positions
        self.scatter_index = scatter
        # Flat gather index with -1s clamped to 0, plus the flat padding
        # positions — the static inputs of the fused padded gather.
        flat_gather = self.gather_index.reshape(-1)
        self.safe_gather_index = np.where(flat_gather < 0, 0, flat_gather)
        self.invalid_gather_rows = np.flatnonzero(flat_gather < 0)

        # Compute dtype of the forward (see repro.nn.precision); astype()
        # switches it together with the parameters and aggregation
        # matrices. The float64 aggregates built above are stashed before
        # the first downcast so casting back to float64 restores them
        # exactly (a float32 round trip would round e.g. the 1/3 degree
        # scales). The fused inference path reuses the workspace buffers.
        self._dtype = np.dtype(np.float64)
        self._aggregates64 = None
        self.workspace = Workspace(self.backend)

        # Layer dims grow 1, 2, ..., num_layers (§4 embedding growth).
        self.gnn_layers = [
            FlowGNNLayer(layer + 1, rng) for layer in range(num_layers)
        ]
        self.dnn_layers = [
            DemandDNNLayer(layer + 1, pathset.max_paths, rng)
            for layer in range(num_layers)
        ]

    @property
    def embedding_dim(self) -> int:
        """Width of the final PathNode embeddings."""
        return self.num_layers

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype of the forward (switch with :meth:`astype`)."""
        return self._dtype

    def astype(self, dtype) -> "FlowGNN":
        """Cast parameters *and* aggregation matrices to ``dtype``.

        The precision hook of the substrate: the sparse aggregation
        matrices and degree scales must match the embedding dtype or
        every sparse product would silently promote back to float64.
        Casting away from float64 stashes the exact float64 aggregates;
        casting back restores them bit for bit instead of upcasting
        rounded float32 values. Workspace buffers are dropped (they are
        dtype-keyed). Parameters are always (re)cast, so a model whose
        parameter dtypes changed out-of-band is repaired rather than
        skipped.
        """
        dtype = np.dtype(dtype)
        params = self.parameters()
        if dtype == self._dtype and (not params or params[0].data.dtype == dtype):
            return self
        super().astype(dtype)
        if self._dtype == np.float64 and dtype != np.float64:
            self._aggregates64 = (
                self.edge_agg, self.path_agg, self.edge_agg_t,
                self.path_agg_t, self.edge_scale, self.path_scale,
            )
        if dtype == np.float64 and self._aggregates64 is not None:
            (
                self.edge_agg, self.path_agg, self.edge_agg_t,
                self.path_agg_t, self.edge_scale, self.path_scale,
            ) = self._aggregates64
        else:
            self.edge_agg = self.edge_agg.astype(dtype)
            self.path_agg = self.path_agg.astype(dtype)
            self.edge_agg_t = self.edge_agg_t.astype(dtype)
            self.path_agg_t = self.path_agg_t.astype(dtype)
            self.edge_scale = self.edge_scale.astype(dtype)
            self.path_scale = self.path_scale.astype(dtype)
        self._dtype = dtype
        self.workspace.clear()
        return self

    def _initial_embeddings(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(E, 1) / (P, 1) initializations in the model dtype (§3.2)."""
        demands = np.asarray(demands, dtype=self._dtype)
        capacities = np.asarray(capacities, dtype=self._dtype)
        pathset = self.pathset
        if demands.shape != (pathset.num_demands,):
            raise ModelError("demands shape mismatch")
        if capacities.shape != (pathset.topology.num_edges,):
            raise ModelError("capacities shape mismatch")
        # EdgeNode <- capacity, PathNode <- demand volume, normalized to
        # keep activations in range.
        scale = max(float(capacities.mean()), 1e-9)
        edge_init = (capacities / scale).reshape(-1, 1)
        path_init = (demands[pathset.path_demand] / scale).reshape(-1, 1)
        return edge_init, path_init

    def _initial_embeddings_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(B, E, 1) / (B, P, 1) initializations in the model dtype."""
        demands = np.asarray(demands, dtype=self._dtype)
        pathset = self.pathset
        if demands.ndim != 2 or demands.shape[1] != pathset.num_demands:
            raise ModelError("demands must be (batch, num_demands)")
        batch = demands.shape[0]
        capacities = broadcast_capacities(capacities, batch)
        if capacities.shape != (batch, pathset.topology.num_edges):
            raise ModelError("capacities must be (num_edges,) or (batch, num_edges)")
        capacities = np.asarray(capacities, dtype=self._dtype)
        # Per-element normalization matches the single-TM path exactly, so
        # batched and looped inference agree to machine precision.
        scale = np.maximum(capacities.mean(axis=-1), 1e-9)[:, None, None]
        edge_init = capacities[:, :, None] / scale
        path_init = demands[:, pathset.path_demand][:, :, None] / scale
        return edge_init, path_init

    def forward(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Compute (P, embedding_dim) flow embeddings.

        Args:
            demands: (D,) demand volumes for this interval.
            capacities: (E,) current link capacities (zero for failed links).

        Returns:
            PathNode embeddings encoding flows for the downstream policy.
        """
        edge_init, path_init = self._initial_embeddings(demands, capacities)
        return self._propagate(edge_init, path_init)

    def forward_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> Tensor:
        """Compute (B, P, embedding_dim) flow embeddings for a TM stack.

        One forward pass covers the whole batch: every sparse aggregation
        and dense layer acts on the stacked embeddings, so replaying a
        trace costs a handful of vectorized ops instead of a Python loop
        per interval.

        Args:
            demands: (B, D) demand volumes, one row per traffic matrix.
            capacities: (E,) shared capacities or (B, E) per-matrix
                capacities (e.g. a failure sweep).

        Returns:
            Batched PathNode embeddings (B, P, embedding_dim).
        """
        edge_init, path_init = self._initial_embeddings_batch(demands, capacities)
        return self._propagate(edge_init, path_init)

    def _propagate(self, edge_init: np.ndarray, path_init: np.ndarray) -> Tensor:
        """Run the layer stack on (..., E, 1) / (..., P, 1) initializations."""
        edge_emb = Tensor(edge_init)
        path_emb = Tensor(path_init)
        for layer in range(self.num_layers):
            edge_emb, path_emb = self.gnn_layers[layer](
                edge_emb,
                path_emb,
                self.edge_agg,
                self.path_agg,
                self.edge_agg_t,
                self.path_agg_t,
            )
            path_emb = self.dnn_layers[layer](
                path_emb, self.gather_index, self.scatter_index
            )
            if layer < self.num_layers - 1:
                # Embedding growth: re-append the initialization value.
                edge_emb = F.concat([edge_emb, Tensor(edge_init)], axis=-1)
                path_emb = F.concat([path_emb, Tensor(path_init)], axis=-1)
        return path_emb

    def _propagate_fused(
        self, edge_init: np.ndarray, path_init: np.ndarray
    ) -> np.ndarray:
        """Inference-only layer stack on raw arrays through fused kernels.

        Same math as :meth:`_propagate` — every kernel states the exact
        op order it shares with the Tensor path, so the result is
        bit-identical at the model's dtype — but with no autodiff tape
        and no per-op temporaries: all intermediates live in the
        instance :class:`~repro.core.batching.Workspace`, so repeated
        calls (sweeps, traces) allocate nothing. The returned array is a
        workspace buffer — callers copy before retaining it.
        """
        ws = self.workspace
        ops = self.backend.ops
        dtype = edge_init.dtype
        lead = edge_init.shape[:-2]
        num_edges = edge_init.shape[-2]
        num_paths = path_init.shape[-2]
        num_demands = self.pathset.num_demands
        k = self.pathset.max_paths

        # The initial embeddings are built numpy-side; move them (and
        # each layer's weights, below) onto the backend once. Identity
        # for numpy; cached device uploads for torch.
        edge_init = ops.from_numpy(edge_init)
        path_init = ops.from_numpy(path_init)
        edge_emb = edge_init
        path_emb = path_init
        for layer in range(self.num_layers):
            dim = layer + 1
            gnn = self.gnn_layers[layer]
            dnn = self.dnn_layers[layer]
            # Paths -> edges, then the fused [own, aggregated] update.
            agg_e = ws.buffer(("agg_e", layer), lead + (num_edges, dim), dtype)
            csr_matmul_into(self.edge_agg, path_emb, agg_e)
            new_edge = ws.buffer(("edge", layer), lead + (num_edges, dim), dtype)
            scratch_e = ws.buffer(
                ("edge_scratch", layer), lead + (num_edges, dim), dtype
            )
            bias = gnn.edge_update.bias
            pair_linear_into(
                edge_emb,
                agg_e,
                ops.param(gnn.edge_update.weight.data),
                None if bias is None else ops.param(bias.data),
                new_edge,
                scratch_e,
            )
            tanh_(new_edge)
            # Edges -> paths.
            agg_p = ws.buffer(("agg_p", layer), lead + (num_paths, dim), dtype)
            csr_matmul_into(self.path_agg, new_edge, agg_p)
            new_path = ws.buffer(("path", layer), lead + (num_paths, dim), dtype)
            scratch_p = ws.buffer(
                ("path_scratch", layer), lead + (num_paths, dim), dtype
            )
            bias = gnn.path_update.bias
            pair_linear_into(
                path_emb,
                agg_p,
                ops.param(gnn.path_update.weight.data),
                None if bias is None else ops.param(bias.data),
                new_path,
                scratch_p,
            )
            tanh_(new_path)
            # Per-demand DNN layer: gather -> joint transform -> scatter.
            grouped = ws.buffer(
                ("grouped", layer), lead + (num_demands * k, dim), dtype
            )
            padded_take_rows_into(
                new_path, self.safe_gather_index, self.invalid_gather_rows, grouped
            )
            flat = grouped.reshape(lead + (num_demands, k * dim))
            updated = ws.buffer(
                ("updated", layer), lead + (num_demands, k * dim), dtype
            )
            bias = dnn.transform.bias
            linear_into(
                flat,
                ops.param(dnn.transform.weight.data),
                None if bias is None else ops.param(bias.data),
                updated,
            )
            tanh_(updated)
            grid = updated.reshape(lead + (num_demands * k, dim))
            path_out = ws.buffer(("path_out", layer), lead + (num_paths, dim), dtype)
            take_rows_into(grid, self.scatter_index, path_out)
            if layer < self.num_layers - 1:
                # Embedding growth: re-append the initialization value.
                grown_e = ws.buffer(
                    ("edge_grow", layer), lead + (num_edges, dim + 1), dtype
                )
                grown_e[..., :dim] = new_edge
                grown_e[..., dim:] = edge_init
                edge_emb = grown_e
                grown_p = ws.buffer(
                    ("path_grow", layer), lead + (num_paths, dim + 1), dtype
                )
                grown_p[..., :dim] = path_out
                grown_p[..., dim:] = path_init
                path_emb = grown_p
            else:
                path_emb = path_out
        return path_emb

    def grouped_embeddings_into(self, path_emb: np.ndarray) -> np.ndarray:
        """Fused :meth:`grouped_embeddings` on raw arrays (inference).

        Returns a workspace buffer shaped (..., D, k * embedding_dim).
        """
        dim = path_emb.shape[-1]
        lead = path_emb.shape[:-2]
        num_demands = self.pathset.num_demands
        k = self.pathset.max_paths
        grouped = self.workspace.buffer(
            "features",
            lead + (num_demands * k, dim),
            array_ops(path_emb).dtype_of(path_emb),
        )
        padded_take_rows_into(
            path_emb, self.safe_gather_index, self.invalid_gather_rows, grouped
        )
        return grouped.reshape(lead + (num_demands, k * dim))

    def grouped_embeddings(self, path_emb: Tensor) -> Tensor:
        """Arrange path embeddings as (..., D, k * embedding_dim) policy inputs.

        Padding slots contribute zeros. Accepts the (P, dim) single-TM
        embeddings or the (B, P, dim) batched stack.
        """
        dim = self.embedding_dim
        lead = path_emb.shape[:-2]
        grouped = F.take_rows_padded(path_emb, self.gather_index)
        return grouped.reshape(
            lead + (self.pathset.num_demands, self.pathset.max_paths * dim)
        )
