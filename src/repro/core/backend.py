"""Pluggable array backend: one dispatch seam from FlowGNN to ADMM.

PR 4 funneled every hot path into the ~15 contracted kernels of
:mod:`repro.core.batching`; this module puts the *array namespace* those
kernels call behind a protocol so the same pipeline can run on numpy
today and torch/cupy tomorrow, selected the same way
:class:`repro.nn.precision.Precision` selects a dtype.

Three layers:

**Ops namespaces.** :class:`NumpyOps` exposes the exact numpy callables
the kernels have always used — each attribute is a ``staticmethod``
*alias* of the corresponding ``np.*`` function, so dispatching through
the namespace runs the identical C routine in the identical order and
the numpy backend is bit-identical to the pre-dispatch kernels by
construction (asserted by ``tests/test_backend.py``). :class:`TorchOps`
adapts the same calling conventions onto torch; it is import-gated and
best-effort (milestone 2 — parity-tolerance tested, skipped when torch
is absent).

**Backend selection.** :class:`Backend` is a tiny frozen policy object
(mirroring ``Precision``) carried alongside the precision through
``TealScheme`` → harness → sweep → CLI. :func:`resolve_backend`
implements the selection precedence *env < config < CLI*: an explicit
spec (CLI flag or config field) wins; otherwise the ``REPRO_BACKEND``
environment variable; otherwise numpy.

**Value dispatch.** Kernels receive arrays, not backends, so the seam
dispatches on the *output* array's type: :func:`array_ops` maps
``np.ndarray`` → :data:`NUMPY_OPS` and foreign arrays (torch tensors,
or anything registered via :func:`register_array_ops`) to their ops.
The cost on the numpy path is one ``type`` check per kernel call.

Adding a backend: implement the :class:`NumpyOps` surface for your
array type (creation, ufuncs with ``out=``, segment primitives, CSR
matvec, RNG), then ``register_array_ops("yourmodule", your_ops)`` so
:func:`array_ops` can route arrays whose type lives under that
top-level module. ``Backend`` names stay restricted to the built-in
pair; custom backends are selected by handing their arrays (and a
``Workspace(your_ops)``) to the kernels directly.

This module is the *sole* dispatch-seam exemption of lint rule RL004:
direct ``np.matmul``/``@``/``.dot``/``np.einsum`` calls and raw
``np.empty``/``np.zeros`` workspace allocations in hot-path modules
must route through here (see :mod:`repro.lint.rules`).
"""

from __future__ import annotations

import importlib.util
import os
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..exceptions import ReproError

try:  # scipy's typed C kernels; fall back to `csr @ dense` if moved.
    from scipy.sparse import _sparsetools

    _CSR_MATVECS = _sparsetools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - scipy internal
    _CSR_MATVECS = None

#: Environment variable consulted when no explicit backend is passed.
ENV_BACKEND = "REPRO_BACKEND"

_SUPPORTED = ("numpy", "torch")


# ----------------------------------------------------------------------
# Numpy ops: the default (and reference) namespace
# ----------------------------------------------------------------------
class NumpyOps:
    """The numpy array namespace, spelled as a backend.

    Every ufunc/creation attribute below is a *direct alias* of the
    numpy callable the fused kernels historically invoked — not a
    wrapper — so ``ops.multiply is np.multiply`` holds and dispatched
    kernels execute the byte-for-byte identical call sequence. Methods
    that need adapting for other backends (dtype/shape introspection,
    host transfer, segment primitives) are kept trivial here.
    """

    name = "numpy"
    #: Workspace buffers are keyed per device so one workspace can serve
    #: models whose backend changes (e.g. numpy scoring + torch forward).
    device_key = "numpy-cpu"

    # -- creation ------------------------------------------------------
    empty = staticmethod(np.empty)
    zeros = staticmethod(np.zeros)
    zeros_like = staticmethod(np.zeros_like)
    full = staticmethod(np.full)
    asarray = staticmethod(np.asarray)
    arange = staticmethod(np.arange)

    # -- ufuncs / elementwise (all honour ``out=``) --------------------
    add = staticmethod(np.add)
    subtract = staticmethod(np.subtract)
    multiply = staticmethod(np.multiply)
    divide = staticmethod(np.divide)
    negative = staticmethod(np.negative)
    maximum = staticmethod(np.maximum)
    minimum = staticmethod(np.minimum)
    clip = staticmethod(np.clip)
    exp = staticmethod(np.exp)
    tanh = staticmethod(np.tanh)
    matmul = staticmethod(np.matmul)
    copyto = staticmethod(np.copyto)
    take = staticmethod(np.take)
    where = staticmethod(np.where)

    # -- reductions (axis/keepdims/out signature) ----------------------
    max = staticmethod(np.max)
    sum = staticmethod(np.sum)

    # -- numerics context ---------------------------------------------
    errstate = staticmethod(np.errstate)

    # -- RNG: numpy-driven on every backend (weight init stays
    #    reproducible bit-for-bit whatever runs the forward) -----------
    default_rng = staticmethod(np.random.default_rng)

    # -- introspection / movement --------------------------------------
    @staticmethod
    def dtype_of(x) -> np.dtype:
        return x.dtype

    @staticmethod
    def astype(x, dtype):
        return x.astype(dtype)

    @staticmethod
    def typed_scalar(x, value):
        """A scalar strong-typed to ``x``'s dtype (no promotion)."""
        return x.dtype.type(value)

    @staticmethod
    def nbytes(x) -> int:
        return x.nbytes

    @staticmethod
    def size_of(x) -> int:
        """Total element count (capacity checks for growable buffers)."""
        return x.size

    @staticmethod
    def fill_nan(x) -> None:
        x.fill(np.nan)

    @staticmethod
    def param(x):
        """Backend-resident view of a (numpy) model parameter."""
        return x

    @staticmethod
    def from_numpy(x):
        """Move a host array onto this backend (no-op for numpy)."""
        return x

    @staticmethod
    def to_numpy(x) -> np.ndarray:
        """Host view of a backend array (no copy on numpy)."""
        return np.asarray(x)

    @staticmethod
    def to_numpy_copy(x) -> np.ndarray:
        """Fresh host copy of a backend array."""
        return x.copy()

    # -- segment primitives (see SegmentOps) ---------------------------
    @staticmethod
    def segment_sum(index, weights, minlength: int):
        """1-D segment sums with float64 accumulation (bincount)."""
        return np.bincount(index, weights=weights, minlength=minlength)

    @staticmethod
    def segment_max_into(out_flat, index, values) -> None:
        """Scatter-max ``values`` into ``out_flat`` at ``index``."""
        np.maximum.at(out_flat, index, values)

    @staticmethod
    def expand_segments(per_segment, index):
        """Gather per-segment values back to elements along axis 1."""
        return np.asarray(per_segment)[:, index]

    # -- sparse aggregation --------------------------------------------
    @staticmethod
    def csr_matmul_into(csr: sp.csr_matrix, dense, out):
        """``out = csr @ dense`` through a preallocated buffer.

        Uses scipy's ``csr_matvecs`` C routine directly (it
        *accumulates* into the output buffer, so the buffer is zeroed
        first); a (B, N, F) batched operand runs one call per batch row
        — per output element the accumulation order over the row's
        nonzeros is identical to ``csr @ dense``, so the result is
        bit-identical to the allocating product. Falls back to the
        allocating product if scipy's internals are unavailable or the
        operands are not contiguous/dtype-matched.
        """
        if dense.ndim > 2:
            for b in range(dense.shape[0]):
                NumpyOps.csr_matmul_into(csr, dense[b], out[b])
            return out
        if (
            _CSR_MATVECS is None
            or csr.data.dtype != dense.dtype
            or not dense.flags.c_contiguous
            or not out.flags.c_contiguous
        ):
            out[...] = csr @ dense
            return out
        n_row, n_col = csr.shape
        out[...] = 0.0
        _CSR_MATVECS(
            n_row,
            n_col,
            dense.shape[1],
            csr.indptr,
            csr.indices,
            csr.data,
            dense.reshape(-1),
            out.reshape(-1),
        )
        return out


#: The shared numpy namespace instance (stateless).
NUMPY_OPS = NumpyOps()


# ----------------------------------------------------------------------
# Torch ops: import-gated, best-effort (milestone 2)
# ----------------------------------------------------------------------
class TorchOps:  # pragma: no cover - exercised only when torch is installed
    """Torch adapter for the :class:`NumpyOps` calling conventions.

    Best-effort: validated by a parity-*tolerance* test (skipped when
    torch is absent), not the bit-identity bar the numpy namespace
    meets. Static numpy operands (index maps, masks, scipy CSRs, model
    parameters) are converted on the fly with small identity-keyed
    caches so steady-state inference does not re-upload them.
    """

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        import torch

        self.torch = torch
        self.device = torch.device(device)
        self.device_key = f"torch-{self.device}"
        self._np_to_torch = {
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
            np.dtype(np.int64): torch.int64,
            np.dtype(np.int32): torch.int32,
            np.dtype(np.bool_): torch.bool,
        }
        self._torch_to_np = {v: k for k, v in self._np_to_torch.items()}
        # id-keyed caches for static host-side operands; the source
        # object is retained alongside the tensor so ids stay valid.
        self._static_cache: dict[int, tuple[object, object]] = {}
        self._csr_cache: dict[tuple[int, object], tuple[object, object]] = {}

    # -- helpers -------------------------------------------------------
    def _dtype(self, dtype):
        return self._np_to_torch[np.dtype(dtype)]

    def _cached(self, x, build):
        key = id(x)
        hit = self._static_cache.get(key)
        if hit is None or hit[0] is not x:
            hit = (x, build(x))
            self._static_cache[key] = hit
        return hit[1]

    def _index(self, indices):
        """Device-resident int64 copy of a (usually static) index map."""
        if self.torch.is_tensor(indices):
            return indices
        return self._cached(
            indices,
            lambda idx: self.torch.as_tensor(
                np.ascontiguousarray(idx), dtype=self.torch.int64, device=self.device
            ),
        )

    def _tensor(self, x, like=None):
        if self.torch.is_tensor(x):
            return x
        dtype = like.dtype if like is not None else None
        return self.torch.as_tensor(x, dtype=dtype, device=self.device)

    # -- creation ------------------------------------------------------
    def empty(self, shape, dtype=None):
        return self.torch.empty(tuple(shape), dtype=self._dtype(dtype or np.float64), device=self.device)

    def zeros(self, shape, dtype=None):
        return self.torch.zeros(tuple(shape), dtype=self._dtype(dtype or np.float64), device=self.device)

    def zeros_like(self, x):
        return self.torch.zeros_like(x)

    def full(self, shape, fill_value, dtype=None):
        if not isinstance(shape, tuple):
            shape = (int(shape),)
        return self.torch.full(shape, fill_value, dtype=self._dtype(dtype or np.float64), device=self.device)

    def asarray(self, x, dtype=None):
        kwargs = {"device": self.device}
        if dtype is not None:
            kwargs["dtype"] = self._dtype(dtype)
        return self.torch.as_tensor(x, **kwargs)

    def arange(self, n, dtype=None):
        return self.torch.arange(n, dtype=self._dtype(dtype or np.int64), device=self.device)

    # -- ufuncs / elementwise ------------------------------------------
    def add(self, a, b, out=None):
        return self.torch.add(self._tensor(a, b if self.torch.is_tensor(b) else out), b, out=out)

    def subtract(self, a, b, out=None):
        if not self.torch.is_tensor(a):
            a = self._tensor(a, like=b)
        return self.torch.sub(a, b, out=out)

    def multiply(self, a, b, out=None):
        if not self.torch.is_tensor(a):
            a = self._tensor(a, like=b)
        return self.torch.mul(a, b, out=out)

    def divide(self, a, b, out=None):
        if not self.torch.is_tensor(a):
            a = self._tensor(a, like=b if self.torch.is_tensor(b) else out)
        return self.torch.div(a, b, out=out)

    def negative(self, x, out=None):
        return self.torch.neg(x, out=out)

    def maximum(self, a, b, out=None):
        if not self.torch.is_tensor(b):
            return self.torch.clamp(a, min=b, out=out)
        if not self.torch.is_tensor(a):
            return self.torch.clamp(b, min=a, out=out)
        return self.torch.maximum(a, b, out=out)

    def minimum(self, a, b, out=None):
        if not self.torch.is_tensor(b):
            return self.torch.clamp(a, max=b, out=out)
        return self.torch.minimum(a, b, out=out)

    def clip(self, x, lo, hi, out=None):
        return self.torch.clamp(x, min=lo, max=hi, out=out)

    def exp(self, x, out=None):
        return self.torch.exp(x, out=out)

    def tanh(self, x, out=None):
        return self.torch.tanh(x, out=out)

    def matmul(self, a, b, out=None):
        return self.torch.matmul(a, b, out=out)

    def copyto(self, dst, src, where=None):
        if where is None:
            dst.copy_(self._tensor(src, like=dst))
            return
        mask = self._tensor(where) if not self.torch.is_tensor(where) else where
        mask = self._cached(where, lambda m: self.torch.as_tensor(m, dtype=self.torch.bool, device=self.device)) if not self.torch.is_tensor(where) else mask
        if self.torch.is_tensor(src):
            dst[mask] = src[mask]
        else:
            dst.masked_fill_(mask, float(src))

    def take(self, x, indices, axis=-1, out=None):
        dim = axis % x.ndim
        idx = self._index(indices)
        flat = idx.reshape(-1)
        gathered = self.torch.index_select(x, dim, flat)
        if idx.ndim != 1:
            shape = x.shape[:dim] + tuple(idx.shape) + x.shape[dim + 1:]
            gathered = gathered.reshape(shape)
        if out is not None:
            out.copy_(gathered)
            return out
        return gathered

    def where(self, cond, a, b):
        return self.torch.where(self._tensor(cond), self._tensor(a, like=b if self.torch.is_tensor(b) else a), b)

    # -- reductions ----------------------------------------------------
    def max(self, x, axis=None, keepdims=False, out=None):
        if out is not None:
            return self.torch.amax(x, dim=axis, keepdim=keepdims, out=out)
        return self.torch.amax(x, dim=axis, keepdim=keepdims)

    def sum(self, x, axis=None, keepdims=False, out=None):
        if out is not None:
            return self.torch.sum(x, dim=axis, keepdim=keepdims, out=out)
        return self.torch.sum(x, dim=axis, keepdim=keepdims)

    # -- numerics context ---------------------------------------------
    def errstate(self, **kwargs):
        import contextlib

        return contextlib.nullcontext()

    # -- RNG -----------------------------------------------------------
    default_rng = staticmethod(np.random.default_rng)

    # -- introspection / movement --------------------------------------
    def dtype_of(self, x) -> np.dtype:
        return self._torch_to_np[x.dtype]

    def astype(self, x, dtype):
        return x.to(self._dtype(dtype))

    def typed_scalar(self, x, value):
        return float(value)

    def nbytes(self, x) -> int:
        return x.numel() * x.element_size()

    def size_of(self, x) -> int:
        return x.numel()

    def fill_nan(self, x) -> None:
        if x.is_floating_point():
            x.fill_(float("nan"))

    def param(self, x):
        return self._cached(
            x,
            lambda arr: self.torch.as_tensor(
                np.ascontiguousarray(arr), device=self.device
            ),
        )

    def from_numpy(self, x):
        if self.torch.is_tensor(x):
            return x
        return self.torch.as_tensor(np.ascontiguousarray(x), device=self.device)

    def to_numpy(self, x) -> np.ndarray:
        if self.torch.is_tensor(x):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def to_numpy_copy(self, x) -> np.ndarray:
        return np.array(self.to_numpy(x))

    # -- segment primitives --------------------------------------------
    def segment_sum(self, index, weights, minlength: int):
        out = self.torch.zeros(minlength, dtype=self.torch.float64, device=self.device)
        out.index_add_(0, self._index(index), weights.reshape(-1).double())
        return out

    def segment_max_into(self, out_flat, index, values) -> None:
        out_flat.index_reduce_(
            0, self._index(index), values.reshape(-1), "amax", include_self=True
        )

    def expand_segments(self, per_segment, index):
        return self.torch.index_select(per_segment, -1, self._index(index))

    # -- sparse aggregation --------------------------------------------
    def _sparse(self, csr, dtype):
        key = (id(csr), dtype)
        hit = self._csr_cache.get(key)
        if hit is None or hit[0] is not csr:
            tensor = self.torch.sparse_csr_tensor(
                self.torch.as_tensor(csr.indptr, dtype=self.torch.int64),
                self.torch.as_tensor(csr.indices, dtype=self.torch.int64),
                self.torch.as_tensor(csr.data).to(dtype),
                size=csr.shape,
                device=self.device,
            )
            hit = (csr, tensor)
            self._csr_cache[key] = hit
        return hit[1]

    def csr_matmul_into(self, csr, dense, out):
        if dense.ndim > 2:
            for b in range(dense.shape[0]):
                self.csr_matmul_into(csr, dense[b], out[b])
            return out
        out.copy_(self.torch.matmul(self._sparse(csr, dense.dtype), dense))
        return out


# ----------------------------------------------------------------------
# Backend selection policy (mirrors repro.nn.precision.Precision)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Backend:
    """Array-backend policy: which namespace runs the fused pipeline.

    Frozen and hashable so it can sit in cache keys next to
    :class:`~repro.nn.precision.Precision`. ``Backend("numpy")`` is the
    default and the bit-identity reference; ``Backend("torch")`` is
    import-gated — constructing it is always legal (so configs mentioning
    torch parse everywhere), but touching :attr:`ops` without torch
    installed raises :class:`~repro.exceptions.ReproError`.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in _SUPPORTED:
            raise ReproError(
                f"unsupported backend {self.name!r}; expected one of {_SUPPORTED}"
            )

    @property
    def available(self) -> bool:
        """Whether the backing library is importable."""
        if self.name == "numpy":
            return True
        return importlib.util.find_spec("torch") is not None

    @property
    def ops(self):
        """The ops namespace (constructed lazily for torch)."""
        if self.name == "numpy":
            return NUMPY_OPS
        return _torch_ops()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


NUMPY = Backend("numpy")
TORCH = Backend("torch")

#: The default when neither an explicit spec nor REPRO_BACKEND selects one.
DEFAULT_BACKEND = NUMPY

_TORCH_OPS: TorchOps | None = None


def _torch_ops() -> TorchOps:
    global _TORCH_OPS
    if _TORCH_OPS is None:
        try:
            _TORCH_OPS = TorchOps()
        except ImportError as exc:
            raise ReproError(
                "backend 'torch' selected but torch is not installed; "
                "install torch or use REPRO_BACKEND=numpy / --backend numpy"
            ) from exc
    return _TORCH_OPS


def resolve_backend(spec: "Backend | str | None" = None) -> Backend:
    """Resolve a backend spec with precedence *env < config < CLI*.

    An explicit ``spec`` (a :class:`Backend`, or a name string from a
    config field or CLI flag) always wins; when ``spec`` is None the
    ``REPRO_BACKEND`` environment variable is consulted; when that is
    unset too, the numpy default applies.
    """
    if isinstance(spec, Backend):
        return spec
    if spec is not None:
        return Backend(str(spec))
    env = os.environ.get(ENV_BACKEND, "").strip()
    if env:
        return Backend(env)
    return DEFAULT_BACKEND


# ----------------------------------------------------------------------
# Per-array dispatch (what the kernels call)
# ----------------------------------------------------------------------
#: Foreign ops registry: top-level module name of the array type -> ops.
_FOREIGN_OPS: dict[str, object] = {}


def register_array_ops(module_root: str, ops) -> None:
    """Register an ops namespace for arrays of a third-party module.

    ``module_root`` is the first component of the array type's
    ``__module__`` (e.g. ``"torch"``). Registering is how an
    out-of-tree backend plugs into :func:`array_ops` dispatch.
    """
    _FOREIGN_OPS[str(module_root)] = ops


def foreign_ops(x):
    """The registered ops for a non-numpy array, or None for numpy/host.

    Torch tensors self-register on first sight (if a tensor exists,
    torch is importable).
    """
    if isinstance(x, np.ndarray):
        return None
    root = type(x).__module__.partition(".")[0]
    if root in ("builtins", "numpy"):
        return None
    ops = _FOREIGN_OPS.get(root)
    if ops is None:
        if root == "torch":  # pragma: no cover - requires torch
            ops = _torch_ops()
            _FOREIGN_OPS[root] = ops
        else:
            raise ReproError(
                f"no array backend registered for {type(x).__name__!r} "
                f"(module {root!r}); see repro.core.backend.register_array_ops"
            )
    return ops


def array_ops(x):
    """The ops namespace that owns array ``x`` (numpy fast path first)."""
    return foreign_ops(x) or NUMPY_OPS


def resolve_ops(spec=None):
    """Ops namespace from a Backend/str/ops spec; numpy when None.

    Unlike :func:`resolve_backend` this does *not* consult the
    environment: it is the constructor-level helper for objects like
    ``Workspace`` whose owner has already resolved the pipeline
    backend. A duck-typed ops instance passes through unchanged.
    """
    if spec is None:
        return NUMPY_OPS
    if isinstance(spec, (Backend, str)):
        return resolve_backend(spec).ops
    return spec
