"""The shared per-demand policy network (§3.3, §4, Figure 5).

A deliberately small fully-connected network, shared by every demand
(the multi-agent design that keeps Teal topology-size agnostic):
24 inputs (4 path embeddings x 6 elements) -> 24 hidden -> 4 outputs.
The outputs are *action logits*; a masked softmax turns actions into
split ratios (padding slots get zero probability).

During COMA* training the logits are treated as the mean of a diagonal
Gaussian with a learnable log-std (Appendix B): actions are sampled for
exploration, while deployment uses the mean directly.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ModelError
from ..nn import functional as F
from ..nn.layers import Module, mlp
from ..nn.tensor import Parameter, Tensor


class ActionHead(Module):
    """The stochastic action machinery shared by Teal and its ablations.

    Holds the learnable Gaussian log-std and implements sampling,
    log-density, and the masked-softmax conversion from actions to split
    ratios. Models that produce logits through other architectures (the
    Figure 14 ablation variants) reuse this head so COMA* training treats
    them uniformly.

    Args:
        num_paths: Path slots per demand (k).
        action_log_std: Initial log standard deviation.
    """

    def __init__(self, num_paths: int, action_log_std: float = -1.0) -> None:
        self.num_paths = num_paths
        self.log_std = Parameter(
            np.full(num_paths, float(action_log_std)), name="log_std"
        )

    def split_ratios(self, logits: Tensor, mask: np.ndarray) -> Tensor:
        """Masked softmax converting logits/actions to split ratios.

        Args:
            logits: (D, k) logits or sampled actions.
            mask: (D, k) bool validity mask for path slots.
        """
        return F.softmax(logits, axis=-1, mask=mask)

    def sample_actions(
        self, logits: Tensor, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw exploration actions a ~ N(logits, exp(log_std)^2)."""
        std = np.exp(self.log_std.data)
        return logits.data + rng.normal(size=logits.shape) * std

    def log_prob(self, logits: Tensor, actions: np.ndarray) -> Tensor:
        """(D,) log pi(a|s) of sampled actions under the current policy."""
        return F.gaussian_log_prob(logits, self.log_std, actions)


class PolicyNetwork(ActionHead):
    """Maps per-demand flow embeddings to split-ratio logits.

    Args:
        input_dim: k * embedding_dim (paper: 4 * 6 = 24).
        num_paths: Path slots per demand (k, paper: 4).
        hidden: Hidden width (paper: 24).
        num_hidden_layers: Number of hidden layers (paper: 1; Figure 15c
            sweeps 1/2/4).
        action_log_std: Initial log-std of the Gaussian exploration policy.
        seed: Weight-init seed.
    """

    def __init__(
        self,
        input_dim: int,
        num_paths: int,
        hidden: int = 24,
        num_hidden_layers: int = 1,
        action_log_std: float = -1.0,
        seed: int = 0,
    ) -> None:
        if num_hidden_layers < 1:
            raise ModelError("policy needs at least one hidden layer")
        super().__init__(num_paths, action_log_std)
        rng = np.random.default_rng(seed)
        sizes = [input_dim] + [hidden] * num_hidden_layers + [num_paths]
        self.net = mlp(sizes, activation="relu", rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        """Action logits (D, k) from policy inputs (D, k * embedding_dim)."""
        return self.net(features)
