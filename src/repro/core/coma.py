"""COMA*: the paper's one-step counterfactual multi-agent RL (§3.3, App. B).

Each demand is an agent; all agents share the policy (and the FlowGNN
feature extractor). Training is centralized: after all agents act, TE
lets us *simulate* the joint allocation and compute the global objective
as the reward. COMA* specializes COMA with two TE insights:

1. **One-step returns** — allocations in one interval do not affect the
   next, so the expected return is just the immediate reward.
2. **Counterfactual advantage** — the advantage of agent ``i``'s action is
   the reward difference against a baseline where only agent ``i``
   re-samples its action (Equation 2), estimated with Monte-Carlo samples.

Reward evaluation strategy: re-simulating the full network once per agent
per sample is what the paper's GPU makes affordable; on CPU we exploit
the reward's per-demand decomposition. Holding every other agent's
intended flows fixed, only the utilizations along agent ``i``'s own paths
change when it alters its action, so its delivered-value difference can
be computed for *all agents simultaneously* with flat index arithmetic
over the path-edge incidence pairs (the "mean-field incremental"
evaluator below). ``exact_counterfactual=True`` switches to full
re-simulation per agent — O(D) slower, used by the agreement tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import TrainingConfig
from ..exceptions import TrainingError
from ..lp.objectives import (
    MinMaxLinkUtilizationObjective,
    Objective,
    TotalFlowObjective,
)
from ..nn.optim import Adam
from ..nn.precision import EVALUATION_DTYPE
from ..nn.tensor import Tensor
from ..paths.pathset import PathSet
from ..simulation.evaluator import evaluate_allocation
from ..traffic.matrix import TrafficMatrix
from .batching import SegmentOps
from .model import TealModel

_EPS = 1e-12


def masked_softmax_np(logits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Numpy masked softmax (mirrors the policy's tensor version)."""
    shifted = np.where(mask, logits, -1e30)
    shifted = shifted - shifted.max(axis=-1, keepdims=True)
    exps = np.where(mask, np.exp(shifted), 0.0)
    return exps / np.maximum(exps.sum(axis=-1, keepdims=True), _EPS)


def sample_training_capacities(
    pathset: PathSet,
    capacities: np.ndarray,
    config: TrainingConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Capacity vector for one training step, with failure augmentation.

    With probability ``config.failure_rate``, zero the capacities of
    1..``max_training_failures`` randomly sampled physical links so the
    model sees failed-topology inputs during training (§5.3 robustness on
    short training budgets; see TrainingConfig for the rationale).
    """
    if config.failure_rate <= 0 or rng.random() >= config.failure_rate:
        # Defensive copy: trainers hold the returned array across the
        # step (and batched training stacks several of them), so aliasing
        # the caller's array here would let later in-place edits of the
        # nominal capacities silently rewrite past training inputs.
        return np.array(capacities, dtype=EVALUATION_DTYPE)
    from ..topology.failures import sample_link_failures

    num_failures = int(rng.integers(1, config.max_training_failures + 1))
    failed = sample_link_failures(
        pathset.topology, num_failures, seed=int(rng.integers(0, 2**31))
    )
    augmented = capacities.copy()
    augmented[failed] = 0.0
    return augmented


class DecomposableReward:
    """Per-demand reward values under the mean-field incremental model.

    For flow-type objectives the joint reward decomposes as
    ``R = sum_d V_d`` with ``V_d = sum_{p in P_d} w_p * f_p / max(1, u_p)``
    where ``u_p`` is the bottleneck utilization of path ``p``. Changing
    only demand ``d``'s flows perturbs the loads solely on its own paths'
    edges, so ``V_d`` under the counterfactual is computable from the
    residual loads of the other demands.

    For min-MLU the per-demand value is the negated bottleneck
    utilization over the demand's own edges (a local approximation of the
    global max — adequate for advantage estimation, documented in
    DESIGN.md §5).
    """

    def __init__(self, pathset: PathSet, objective: Objective) -> None:
        self.pathset = pathset
        self.objective = objective
        self.is_mlu = isinstance(objective, MinMaxLinkUtilizationObjective)
        if self.is_mlu:
            self.path_values = np.ones(pathset.num_paths)
        else:
            self.path_values = objective.path_values(pathset)

        coo = pathset.edge_path_incidence.tocoo()
        self.pair_path = coo.col.astype(np.int64)
        self.pair_edge = coo.row.astype(np.int64)
        self.pair_demand = pathset.path_demand[self.pair_path]
        # Group pairs sharing a (demand, edge) key so a demand's multiple
        # paths crossing one edge pool their contribution.
        keys = self.pair_demand * pathset.topology.num_edges + self.pair_edge
        _, self.key_inverse = np.unique(keys, return_inverse=True)
        self.num_keys = int(self.key_inverse.max()) + 1 if len(keys) else 0
        # Tiled-index segment ops so a (T, ...) stack runs the identical
        # flat primitives as the per-TM path (see core.batching).
        self._key_ops = SegmentOps(self.key_inverse, self.num_keys)
        self._path_ops = SegmentOps(self.pair_path, pathset.num_paths)
        self._demand_ops = SegmentOps(pathset.path_demand, pathset.num_demands)

    def _own_edge_load(self, path_flows: np.ndarray) -> np.ndarray:
        """(I,) per-incidence-pair load contributed by the pair's demand."""
        pair_flows = path_flows[self.pair_path]
        per_key = np.bincount(
            self.key_inverse, weights=pair_flows, minlength=self.num_keys
        )
        return per_key[self.key_inverse]

    def _own_edge_load_batch(self, path_flows: np.ndarray) -> np.ndarray:
        """(T, I) per-pair own loads for a (T, P) stack of path flows."""
        per_key = self._key_ops.sum(path_flows[:, self.pair_path])
        return per_key[:, self.key_inverse]

    def demand_values(
        self,
        base_flows: np.ndarray,
        candidate_flows: np.ndarray,
        capacities: np.ndarray,
        base_loads: np.ndarray | None = None,
        base_own: np.ndarray | None = None,
    ) -> np.ndarray:
        """(D,) per-demand value if each demand alone used candidate_flows.

        Args:
            base_flows: (P,) intended flows of the joint action.
            candidate_flows: (P,) intended flows under candidate actions
                (each demand's counterfactual evaluated independently).
            capacities: (E,) link capacities.
            base_loads: Precomputed edge loads of base_flows (optional).
            base_own: Precomputed own-load pairs of base_flows (optional).
        """
        ps = self.pathset
        if base_loads is None:
            base_loads = ps.edge_loads(base_flows)
        if base_own is None:
            base_own = self._own_edge_load(base_flows)
        cand_own = self._own_edge_load(candidate_flows)
        pair_load = base_loads[self.pair_edge] - base_own + cand_own
        caps = capacities[self.pair_edge]
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                caps > 0,
                pair_load / np.maximum(caps, _EPS),
                np.where(pair_load > _EPS, np.inf, 0.0),
            )
        bottleneck = np.zeros(ps.num_paths)
        np.maximum.at(bottleneck, self.pair_path, util)

        if self.is_mlu:
            per_demand = np.zeros(ps.num_demands)
            np.maximum.at(per_demand, ps.path_demand, bottleneck)
            return -per_demand

        scale = 1.0 / np.maximum(bottleneck, 1.0)
        scale[~np.isfinite(scale)] = 0.0
        delivered_value = candidate_flows * scale * self.path_values
        per_demand = np.bincount(
            ps.path_demand, weights=delivered_value, minlength=ps.num_demands
        )
        return per_demand

    def demand_values_batch(
        self,
        base_flows: np.ndarray,
        candidate_flows: np.ndarray,
        capacities: np.ndarray,
        base_loads: np.ndarray | None = None,
        base_own: np.ndarray | None = None,
    ) -> np.ndarray:
        """(T, D) per-demand counterfactual values over a minibatch.

        The batched analogue of :meth:`demand_values`: every array gains a
        leading (T,) axis and the segment reductions run over tiled
        indices, so row ``t`` reproduces the per-TM result bit for bit.

        Args:
            base_flows: (T, P) intended flows of the joint actions.
            candidate_flows: (T, P) flows under the candidate actions.
            capacities: (T, E) per-matrix link capacities.
            base_loads: Precomputed (T, E) edge loads of base_flows.
            base_own: Precomputed (T, I) own-load pairs of base_flows.
        """
        ps = self.pathset
        if base_loads is None:
            base_loads = ps.edge_loads_batch(base_flows)
        if base_own is None:
            base_own = self._own_edge_load_batch(base_flows)
        cand_own = self._own_edge_load_batch(candidate_flows)
        pair_load = base_loads[:, self.pair_edge] - base_own + cand_own
        caps = capacities[:, self.pair_edge]
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                caps > 0,
                pair_load / np.maximum(caps, _EPS),
                np.where(pair_load > _EPS, np.inf, 0.0),
            )
        bottleneck = self._path_ops.max(util)

        if self.is_mlu:
            return -self._demand_ops.max(bottleneck)

        scale = 1.0 / np.maximum(bottleneck, 1.0)
        scale[~np.isfinite(scale)] = 0.0
        delivered_value = candidate_flows * scale * self.path_values
        return self._demand_ops.sum(delivered_value)

    def exact_demand_values(
        self,
        base_ratios: np.ndarray,
        candidate_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray,
    ) -> np.ndarray:
        """Exact counterfactual values via full re-simulation (O(D) solves)."""
        ps = self.pathset
        values = np.zeros(ps.num_demands)
        for d in range(ps.num_demands):
            mixed = base_ratios.copy()
            mixed[d] = candidate_ratios[d]
            values[d] = self.objective.reward(ps, mixed, demands, capacities)
        return values


@dataclass
class TrainingHistory:
    """Per-logging-step training diagnostics."""

    steps: list[int] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)
    satisfied: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)

    def record(self, step: int, reward: float, satisfied: float, loss: float) -> None:
        self.steps.append(step)
        self.rewards.append(reward)
        self.satisfied.append(satisfied)
        self.losses.append(loss)


class ComaTrainer:
    """Trains a TealModel end to end with COMA* policy gradients.

    Args:
        model: The model to train (FlowGNN + policy).
        objective: TE objective providing the reward.
        config: Training budget and seeds.
        counterfactual_samples: Monte-Carlo samples for the baseline
            (Appendix B, Equation 2).
        exact_counterfactual: Use full re-simulation for the baseline
            (slow; for validation on small instances).
    """

    def __init__(
        self,
        model: TealModel,
        objective: Objective | None = None,
        config: TrainingConfig | None = None,
        counterfactual_samples: int | None = None,
        exact_counterfactual: bool = False,
    ) -> None:
        self.model = model
        self.objective = objective if objective is not None else TotalFlowObjective()
        self.config = config if config is not None else TrainingConfig()
        self.samples = (
            counterfactual_samples
            if counterfactual_samples is not None
            else model.hyper.counterfactual_samples
        )
        if self.samples < 1:
            raise TrainingError("counterfactual_samples must be >= 1")
        self.exact = exact_counterfactual
        self.reward_model = DecomposableReward(model.pathset, self.objective)
        self.optimizer = Adam(model.parameters(), lr=model.hyper.learning_rate)

    def step_advantages(
        self,
        actions: np.ndarray,
        alt_actions: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """(T, D) normalized counterfactual advantages for one minibatch.

        The pure-numpy half of a training step, factored out so the
        batched-vs-looped agreement tests can drive it with fixed action
        samples. Advantage normalization and the ``batch_demands``
        subsample both follow per-matrix semantics (each row is
        normalized independently; one demand subsample is shared by the
        whole minibatch, which at T = 1 is the classic behaviour).

        Args:
            actions: (T, D, k) sampled joint actions.
            alt_actions: (S, T, D, k) Monte-Carlo counterfactual samples.
            demands: (T, D) demand volumes.
            capacities: (T, E) per-matrix (failure-sampled) capacities.
            rng: Generator for the optional demand subsample.
        """
        ps = self.model.pathset
        mask = ps.path_mask
        num_matrices = actions.shape[0]
        ratios = masked_softmax_np(actions, mask)
        base_flows = ps.split_ratios_to_path_flows_batch(ratios, demands)
        base_loads = ps.edge_loads_batch(base_flows)
        base_own = self.reward_model._own_edge_load_batch(base_flows)

        if self.exact:
            base_values = np.stack(
                [
                    np.full(
                        ps.num_demands,
                        self.objective.reward(
                            ps, ratios[t], demands[t], capacities[t]
                        ),
                    )
                    for t in range(num_matrices)
                ]
            )
        else:
            base_values = self.reward_model.demand_values_batch(
                base_flows, base_flows, capacities, base_loads, base_own
            )

        baseline = np.zeros((num_matrices, ps.num_demands))
        for sample in range(alt_actions.shape[0]):
            alt_ratios = masked_softmax_np(alt_actions[sample], mask)
            if self.exact:
                for t in range(num_matrices):
                    baseline[t] += self.reward_model.exact_demand_values(
                        ratios[t], alt_ratios[t], demands[t], capacities[t]
                    )
            else:
                alt_flows = ps.split_ratios_to_path_flows_batch(
                    alt_ratios, demands
                )
                baseline += self.reward_model.demand_values_batch(
                    base_flows, alt_flows, capacities, base_loads, base_own
                )
        baseline /= alt_actions.shape[0]
        advantage = base_values - baseline
        std = advantage.std(axis=-1, keepdims=True)
        mean = advantage.mean(axis=-1, keepdims=True)
        advantage = np.where(
            std > _EPS, (advantage - mean) / np.maximum(std, _EPS), advantage
        )

        batch = self.config.batch_demands
        if batch is not None and batch < ps.num_demands and rng is not None:
            keep = rng.choice(ps.num_demands, size=batch, replace=False)
            batch_mask = np.zeros(ps.num_demands)
            batch_mask[keep] = 1.0
            advantage = advantage * batch_mask
        return advantage

    def train(
        self,
        matrices: list[TrafficMatrix],
        capacities: np.ndarray | None = None,
        steps: int | None = None,
        batch_size: int | None = None,
    ) -> TrainingHistory:
        """Run the COMA* training loop over a traffic trace.

        Every step consumes a minibatch of ``batch_size`` consecutive
        matrices (default: ``config.batch_matrices``) through one batched
        forward — action sampling, the decomposable reward, and the
        counterfactual baseline are all vectorized across the minibatch,
        so a single backward covers T matrices. ``batch_size=1``
        reproduces the classic per-matrix loop (same RNG stream, same
        updates).

        Args:
            matrices: Training traffic matrices (cycled through).
            capacities: Link capacities (default: topology's).
            steps: Override the configured step budget.
            batch_size: Override ``config.batch_matrices``.

        Returns:
            A :class:`TrainingHistory` of rewards/losses.

        Raises:
            TrainingError: If the trace is empty.
        """
        if not matrices:
            raise TrainingError("training requires at least one traffic matrix")
        ps = self.model.pathset
        if capacities is None:
            capacities = ps.topology.capacities
        capacities = np.asarray(capacities, dtype=EVALUATION_DTYPE)
        total_steps = self.config.steps if steps is None else int(steps)
        batch = (
            self.config.batch_matrices if batch_size is None else int(batch_size)
        )
        if batch < 1:
            raise TrainingError("batch_size must be >= 1")
        rng = np.random.default_rng(self.config.seed)
        mask = ps.path_mask
        history = TrainingHistory()
        all_demands = [ps.demand_volumes(m.values) for m in matrices]

        for step in range(total_steps):
            indices = [
                (step * batch + offset) % len(matrices)
                for offset in range(batch)
            ]
            demands_b = np.stack([all_demands[i] for i in indices])
            caps_b = np.stack(
                [
                    sample_training_capacities(ps, capacities, self.config, rng)
                    for _ in indices
                ]
            )

            logits = self.model.logits_batch(demands_b, caps_b)
            actions = self.model.policy.sample_actions(logits, rng)
            alt_actions = np.stack(
                [
                    self.model.policy.sample_actions(logits, rng)
                    for _ in range(self.samples)
                ]
            )
            advantage = self.step_advantages(
                actions, alt_actions, demands_b, caps_b, rng
            )

            log_prob = self.model.policy.log_prob(logits, actions)
            loss = -(Tensor(advantage) * log_prob).mean()
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()

            if step % self.config.log_every == 0 or step == total_steps - 1:
                greedy = masked_softmax_np(logits.numpy(), mask)
                # Score the greedy allocation under the capacities its
                # logits were computed for (the failure-sampled step
                # capacities) — evaluating under the nominal capacities
                # would report a reward for an input the model never saw.
                reward = self.objective.reward(
                    ps, greedy[0], demands_b[0], caps_b[0]
                )
                report = evaluate_allocation(
                    ps, greedy[0], demands_b[0], caps_b[0]
                )
                history.record(step, reward, report.satisfied_fraction, loss.item())
        return history
