"""COMA*: the paper's one-step counterfactual multi-agent RL (§3.3, App. B).

Each demand is an agent; all agents share the policy (and the FlowGNN
feature extractor). Training is centralized: after all agents act, TE
lets us *simulate* the joint allocation and compute the global objective
as the reward. COMA* specializes COMA with two TE insights:

1. **One-step returns** — allocations in one interval do not affect the
   next, so the expected return is just the immediate reward.
2. **Counterfactual advantage** — the advantage of agent ``i``'s action is
   the reward difference against a baseline where only agent ``i``
   re-samples its action (Equation 2), estimated with Monte-Carlo samples.

Reward evaluation strategy: re-simulating the full network once per agent
per sample is what the paper's GPU makes affordable; on CPU we exploit
the reward's per-demand decomposition. Holding every other agent's
intended flows fixed, only the utilizations along agent ``i``'s own paths
change when it alters its action, so its delivered-value difference can
be computed for *all agents simultaneously* with flat index arithmetic
over the path-edge incidence pairs (the "mean-field incremental"
evaluator below). ``exact_counterfactual=True`` switches to full
re-simulation per agent — O(D) slower, used by the agreement tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import TrainingConfig
from ..exceptions import TrainingError
from ..lp.objectives import (
    MinMaxLinkUtilizationObjective,
    Objective,
    TotalFlowObjective,
)
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..paths.pathset import PathSet
from ..simulation.evaluator import evaluate_allocation
from ..traffic.matrix import TrafficMatrix
from .model import TealModel

_EPS = 1e-12


def masked_softmax_np(logits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Numpy masked softmax (mirrors the policy's tensor version)."""
    shifted = np.where(mask, logits, -1e30)
    shifted = shifted - shifted.max(axis=-1, keepdims=True)
    exps = np.where(mask, np.exp(shifted), 0.0)
    return exps / np.maximum(exps.sum(axis=-1, keepdims=True), _EPS)


def sample_training_capacities(
    pathset: PathSet,
    capacities: np.ndarray,
    config: TrainingConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Capacity vector for one training step, with failure augmentation.

    With probability ``config.failure_rate``, zero the capacities of
    1..``max_training_failures`` randomly sampled physical links so the
    model sees failed-topology inputs during training (§5.3 robustness on
    short training budgets; see TrainingConfig for the rationale).
    """
    if config.failure_rate <= 0 or rng.random() >= config.failure_rate:
        return capacities
    from ..topology.failures import sample_link_failures

    num_failures = int(rng.integers(1, config.max_training_failures + 1))
    failed = sample_link_failures(
        pathset.topology, num_failures, seed=int(rng.integers(0, 2**31))
    )
    augmented = capacities.copy()
    augmented[failed] = 0.0
    return augmented


class DecomposableReward:
    """Per-demand reward values under the mean-field incremental model.

    For flow-type objectives the joint reward decomposes as
    ``R = sum_d V_d`` with ``V_d = sum_{p in P_d} w_p * f_p / max(1, u_p)``
    where ``u_p`` is the bottleneck utilization of path ``p``. Changing
    only demand ``d``'s flows perturbs the loads solely on its own paths'
    edges, so ``V_d`` under the counterfactual is computable from the
    residual loads of the other demands.

    For min-MLU the per-demand value is the negated bottleneck
    utilization over the demand's own edges (a local approximation of the
    global max — adequate for advantage estimation, documented in
    DESIGN.md §5).
    """

    def __init__(self, pathset: PathSet, objective: Objective) -> None:
        self.pathset = pathset
        self.objective = objective
        self.is_mlu = isinstance(objective, MinMaxLinkUtilizationObjective)
        if self.is_mlu:
            self.path_values = np.ones(pathset.num_paths)
        else:
            self.path_values = objective.path_values(pathset)

        coo = pathset.edge_path_incidence.tocoo()
        self.pair_path = coo.col.astype(np.int64)
        self.pair_edge = coo.row.astype(np.int64)
        self.pair_demand = pathset.path_demand[self.pair_path]
        # Group pairs sharing a (demand, edge) key so a demand's multiple
        # paths crossing one edge pool their contribution.
        keys = self.pair_demand * pathset.topology.num_edges + self.pair_edge
        _, self.key_inverse = np.unique(keys, return_inverse=True)
        self.num_keys = int(self.key_inverse.max()) + 1 if len(keys) else 0

    def _own_edge_load(self, path_flows: np.ndarray) -> np.ndarray:
        """(I,) per-incidence-pair load contributed by the pair's demand."""
        pair_flows = path_flows[self.pair_path]
        per_key = np.bincount(
            self.key_inverse, weights=pair_flows, minlength=self.num_keys
        )
        return per_key[self.key_inverse]

    def demand_values(
        self,
        base_flows: np.ndarray,
        candidate_flows: np.ndarray,
        capacities: np.ndarray,
        base_loads: np.ndarray | None = None,
        base_own: np.ndarray | None = None,
    ) -> np.ndarray:
        """(D,) per-demand value if each demand alone used candidate_flows.

        Args:
            base_flows: (P,) intended flows of the joint action.
            candidate_flows: (P,) intended flows under candidate actions
                (each demand's counterfactual evaluated independently).
            capacities: (E,) link capacities.
            base_loads: Precomputed edge loads of base_flows (optional).
            base_own: Precomputed own-load pairs of base_flows (optional).
        """
        ps = self.pathset
        if base_loads is None:
            base_loads = ps.edge_loads(base_flows)
        if base_own is None:
            base_own = self._own_edge_load(base_flows)
        cand_own = self._own_edge_load(candidate_flows)
        pair_load = base_loads[self.pair_edge] - base_own + cand_own
        caps = capacities[self.pair_edge]
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                caps > 0,
                pair_load / np.maximum(caps, _EPS),
                np.where(pair_load > _EPS, np.inf, 0.0),
            )
        bottleneck = np.zeros(ps.num_paths)
        np.maximum.at(bottleneck, self.pair_path, util)

        if self.is_mlu:
            per_demand = np.zeros(ps.num_demands)
            np.maximum.at(per_demand, ps.path_demand, bottleneck)
            return -per_demand

        scale = 1.0 / np.maximum(bottleneck, 1.0)
        scale[~np.isfinite(scale)] = 0.0
        delivered_value = candidate_flows * scale * self.path_values
        per_demand = np.bincount(
            ps.path_demand, weights=delivered_value, minlength=ps.num_demands
        )
        return per_demand

    def exact_demand_values(
        self,
        base_ratios: np.ndarray,
        candidate_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray,
    ) -> np.ndarray:
        """Exact counterfactual values via full re-simulation (O(D) solves)."""
        ps = self.pathset
        values = np.zeros(ps.num_demands)
        for d in range(ps.num_demands):
            mixed = base_ratios.copy()
            mixed[d] = candidate_ratios[d]
            values[d] = self.objective.reward(ps, mixed, demands, capacities)
        return values


@dataclass
class TrainingHistory:
    """Per-logging-step training diagnostics."""

    steps: list[int] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)
    satisfied: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)

    def record(self, step: int, reward: float, satisfied: float, loss: float) -> None:
        self.steps.append(step)
        self.rewards.append(reward)
        self.satisfied.append(satisfied)
        self.losses.append(loss)


class ComaTrainer:
    """Trains a TealModel end to end with COMA* policy gradients.

    Args:
        model: The model to train (FlowGNN + policy).
        objective: TE objective providing the reward.
        config: Training budget and seeds.
        counterfactual_samples: Monte-Carlo samples for the baseline
            (Appendix B, Equation 2).
        exact_counterfactual: Use full re-simulation for the baseline
            (slow; for validation on small instances).
    """

    def __init__(
        self,
        model: TealModel,
        objective: Objective | None = None,
        config: TrainingConfig | None = None,
        counterfactual_samples: int | None = None,
        exact_counterfactual: bool = False,
    ) -> None:
        self.model = model
        self.objective = objective if objective is not None else TotalFlowObjective()
        self.config = config if config is not None else TrainingConfig()
        self.samples = (
            counterfactual_samples
            if counterfactual_samples is not None
            else model.hyper.counterfactual_samples
        )
        if self.samples < 1:
            raise TrainingError("counterfactual_samples must be >= 1")
        self.exact = exact_counterfactual
        self.reward_model = DecomposableReward(model.pathset, self.objective)
        self.optimizer = Adam(model.parameters(), lr=model.hyper.learning_rate)

    def train(
        self,
        matrices: list[TrafficMatrix],
        capacities: np.ndarray | None = None,
        steps: int | None = None,
    ) -> TrainingHistory:
        """Run the COMA* training loop over a traffic trace.

        Args:
            matrices: Training traffic matrices (cycled through).
            capacities: Link capacities (default: topology's).
            steps: Override the configured step budget.

        Returns:
            A :class:`TrainingHistory` of rewards/losses.

        Raises:
            TrainingError: If the trace is empty.
        """
        if not matrices:
            raise TrainingError("training requires at least one traffic matrix")
        ps = self.model.pathset
        if capacities is None:
            capacities = ps.topology.capacities
        capacities = np.asarray(capacities, dtype=float)
        total_steps = self.config.steps if steps is None else int(steps)
        rng = np.random.default_rng(self.config.seed)
        mask = ps.path_mask
        history = TrainingHistory()

        for step in range(total_steps):
            matrix = matrices[step % len(matrices)]
            demands = ps.demand_volumes(matrix.values)
            step_caps = sample_training_capacities(
                ps, capacities, self.config, rng
            )

            logits = self.model.logits(demands, step_caps)
            actions = self.model.policy.sample_actions(logits, rng)
            ratios = masked_softmax_np(actions, mask)
            base_flows = ps.split_ratios_to_path_flows(ratios, demands)
            base_loads = ps.edge_loads(base_flows)
            base_own = self.reward_model._own_edge_load(base_flows)

            if self.exact:
                base_values = np.full(
                    ps.num_demands,
                    self.objective.reward(ps, ratios, demands, step_caps),
                )
            else:
                base_values = self.reward_model.demand_values(
                    base_flows, base_flows, step_caps, base_loads, base_own
                )

            baseline = np.zeros(ps.num_demands)
            for _ in range(self.samples):
                alt_actions = self.model.policy.sample_actions(logits, rng)
                alt_ratios = masked_softmax_np(alt_actions, mask)
                if self.exact:
                    baseline += self.reward_model.exact_demand_values(
                        ratios, alt_ratios, demands, step_caps
                    )
                else:
                    alt_flows = ps.split_ratios_to_path_flows(alt_ratios, demands)
                    baseline += self.reward_model.demand_values(
                        base_flows, alt_flows, step_caps, base_loads, base_own
                    )
            baseline /= self.samples
            advantage = base_values - baseline
            std = advantage.std()
            if std > _EPS:
                advantage = (advantage - advantage.mean()) / std

            batch = self.config.batch_demands
            if batch is not None and batch < ps.num_demands:
                keep = rng.choice(ps.num_demands, size=batch, replace=False)
                batch_mask = np.zeros(ps.num_demands)
                batch_mask[keep] = 1.0
                advantage = advantage * batch_mask

            log_prob = self.model.policy.log_prob(logits, actions)
            loss = -(Tensor(advantage) * log_prob).mean()
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()

            if step % self.config.log_every == 0 or step == total_steps - 1:
                greedy = masked_softmax_np(logits.numpy(), mask)
                reward = self.objective.reward(ps, greedy, demands, capacities)
                report = evaluate_allocation(ps, greedy, demands, capacities)
                history.record(step, reward, report.satisfied_fraction, loss.item())
        return history
