"""Model checkpointing and cross-topology weight transfer (§4).

The paper trains one Teal model per topology (~a week) and *retrains*
in 6-10 hours when the topology permanently changes. Retraining is
cheap precisely because every learnable tensor in Teal is
topology-size agnostic: FlowGNN layer weights depend only on embedding
widths, and the shared policy depends only on (k x embedding_dim) —
so the old weights warm-start the new topology's model directly.

This module provides:

- :func:`save_model` / :func:`load_model` — ``.npz`` checkpoints holding
  every parameter plus an architecture fingerprint, validated on load.
- :func:`transfer_weights` — copy parameters between models built on
  *different* path sets but identical architectures (the §4 retraining
  warm start; demonstrated in ``tests/test_checkpoint.py`` and the
  retraining example).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import ModelError
from .model import AllocatorModel, TealModel


def _fingerprint(model: TealModel) -> dict[str, int]:
    """Architecture descriptors that must match between checkpoints."""
    return {
        "num_gnn_layers": model.flow_gnn.num_layers,
        "max_paths": model.pathset.max_paths,
        "embedding_dim": model.flow_gnn.embedding_dim,
        "num_parameters": model.num_parameters(),
    }


def save_model(model: TealModel, path: str | Path) -> Path:
    """Serialize a model's parameters and architecture to ``.npz``.

    Args:
        model: The trained model.
        path: Destination file (``.npz`` appended if missing).

    Returns:
        The written path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload: dict[str, np.ndarray] = {
        f"param_{i}": p.data for i, p in enumerate(model.parameters())
    }
    for key, value in _fingerprint(model).items():
        payload[f"meta_{key}"] = np.array(value)
    np.savez(path, **payload)
    return path


def load_model(model: TealModel, path: str | Path) -> TealModel:
    """Load parameters saved by :func:`save_model` into ``model``.

    The target model must be constructed with the same architecture
    (layer count, path budget); the path set itself may differ in size —
    that is the point of topology-agnostic weights.

    Raises:
        ModelError: On architecture mismatch or corrupt checkpoints.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as data:
        expected = _fingerprint(model)
        for key in ("num_gnn_layers", "max_paths", "embedding_dim"):
            stored = int(data[f"meta_{key}"])
            if stored != expected[key]:
                raise ModelError(
                    f"checkpoint {key}={stored} does not match model "
                    f"{key}={expected[key]}"
                )
        params = model.parameters()
        stored_count = int(data["meta_num_parameters"])
        if stored_count != expected["num_parameters"]:
            raise ModelError(
                f"checkpoint holds {stored_count} parameters, model has "
                f"{expected['num_parameters']}"
            )
        for i, p in enumerate(params):
            arr = data[f"param_{i}"]
            if arr.shape != p.data.shape:
                raise ModelError(
                    f"parameter {i}: checkpoint shape {arr.shape} != "
                    f"model shape {p.data.shape}"
                )
            p.data = arr.copy()
    return model


def transfer_weights(source: AllocatorModel, target: AllocatorModel) -> int:
    """Copy parameters from ``source`` into ``target`` (same architecture).

    Both models may be built on different path sets (different
    topologies or demand sets); only the parameter list must align
    shape-for-shape — which holds for TealModels sharing hyperparameters,
    because no weight's shape depends on the topology size (§3.2-§3.3).

    Returns:
        The number of parameters copied.

    Raises:
        ModelError: If the parameter lists do not align.
    """
    src = source.parameters()
    dst = target.parameters()
    if len(src) != len(dst):
        raise ModelError(
            f"models have {len(src)} vs {len(dst)} parameters; "
            "architectures differ"
        )
    for i, (a, b) in enumerate(zip(src, dst)):
        if a.data.shape != b.data.shape:
            raise ModelError(
                f"parameter {i}: shapes {a.data.shape} vs {b.data.shape} "
                "differ; architectures are incompatible"
            )
    for a, b in zip(src, dst):
        b.data = a.data.copy()
    return len(dst)
