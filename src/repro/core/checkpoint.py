"""Model checkpointing and cross-topology weight transfer (§4).

The paper trains one Teal model per topology (~a week) and *retrains*
in 6-10 hours when the topology permanently changes. Retraining is
cheap precisely because every learnable tensor in Teal is
topology-size agnostic: FlowGNN layer weights depend only on embedding
widths, and the shared policy depends only on (k x embedding_dim) —
so the old weights warm-start the new topology's model directly.

This module provides:

- :func:`save_model` / :func:`load_model` — ``.npz`` checkpoints holding
  every parameter plus an architecture fingerprint, validated on load.
- :func:`transfer_weights` — copy parameters between models built on
  *different* path sets but identical architectures (the §4 retraining
  warm start; demonstrated in ``tests/test_checkpoint.py`` and the
  retraining example).
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path

import numpy as np

from ..exceptions import ModelError
from .model import AllocatorModel, TealModel

#: Checkpoint schema version; bump on layout changes so entries written
#: by an older library version load as an explicit :class:`ModelError`
#: (a cache miss for :func:`repro.harness.trained_teal`) instead of
#: deserializing a stale layout. Checkpoints from before versioning
#: landed carry no stamp and count as version 0.
CHECKPOINT_FORMAT = 1


def _fingerprint(model: TealModel) -> dict[str, int]:
    """Architecture descriptors that must match between checkpoints."""
    return {
        "num_gnn_layers": model.flow_gnn.num_layers,
        "max_paths": model.pathset.max_paths,
        "embedding_dim": model.flow_gnn.embedding_dim,
        "num_parameters": model.num_parameters(),
    }


def save_model(model: TealModel, path: str | Path) -> Path:
    """Serialize a model's parameters and architecture to ``.npz``.

    Args:
        model: The trained model.
        path: Destination file (``.npz`` appended if missing).

    Returns:
        The written path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    params = model.parameters()
    payload: dict[str, np.ndarray] = {
        f"param_{i}": p.data for i, p in enumerate(params)
    }
    payload["meta_format"] = np.array(CHECKPOINT_FORMAT)
    for key, value in _fingerprint(model).items():
        payload[f"meta_{key}"] = np.array(value)
    # Parameter dtype travels with the checkpoint: loading float32
    # weights into a float64 model (or vice versa) must be an explicit
    # astype, not a silent mixed-precision model.
    if params:
        payload["meta_dtype"] = np.array(params[0].data.dtype.name)
    # Write-then-rename so concurrent readers (the harness' shared
    # cache_dir across CI/sweep processes) never see a torn file.
    tmp = path.with_name(f"{path.stem}.tmp-{os.getpid()}.npz")
    np.savez(tmp, **payload)
    os.replace(tmp, path)
    return path


def load_model(model: TealModel, path: str | Path) -> TealModel:
    """Load parameters saved by :func:`save_model` into ``model``.

    The target model must be constructed with the same architecture
    (layer count, path budget); the path set itself may differ in size —
    that is the point of topology-agnostic weights. The checkpoint's
    parameter dtype must match the model's: a float32-trained checkpoint
    no longer loads silently into a float64 model (cast the model with
    ``model.astype(...)`` first if the mix is intentional). Checkpoints
    without dtype metadata are assumed float64.

    Checkpoints also carry a schema-version stamp
    (:data:`CHECKPOINT_FORMAT`); a mismatch — including pre-versioning
    entries with no stamp — raises :class:`ModelError` so cache tiers
    treat the entry as a miss and retrain instead of deserializing a
    stale layout.

    Raises:
        ModelError: On schema-version, architecture, or dtype
            mismatches, and on corrupt checkpoints.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    try:
        handle = np.load(path)
    except (zipfile.BadZipFile, ValueError, EOFError) as error:
        raise ModelError(f"corrupt checkpoint {path}: {error}") from error
    with handle as data:
        stored_format = (
            int(data["meta_format"]) if "meta_format" in data.files else 0
        )
        if stored_format != CHECKPOINT_FORMAT:
            raise ModelError(
                f"checkpoint {path} has schema version {stored_format}, "
                f"this library writes version {CHECKPOINT_FORMAT}; "
                "the entry is stale — retrain (or re-save) to refresh it"
            )
        expected = _fingerprint(model)
        for key in ("num_gnn_layers", "max_paths", "embedding_dim"):
            stored = int(data[f"meta_{key}"])
            if stored != expected[key]:
                raise ModelError(
                    f"checkpoint {key}={stored} does not match model "
                    f"{key}={expected[key]}"
                )
        params = model.parameters()
        stored_dtype = (
            str(data["meta_dtype"].item()) if "meta_dtype" in data else "float64"
        )
        model_dtype = params[0].data.dtype.name if params else "float64"
        if stored_dtype != model_dtype:
            raise ModelError(
                f"checkpoint holds {stored_dtype} parameters but the model "
                f"is {model_dtype}; cast explicitly with model.astype(...) "
                "before loading if the precision change is intended"
            )
        stored_count = int(data["meta_num_parameters"])
        if stored_count != expected["num_parameters"]:
            raise ModelError(
                f"checkpoint holds {stored_count} parameters, model has "
                f"{expected['num_parameters']}"
            )
        for i, p in enumerate(params):
            arr = data[f"param_{i}"]
            if arr.shape != p.data.shape:
                raise ModelError(
                    f"parameter {i}: checkpoint shape {arr.shape} != "
                    f"model shape {p.data.shape}"
                )
            p.data = arr.copy()
            # Pending gradients described the overwritten weights.
            p.grad = None
    return model


def transfer_weights(source: AllocatorModel, target: AllocatorModel) -> int:
    """Copy parameters from ``source`` into ``target`` (same architecture).

    Both models may be built on different path sets (different
    topologies or demand sets); only the parameter list must align
    shape-for-shape — which holds for TealModels sharing hyperparameters,
    because no weight's shape depends on the topology size (§3.2-§3.3).

    Copied values adopt each *target* parameter's dtype: transferring
    from a float32-cast donor into a float64 model upcasts instead of
    silently turning the target into a mixed-precision model whose
    parameters disagree with its aggregation matrices (cast the donor
    back with ``astype`` first if full-precision weights are wanted).
    Any cached full-precision master state on the target is invalidated
    — it described the overwritten weights.

    Returns:
        The number of parameters copied.

    Raises:
        ModelError: If the parameter lists do not align.
    """
    src = source.parameters()
    dst = target.parameters()
    if len(src) != len(dst):
        raise ModelError(
            f"models have {len(src)} vs {len(dst)} parameters; "
            "architectures differ"
        )
    for i, (a, b) in enumerate(zip(src, dst)):
        if a.data.shape != b.data.shape:
            raise ModelError(
                f"parameter {i}: shapes {a.data.shape} vs {b.data.shape} "
                "differ; architectures are incompatible"
            )
    for a, b in zip(src, dst):
        b.data = a.data.astype(b.data.dtype, copy=True)
        b.grad = None
    if hasattr(target, "_master64"):
        target._master64 = None
    return len(dst)
