"""Direct loss minimization with surrogate objectives (§3.3, §5.7).

The total feasible flow is non-differentiable (dropping overloaded
traffic has zero gradient), so the paper defines a differentiable
surrogate (Appendix A):

    surrogate = sum_p f_p * w_p - sum_e max(0, load_e - capacity_e)

i.e. the intended (pre-drop) flow value minus the total link overuse.
Minimizing the negated surrogate through the model is "Teal w/ direct
loss" in Figure 14 — a few percent worse than COMA* because of the
approximation error — and also serves as a fast warm start before COMA*
fine-tuning in this reproduction's training recipe.

For the min-MLU objective (§5.5) the paper trains purely with RL; on
this reproduction's CPU training budgets we additionally provide the
standard p-norm smoothing of the max,

    surrogate_mlu = ( sum_e (load_e / capacity_e)^p )^(1/p),   p = 8

used only as a warm start before COMA* fine-tuning (a documented
reproduction addition — the paper's point that surrogates are
objective-specific design work stands). The p-norm is evaluated in the
overflow-safe factored form (see :func:`repro.nn.functional.p_norm`).

Both surrogates come in per-matrix and minibatch flavours: the batched
variants run a (T, D) demand stack and a (T, E) capacity stack through
one ``forward_batch`` pass and return the mean per-matrix loss, so one
backward covers the whole minibatch.
"""

from __future__ import annotations

import numpy as np

from ..config import TrainingConfig
from ..exceptions import TrainingError
from ..lp.objectives import (
    MinMaxLinkUtilizationObjective,
    Objective,
    TotalFlowObjective,
)
from ..nn import functional as F
from ..nn.optim import Adam
from ..nn.precision import EVALUATION_DTYPE
from ..nn.tensor import Tensor
from ..simulation.evaluator import evaluate_allocation
from ..traffic.matrix import TrafficMatrix
from .coma import TrainingHistory, sample_training_capacities
from .model import AllocatorModel


def model_path_flows(
    model: AllocatorModel, demands: np.ndarray, capacities: np.ndarray
) -> Tensor:
    """Differentiable (P,) intended path flows from the model's ratios."""
    ps = model.pathset
    ratios = model(demands, capacities)  # (D, k), differentiable
    demand_grid = demands[:, None] * ps.path_mask  # (D, k) volumes
    flows_grid = ratios * Tensor(demand_grid)
    flat = flows_grid.reshape(ps.num_demands * ps.max_paths, 1)
    return F.take_rows(flat, model.scatter_index).reshape(ps.num_paths)


def model_path_flows_batch(
    model: AllocatorModel, demands: np.ndarray, capacities: np.ndarray
) -> Tensor:
    """Differentiable (T, P) intended path flows for a minibatch.

    One ``forward_batch`` pass produces the whole stack; the gather to
    per-path layout is shared across the batch (``take_rows`` scatters
    gradients per batch element).

    Args:
        model: The model (provides ratios differentiably).
        demands: (T, D) demand volumes.
        capacities: (T, E) link capacities.
    """
    ps = model.pathset
    ratios = model.forward_batch(demands, capacities)  # (T, D, k)
    demand_grid = demands[:, :, None] * ps.path_mask  # (T, D, k)
    flows_grid = ratios * Tensor(demand_grid)
    num_matrices = demands.shape[0]
    flat = flows_grid.reshape(num_matrices, ps.num_demands * ps.max_paths, 1)
    return F.take_rows(flat, model.scatter_index).reshape(
        num_matrices, ps.num_paths
    )


def surrogate_loss_batch(
    model: AllocatorModel,
    demands: np.ndarray,
    capacities: np.ndarray,
    path_values: np.ndarray,
    overuse_weight: float = 1.0,
) -> Tensor:
    """Mean negated flow surrogate over a minibatch (Appendix A).

    Each matrix's loss is normalized by its own total demand (exactly the
    per-matrix semantics), then averaged, so the batched gradient is the
    mean of the per-TM gradients.

    Args:
        model: The model (provides ratios differentiably).
        demands: (T, D) demand volumes.
        capacities: (T, E) link capacities.
        path_values: (P,) per-unit-flow objective weights.
        overuse_weight: Multiplier on the link-overuse penalty.

    Returns:
        Scalar loss tensor (lower is better).
    """
    ps = model.pathset
    num_matrices = demands.shape[0]
    path_flows = model_path_flows_batch(model, demands, capacities)
    value = (path_flows * Tensor(path_values)).sum(axis=-1)  # (T,)
    loads = F.sparse_matmul(
        ps.edge_path_incidence, path_flows.reshape(num_matrices, ps.num_paths, 1)
    ).reshape(num_matrices, ps.topology.num_edges)
    overuse = F.relu(loads - Tensor(capacities)).sum(axis=-1)  # (T,)
    scale = np.maximum(demands.sum(axis=-1), 1e-9)
    return ((overuse * overuse_weight - value) * Tensor(1.0 / scale)).mean()


def surrogate_loss(
    model: AllocatorModel,
    demands: np.ndarray,
    capacities: np.ndarray,
    path_values: np.ndarray,
    overuse_weight: float = 1.0,
) -> Tensor:
    """Negated flow surrogate (Appendix A): overuse minus intended value.

    Args:
        model: The model (provides ratios differentiably).
        demands: (D,) demand volumes.
        capacities: (E,) link capacities.
        path_values: (P,) per-unit-flow objective weights.
        overuse_weight: Multiplier on the link-overuse penalty.

    Returns:
        Scalar loss tensor (lower is better).
    """
    ps = model.pathset
    path_flows = model_path_flows(model, demands, capacities)
    value = (path_flows * Tensor(path_values)).sum()
    loads = F.sparse_matmul(
        ps.edge_path_incidence, path_flows.reshape(ps.num_paths, 1)
    ).reshape(ps.topology.num_edges)
    overuse = F.relu(loads - Tensor(capacities)).sum()
    scale = max(float(demands.sum()), 1e-9)
    return (overuse * overuse_weight - value) / scale


def mlu_surrogate_loss_batch(
    model: AllocatorModel,
    demands: np.ndarray,
    capacities: np.ndarray,
    p: float = 8.0,
) -> Tensor:
    """Mean p-norm MLU surrogate over a minibatch (warm start for MLU).

    Failed (zero-capacity) links are excluded from the norm; the p-norm
    uses the overflow-safe factored form per matrix.

    Args:
        model: The model (provides ratios differentiably).
        demands: (T, D) demand volumes.
        capacities: (T, E) link capacities.
        p: Norm order of the max smoothing.
    """
    ps = model.pathset
    num_matrices = demands.shape[0]
    path_flows = model_path_flows_batch(model, demands, capacities)
    loads = F.sparse_matmul(
        ps.edge_path_incidence, path_flows.reshape(num_matrices, ps.num_paths, 1)
    ).reshape(num_matrices, ps.topology.num_edges)
    inverse_caps = np.where(
        capacities > 0, 1.0 / np.maximum(capacities, 1e-12), 0.0
    )
    utilization = loads * Tensor(inverse_caps)  # (T, E)
    return F.p_norm(utilization, p, axis=-1).mean()


def mlu_surrogate_loss(
    model: AllocatorModel,
    demands: np.ndarray,
    capacities: np.ndarray,
    p: float = 8.0,
) -> Tensor:
    """p-norm smoothing of the max link utilization (warm start for MLU).

    Failed (zero-capacity) links are excluded from the norm — their
    utilization is handled by the feasibility semantics, not by MLU.
    The norm is computed in the factored ``max * ((u/max)^p sum)^(1/p)``
    form, which cannot overflow however overloaded the links are.
    """
    ps = model.pathset
    path_flows = model_path_flows(model, demands, capacities)
    loads = F.sparse_matmul(
        ps.edge_path_incidence, path_flows.reshape(ps.num_paths, 1)
    ).reshape(ps.topology.num_edges)
    inverse_caps = np.where(capacities > 0, 1.0 / np.maximum(capacities, 1e-12), 0.0)
    utilization = loads * Tensor(inverse_caps)
    return F.p_norm(utilization, p, axis=-1)


class DirectLossTrainer:
    """Trains a model by minimizing a differentiable surrogate loss.

    Args:
        model: The model to train.
        objective: TE objective. Flow-type objectives use the Appendix A
            surrogate; min-MLU uses the p-norm smoothing.
        config: Training budget.
        overuse_weight: Penalty multiplier for capacity violations
            (flow surrogate only).
    """

    def __init__(
        self,
        model: AllocatorModel,
        objective: Objective | None = None,
        config: TrainingConfig | None = None,
        overuse_weight: float = 1.0,
    ) -> None:
        self.model = model
        self.objective = objective if objective is not None else TotalFlowObjective()
        self.config = config if config is not None else TrainingConfig()
        self.is_mlu = isinstance(self.objective, MinMaxLinkUtilizationObjective)
        if self.is_mlu:
            self.path_values = None
        else:
            try:
                self.path_values = self.objective.path_values(model.pathset)
            except Exception as error:
                raise TrainingError(
                    "direct loss requires a flow-type objective with "
                    f"per-path values or min-MLU; got {self.objective.name}"
                ) from error
        self.overuse_weight = overuse_weight
        self.optimizer = Adam(model.parameters(), lr=model.hyper.learning_rate)

    def _loss(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Per-matrix loss ((D,) / (E,) inputs) — the classic path."""
        if self.is_mlu:
            return mlu_surrogate_loss(self.model, demands, capacities)
        return surrogate_loss(
            self.model, demands, capacities, self.path_values, self.overuse_weight
        )

    def _loss_batch(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Mean minibatch loss ((T, D) / (T, E) inputs)."""
        if self.is_mlu:
            return mlu_surrogate_loss_batch(self.model, demands, capacities)
        return surrogate_loss_batch(
            self.model, demands, capacities, self.path_values, self.overuse_weight
        )

    def train(
        self,
        matrices: list[TrafficMatrix],
        capacities: np.ndarray | None = None,
        steps: int | None = None,
        batch_size: int | None = None,
    ) -> TrainingHistory:
        """Run gradient descent on the surrogate loss over a trace.

        Every step consumes a minibatch of ``batch_size`` consecutive
        matrices (default: ``config.batch_matrices``) through one batched
        forward/backward; the loss is the mean of the per-matrix
        surrogate losses, so ``batch_size=1`` reproduces the classic
        one-matrix-per-step loop.
        """
        if not matrices:
            raise TrainingError("training requires at least one traffic matrix")
        ps = self.model.pathset
        if capacities is None:
            capacities = ps.topology.capacities
        capacities = np.asarray(capacities, dtype=EVALUATION_DTYPE)
        total_steps = self.config.steps if steps is None else int(steps)
        batch = (
            self.config.batch_matrices if batch_size is None else int(batch_size)
        )
        if batch < 1:
            raise TrainingError("batch_size must be >= 1")
        history = TrainingHistory()
        rng = np.random.default_rng(self.config.seed + 101)
        all_demands = [ps.demand_volumes(m.values) for m in matrices]

        for step in range(total_steps):
            indices = [
                (step * batch + offset) % len(matrices)
                for offset in range(batch)
            ]
            demands_b = np.stack([all_demands[i] for i in indices])
            caps_b = np.stack(
                [
                    sample_training_capacities(ps, capacities, self.config, rng)
                    for _ in indices
                ]
            )
            loss = self._loss_batch(demands_b, caps_b)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()

            if step % self.config.log_every == 0 or step == total_steps - 1:
                # Score the model under the same (failure-sampled)
                # capacities the training loss saw, so the logged reward
                # and loss describe the same input.
                ratios = self.model.split_ratios(demands_b[0], caps_b[0])
                reward = self.objective.reward(
                    ps, ratios, demands_b[0], caps_b[0]
                )
                report = evaluate_allocation(ps, ratios, demands_b[0], caps_b[0])
                history.record(step, reward, report.satisfied_fraction, loss.item())
        return history
