"""Batched segment arithmetic and fused elementwise kernels.

Two families of primitives live here, both shared across the training,
inference, and ADMM stacks:

**Segment ops.** The per-matrix math in COMA*'s decomposable reward and
in the ADMM fine-tuner is built from three flat-index primitives over
fixed integer maps (path -> demand, incidence pair -> edge, ...):
``np.bincount`` segment sums, ``np.maximum.at`` segment maxima, and
plain gathers. All of them extend to a leading (T,) batch axis by
*tiling*: offset the index array by ``t * num_segments`` for batch
element ``t`` and run the same 1-D primitive over the flattened (T * N,)
weights. Because every segment still accumulates its elements in the
original order, the tiled result is bit-identical to running the
per-matrix primitive T times — which is what lets the batched trainers
and ``fine_tune_batch`` reproduce the per-TM loops to machine precision
instead of merely "close". Segment sums always *accumulate* in float64
(``np.bincount``'s accumulator) whatever the storage dtype — the
"float64 accumulation" half of the precision policy
(:mod:`repro.nn.precision`).

**Fused kernels.** The FlowGNN forward and the ADMM update loop are
chains of elementwise ops; written naively each op allocates a fresh
ndarray, so a 6-layer batched forward pays O(layers x T) temporaries.
The small named kernels below perform the same chains through
preallocated buffers and ufunc ``out=`` arguments — each kernel's
docstring states the exact expression *and op order* it computes, so the
fused result is bit-identical to the naive elementwise form at any fixed
dtype (asserted by ``tests/test_precision.py``). A :class:`Workspace`
owns the buffers, keyed by call-site name, so repeated inference calls
(sweeps, ADMM iterations) stop allocating entirely after the first pass.

**Kernel aliasing contracts.** Every ``out=``-style kernel declares
which arguments it clobbers and which pairs may legally alias; the
machine-readable form is :data:`KERNEL_CONTRACTS` (cross-referenced by
lint rule RL002 and enforced at runtime under ``REPRO_SANITIZE=1`` —
see :mod:`repro.lint.sanitize`). Summary:

======================== ================= ============ =========== ==============
kernel                   writes            inout        scratch     may alias
======================== ================= ============ =========== ==============
``csr_matmul_into``      out               —            —           —
``pair_linear_into``     out               —            scratch     —
``linear_into``          out               —            —           —
``tanh_``                —                 x            —           n/a (in-place)
``relu_``                —                 x            —           n/a (in-place)
``take_rows_into``       out               —            —           —
``padded_take_rows_into`` out              —            —           —
``masked_softmax_into``  out               —            reduce_buf  logits == out
``admm_f_rhs_into``      out               —            tmp         —
``admm_f_solve_into``    out               —            —           —
``admm_z_rhs_into``      out               slack_g,     —           lam3_g == out
                                           flow_g
``admm_z_solve_into``    out               —            —           —
``admm_slack_into``      out               —            tmp         —
``admm_dual_step_``      —                 dual         tmp         —
``SegmentOps.expand_into`` out             —            —           —
======================== ================= ============ =========== ==============

"may alias" pairs are exact-view aliases only (same base pointer,
shape, strides): the safe elementwise case actually used by call
sites. Partial overlap is never legal. All other argument pairs
involving a clobbered buffer must be disjoint.

**Backend dispatch.** Every kernel routes its array calls through
:mod:`repro.core.backend`: ``array_ops(out)`` picks the ops namespace
owning the output array (numpy by default, torch for torch tensors).
The numpy namespace aliases the exact ``np.*`` callables these kernels
always used, so the dispatched numpy path is bit-identical to the
pre-dispatch kernels — the only numpy-path cost is one ``type`` check
per kernel call (benchmarks/bench_backend.py keeps that honest).
"""

from __future__ import annotations

import os
from typing import NamedTuple

import numpy as np
import scipy.sparse as sp

from .backend import NUMPY_OPS, array_ops, foreign_ops, resolve_ops

#: Armed by repro.lint.sanitize.install_sanitizers (REPRO_SANITIZE=1):
#: Workspace.buffer NaN-poisons fresh allocations when set.
_SANITIZE = False


class SegmentOps:
    """Segment sum / max over a fixed index map, batched via index tiling.

    Args:
        index: (N,) integer segment id of each element.
        num_segments: Total number of segments S (ids are in [0, S)).
    """

    def __init__(self, index: np.ndarray, num_segments: int) -> None:
        self.index = np.asarray(index, dtype=np.int64)
        self.num_segments = int(num_segments)
        self._tiled: dict[int, np.ndarray] = {}

    def tiled_index(self, batch: int) -> np.ndarray:
        """(batch * N,) index with ``t * num_segments`` offsets (cached)."""
        cached = self._tiled.get(batch)
        if cached is None:
            offsets = self.num_segments * np.arange(batch, dtype=np.int64)
            cached = (self.index[None, :] + offsets[:, None]).reshape(-1)
            self._tiled[batch] = cached
        return cached

    def sum(self, weights: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
        """Per-segment sums: (T, N) weights -> (T, S) totals.

        Row ``t`` equals ``np.bincount(index, weights[t], minlength=S)``
        bit for bit (same accumulation order per segment). Accumulation
        is always float64 (bincount's accumulator — backends implement
        the same contract, e.g. ``index_add_`` on a float64 buffer);
        ``dtype`` selects the storage dtype of the result (default:
        float64, the historic behaviour).
        """
        ops = foreign_ops(weights)
        if ops is None:
            ops = NUMPY_OPS
            weights = np.asarray(weights)
        batch = weights.shape[0]
        out = ops.segment_sum(
            self.tiled_index(batch),
            weights.reshape(-1),
            batch * self.num_segments,
        ).reshape(batch, self.num_segments)
        if dtype is not None and ops.dtype_of(out) != np.dtype(dtype):
            out = ops.astype(out, dtype)
        return out

    def max(
        self,
        values: np.ndarray,
        initial: float = 0.0,
        dtype: np.dtype | None = None,
    ) -> np.ndarray:
        """Per-segment maxima: (T, N) values -> (T, S), empty segments
        keep ``initial``. ``dtype`` selects the result dtype (default:
        the values' own dtype)."""
        ops = foreign_ops(values)
        if ops is None:
            ops = NUMPY_OPS
            values = np.asarray(values)
        batch = values.shape[0]
        out = ops.full(
            batch * self.num_segments,
            initial,
            dtype=ops.dtype_of(values) if dtype is None else dtype,
        )
        ops.segment_max_into(out, self.tiled_index(batch), values.reshape(-1))
        return out.reshape(batch, self.num_segments)

    def expand(self, per_segment: np.ndarray) -> np.ndarray:
        """Gather per-segment values back to elements: (T, S) -> (T, N)."""
        return array_ops(per_segment).expand_segments(per_segment, self.index)

    def expand_into(self, per_segment: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Fused :meth:`expand`: gather (T, S) -> (T, N) into ``out``."""
        array_ops(out).take(per_segment, self.index, axis=-1, out=out)
        return out


# ----------------------------------------------------------------------
# Workspace: preallocated buffers for the fused kernels
# ----------------------------------------------------------------------
class Workspace:
    """Named, shape/dtype-checked scratch buffers for fused kernels.

    Each call site requests a buffer under a stable key; the buffer is
    allocated on first use and reused verbatim afterwards, so a hot loop
    (sweep inference, ADMM iterations) allocates only on its first pass.
    Buffers hold *garbage* between uses — every kernel fully overwrites
    its output.

    Buffers are served as contiguous prefix views of a per-key *backing*
    allocation that only ever grows: when a call site's shape shrinks
    (e.g. a cell-batched sweep's final, smaller chunk) the existing
    backing is re-sliced instead of re-allocated, and a later return to
    the larger shape reuses the same memory. Only a capacity increase or
    a dtype switch pays for a fresh allocation, so alternating batch
    sizes stop churning the allocator entirely.

    NOT thread-safe: a workspace (and therefore any model/fine-tuner
    holding one) must be driven by one thread at a time — concurrent
    calls would interleave writes into shared scratch. The sweep engine
    respects this by construction (each grid job builds its own
    schemes); share across threads only behind a lock, or use separate
    scheme instances.

    Args:
        backend: Where buffers live — a :class:`~repro.core.backend.
            Backend`, a backend name, or a duck-typed ops namespace.
            Defaults to numpy (the owner resolves ``REPRO_BACKEND``;
            a bare workspace never consults the environment). Buffers
            are keyed per *device* as well as per call site, so the
            same workspace keeps serving its keys correctly across a
            backend switch instead of handing one backend another's
            memory.
    """

    __slots__ = ("_backing", "_buffers", "_ops")

    def __init__(self, backend=None) -> None:
        self._ops = resolve_ops(backend)
        self._buffers: dict[object, np.ndarray] = {}
        self._backing: dict[object, np.ndarray] = {}

    @property
    def ops(self):
        """The ops namespace buffers are allocated through."""
        return self._ops

    def buffer(self, key, shape: tuple[int, ...], dtype) -> np.ndarray:
        """The buffer registered under ``key``, re-sliced or reallocated
        on shape or dtype change (e.g. a new batch size or a precision
        switch).

        The returned array is a C-contiguous prefix view of the key's
        backing allocation; the backing grows when the requested element
        count exceeds its capacity (or the dtype changes) and is reused
        otherwise, so shape changes within capacity cost one reshape
        instead of an allocation.

        Under ``REPRO_SANITIZE=1`` every shape/dtype transition NaN-
        poisons the served view — not just fresh backing allocations —
        so a kernel that reads stale scratch carried over from a
        previous shape trips the sanitizer's finiteness checks
        downstream exactly as it would on a cold buffer.
        """
        shape = tuple(shape)
        dtype = np.dtype(dtype)
        ops = self._ops
        slot = (ops.device_key, key)
        buf = self._buffers.get(slot)
        if (
            buf is not None
            and tuple(buf.shape) == shape
            and ops.dtype_of(buf) == dtype
        ):
            return buf
        needed = 1
        for dim in shape:
            needed *= int(dim)
        backing = self._backing.get(slot)
        if (
            backing is None
            or ops.dtype_of(backing) != dtype
            or ops.size_of(backing) < needed
        ):
            backing = ops.empty((needed,), dtype)
            self._backing[slot] = backing
        buf = backing[:needed].reshape(shape)
        if _SANITIZE and dtype.kind == "f":
            ops.fill_nan(buf)
        self._buffers[slot] = buf
        return buf

    def clear(self) -> None:
        """Drop every buffer (precision switches call this)."""
        self._buffers.clear()
        self._backing.clear()

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def total_bytes(self) -> int:
        """Resident scratch memory (diagnostic for the benchmarks)."""
        return sum(self._ops.nbytes(buf) for buf in self._backing.values())


# ----------------------------------------------------------------------
# Fused kernels: FlowGNN forward
# ----------------------------------------------------------------------
def csr_matmul_into(csr: sp.csr_matrix, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = csr @ dense`` through a preallocated buffer.

    The sparse-aggregation kernel of the FlowGNN fast path. The numpy
    backend uses scipy's ``csr_matvecs`` C routine directly (it
    *accumulates* into the output buffer, so the buffer is zeroed
    first); a (B, N, F) batched operand runs one call per batch row —
    per output element the accumulation order over the row's nonzeros
    is identical to ``csr @ dense``, so the result is bit-identical to
    the allocating product (with an allocating fallback when scipy's
    internals are unavailable or the operands are not
    contiguous/dtype-matched). See
    :meth:`repro.core.backend.NumpyOps.csr_matmul_into`.
    """
    return array_ops(out).csr_matmul_into(csr, dense, out)


def pair_linear_into(
    a: np.ndarray,
    b: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    out: np.ndarray,
    scratch: np.ndarray,
) -> np.ndarray:
    """``out = a @ weight[:split] + b @ weight[split:] (+ bias)``.

    The raw-array twin of :func:`repro.nn.functional.pair_linear` with
    the same op order (top product, plus bottom product, plus bias), so
    forward values are bit-identical at fixed dtype.
    """
    ops = array_ops(out)
    split = a.shape[-1]
    ops.matmul(a, weight[:split], out=out)
    ops.matmul(b, weight[split:], out=scratch)
    out += scratch
    if bias is not None:
        out += bias
    return out


def linear_into(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, out: np.ndarray
) -> np.ndarray:
    """``out = x @ weight (+ bias)`` — fused affine map."""
    array_ops(out).matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    return out


def tanh_(x: np.ndarray) -> np.ndarray:
    """In-place tanh (activation of the fused forward)."""
    return array_ops(x).tanh(x, out=x)


def relu_(x: np.ndarray) -> np.ndarray:
    """In-place ReLU, same expression as ``F.relu`` (max(x, 0))."""
    return array_ops(x).maximum(x, 0.0, out=x)


def take_rows_into(x: np.ndarray, indices: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gather rows along the second-to-last axis into ``out``.

    Raw-array twin of :func:`repro.nn.functional.take_rows` (forward
    only — the fast path never needs the scatter-add backward).
    """
    array_ops(out).take(x, indices, axis=-2, out=out)
    return out


def padded_take_rows_into(
    x: np.ndarray,
    safe_indices: np.ndarray,
    invalid_rows: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Gather rows with padding slots zeroed, into ``out``.

    Raw-array twin of :func:`repro.nn.functional.take_rows_padded`:
    ``safe_indices`` is the flat index array with -1s replaced by 0 and
    ``invalid_rows`` the flat positions of those padding slots (both
    precomputed once per model — the masks are static).
    """
    array_ops(out).take(x, safe_indices, axis=-2, out=out)
    if invalid_rows.size:
        out[..., invalid_rows, :] = 0.0
    return out


def masked_softmax_into(
    logits: np.ndarray,
    not_mask: np.ndarray,
    out: np.ndarray,
    reduce_buf: np.ndarray,
) -> np.ndarray:
    """Masked softmax along the last axis, into ``out``.

    Identical op sequence to :func:`repro.nn.functional.softmax` with a
    mask: masked logits forced to -1e30, max-shift, exp, masked exps
    zeroed, divide by ``max(denom, 1e-30)`` — bit-identical at fixed
    dtype. ``not_mask`` is the *negated* validity mask (precomputed —
    it is static per pathset); ``reduce_buf`` holds the keepdims
    max/denominator, shape ``out.shape[:-1] + (1,)``.
    """
    ops = array_ops(out)
    if out is not logits:
        ops.copyto(out, logits)
    ops.copyto(out, ops.typed_scalar(out, -1e30), where=not_mask)
    ops.max(out, axis=-1, keepdims=True, out=reduce_buf)
    out -= reduce_buf
    ops.exp(out, out=out)
    ops.copyto(out, 0.0, where=not_mask)
    ops.sum(out, axis=-1, keepdims=True, out=reduce_buf)
    ops.maximum(reduce_buf, 1e-30, out=reduce_buf)
    out /= reduce_buf
    return out


# ----------------------------------------------------------------------
# Fused kernels: ADMM block updates (§3.4, Appendix C)
# ----------------------------------------------------------------------
def admm_f_rhs_into(
    d_p: np.ndarray,
    w_p: np.ndarray,
    lam1_g: np.ndarray,
    lam4_pp: np.ndarray,
    s1_g: np.ndarray,
    z_pp: np.ndarray,
    rho: float,
    out: np.ndarray,
    tmp: np.ndarray,
) -> np.ndarray:
    """F-update right-hand side, fused.

    ``out = d_p*w_p - lam1_g - d_p*lam4_pp + rho*(1 - s1_g) + (rho*d_p)*z_pp``
    in exactly that (left-associated) order — note the last term
    associates as ``(rho * d_p) * z_pp``, matching the historical
    elementwise expression bit for bit. Arithmetic runs in ``out``'s
    dtype: lower-precision operands (e.g. float32 duals/slacks under the
    mixed-precision policy) are promoted, never the reverse.
    """
    ops = array_ops(out)
    ops.multiply(d_p, w_p, out=out)
    out -= lam1_g
    ops.multiply(d_p, lam4_pp, out=tmp)
    out -= tmp
    # A dtype-strong 1.0 keeps the subtraction in out's precision even
    # when s1_g is a float32 gather.
    ops.subtract(ops.typed_scalar(tmp, 1.0), s1_g, out=tmp)
    tmp *= rho
    out += tmp
    ops.multiply(d_p, rho, out=tmp)
    tmp *= z_pp
    out += tmp
    return out


def admm_f_solve_into(
    b: np.ndarray,
    inv_a_over_rho: np.ndarray,
    correction_g: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Sherman-Morrison F-solve + box projection, fused.

    ``out = clip(inv_a_over_rho * (b - correction_g), 0, 1)``.
    """
    ops = array_ops(out)
    ops.subtract(b, correction_g, out=out)
    out *= inv_a_over_rho
    ops.clip(out, 0.0, 1.0, out=out)
    return out


def admm_z_rhs_into(
    lam3_g: np.ndarray,
    lam4: np.ndarray,
    slack_g: np.ndarray,
    flow_g: np.ndarray,
    rho: float,
    out: np.ndarray,
) -> np.ndarray:
    """z-update right-hand side, fused (consumes the gathered operands).

    ``out = -lam3_g + lam4 + rho*slack_g + rho*flow_g`` in that order;
    ``slack_g`` and ``flow_g`` are scaled in place (they are scratch
    gathers of ``(c - s3)`` and ``F*d``).
    """
    array_ops(out).negative(lam3_g, out=out)
    out += lam4
    slack_g *= rho
    out += slack_g
    flow_g *= rho
    out += flow_g
    return out


def admm_z_solve_into(
    beta: np.ndarray, correction_g: np.ndarray, rho: float, out: np.ndarray
) -> np.ndarray:
    """Rank-1-plus-identity z-solve: ``out = (beta - correction_g) / rho``."""
    array_ops(out).subtract(beta, correction_g, out=out)
    out /= rho
    return out


def admm_slack_into(
    bound,
    total: np.ndarray,
    dual: np.ndarray,
    rho: float,
    out: np.ndarray,
    tmp: np.ndarray,
) -> np.ndarray:
    """Non-negative slack update: ``out = max(0, (bound - total) - dual/rho)``."""
    ops = array_ops(out)
    ops.subtract(bound, total, out=out)
    ops.divide(dual, rho, out=tmp)
    out -= tmp
    ops.maximum(out, 0.0, out=out)
    return out


def admm_dual_step_(
    dual: np.ndarray,
    total: np.ndarray,
    slack: np.ndarray,
    bound,
    rho: float,
    tmp: np.ndarray,
) -> np.ndarray:
    """Dual ascent step, fused: ``dual += rho * (total + slack - bound)``."""
    array_ops(dual).add(total, slack, out=tmp)
    tmp -= bound
    tmp *= rho
    dual += tmp
    return dual


# ----------------------------------------------------------------------
# Kernel aliasing contracts (machine-readable; see module docstring)
# ----------------------------------------------------------------------
class KernelContract(NamedTuple):
    """Aliasing/clobber contract of one ``out=``-style kernel.

    Attributes:
        params: Parameter names in positional order (``self`` included
            for method kernels).
        writes: Parameters fully overwritten by the kernel (finite on
            exit under the sanitizer).
        inout: Parameters read *and* updated in place (finite on exit).
        scratch: Parameters clobbered with garbage the caller must not
            rely on.
        may_alias: Pairs allowed to be the exact same view (elementwise
            safe); partial overlap is never legal.
        method: True for method kernels registered as
            ``"Owner.method"`` — the sanitizer wraps the class
            attribute and lint binds call-site args without ``self``.
    """

    params: tuple[str, ...]
    writes: tuple[str, ...] = ()
    inout: tuple[str, ...] = ()
    scratch: tuple[str, ...] = ()
    may_alias: tuple[tuple[str, str], ...] = ()
    method: bool = False


#: Contract per kernel — the single source RL002 (static) and the
#: runtime sanitizer (REPRO_SANITIZE=1) both enforce. Keep in sync with
#: the table in the module docstring.
KERNEL_CONTRACTS: dict[str, KernelContract] = {
    "csr_matmul_into": KernelContract(
        params=("csr", "dense", "out"),
        writes=("out",),
    ),
    "pair_linear_into": KernelContract(
        params=("a", "b", "weight", "bias", "out", "scratch"),
        writes=("out",),
        scratch=("scratch",),
    ),
    "linear_into": KernelContract(
        params=("x", "weight", "bias", "out"),
        writes=("out",),
    ),
    "tanh_": KernelContract(
        params=("x",),
        inout=("x",),
    ),
    "relu_": KernelContract(
        params=("x",),
        inout=("x",),
    ),
    "take_rows_into": KernelContract(
        params=("x", "indices", "out"),
        writes=("out",),
    ),
    "padded_take_rows_into": KernelContract(
        params=("x", "safe_indices", "invalid_rows", "out"),
        writes=("out",),
    ),
    "masked_softmax_into": KernelContract(
        params=("logits", "not_mask", "out", "reduce_buf"),
        writes=("out",),
        scratch=("reduce_buf",),
        may_alias=(("logits", "out"),),
    ),
    "admm_f_rhs_into": KernelContract(
        params=(
            "d_p", "w_p", "lam1_g", "lam4_pp", "s1_g", "z_pp", "rho",
            "out", "tmp",
        ),
        writes=("out",),
        scratch=("tmp",),
    ),
    "admm_f_solve_into": KernelContract(
        params=("b", "inv_a_over_rho", "correction_g", "out"),
        writes=("out",),
    ),
    "admm_z_rhs_into": KernelContract(
        params=("lam3_g", "lam4", "slack_g", "flow_g", "rho", "out"),
        writes=("out",),
        inout=("slack_g", "flow_g"),
        may_alias=(("lam3_g", "out"),),
    ),
    "admm_z_solve_into": KernelContract(
        params=("beta", "correction_g", "rho", "out"),
        writes=("out",),
    ),
    "admm_slack_into": KernelContract(
        params=("bound", "total", "dual", "rho", "out", "tmp"),
        writes=("out",),
        scratch=("tmp",),
    ),
    "admm_dual_step_": KernelContract(
        params=("dual", "total", "slack", "bound", "rho", "tmp"),
        inout=("dual",),
        scratch=("tmp",),
    ),
    "SegmentOps.expand_into": KernelContract(
        params=("self", "per_segment", "out"),
        writes=("out",),
        method=True,
    ),
}


# Opt-in runtime sanitizer layer: with REPRO_SANITIZE=1 in the
# environment, rebind every contracted kernel to a checking wrapper
# (aliasing + NaN/Inf tripwires) and arm Workspace buffer poisoning.
# This runs at import time so call sites that bind the kernels via
# `from .batching import ...` pick up the wrapped functions.
if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
    from ..lint.sanitize import install_sanitizers

    install_sanitizers(globals())
