"""Batched segment arithmetic shared by the training and ADMM stacks.

The per-matrix math in COMA*'s decomposable reward and in the ADMM
fine-tuner is built from three flat-index primitives over fixed integer
maps (path -> demand, incidence pair -> edge, ...): ``np.bincount``
segment sums, ``np.maximum.at`` segment maxima, and plain gathers. All of
them extend to a leading (T,) batch axis by *tiling*: offset the index
array by ``t * num_segments`` for batch element ``t`` and run the same
1-D primitive over the flattened (T * N,) weights. Because every segment
still accumulates its elements in the original order, the tiled result is
bit-identical to running the per-matrix primitive T times — which is what
lets the batched trainers and ``fine_tune_batch`` reproduce the per-TM
loops to machine precision instead of merely "close".

:class:`SegmentOps` packages one index map with a cache of tiled index
arrays keyed by batch size (training reuses the same minibatch size every
step, so the tile is built once).
"""

from __future__ import annotations

import numpy as np


class SegmentOps:
    """Segment sum / max over a fixed index map, batched via index tiling.

    Args:
        index: (N,) integer segment id of each element.
        num_segments: Total number of segments S (ids are in [0, S)).
    """

    def __init__(self, index: np.ndarray, num_segments: int) -> None:
        self.index = np.asarray(index, dtype=np.int64)
        self.num_segments = int(num_segments)
        self._tiled: dict[int, np.ndarray] = {}

    def tiled_index(self, batch: int) -> np.ndarray:
        """(batch * N,) index with ``t * num_segments`` offsets (cached)."""
        cached = self._tiled.get(batch)
        if cached is None:
            offsets = self.num_segments * np.arange(batch, dtype=np.int64)
            cached = (self.index[None, :] + offsets[:, None]).reshape(-1)
            self._tiled[batch] = cached
        return cached

    def sum(self, weights: np.ndarray) -> np.ndarray:
        """Per-segment sums: (T, N) weights -> (T, S) totals.

        Row ``t`` equals ``np.bincount(index, weights[t], minlength=S)``
        bit for bit (same accumulation order per segment).
        """
        weights = np.asarray(weights, dtype=float)
        batch = weights.shape[0]
        return np.bincount(
            self.tiled_index(batch),
            weights=weights.reshape(-1),
            minlength=batch * self.num_segments,
        ).reshape(batch, self.num_segments)

    def max(self, values: np.ndarray, initial: float = 0.0) -> np.ndarray:
        """Per-segment maxima: (T, N) values -> (T, S), empty segments
        keep ``initial``."""
        values = np.asarray(values, dtype=float)
        batch = values.shape[0]
        out = np.full(batch * self.num_segments, initial, dtype=float)
        np.maximum.at(out, self.tiled_index(batch), values.reshape(-1))
        return out.reshape(batch, self.num_segments)

    def expand(self, per_segment: np.ndarray) -> np.ndarray:
        """Gather per-segment values back to elements: (T, S) -> (T, N)."""
        return np.asarray(per_segment, dtype=float)[:, self.index]
