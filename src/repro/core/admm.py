"""ADMM fine-tuning of neural allocations (§3.4, Appendix C).

The paper augments Teal's networks with 2-5 iterations of the
alternating direction method of multipliers to repair capacity
violations. Following Appendix C, the path-formulation LP is rewritten
with auxiliary variables ``z_pe`` (one per path-edge incidence) and
slacks ``s1_d`` (demand constraints), ``s3_e`` (capacity constraints):

    min  -sum_p value_p * d_p * F_p
    s.t. G1_d:  sum_{p in P_d} F_p + s1_d - 1      = 0
         G3_e:  sum_{p ∋ e} z_pe + s3_e - c_e      = 0
         G4_pe: F_p * d_p - z_pe                   = 0
         F, s1, s3 >= 0

Each ADMM iteration minimizes the augmented Lagrangian blockwise. Both
the F-block (per demand, ≤k variables) and the z-block (per edge)
reduce to rank-1-plus-diagonal linear systems solved in closed form via
Sherman-Morrison — every demand/edge independently, which is the
parallelism §3.4 highlights; here it appears as flat numpy vector math
over all demands/edges at once. The F >= 0 bound is enforced by
projection after each F-step (standard practice for box constraints in
ADMM fine-tuners).

Warm-starting from the network output is essential: §3.4 notes randomly
initialized ADMM would need far more iterations (benchmarked in
``benchmarks/bench_fig14_ablations.py``).

Primal *and dual* warm starts are used: ``lam1`` is initialized so that a
feasible allocation is a fixed point of the first F-update (otherwise the
first iteration performs unconstrained flow maximization and destroys the
warm start). Later iterations may transiently trade small capacity
violations for higher flow while the capacity duals ``lam3`` build up —
the deployed pipeline (:class:`repro.core.teal.TealScheme`) guards this
with an objective acceptance check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdmmConfig
from ..exceptions import ModelError
from ..nn.precision import EVALUATION_DTYPE, Precision, resolve_precision
from ..paths.pathset import PathSet
from ..topology.graph import broadcast_capacities
from .backend import Backend, array_ops, resolve_backend
from .batching import (
    SegmentOps,
    Workspace,
    admm_dual_step_,
    admm_f_rhs_into,
    admm_f_solve_into,
    admm_slack_into,
    admm_z_rhs_into,
    admm_z_solve_into,
)

_EPS = 1e-9


def _project_ratios(ratios: np.ndarray) -> np.ndarray:
    """Project split ratios onto the simplex box: clip to [0, 1], then
    renormalize any row whose sum exceeds 1.

    Shared by every ADMM exit path (iterating or not, batched or not) so
    the zero-iteration short-circuit returns allocations with the same
    row-sum guarantee as the full solver. Operates on the trailing (k,)
    axis, so (D, k) and (T, D, k) inputs both work. Dispatches on the
    input's backend (see :mod:`repro.core.backend`).
    """
    ops = array_ops(ratios)
    ratios = ops.clip(ratios, 0.0, 1.0)
    sums = ratios.sum(axis=-1, keepdims=True)
    return ops.where(sums > 1.0, ratios / ops.maximum(sums, _EPS), ratios)


@dataclass
class _AdmmStructures:
    """Static index structures shared by every ADMM run on a pathset."""

    pair_path: np.ndarray  # (I,) path id of each (path, edge) incidence
    pair_edge: np.ndarray  # (I,) edge id of each incidence
    hops: np.ndarray  # (P,) edges per path (n_p)
    paths_per_edge: np.ndarray  # (E,) paths per edge (m_e)
    num_paths: int
    num_edges: int
    num_demands: int
    path_demand: np.ndarray  # (P,)


def _build_structures(pathset: PathSet) -> _AdmmStructures:
    coo = pathset.edge_path_incidence.tocoo()
    return _AdmmStructures(
        pair_path=coo.col.astype(np.int64),
        pair_edge=coo.row.astype(np.int64),
        hops=pathset.path_hop_counts.astype(EVALUATION_DTYPE),
        paths_per_edge=np.asarray(
            pathset.edge_path_incidence.sum(axis=1)
        ).reshape(-1),
        num_paths=pathset.num_paths,
        num_edges=pathset.topology.num_edges,
        num_demands=pathset.num_demands,
        path_demand=pathset.path_demand,
    )


class AdmmFineTuner:
    """Runs warm-started ADMM iterations on an allocation (§3.4).

    Args:
        pathset: The path set (fixes the constraint structure).
        config: Iteration count and penalty coefficient; the default picks
            the paper's 2 (<100 nodes) or 5 iterations automatically.
        path_values: Optional per-path per-unit-flow objective weights
            (1 for total flow; the delay-penalized weights otherwise).
        precision: Storage dtype of the F/z/s/dual iterates (default
            float64). Segment sums always *accumulate* in float64
            (``np.bincount``) and the deployment acceptance check scores
            candidates through the float64 evaluator, so float32 storage
            perturbs the iterates but not the accept/reject decisions —
            see :mod:`repro.nn.precision`.
        backend: Array backend running the update loop (default numpy;
            see :mod:`repro.core.backend`). Inputs and outputs stay
            numpy whatever the backend — conversion happens at the
            fine-tune boundary.
    """

    def __init__(
        self,
        pathset: PathSet,
        config: AdmmConfig | None = None,
        path_values: np.ndarray | None = None,
        precision: Precision | str | None = None,
        backend: Backend | str | None = None,
    ) -> None:
        self.pathset = pathset
        self.config = config if config is not None else AdmmConfig()
        self.precision = resolve_precision(precision)
        self.backend = resolve_backend(backend)
        self.structures = _build_structures(pathset)
        if path_values is None:
            path_values = np.ones(pathset.num_paths)
        path_values = np.asarray(path_values, dtype=EVALUATION_DTYPE)
        if path_values.shape != (pathset.num_paths,):
            raise ModelError("path_values shape mismatch")
        self.path_values = path_values
        self.iterations = self.config.resolve_iterations(
            pathset.topology.num_nodes
        )
        # Tiled-index segment ops: the batched fine-tuner runs the same
        # flat bincount/scatter primitives as the per-TM path over a
        # (T, ...) stack (see core.batching), so both agree bit for bit.
        s = self.structures
        self._pair_to_path = SegmentOps(s.pair_path, s.num_paths)
        self._pair_to_edge = SegmentOps(s.pair_edge, s.num_edges)
        self._path_to_demand = SegmentOps(s.path_demand, s.num_demands)
        # Preallocated buffers of the fused update loop (keyed by batch
        # shape and dtype, so a sweep of equal-sized stacks never
        # re-allocates) and per-dtype casts of the static structures.
        self._workspace = Workspace(self.backend)
        self._static_cache: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def _static_arrays(
        self, dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray]:
        """(path_values, 1 + paths_per_edge) cast to ``dtype``."""
        cached = self._static_cache.get(dtype.name)
        if cached is None:
            cached = (
                self.path_values.astype(dtype, copy=False),
                (1.0 + self.structures.paths_per_edge).astype(dtype, copy=False),
            )
            self._static_cache[dtype.name] = cached
        return cached

    def fine_tune(
        self,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
        iterations: int | None = None,
    ) -> np.ndarray:
        """Fine-tune split ratios toward feasibility and higher objective.

        Args:
            split_ratios: (D, k) warm-start ratios (e.g. model output).
            demands: (D,) demand volumes.
            capacities: (E,) capacities; defaults to the topology's.
            iterations: Override the configured iteration count.

        Returns:
            (D, k) fine-tuned split ratios (clipped to the simplex box).
        """
        # One code path for both shapes: the batched fine-tuner with T=1
        # reproduces the historical per-TM loop bit for bit (the tiled
        # segment primitives accumulate in the same order), so the
        # single-TM entry point simply runs the stack of one.
        ratios = np.asarray(split_ratios)
        demands = np.asarray(demands)
        if capacities is not None:
            capacities = np.asarray(capacities)[None, :]
        return self.fine_tune_batch(
            ratios[None, ...], demands[None, :], capacities, iterations
        )[0]

    def fine_tune_batch(
        self,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
        iterations: int | None = None,
    ) -> np.ndarray:
        """Fine-tune a (T, ...) stack of allocations in one vectorized run.

        The per-demand/per-edge independence of the F/z/s/dual blocks
        (§3.4) makes each ADMM update flat vector math over segment
        reductions; adding the matrix axis only tiles those segment
        indices (see :mod:`repro.core.batching`), so T matrices cost T
        times the arithmetic but a single pass of Python — and row ``t``
        reproduces :meth:`fine_tune` on slice ``t`` exactly.

        Args:
            split_ratios: (T, D, k) warm-start ratios (e.g. batched model
                output).
            demands: (T, D) demand volumes.
            capacities: (E,) shared or (T, E) per-matrix capacities;
                defaults to the topology's.
            iterations: Override the configured iteration count.

        Returns:
            (T, D, k) fine-tuned split ratios.
        """
        s = self.structures
        ops = self.backend.ops
        dtype = self.precision.dtype
        split_ratios = ops.asarray(split_ratios, dtype=dtype)
        demands = ops.asarray(demands, dtype=dtype)
        num_matrices = demands.shape[0]
        if capacities is None:
            capacities = self.pathset.topology.capacities
        capacities = ops.asarray(
            broadcast_capacities(np.asarray(capacities), num_matrices), dtype=dtype
        )
        iters = self.iterations if iterations is None else int(iterations)
        if iters <= 0 or num_matrices == 0:
            return ops.to_numpy(_project_ratios(split_ratios))

        # The F-block's Sherman-Morrison solve always runs in the
        # accumulation dtype (float64): its 1/max(d^2 * hops, eps)
        # diagonal reaches ~1e5 for small demands, so float32 rounding of
        # the cancellation-heavy right-hand side would be amplified into
        # ~1e-4 allocation drift (measured on UsCarrier). With the solve
        # in float64 and the z/s/dual iterates stored single precision,
        # float32 tracks float64 within ~1e-6 delivered flow.
        solve = self.precision.accumulate_dtype
        mixed = dtype != solve
        w_p, one_plus_ppe = self._static_arrays(dtype)
        # Static operands move onto the backend once per call (identity
        # for numpy; cached device uploads for torch).
        w_p = ops.from_numpy(w_p)
        one_plus_ppe = ops.from_numpy(one_plus_ppe)
        hops = ops.from_numpy(s.hops)
        ws = self._workspace
        num_pairs = len(s.pair_path)
        shape_tp = (num_matrices, s.num_paths)
        shape_ti = (num_matrices, num_pairs)
        shape_te = (num_matrices, s.num_edges)
        shape_td = (num_matrices, s.num_demands)

        # Per-matrix scale normalization (rho stays scale-free per TM),
        # computed row by row with the same compacted mean as the
        # historical per-TM loop — a masked whole-row sum can differ in
        # the last ulp, which would break bit-for-bit parity.
        pos_mean = ops.asarray(
            [
                float(row[row > 0].mean()) if (row > 0).any() else 1.0
                for row in capacities
            ]
        )
        scale = ops.astype(ops.maximum(pos_mean, _EPS), dtype)[:, None]  # (T, 1)
        d_norm = demands / scale
        c_norm = capacities / scale
        rho = self.config.rho

        d_p = d_norm[:, s.path_demand]  # (T, P)
        d_p_solve = ops.astype(d_p, solve) if mixed else d_p
        w_p_solve = ops.from_numpy(self.path_values)  # float64 master
        a = ops.maximum(d_p_solve * d_p_solve * hops, _EPS)
        # Loop invariants of the F-solve, hoisted (identical values).
        inv_a = 1.0 / a
        inv_a_over_rho = inv_a / rho
        correction_denom = 1.0 + self._path_to_demand.sum(inv_a)

        # Warm start (primal), stacked.
        F = ops.clip(split_ratios, 0.0, 1.0)
        F_flat = ops.zeros(shape_tp, dtype=dtype)
        valid = self.pathset.path_mask
        F_flat[:, self.pathset.demand_path_ids[valid]] = F[:, valid]
        z = ws.buffer("z", shape_ti, dtype)
        flow_pairs = ws.buffer("flow_pairs", shape_ti, dtype)  # (F*d) gathers
        tp_buf = ws.buffer("tp", shape_tp, dtype)  # per-path scratch
        ops.multiply(F_flat, d_p, out=tp_buf)
        ops.take(tp_buf, s.pair_path, axis=1, out=z)  # z_pe = F_p * d_p
        sum_z = self._pair_to_edge.sum(z, dtype=dtype)
        s1 = ops.maximum(0.0, 1.0 - self._path_to_demand.sum(F_flat, dtype=dtype))
        s3 = ops.maximum(0.0, c_norm - sum_z)
        # Dual warm start via complementary slackness: lam1_d estimates
        # the marginal value of demand d's constraint. Saturated edges
        # carry a unit congestion price; a demand's marginal value is its
        # best path's value net of congestion prices. Demands whose every
        # path crosses saturated links get lam1 ~ 0, freeing the F-update
        # to *reduce* their over-allocation (the behaviour softmax
        # outputs need most), while uncongested demands keep the
        # stationarity pressure that preserves good warm starts.
        with ops.errstate(divide="ignore", invalid="ignore"):
            warm_util = ops.where(
                c_norm > 0,
                sum_z / ops.maximum(c_norm, _EPS),
                ops.where(sum_z > _EPS, np.inf, 0.0),
            )
        congestion_price = ops.astype(warm_util > 1.0, dtype)
        path_price = self._pair_to_path.sum(
            congestion_price[:, s.pair_edge], dtype=dtype
        )
        reduced_value = ops.maximum(0.0, w_p - path_price)
        best_reduced = self._path_to_demand.max(reduced_value)
        demand_volume = self._path_to_demand.max(d_p)
        lam1 = demand_volume * best_reduced
        lam3 = ops.zeros(shape_te, dtype=dtype)
        lam4 = ops.zeros(shape_ti, dtype=dtype)

        # Per-iteration scratch (preallocated; see core.batching). The
        # F-solve buffers live in the accumulation dtype.
        b = ws.buffer("b", shape_tp, solve)
        tp_solve = ws.buffer("tp_solve", shape_tp, solve)
        gather_p = ws.buffer("gather_p", shape_tp, dtype)
        f_solve = ws.buffer("f_solve", shape_tp, solve) if mixed else F_flat
        tp_scratch = ws.buffer("tp_scratch", shape_tp, dtype)
        beta = ws.buffer("beta", shape_ti, dtype)
        ti_buf = ws.buffer("ti", shape_ti, dtype)
        te_buf = ws.buffer("te", shape_te, dtype)
        td_buf = ws.buffer("td", shape_td, dtype)

        for _ in range(iters):
            # ---- F-update: per-demand rank-1 + diagonal system ---------
            # Segment sums come out of bincount in float64 — exactly the
            # accumulation dtype the solve wants.
            lam4_per_path = self._pair_to_path.sum(lam4)
            z_per_path = self._pair_to_path.sum(z)
            ops.take(lam1, s.path_demand, axis=1, out=gather_p)  # lam1 gather
            ops.take(s1, s.path_demand, axis=1, out=tp_scratch)  # s1 gather
            admm_f_rhs_into(
                d_p_solve, w_p_solve, gather_p, lam4_per_path, tp_scratch,
                z_per_path, rho, b, tp_solve,
            )
            ops.multiply(b, inv_a, out=tp_solve)
            correction = self._path_to_demand.sum(tp_solve)
            correction /= correction_denom
            ops.take(correction, s.path_demand, axis=1, out=tp_solve)
            admm_f_solve_into(b, inv_a_over_rho, tp_solve, f_solve)
            if mixed:
                ops.copyto(F_flat, f_solve)  # store single precision

            # ---- z-update: per-edge rank-1 + identity system ------------
            ops.subtract(c_norm, s3, out=te_buf)
            ops.take(te_buf, s.pair_edge, axis=1, out=ti_buf)  # (c - s3) gather
            ops.multiply(F_flat, d_p, out=tp_buf)
            ops.take(tp_buf, s.pair_path, axis=1, out=flow_pairs)  # F*d gather
            ops.take(lam3, s.pair_edge, axis=1, out=beta)  # lam3 gather
            admm_z_rhs_into(beta, lam4, ti_buf, flow_pairs, rho, beta)
            sum_beta = self._pair_to_edge.sum(beta, dtype=dtype)
            sum_beta /= one_plus_ppe
            ops.take(sum_beta, s.pair_edge, axis=1, out=ti_buf)
            admm_z_solve_into(beta, ti_buf, rho, z)

            # ---- s-updates (non-negative slacks) -------------------------
            sum_F = self._path_to_demand.sum(F_flat, dtype=dtype)
            sum_z = self._pair_to_edge.sum(z, dtype=dtype)
            admm_slack_into(1.0, sum_F, lam1, rho, s1, td_buf)
            admm_slack_into(c_norm, sum_z, lam3, rho, s3, te_buf)

            # ---- dual updates -------------------------------------------
            admm_dual_step_(lam1, sum_F, s1, 1.0, rho, td_buf)
            admm_dual_step_(lam3, sum_z, s3, c_norm, rho, te_buf)
            ops.multiply(F_flat, d_p, out=tp_buf)
            ops.take(tp_buf, s.pair_path, axis=1, out=flow_pairs)
            ops.subtract(flow_pairs, z, out=flow_pairs)
            flow_pairs *= rho
            lam4 += flow_pairs

        ratios = ops.zeros_like(F)
        ratios[:, valid] = F_flat[:, self.pathset.demand_path_ids[valid]]
        return ops.to_numpy(_project_ratios(ratios))

    def constraint_violation(
        self,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> float:
        """Total capacity overshoot of an allocation (diagnostic)."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        flows = self.pathset.split_ratios_to_path_flows(
            np.clip(split_ratios, 0.0, 1.0),
            np.asarray(demands, EVALUATION_DTYPE),
        )
        loads = self.pathset.edge_loads(flows)
        return float(np.maximum(loads - capacities, 0.0).sum())
