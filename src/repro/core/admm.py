"""ADMM fine-tuning of neural allocations (§3.4, Appendix C).

The paper augments Teal's networks with 2-5 iterations of the
alternating direction method of multipliers to repair capacity
violations. Following Appendix C, the path-formulation LP is rewritten
with auxiliary variables ``z_pe`` (one per path-edge incidence) and
slacks ``s1_d`` (demand constraints), ``s3_e`` (capacity constraints):

    min  -sum_p value_p * d_p * F_p
    s.t. G1_d:  sum_{p in P_d} F_p + s1_d - 1      = 0
         G3_e:  sum_{p ∋ e} z_pe + s3_e - c_e      = 0
         G4_pe: F_p * d_p - z_pe                   = 0
         F, s1, s3 >= 0

Each ADMM iteration minimizes the augmented Lagrangian blockwise. Both
the F-block (per demand, ≤k variables) and the z-block (per edge)
reduce to rank-1-plus-diagonal linear systems solved in closed form via
Sherman-Morrison — every demand/edge independently, which is the
parallelism §3.4 highlights; here it appears as flat numpy vector math
over all demands/edges at once. The F >= 0 bound is enforced by
projection after each F-step (standard practice for box constraints in
ADMM fine-tuners).

Warm-starting from the network output is essential: §3.4 notes randomly
initialized ADMM would need far more iterations (benchmarked in
``benchmarks/bench_fig14_ablations.py``).

Primal *and dual* warm starts are used: ``lam1`` is initialized so that a
feasible allocation is a fixed point of the first F-update (otherwise the
first iteration performs unconstrained flow maximization and destroys the
warm start). Later iterations may transiently trade small capacity
violations for higher flow while the capacity duals ``lam3`` build up —
the deployed pipeline (:class:`repro.core.teal.TealScheme`) guards this
with an objective acceptance check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdmmConfig
from ..exceptions import ModelError
from ..paths.pathset import PathSet
from ..topology.graph import broadcast_capacities
from .batching import SegmentOps

_EPS = 1e-9


def _project_ratios(ratios: np.ndarray) -> np.ndarray:
    """Project split ratios onto the simplex box: clip to [0, 1], then
    renormalize any row whose sum exceeds 1.

    Shared by every ADMM exit path (iterating or not, batched or not) so
    the zero-iteration short-circuit returns allocations with the same
    row-sum guarantee as the full solver. Operates on the trailing (k,)
    axis, so (D, k) and (T, D, k) inputs both work.
    """
    ratios = np.clip(ratios, 0.0, 1.0)
    sums = ratios.sum(axis=-1, keepdims=True)
    return np.where(sums > 1.0, ratios / np.maximum(sums, _EPS), ratios)


@dataclass
class _AdmmStructures:
    """Static index structures shared by every ADMM run on a pathset."""

    pair_path: np.ndarray  # (I,) path id of each (path, edge) incidence
    pair_edge: np.ndarray  # (I,) edge id of each incidence
    hops: np.ndarray  # (P,) edges per path (n_p)
    paths_per_edge: np.ndarray  # (E,) paths per edge (m_e)
    num_paths: int
    num_edges: int
    num_demands: int
    path_demand: np.ndarray  # (P,)


def _build_structures(pathset: PathSet) -> _AdmmStructures:
    coo = pathset.edge_path_incidence.tocoo()
    return _AdmmStructures(
        pair_path=coo.col.astype(np.int64),
        pair_edge=coo.row.astype(np.int64),
        hops=pathset.path_hop_counts.astype(float),
        paths_per_edge=np.asarray(
            pathset.edge_path_incidence.sum(axis=1)
        ).reshape(-1),
        num_paths=pathset.num_paths,
        num_edges=pathset.topology.num_edges,
        num_demands=pathset.num_demands,
        path_demand=pathset.path_demand,
    )


class AdmmFineTuner:
    """Runs warm-started ADMM iterations on an allocation (§3.4).

    Args:
        pathset: The path set (fixes the constraint structure).
        config: Iteration count and penalty coefficient; the default picks
            the paper's 2 (<100 nodes) or 5 iterations automatically.
        path_values: Optional per-path per-unit-flow objective weights
            (1 for total flow; the delay-penalized weights otherwise).
    """

    def __init__(
        self,
        pathset: PathSet,
        config: AdmmConfig | None = None,
        path_values: np.ndarray | None = None,
    ) -> None:
        self.pathset = pathset
        self.config = config if config is not None else AdmmConfig()
        self.structures = _build_structures(pathset)
        if path_values is None:
            path_values = np.ones(pathset.num_paths)
        path_values = np.asarray(path_values, dtype=float)
        if path_values.shape != (pathset.num_paths,):
            raise ModelError("path_values shape mismatch")
        self.path_values = path_values
        self.iterations = self.config.resolve_iterations(
            pathset.topology.num_nodes
        )
        # Tiled-index segment ops: the batched fine-tuner runs the same
        # flat bincount/scatter primitives as the per-TM path over a
        # (T, ...) stack (see core.batching), so both agree bit for bit.
        s = self.structures
        self._pair_to_path = SegmentOps(s.pair_path, s.num_paths)
        self._pair_to_edge = SegmentOps(s.pair_edge, s.num_edges)
        self._path_to_demand = SegmentOps(s.path_demand, s.num_demands)

    def fine_tune(
        self,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
        iterations: int | None = None,
    ) -> np.ndarray:
        """Fine-tune split ratios toward feasibility and higher objective.

        Args:
            split_ratios: (D, k) warm-start ratios (e.g. model output).
            demands: (D,) demand volumes.
            capacities: (E,) capacities; defaults to the topology's.
            iterations: Override the configured iteration count.

        Returns:
            (D, k) fine-tuned split ratios (clipped to the simplex box).
        """
        s = self.structures
        demands = np.asarray(demands, dtype=float)
        if capacities is None:
            capacities = self.pathset.topology.capacities
        capacities = np.asarray(capacities, dtype=float)
        iters = self.iterations if iterations is None else int(iterations)
        if iters <= 0:
            return _project_ratios(np.asarray(split_ratios, dtype=float))

        # Normalize volumes so rho is scale-free.
        scale = max(float(capacities[capacities > 0].mean()) if (capacities > 0).any() else 1.0, _EPS)
        d_norm = demands / scale
        c_norm = capacities / scale
        rho = self.config.rho

        d_p = d_norm[s.path_demand]  # (P,) demand volume per path
        w_p = self.path_values
        a = np.maximum(d_p * d_p * s.hops, _EPS)  # (P,) diagonal of F-system

        # Warm start (Appendix C: iterates warm-started by the policy).
        F = np.clip(np.asarray(split_ratios, dtype=float), 0.0, 1.0)
        F_flat = np.zeros(s.num_paths)
        valid = self.pathset.path_mask
        F_flat[self.pathset.demand_path_ids[valid]] = F[valid]
        z = (F_flat * d_p)[s.pair_path]  # z_pe = F_p * d_p
        sum_z = np.bincount(s.pair_edge, weights=z, minlength=s.num_edges)
        s1 = np.maximum(
            0.0,
            1.0 - np.bincount(s.path_demand, weights=F_flat, minlength=s.num_demands),
        )
        s3 = np.maximum(0.0, c_norm - sum_z)
        # Dual warm start via complementary slackness: lam1_d estimates the
        # marginal value of demand d's constraint. Saturated edges carry a
        # unit congestion price; a demand's marginal value is its best
        # path's value net of congestion prices. Demands whose every path
        # crosses saturated links get lam1 ~ 0, freeing the F-update to
        # *reduce* their over-allocation (the behaviour softmax outputs
        # need most), while uncongested demands keep the stationarity
        # pressure that preserves good warm starts.
        with np.errstate(divide="ignore", invalid="ignore"):
            warm_util = np.where(
                c_norm > 0,
                sum_z / np.maximum(c_norm, _EPS),
                np.where(sum_z > _EPS, np.inf, 0.0),
            )
        congestion_price = (warm_util > 1.0).astype(float)
        path_price = np.bincount(
            s.pair_path, weights=congestion_price[s.pair_edge], minlength=s.num_paths
        )
        reduced_value = np.maximum(0.0, self.path_values - path_price)
        best_reduced = np.zeros(s.num_demands)
        np.maximum.at(best_reduced, s.path_demand, reduced_value)
        demand_volume = np.zeros(s.num_demands)
        np.maximum.at(demand_volume, s.path_demand, d_p)
        lam1 = demand_volume * best_reduced
        lam3 = np.zeros(s.num_edges)
        lam4 = np.zeros(len(s.pair_path))

        for _ in range(iters):
            # ---- F-update: per-demand rank-1 + diagonal system ---------
            lam4_per_path = np.bincount(
                s.pair_path, weights=lam4, minlength=s.num_paths
            )
            z_per_path = np.bincount(s.pair_path, weights=z, minlength=s.num_paths)
            b = (
                d_p * w_p
                - lam1[s.path_demand]
                - d_p * lam4_per_path
                + rho * (1.0 - s1[s.path_demand])
                + rho * d_p * z_per_path
            )
            inv_a = 1.0 / a
            sum_b_over_a = np.bincount(
                s.path_demand, weights=b * inv_a, minlength=s.num_demands
            )
            sum_inv_a = np.bincount(
                s.path_demand, weights=inv_a, minlength=s.num_demands
            )
            correction = sum_b_over_a / (1.0 + sum_inv_a)
            F_flat = (inv_a / rho) * (b - correction[s.path_demand])
            F_flat = np.clip(F_flat, 0.0, 1.0)

            # ---- z-update: per-edge rank-1 + identity system ------------
            beta = (
                -lam3[s.pair_edge]
                + lam4
                + rho * (c_norm - s3)[s.pair_edge]
                + rho * (F_flat * d_p)[s.pair_path]
            )
            sum_beta = np.bincount(
                s.pair_edge, weights=beta, minlength=s.num_edges
            )
            z = (beta - (sum_beta / (1.0 + s.paths_per_edge))[s.pair_edge]) / rho

            # ---- s-updates (non-negative slacks) -------------------------
            sum_F = np.bincount(
                s.path_demand, weights=F_flat, minlength=s.num_demands
            )
            sum_z = np.bincount(s.pair_edge, weights=z, minlength=s.num_edges)
            s1 = np.maximum(0.0, (1.0 - sum_F) - lam1 / rho)
            s3 = np.maximum(0.0, (c_norm - sum_z) - lam3 / rho)

            # ---- dual updates -------------------------------------------
            lam1 += rho * (sum_F + s1 - 1.0)
            lam3 += rho * (sum_z + s3 - c_norm)
            lam4 += rho * ((F_flat * d_p)[s.pair_path] - z)

        ratios = np.zeros_like(F)
        ratios[valid] = F_flat[self.pathset.demand_path_ids[valid]]
        return _project_ratios(ratios)

    def fine_tune_batch(
        self,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
        iterations: int | None = None,
    ) -> np.ndarray:
        """Fine-tune a (T, ...) stack of allocations in one vectorized run.

        The per-demand/per-edge independence of the F/z/s/dual blocks
        (§3.4) makes each ADMM update flat vector math over segment
        reductions; adding the matrix axis only tiles those segment
        indices (see :mod:`repro.core.batching`), so T matrices cost T
        times the arithmetic but a single pass of Python — and row ``t``
        reproduces :meth:`fine_tune` on slice ``t`` exactly.

        Args:
            split_ratios: (T, D, k) warm-start ratios (e.g. batched model
                output).
            demands: (T, D) demand volumes.
            capacities: (E,) shared or (T, E) per-matrix capacities;
                defaults to the topology's.
            iterations: Override the configured iteration count.

        Returns:
            (T, D, k) fine-tuned split ratios.
        """
        s = self.structures
        split_ratios = np.asarray(split_ratios, dtype=float)
        demands = np.asarray(demands, dtype=float)
        num_matrices = demands.shape[0]
        if capacities is None:
            capacities = self.pathset.topology.capacities
        capacities = broadcast_capacities(capacities, num_matrices)
        iters = self.iterations if iterations is None else int(iterations)
        if iters <= 0 or num_matrices == 0:
            return _project_ratios(split_ratios)

        # Per-matrix scale normalization (rho stays scale-free per TM),
        # computed row by row with the same compacted mean as fine_tune —
        # a masked whole-row sum can differ in the last ulp, which would
        # break the bit-for-bit parity with the per-TM loop.
        pos_mean = np.array(
            [
                float(row[row > 0].mean()) if (row > 0).any() else 1.0
                for row in capacities
            ]
        )
        scale = np.maximum(pos_mean, _EPS)[:, None]  # (T, 1)
        d_norm = demands / scale
        c_norm = capacities / scale
        rho = self.config.rho

        d_p = d_norm[:, s.path_demand]  # (T, P)
        w_p = self.path_values  # (P,) shared across the stack
        a = np.maximum(d_p * d_p * s.hops, _EPS)

        # Warm start (primal), stacked.
        F = np.clip(split_ratios, 0.0, 1.0)
        F_flat = np.zeros((num_matrices, s.num_paths))
        valid = self.pathset.path_mask
        F_flat[:, self.pathset.demand_path_ids[valid]] = F[:, valid]
        z = (F_flat * d_p)[:, s.pair_path]  # (T, I)
        sum_z = self._pair_to_edge.sum(z)
        s1 = np.maximum(0.0, 1.0 - self._path_to_demand.sum(F_flat))
        s3 = np.maximum(0.0, c_norm - sum_z)
        # Dual warm start via complementary slackness (see fine_tune).
        with np.errstate(divide="ignore", invalid="ignore"):
            warm_util = np.where(
                c_norm > 0,
                sum_z / np.maximum(c_norm, _EPS),
                np.where(sum_z > _EPS, np.inf, 0.0),
            )
        congestion_price = (warm_util > 1.0).astype(float)
        path_price = self._pair_to_path.sum(congestion_price[:, s.pair_edge])
        reduced_value = np.maximum(0.0, w_p - path_price)
        best_reduced = self._path_to_demand.max(reduced_value)
        demand_volume = self._path_to_demand.max(d_p)
        lam1 = demand_volume * best_reduced
        lam3 = np.zeros((num_matrices, s.num_edges))
        lam4 = np.zeros((num_matrices, len(s.pair_path)))

        for _ in range(iters):
            # ---- F-update: per-demand rank-1 + diagonal system ---------
            lam4_per_path = self._pair_to_path.sum(lam4)
            z_per_path = self._pair_to_path.sum(z)
            b = (
                d_p * w_p
                - lam1[:, s.path_demand]
                - d_p * lam4_per_path
                + rho * (1.0 - s1[:, s.path_demand])
                + rho * d_p * z_per_path
            )
            inv_a = 1.0 / a
            sum_b_over_a = self._path_to_demand.sum(b * inv_a)
            sum_inv_a = self._path_to_demand.sum(inv_a)
            correction = sum_b_over_a / (1.0 + sum_inv_a)
            F_flat = (inv_a / rho) * (b - correction[:, s.path_demand])
            F_flat = np.clip(F_flat, 0.0, 1.0)

            # ---- z-update: per-edge rank-1 + identity system ------------
            beta = (
                -lam3[:, s.pair_edge]
                + lam4
                + rho * (c_norm - s3)[:, s.pair_edge]
                + rho * (F_flat * d_p)[:, s.pair_path]
            )
            sum_beta = self._pair_to_edge.sum(beta)
            z = (
                beta - (sum_beta / (1.0 + s.paths_per_edge))[:, s.pair_edge]
            ) / rho

            # ---- s-updates (non-negative slacks) -------------------------
            sum_F = self._path_to_demand.sum(F_flat)
            sum_z = self._pair_to_edge.sum(z)
            s1 = np.maximum(0.0, (1.0 - sum_F) - lam1 / rho)
            s3 = np.maximum(0.0, (c_norm - sum_z) - lam3 / rho)

            # ---- dual updates -------------------------------------------
            lam1 += rho * (sum_F + s1 - 1.0)
            lam3 += rho * (sum_z + s3 - c_norm)
            lam4 += rho * ((F_flat * d_p)[:, s.pair_path] - z)

        ratios = np.zeros_like(F)
        ratios[:, valid] = F_flat[:, self.pathset.demand_path_ids[valid]]
        return _project_ratios(ratios)

    def constraint_violation(
        self,
        split_ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> float:
        """Total capacity overshoot of an allocation (diagnostic)."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        flows = self.pathset.split_ratios_to_path_flows(
            np.clip(split_ratios, 0.0, 1.0), np.asarray(demands, float)
        )
        loads = self.pathset.edge_loads(flows)
        return float(np.maximum(loads - capacities, 0.0).sum())
