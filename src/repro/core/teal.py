"""Teal: the end-to-end learning-accelerated TE scheme (§3, §4).

Deployment pipeline (Figure 3): traffic demands + link capacities →
FlowGNN flow embeddings → shared policy network → split ratios → 2-5
ADMM iterations → final allocation. One fixed-size forward pass plus a
fixed number of ADMM iterations, which is why Teal's computation time is
flat across traffic matrices (Figure 7a).

Training recipe (this reproduction): optional direct-loss warm start
(fast convergence on the surrogate) followed by COMA* fine-tuning on the
true objective — mirroring the paper's offline training stage, scaled to
CPU budgets (DESIGN.md §2).
"""

from __future__ import annotations

import time

import numpy as np

from ..config import AdmmConfig, TealHyperparameters, TrainingConfig
from ..lp.objectives import (
    MinMaxLinkUtilizationObjective,
    Objective,
    TotalFlowObjective,
)
from ..nn.precision import (
    EVALUATION_DTYPE,
    FLOAT64,
    Precision,
    resolve_precision,
)
from ..baselines.base import TEScheme
from ..paths.pathset import PathSet
from ..simulation.evaluator import Allocation
from ..traffic.matrix import TrafficMatrix
from .admm import AdmmFineTuner
from .backend import Backend, resolve_backend
from .coma import ComaTrainer, TrainingHistory
from .direct_loss import DirectLossTrainer
from .model import TealModel


class TealScheme(TEScheme):
    """Teal as a drop-in TE scheme (same interface as the baselines).

    Args:
        pathset: Path set the model is built around (fixed per topology).
        objective: TE objective; the reward for RL and the ADMM linear term.
        hyper: Architecture hyperparameters (defaults: §4).
        admm: ADMM configuration; per §5.5 ADMM is skipped for the MLU
            objective unless explicitly enabled.
        num_policy_layers: Policy hidden layers (Figure 15c).
        seed: Weight-init seed.
        use_admm: Force-enable/disable ADMM fine-tuning.
        precision: Inference precision policy (default float64; the
            harness and sweeps pass float32 — see
            :mod:`repro.nn.precision`). Training always runs float64;
            the model is cast to the inference precision lazily at the
            first ``allocate`` call, and the ADMM acceptance check
            scores both candidates through the float64 evaluator
            whatever the storage dtype.
        backend: Array backend running the fused forward and the ADMM
            loop (default: the ``REPRO_BACKEND`` environment variable,
            then numpy — see :mod:`repro.core.backend`). Scheme inputs
            and outputs stay numpy whatever the backend.
    """

    name = "Teal"

    def __init__(
        self,
        pathset: PathSet,
        objective: Objective | None = None,
        hyper: TealHyperparameters | None = None,
        admm: AdmmConfig | None = None,
        num_policy_layers: int = 1,
        seed: int = 0,
        use_admm: bool | None = None,
        precision: Precision | str | None = None,
        backend: Backend | str | None = None,
    ) -> None:
        super().__init__(objective)
        self.pathset = pathset
        self.precision = resolve_precision(precision)
        self.backend = resolve_backend(backend)
        self.model = TealModel(
            pathset, hyper=hyper, num_policy_layers=num_policy_layers,
            seed=seed, backend=self.backend,
        )
        if use_admm is None:
            # §5.5: "we opt to omit ADMM in these [MLU / delay] experiments"
            # — the paper keeps ADMM only for the default total-flow runs.
            use_admm = isinstance(self.objective, TotalFlowObjective)
        self.use_admm = use_admm
        path_values = None
        if not isinstance(self.objective, MinMaxLinkUtilizationObjective):
            path_values = self.objective.path_values(pathset)
        self.admm = AdmmFineTuner(
            pathset, config=admm, path_values=path_values,
            precision=self.precision, backend=self.backend,
        )
        self.trained = False

    def _ensure_precision(self) -> None:
        """Cast the model to the inference precision (lazy, idempotent).

        Deferred to the first inference call so that training — and the
        harness' on-disk checkpointing, which stores full-precision
        weights — always sees the float64 model.
        """
        if self.model.dtype != self.precision.dtype:
            self.model.astype(self.precision.dtype)

    # ------------------------------------------------------------------
    # Training (offline stage)
    # ------------------------------------------------------------------
    def train(
        self,
        matrices: list[TrafficMatrix],
        capacities: np.ndarray | None = None,
        config: TrainingConfig | None = None,
    ) -> dict[str, TrainingHistory]:
        """Train the model: direct-loss warm start, then COMA* (§3.3).

        Args:
            matrices: Training traffic matrices.
            capacities: Link capacities during training.
            config: Budget/seed configuration.

        Returns:
            Histories keyed by phase (``"warm_start"``, ``"coma"``).
        """
        config = config if config is not None else TrainingConfig()
        # Training stays float64 whatever the inference precision: the
        # 6-layer gradient chain and Adam's moment accumulation are where
        # single precision actually loses accuracy (repro.nn.precision).
        self.model.astype(FLOAT64.dtype)
        histories: dict[str, TrainingHistory] = {}
        warm_steps = config.warm_start_steps
        if warm_steps > 0:
            # Flow objectives warm-start on the Appendix A surrogate;
            # min-MLU uses the p-norm smoothing (see core.direct_loss).
            warm = DirectLossTrainer(self.model, self.objective, config)
            histories["warm_start"] = warm.train(
                matrices, capacities, steps=warm_steps
            )
        if config.steps > 0:
            coma = ComaTrainer(self.model, self.objective, config)
            histories["coma"] = coma.train(matrices, capacities)
        self.trained = True
        return histories

    # ------------------------------------------------------------------
    # Inference (online stage)
    # ------------------------------------------------------------------
    def allocate(
        self,
        pathset: PathSet,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> Allocation:
        """One TE control step: forward pass + ADMM fine-tuning, timed.

        ``pathset`` must be the one the model was built on (Teal retrains
        for permanent topology changes, §4; transient failures enter via
        ``capacities``).
        """
        self.model.check_compatible(pathset)
        self._ensure_precision()
        demands = np.asarray(demands, dtype=EVALUATION_DTYPE)
        capacities = self._capacities(pathset, capacities)

        start = time.perf_counter()
        ratios = self.model.split_ratios(demands, capacities)
        forward_time = time.perf_counter() - start
        return self._finalize_allocation(pathset, ratios, demands, capacities, forward_time)

    def _finalize_allocation(
        self,
        pathset: PathSet,
        ratios: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray,
        forward_time: float,
    ) -> Allocation:
        """ADMM fine-tuning + bookkeeping of the per-TM deployment path."""
        admm_time = 0.0
        if self.use_admm:
            admm_start = time.perf_counter()
            tuned = self.admm.fine_tune(ratios, demands, capacities)
            # Acceptance check: ADMM is a fine-tuner, so the pipeline keeps
            # whichever allocation scores higher on the objective (two
            # sparse mat-vecs; preserves the paper's "ADMM strictly
            # improves the deployed solution" property at low iteration
            # counts, where raw ADMM iterates can transiently regress).
            if self.objective.reward(
                pathset, tuned, demands, capacities
            ) >= self.objective.reward(pathset, ratios, demands, capacities):
                ratios = tuned
            admm_time = time.perf_counter() - admm_start

        extras = {
            "forward_time": forward_time,
            "admm_time": admm_time,
            "admm_iterations": self.admm.iterations if self.use_admm else 0,
            "trained": self.trained,
        }
        return Allocation(
            split_ratios=ratios,
            compute_time=forward_time + admm_time,
            scheme=self.name,
            extras=extras,
        )

    def allocate_batch(
        self,
        pathset: PathSet,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> list[Allocation]:
        """Allocate for a stack of traffic matrices in one batched forward.

        The FlowGNN + policy forward runs once over the whole (T, D)
        stack — the vectorized analogue of the paper's GPU batching — and
        its wall-clock cost is amortized equally across the matrices.
        Because the batched forward is math-bound (it costs roughly T
        single passes), the amortized figure tracks the per-TM inference
        latency of :meth:`allocate`, modestly lower by the amortized
        Python overhead — so downstream staleness and Fig 6a/7a-style
        comparisons keep per-TM semantics. ADMM fine-tuning (when
        enabled) is batched too: one ``fine_tune_batch`` run repairs the
        whole stack and one ``reward_batch`` pass applies the per-matrix
        acceptance check, so fine-tuning is no longer a per-matrix tail.

        Args:
            pathset: Must match the model's pathset (as in :meth:`allocate`).
            demands: (T, D) demand volumes.
            capacities: (E,) shared, (T, E) per-matrix, or None.

        Returns:
            One :class:`Allocation` per matrix, equal to the looped
            :meth:`allocate` outputs to machine precision.
        """
        self.model.check_compatible(pathset)
        self._ensure_precision()
        demands = np.asarray(demands, dtype=EVALUATION_DTYPE)
        num_matrices = demands.shape[0]
        caps = self._capacities_batch(pathset, num_matrices, capacities)
        if num_matrices == 0:
            return []

        start = time.perf_counter()
        ratios_batch = self.model.split_ratios_batch(demands, caps)
        forward_time = (time.perf_counter() - start) / num_matrices

        admm_time = 0.0
        if self.use_admm:
            admm_start = time.perf_counter()
            tuned = self.admm.fine_tune_batch(ratios_batch, demands, caps)
            # Per-matrix acceptance check (see _finalize_allocation), as
            # two batched scoring passes over the stack.
            tuned_rewards = self.objective.reward_batch(
                pathset, tuned, demands, caps
            )
            raw_rewards = self.objective.reward_batch(
                pathset, ratios_batch, demands, caps
            )
            accept = tuned_rewards >= raw_rewards
            ratios_batch = np.where(accept[:, None, None], tuned, ratios_batch)
            admm_time = (time.perf_counter() - admm_start) / num_matrices

        extras = {
            "forward_time": forward_time,
            "admm_time": admm_time,
            "admm_iterations": self.admm.iterations if self.use_admm else 0,
            "trained": self.trained,
            "batched": True,
            "batch_size": num_matrices,
        }
        return [
            Allocation(
                split_ratios=ratios_batch[t],
                compute_time=forward_time + admm_time,
                scheme=self.name,
                extras=dict(extras),
            )
            for t in range(num_matrices)
        ]

    def retrain_for(
        self,
        new_pathset: PathSet,
        matrices: list[TrafficMatrix],
        config: TrainingConfig | None = None,
        seed: int = 0,
    ) -> "TealScheme":
        """Retrain for a permanently changed topology, warm-started (§4).

        The paper retrains in 6-10 hours (vs ~a week from scratch) when a
        node or link is added permanently. Because no Teal weight's shape
        depends on the topology size, the old model warm-starts the new
        one directly; only fine-tuning on the new topology remains.

        Args:
            new_pathset: Path set of the updated topology.
            matrices: Training matrices sized for the new topology.
            config: Fine-tuning budget (typically much smaller than the
                from-scratch budget).
            seed: Seed for the new scheme's construction.

        Returns:
            A new trained :class:`TealScheme` bound to ``new_pathset``.
        """
        from .checkpoint import transfer_weights

        new_scheme = TealScheme(
            new_pathset,
            objective=self.objective,
            hyper=self.model.hyper,
            admm=self.admm.config,
            seed=seed,
            use_admm=self.use_admm,
            precision=self.precision,
            backend=self.backend,
        )
        # Warm-start from full-precision weights (the donor may have been
        # cast for inference; retraining always begins in float64).
        self.model.astype(FLOAT64.dtype)
        transfer_weights(self.model, new_scheme.model)
        if config is None:
            config = TrainingConfig(steps=20, warm_start_steps=60, log_every=20)
        new_scheme.train(matrices, config=config)
        return new_scheme

    def allocate_without_admm(
        self,
        pathset: PathSet,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
    ) -> Allocation:
        """Raw model output ("Teal w/o ADMM" in Figure 14)."""
        self.model.check_compatible(pathset)
        self._ensure_precision()
        demands = np.asarray(demands, dtype=EVALUATION_DTYPE)
        capacities = self._capacities(pathset, capacities)
        start = time.perf_counter()
        ratios = self.model.split_ratios(demands, capacities)
        elapsed = time.perf_counter() - start
        return Allocation(
            split_ratios=ratios,
            compute_time=elapsed,
            scheme="Teal w/o ADMM",
            extras={"trained": self.trained},
        )
