"""TealModel: FlowGNN + shared policy network, trained end to end (§3.3).

The model maps (demands, capacities) to per-demand split ratios in a
single forward pass — the fixed-flop inference that gives Teal its flat
computation time (Figure 7a).
"""

from __future__ import annotations

import numpy as np

from ..config import TealHyperparameters
from ..exceptions import ModelError
from ..nn.layers import Linear, Module, ReLU, Tanh
from ..nn.precision import EVALUATION_DTYPE
from ..nn.tensor import Tensor
from ..paths.pathset import PathSet
from ..topology.graph import broadcast_capacities
from .backend import NUMPY_OPS, Backend, array_ops
from .batching import linear_into, masked_softmax_into, relu_, tanh_
from .flowgnn import FlowGNN
from .policy import PolicyNetwork


def grid_scatter_index(pathset: PathSet) -> np.ndarray:
    """(P,) flat position of each path inside the (D, k) ratio grid.

    Shared by the models and the direct-loss trainer to move values
    between per-path and per-demand-grid layouts.
    """
    flat_ids = pathset.demand_path_ids.reshape(-1)
    positions = np.flatnonzero(flat_ids >= 0)
    scatter = np.empty(pathset.num_paths, dtype=int)
    scatter[flat_ids[positions]] = positions
    return scatter


class AllocatorModel(Module):
    """Protocol base for models that output per-demand action logits.

    Subclasses (TealModel and the Figure 14 ablation variants) provide
    ``logits``; the base supplies the shared deployment conveniences so
    trainers treat all variants uniformly.
    """

    pathset: PathSet
    hyper: TealHyperparameters
    policy: "PolicyNetwork"

    def logits(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        raise NotImplementedError

    @property
    def scatter_index(self) -> np.ndarray:
        """(P,) flat grid position of each path (cached)."""
        cached = getattr(self, "_scatter_index", None)
        if cached is None:
            cached = grid_scatter_index(self.pathset)
            self._scatter_index = cached
        return cached

    def forward(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Deterministic split ratios (D, k) — the deployment path."""
        logits = self.logits(demands, capacities)
        return self.policy.split_ratios(logits, self.pathset.path_mask)

    def split_ratios(
        self, demands: np.ndarray, capacities: np.ndarray | None = None
    ) -> np.ndarray:
        """Numpy split ratios for deployment (no gradient bookkeeping)."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        return self.forward(demands, capacities).numpy()

    # ------------------------------------------------------------------
    # Batched inference (multi-matrix engine)
    # ------------------------------------------------------------------
    def logits_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> Tensor:
        """(B, D, k) action logits for a stack of traffic matrices.

        The base implementation loops :meth:`logits` per matrix so every
        allocator variant supports the batched API; architectures with a
        genuinely batched forward (TealModel) override it. The per-matrix
        logits are stacked on the tape (differentiable), so batched
        training works uniformly across variants.
        """
        from ..nn import functional as F

        demands = np.asarray(demands, dtype=EVALUATION_DTYPE)
        capacities = broadcast_capacities(capacities, demands.shape[0])
        num_demands = self.pathset.num_demands
        max_paths = self.pathset.max_paths
        if demands.shape[0] == 0:
            return Tensor(NUMPY_OPS.zeros((0, num_demands, max_paths)))
        return F.concat(
            [
                self.logits(demands[i], capacities[i]).reshape(
                    1, num_demands, max_paths
                )
                for i in range(demands.shape[0])
            ],
            axis=0,
        )

    def forward_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> Tensor:
        """Deterministic split ratios (B, D, k) for a stack of matrices."""
        logits = self.logits_batch(demands, capacities)
        return self.policy.split_ratios(logits, self.pathset.path_mask)

    def split_ratios_batch(
        self, demands: np.ndarray, capacities: np.ndarray | None = None
    ) -> np.ndarray:
        """Numpy (B, D, k) split ratios for a stack of traffic matrices."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        return self.forward_batch(demands, capacities).numpy()

    def check_compatible(self, pathset: PathSet) -> None:
        """Ensure a pathset matches the one the model was built around.

        Raises:
            ModelError: If shapes differ (retraining is required — §4).
        """
        if (
            pathset.num_demands != self.pathset.num_demands
            or pathset.num_paths != self.pathset.num_paths
            or pathset.max_paths != self.pathset.max_paths
        ):
            raise ModelError(
                "pathset incompatible with the trained model; Teal requires "
                "retraining when the topology permanently changes (§4)"
            )


class TealModel(AllocatorModel):
    """The end-to-end Teal model for one topology (§4 trains one per WAN).

    Args:
        pathset: Path set fixing the model's bipartite structure.
        hyper: Architecture hyperparameters (defaults match §4).
        num_policy_layers: Hidden layers in the policy net (Figure 15c).
        seed: Weight-init seed.
        backend: Array backend of the fused inference path (default
            numpy; see :mod:`repro.core.backend`).
    """

    def __init__(
        self,
        pathset: PathSet,
        hyper: TealHyperparameters | None = None,
        num_policy_layers: int = 1,
        seed: int = 0,
        backend: Backend | str | None = None,
    ) -> None:
        self.pathset = pathset
        self.hyper = hyper if hyper is not None else TealHyperparameters()
        self.flow_gnn = FlowGNN(
            pathset, num_layers=self.hyper.num_gnn_layers, seed=seed,
            backend=backend,
        )
        input_dim = pathset.max_paths * self.flow_gnn.embedding_dim
        self.policy = PolicyNetwork(
            input_dim=input_dim,
            num_paths=pathset.max_paths,
            hidden=self.hyper.policy_hidden,
            num_hidden_layers=num_policy_layers,
            action_log_std=self.hyper.action_log_std,
            seed=seed + 1,
        )

    def logits(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Per-demand action logits (D, k)."""
        embeddings = self.flow_gnn(demands, capacities)
        features = self.flow_gnn.grouped_embeddings(embeddings)
        return self.policy(features)

    def logits_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> Tensor:
        """(B, D, k) logits via one batched FlowGNN + policy forward."""
        embeddings = self.flow_gnn.forward_batch(demands, capacities)
        features = self.flow_gnn.grouped_embeddings(embeddings)
        return self.policy(features)

    # ------------------------------------------------------------------
    # Fused inference (no tape, preallocated buffers)
    # ------------------------------------------------------------------
    def astype(self, dtype) -> "TealModel":
        """Cast the whole model (FlowGNN aggregation state included).

        Precision round trips are lossless: casting away from float64
        stashes the exact float64 parameters, and casting back restores
        them (an f32 round trip would otherwise perturb weights by
        ~1e-8, breaking "training always sees the float64 model").
        ``transfer_weights`` and ``load_model`` invalidate or bypass the
        stash, so out-of-band weight updates never resurrect old values.
        """
        dtype = np.dtype(dtype)
        if dtype == self.dtype:
            # Still route through FlowGNN so a model whose parameter
            # dtypes changed out-of-band gets repaired.
            self.flow_gnn.astype(dtype)
            self.policy.astype(dtype)
            return self
        master = getattr(self, "_master64", None)
        if self.dtype == np.float64 and dtype != np.float64:
            self._master64 = [p.data.copy() for p in self.parameters()]
        self.flow_gnn.astype(dtype)
        self.policy.astype(dtype)
        if dtype == np.float64 and master is not None:
            for p, arr in zip(self.parameters(), master):
                p.data = arr
                p.grad = None
            self._master64 = None
        return self

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype of the forward (see :mod:`repro.nn.precision`)."""
        return self.flow_gnn.dtype

    @property
    def backend(self) -> Backend:
        """Array backend of the fused inference path."""
        return self.flow_gnn.backend

    def _policy_fused(self, features: np.ndarray) -> np.ndarray:
        """Raw-array policy MLP through the FlowGNN workspace buffers."""
        ws = self.flow_gnn.workspace
        ops = self.flow_gnn.backend.ops
        x = features
        for i, module in enumerate(self.policy.net.modules):
            if isinstance(module, Linear):
                out = ws.buffer(
                    ("policy", i),
                    tuple(x.shape[:-1]) + (module.out_features,),
                    array_ops(x).dtype_of(x),
                )
                bias = module.bias
                linear_into(
                    x, ops.param(module.weight.data),
                    None if bias is None else ops.param(bias.data), out,
                )
                x = out
            elif isinstance(module, ReLU):
                relu_(x)
            elif isinstance(module, Tanh):
                tanh_(x)
            else:  # pragma: no cover - TealModel policies are relu MLPs
                x = module(Tensor(x)).numpy()
        return x

    def _split_ratios_fused(
        self, demands: np.ndarray, capacities: np.ndarray, batched: bool
    ) -> np.ndarray:
        """The deployment forward on raw arrays (bit-identical to the
        Tensor path at the model dtype; see ``tests/test_precision.py``).

        Uses the model's shared workspace buffers, so one model instance
        must not run concurrent forwards from multiple threads (see
        :class:`~repro.core.batching.Workspace`)."""
        fg = self.flow_gnn
        if batched:
            edge_init, path_init = fg._initial_embeddings_batch(
                demands, capacities
            )
        else:
            edge_init, path_init = fg._initial_embeddings(demands, capacities)
        embeddings = fg._propagate_fused(edge_init, path_init)
        features = fg.grouped_embeddings_into(embeddings)
        logits = self._policy_fused(features)
        not_mask = getattr(self, "_not_path_mask", None)
        if not_mask is None:
            not_mask = ~self.pathset.path_mask
            self._not_path_mask = not_mask
        ops = array_ops(logits)
        reduce_buf = fg.workspace.buffer(
            "softmax_reduce", tuple(logits.shape[:-1]) + (1,), ops.dtype_of(logits)
        )
        masked_softmax_into(logits, not_mask, logits, reduce_buf)
        # The result lives in a reused workspace buffer: hand the caller
        # an owned (numpy) copy so the next forward cannot mutate it —
        # the pipeline boundary stays numpy whatever the backend.
        return ops.to_numpy_copy(logits)

    def split_ratios(
        self,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
        fused: bool = True,
    ) -> np.ndarray:
        """Numpy (D, k) split ratios via the fused inference path.

        ``fused=False`` runs the tape-building Tensor forward instead
        (the naive-elementwise reference the equivalence tests compare
        against).
        """
        if capacities is None:
            capacities = self.pathset.topology.capacities
        if not fused:
            return self.forward(demands, capacities).numpy()
        return self._split_ratios_fused(demands, capacities, batched=False)

    def split_ratios_batch(
        self,
        demands: np.ndarray,
        capacities: np.ndarray | None = None,
        fused: bool = True,
    ) -> np.ndarray:
        """Numpy (B, D, k) split ratios via one fused batched forward."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        if not fused:
            return self.forward_batch(demands, capacities).numpy()
        demands = np.asarray(demands)
        if demands.ndim == 2 and demands.shape[0] == 0:
            return NUMPY_OPS.zeros(
                (0, self.pathset.num_demands, self.pathset.max_paths),
                dtype=self.dtype,
            )
        return self._split_ratios_fused(demands, capacities, batched=True)

    def flow_embeddings(
        self, demands: np.ndarray, capacities: np.ndarray | None = None
    ) -> np.ndarray:
        """(P, embedding_dim) learned flow embeddings (for §5.8 analysis)."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        return self.flow_gnn(demands, capacities).numpy()
