"""TealModel: FlowGNN + shared policy network, trained end to end (§3.3).

The model maps (demands, capacities) to per-demand split ratios in a
single forward pass — the fixed-flop inference that gives Teal its flat
computation time (Figure 7a).
"""

from __future__ import annotations

import numpy as np

from ..config import TealHyperparameters
from ..exceptions import ModelError
from ..nn.layers import Module
from ..nn.tensor import Tensor
from ..paths.pathset import PathSet
from ..topology.graph import broadcast_capacities
from .flowgnn import FlowGNN
from .policy import PolicyNetwork


def grid_scatter_index(pathset: PathSet) -> np.ndarray:
    """(P,) flat position of each path inside the (D, k) ratio grid.

    Shared by the models and the direct-loss trainer to move values
    between per-path and per-demand-grid layouts.
    """
    flat_ids = pathset.demand_path_ids.reshape(-1)
    positions = np.flatnonzero(flat_ids >= 0)
    scatter = np.empty(pathset.num_paths, dtype=int)
    scatter[flat_ids[positions]] = positions
    return scatter


class AllocatorModel(Module):
    """Protocol base for models that output per-demand action logits.

    Subclasses (TealModel and the Figure 14 ablation variants) provide
    ``logits``; the base supplies the shared deployment conveniences so
    trainers treat all variants uniformly.
    """

    pathset: PathSet
    hyper: TealHyperparameters
    policy: "PolicyNetwork"

    def logits(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        raise NotImplementedError

    @property
    def scatter_index(self) -> np.ndarray:
        """(P,) flat grid position of each path (cached)."""
        cached = getattr(self, "_scatter_index", None)
        if cached is None:
            cached = grid_scatter_index(self.pathset)
            self._scatter_index = cached
        return cached

    def forward(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Deterministic split ratios (D, k) — the deployment path."""
        logits = self.logits(demands, capacities)
        return self.policy.split_ratios(logits, self.pathset.path_mask)

    def split_ratios(
        self, demands: np.ndarray, capacities: np.ndarray | None = None
    ) -> np.ndarray:
        """Numpy split ratios for deployment (no gradient bookkeeping)."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        return self.forward(demands, capacities).numpy()

    # ------------------------------------------------------------------
    # Batched inference (multi-matrix engine)
    # ------------------------------------------------------------------
    def logits_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> Tensor:
        """(B, D, k) action logits for a stack of traffic matrices.

        The base implementation loops :meth:`logits` per matrix so every
        allocator variant supports the batched API; architectures with a
        genuinely batched forward (TealModel) override it. The per-matrix
        logits are stacked on the tape (differentiable), so batched
        training works uniformly across variants.
        """
        from ..nn import functional as F

        demands = np.asarray(demands, dtype=float)
        capacities = broadcast_capacities(capacities, demands.shape[0])
        num_demands = self.pathset.num_demands
        max_paths = self.pathset.max_paths
        if demands.shape[0] == 0:
            return Tensor(np.zeros((0, num_demands, max_paths)))
        return F.concat(
            [
                self.logits(demands[i], capacities[i]).reshape(
                    1, num_demands, max_paths
                )
                for i in range(demands.shape[0])
            ],
            axis=0,
        )

    def forward_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> Tensor:
        """Deterministic split ratios (B, D, k) for a stack of matrices."""
        logits = self.logits_batch(demands, capacities)
        return self.policy.split_ratios(logits, self.pathset.path_mask)

    def split_ratios_batch(
        self, demands: np.ndarray, capacities: np.ndarray | None = None
    ) -> np.ndarray:
        """Numpy (B, D, k) split ratios for a stack of traffic matrices."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        return self.forward_batch(demands, capacities).numpy()

    def check_compatible(self, pathset: PathSet) -> None:
        """Ensure a pathset matches the one the model was built around.

        Raises:
            ModelError: If shapes differ (retraining is required — §4).
        """
        if (
            pathset.num_demands != self.pathset.num_demands
            or pathset.num_paths != self.pathset.num_paths
            or pathset.max_paths != self.pathset.max_paths
        ):
            raise ModelError(
                "pathset incompatible with the trained model; Teal requires "
                "retraining when the topology permanently changes (§4)"
            )


class TealModel(AllocatorModel):
    """The end-to-end Teal model for one topology (§4 trains one per WAN).

    Args:
        pathset: Path set fixing the model's bipartite structure.
        hyper: Architecture hyperparameters (defaults match §4).
        num_policy_layers: Hidden layers in the policy net (Figure 15c).
        seed: Weight-init seed.
    """

    def __init__(
        self,
        pathset: PathSet,
        hyper: TealHyperparameters | None = None,
        num_policy_layers: int = 1,
        seed: int = 0,
    ) -> None:
        self.pathset = pathset
        self.hyper = hyper if hyper is not None else TealHyperparameters()
        self.flow_gnn = FlowGNN(
            pathset, num_layers=self.hyper.num_gnn_layers, seed=seed
        )
        input_dim = pathset.max_paths * self.flow_gnn.embedding_dim
        self.policy = PolicyNetwork(
            input_dim=input_dim,
            num_paths=pathset.max_paths,
            hidden=self.hyper.policy_hidden,
            num_hidden_layers=num_policy_layers,
            action_log_std=self.hyper.action_log_std,
            seed=seed + 1,
        )

    def logits(self, demands: np.ndarray, capacities: np.ndarray) -> Tensor:
        """Per-demand action logits (D, k)."""
        embeddings = self.flow_gnn(demands, capacities)
        features = self.flow_gnn.grouped_embeddings(embeddings)
        return self.policy(features)

    def logits_batch(
        self, demands: np.ndarray, capacities: np.ndarray
    ) -> Tensor:
        """(B, D, k) logits via one batched FlowGNN + policy forward."""
        embeddings = self.flow_gnn.forward_batch(demands, capacities)
        features = self.flow_gnn.grouped_embeddings(embeddings)
        return self.policy(features)

    def flow_embeddings(
        self, demands: np.ndarray, capacities: np.ndarray | None = None
    ) -> np.ndarray:
        """(P, embedding_dim) learned flow embeddings (for §5.8 analysis)."""
        if capacities is None:
            capacities = self.pathset.topology.capacities
        return self.flow_gnn(demands, capacities).numpy()
