"""Runtime sanitizers for the fused-kernel substrate (``REPRO_SANITIZE=1``).

The static RL002 rule checks kernel-aliasing contracts *syntactically*;
this module checks the same ``KERNEL_CONTRACTS`` dynamically. With
``REPRO_SANITIZE=1`` in the environment, :mod:`repro.core.batching`
(at import) rebinds every contracted kernel to a checking wrapper and
arms :class:`~repro.core.batching.Workspace` buffer poisoning:

- **Aliasing tripwires** — before the kernel runs, every clobbered
  argument (``writes``/``inout``/``scratch``) is checked against every
  other array argument with ``np.shares_memory``; overlap raises
  :class:`SanitizerError` unless the contract lists the pair in
  ``may_alias`` *and* the arrays are the exact same view (identical
  base pointer, shape, strides — elementwise-safe aliasing; partial
  overlap is never allowed).
- **NaN/Inf tripwires** — after the kernel runs, ``writes`` and
  ``inout`` arguments must be finite. Combined with workspace
  poisoning (fresh :meth:`Workspace.buffer` allocations are filled
  with NaN instead of garbage), a kernel that reads a buffer before
  fully overwriting it trips here instead of silently consuming stale
  scratch.

The wrappers are opt-in because the checks cost real time
(``np.isfinite`` over every kernel output); CI runs the tier-1 suite
once with the sanitizer armed.

The tripwires survive the backend dispatch layer
(:mod:`repro.core.backend`): the wrappers rebind the same batching
globals the dispatch refactor kept, and the helpers below duck-type
array arguments — numpy arrays go through ``np.may_share_memory`` /
``np.isfinite``, torch tensors through ``data_ptr``-interval overlap
and ``Tensor.isfinite`` — without this module ever importing torch (or
``repro.core.backend``, which would be an import cycle through
batching).
"""

from __future__ import annotations

import os

import numpy as np

from ..exceptions import ReproError

_ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(ReproError):
    """A runtime kernel-contract violation (aliasing or non-finite)."""


def sanitize_enabled(environ=os.environ) -> bool:
    """Whether ``REPRO_SANITIZE`` requests the sanitizer layer."""
    return environ.get(_ENV_VAR, "") not in ("", "0")


def _is_array(value) -> bool:
    """Array-like payloads the tripwires understand (numpy or torch).

    Duck-typed: a torch tensor exposes ``data_ptr`` and ``shape``;
    anything else (scalars, None, index lists) is skipped.
    """
    if isinstance(value, np.ndarray):
        return True
    return hasattr(value, "data_ptr") and hasattr(value, "shape")


def _byte_span(t) -> tuple[int, int]:
    """[start, end) byte interval of a torch tensor's storage region."""
    start = t.data_ptr()
    return start, start + t.numel() * t.element_size()


def _may_share(a, b) -> bool:
    """Cheap bounds-overlap check across both array families.

    Numpy pairs use ``np.may_share_memory``; torch pairs compare
    ``data_ptr`` byte intervals (over-approximate for strided views,
    like ``may_share_memory``). Mixed numpy/torch pairs never share
    memory — one lives in numpy's allocator, the other in torch's.
    """
    a_np, b_np = isinstance(a, np.ndarray), isinstance(b, np.ndarray)
    if a_np and b_np:
        return bool(np.may_share_memory(a, b))
    if a_np or b_np:
        return False
    a0, a1 = _byte_span(a)
    b0, b1 = _byte_span(b)
    return a0 < b1 and b0 < a1


def _exact_alias(a, b) -> bool:
    """True when ``a`` and ``b`` address the identical memory layout."""
    if a is b:
        return True
    if isinstance(a, np.ndarray) != isinstance(b, np.ndarray):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.__array_interface__["data"] == b.__array_interface__["data"]
            and a.shape == b.shape
            and a.strides == b.strides
            and a.dtype == b.dtype
        )
    return (
        a.data_ptr() == b.data_ptr()
        and tuple(a.shape) == tuple(b.shape)
        and a.stride() == b.stride()
        and a.dtype == b.dtype
    )


def _all_finite(value) -> bool:
    """Finiteness across both array families (bool, not array)."""
    if isinstance(value, np.ndarray):
        return bool(np.all(np.isfinite(value)))
    return bool(value.isfinite().all().item())


def wrap_kernel(func, contract, name: str | None = None):
    """A checking wrapper around ``func`` enforcing ``contract``.

    ``contract`` is a :class:`repro.core.batching.KernelContract`. The
    wrapper binds positional/keyword arguments to the contract's
    parameter names, runs the aliasing pre-checks and finiteness
    post-checks described in the module docstring, and otherwise
    delegates verbatim (same return value).
    """
    kernel_name = name if name is not None else func.__name__
    clobbered = contract.writes + contract.inout + contract.scratch
    checked = contract.writes + contract.inout
    allowed = frozenset(frozenset(pair) for pair in contract.may_alias)

    def wrapper(*args, **kwargs):
        bound = dict(zip(contract.params, args))
        bound.update(kwargs)
        arrays = {
            param: value
            for param, value in bound.items()
            if _is_array(value)
        }
        for target in clobbered:
            target_arr = arrays.get(target)
            if target_arr is None:
                continue
            for other, other_arr in arrays.items():
                if other == target:
                    continue
                # Bounds-overlap check (cheap, slightly over-approximate;
                # exact shares_memory can be exponential on strided views).
                if not _may_share(target_arr, other_arr):
                    continue
                if frozenset((target, other)) in allowed and _exact_alias(
                    target_arr, other_arr
                ):
                    continue
                raise SanitizerError(
                    f"{kernel_name}: clobbered argument '{target}' shares "
                    f"memory with '{other}' — the kernel contract forbids "
                    "this aliasing (KERNEL_CONTRACTS in repro.core."
                    "batching); pass a distinct buffer"
                )
        result = func(*args, **kwargs)
        for target in checked:
            target_arr = arrays.get(target)
            if target_arr is not None and not _all_finite(target_arr):
                raise SanitizerError(
                    f"{kernel_name}: non-finite values in '{target}' after "
                    "the kernel ran — NaN/Inf escaped into a kernel "
                    "output (or the kernel read poisoned scratch)"
                )
        return result

    wrapper.__name__ = func.__name__
    wrapper.__qualname__ = getattr(func, "__qualname__", func.__name__)
    wrapper.__doc__ = func.__doc__
    wrapper.__wrapped__ = func
    wrapper.__repro_sanitized__ = True
    return wrapper


def install_sanitizers(namespace: dict) -> None:
    """Arm the sanitizer layer inside :mod:`repro.core.batching`.

    Called by ``batching`` itself at import time when
    :func:`sanitize_enabled`. ``namespace`` is the batching module's
    globals: every function named in its ``KERNEL_CONTRACTS`` is
    rebound to a checking wrapper (method contracts wrap the attribute
    on the owning class instead), and ``_SANITIZE`` is set so
    ``Workspace.buffer`` NaN-poisons fresh allocations.
    """
    for kernel_name, contract in namespace["KERNEL_CONTRACTS"].items():
        if contract.method:
            owner_name, _, attr = kernel_name.partition(".")
            owner = namespace[owner_name]
            wrapped = wrap_kernel(
                getattr(owner, attr), contract, name=kernel_name
            )
            setattr(owner, attr, wrapped)
        else:
            namespace[kernel_name] = wrap_kernel(
                namespace[kernel_name], contract, name=kernel_name
            )
    namespace["_SANITIZE"] = True
