"""Baseline I/O for ``repro.lint``: grandfathered findings on disk.

A baseline entry suppresses up to ``count`` findings that share its
``(rule, path, line_text)`` fingerprint — line *text*, so entries
survive unrelated edits shifting line numbers. Entries may carry a
``justification`` explaining why the finding is intentional; updates
(``--update-baseline``) preserve justifications of entries that are
still live.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..exceptions import ReproError
from .rules import Finding

BASELINE_VERSION = 1


class BaselineError(ReproError):
    """Malformed baseline file."""


@dataclass
class BaselineEntry:
    rule: str
    path: str
    line_text: str
    count: int = 1
    justification: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)

    def to_dict(self) -> dict:
        doc = {
            "rule": self.rule,
            "path": self.path,
            "line_text": self.line_text,
            "count": self.count,
        }
        if self.justification:
            doc["justification"] = self.justification
        return doc


@dataclass
class BaselineMatch:
    """Result of applying a baseline to a batch of findings."""

    new: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)


def load_baseline(path: str) -> list[BaselineEntry]:
    """Entries from ``path``; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(document, dict) or "entries" not in document:
        raise BaselineError(
            f"baseline {path} is not a {{version, entries}} document"
        )
    entries = []
    for raw in document["entries"]:
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    line_text=raw["line_text"],
                    count=int(raw.get("count", 1)),
                    justification=raw.get("justification", ""),
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise BaselineError(
                f"malformed baseline entry in {path}: {raw!r}"
            ) from error
    return entries


def save_baseline(path: str, entries: list[BaselineEntry]) -> None:
    """Write entries deterministically (sorted by fingerprint)."""
    document = {
        "version": BASELINE_VERSION,
        "entries": [
            entry.to_dict()
            for entry in sorted(entries, key=lambda e: e.fingerprint)
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> BaselineMatch:
    """Split findings into new vs baseline-suppressed.

    Each entry absorbs up to ``count`` findings with its fingerprint;
    entries whose fingerprint matched nothing are reported ``stale`` so
    the baseline can be garbage-collected.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for entry in entries:
        budget[entry.fingerprint] = (
            budget.get(entry.fingerprint, 0) + entry.count
        )
    used: dict[tuple[str, str, str], int] = {}
    match = BaselineMatch()
    for finding in findings:
        key = finding.fingerprint
        if used.get(key, 0) < budget.get(key, 0):
            used[key] = used.get(key, 0) + 1
            match.suppressed.append(finding)
        else:
            match.new.append(finding)
    match.stale = [
        entry for entry in entries if used.get(entry.fingerprint, 0) == 0
    ]
    return match


def updated_entries(
    findings: list[Finding], previous: list[BaselineEntry]
) -> list[BaselineEntry]:
    """Baseline entries covering exactly the current findings.

    Counts are recomputed from the findings; justifications of entries
    that are still live carry over.
    """
    justifications = {
        entry.fingerprint: entry.justification
        for entry in previous
        if entry.justification
    }
    counts: dict[tuple[str, str, str], int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    return [
        BaselineEntry(
            rule=rule,
            path=path,
            line_text=line_text,
            count=count,
            justification=justifications.get((rule, path, line_text), ""),
        )
        for (rule, path, line_text), count in sorted(counts.items())
    ]
