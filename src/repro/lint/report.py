"""Finding reports for ``repro.lint``: text for terminals, JSON for CI."""

from __future__ import annotations

import json

from .baseline import BaselineMatch
from .rules import RULES


def format_text(match: BaselineMatch, explain: bool = False) -> str:
    """Human-readable report: one line per new finding plus a summary."""
    lines = []
    for finding in match.new:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.message}"
        )
    if explain:
        for rule_id in sorted({f.rule for f in match.new}):
            rule = RULES[rule_id]
            lines.append("")
            lines.append(f"{rule.id} — {rule.title}")
            lines.append(f"  {rule.rationale}")
            lines.append(f"  scope: {rule.scope}")
        if match.new:
            lines.append("")
    summary = (
        f"{len(match.new)} new finding(s), "
        f"{len(match.suppressed)} baselined"
    )
    if match.stale:
        summary += f", {len(match.stale)} stale baseline entrie(s)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(match: BaselineMatch) -> str:
    """Machine-readable report (stable key order, newline-terminated)."""
    document = {
        "new": [finding.to_dict() for finding in match.new],
        "baselined": [finding.to_dict() for finding in match.suppressed],
        "stale_baseline_entries": [
            entry.to_dict() for entry in match.stale
        ],
        "summary": {
            "new": len(match.new),
            "baselined": len(match.suppressed),
            "stale": len(match.stale),
        },
    }
    return json.dumps(document, indent=2) + "\n"
