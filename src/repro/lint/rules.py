"""Rule registry for ``repro.lint``: IDs, docs, and path scoping.

Every rule has a stable ID (``RL001``..``RL004``), a one-line title, and
a rationale paragraph tying it to the invariant it protects. The
*scoping* helpers below decide which repo modules a rule applies to —
they work on repo-relative posix paths so the same rules run identically
in CI, locally, and over test fixtures laid out under a temp dir.

The four rules and the invariants they guard:

- **RL001 dtype-policy** — the float32/float64 precision policy
  (:mod:`repro.nn.precision`) makes the compute dtype an explicit,
  threaded decision. A ``dtype=float`` / ``dtype=np.float64`` literal or
  an ``astype(float)`` inside the precision-threaded modules silently
  re-hardcodes float64 and breaks the policy's one-point control. Route
  through ``Precision.dtype``, ``EVALUATION_DTYPE``, or a variable
  derived from them.
- **RL002 kernel-aliasing** — the fused ``*_into`` kernels in
  :mod:`repro.core.batching` declare, per kernel, which arguments they
  clobber and which pairs may alias (``KERNEL_CONTRACTS``). Passing the
  same expression as an input and as ``out``/``scratch`` where the
  contract forbids it corrupts operands mid-kernel. This rule checks
  call sites *syntactically*; the runtime sanitizer
  (:mod:`repro.lint.sanitize`) checks the same contracts dynamically
  with ``np.shares_memory``.
- **RL003 determinism** — parallel == serial and cache hit == rebuild
  are bit-for-bit guarantees. Unseeded global RNG (``np.random.*``
  module-level calls), iteration over ``set``s feeding reductions or
  serialization, and wall-clock reads outside the timing-designated
  modules all introduce run-to-run variance that those guarantees
  cannot survive.
- **RL004 dispatch-seam** — every hot-path tensor op must reach the
  array library through the ops namespaces in
  :mod:`repro.core.backend` (the fused kernels in
  :mod:`repro.core.batching` already do) so backend selection
  (numpy/torch) stays a one-point change. A direct ``np.matmul`` /
  ``np.einsum`` / ``@`` — or a raw ``np.empty``/``np.zeros``
  allocation — in a hot-path module is a second dispatch point the
  swap would miss.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One lint finding, locatable and baseline-fingerprintable.

    The baseline fingerprint is ``(rule, path, line_text)`` — line
    *text*, not line number, so baselined findings survive unrelated
    edits above them.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    line_text: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable ID plus human documentation."""

    id: str
    title: str
    rationale: str
    scope: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="RL001",
            title="dtype literals must route through the Precision policy",
            rationale=(
                "dtype=float / dtype=np.float64 / astype(float) literals "
                "inside precision-threaded modules re-hardcode a dtype the "
                "Precision policy is supposed to control; use "
                "Precision.dtype, EVALUATION_DTYPE, or a derived variable."
            ),
            scope="src/repro/{nn,core,simulation}/ (except nn/precision.py)",
        ),
        Rule(
            id="RL002",
            title="*_into kernel call sites must honor aliasing contracts",
            rationale=(
                "out/scratch arguments that syntactically repeat an input "
                "expression violate the kernel's KERNEL_CONTRACTS entry and "
                "corrupt operands mid-kernel (unless the contract lists the "
                "pair as may_alias)."
            ),
            scope="all scanned files",
        ),
        Rule(
            id="RL003",
            title="no unseeded RNG, set-order dependence, or stray wall-clock",
            rationale=(
                "np.random.* global-RNG calls, iteration over sets feeding "
                "reductions/serialization, and time.* wall-clock reads "
                "outside the timing-designated modules break the bit-for-bit "
                "parallel==serial and cache-hit==rebuild guarantees."
            ),
            scope="all scanned files; time.* allowed in timing modules",
        ),
        Rule(
            id="RL004",
            title="hot-path tensor ops must go through core/backend.py",
            rationale=(
                "direct np.matmul/np.einsum/@/.dot calls and raw "
                "np.empty/np.zeros allocations in hot-path modules bypass "
                "the backend dispatch seam (repro.core.backend) that "
                "selects the array library; route through the "
                "core/batching kernels or the backend ops namespace."
            ),
            scope="hot-path modules (see HOT_PATH_MODULES)",
        ),
    )
}


# ----------------------------------------------------------------------
# Path scoping
# ----------------------------------------------------------------------
#: Modules threaded with the Precision policy: RL001 applies here.
PRECISION_SCOPES = ("/repro/nn/", "/repro/core/", "/repro/simulation/")

#: The policy definition itself is exempt from RL001 (it is the one
#: place dtype literals are *supposed* to live).
PRECISION_POLICY_MODULE = "/repro/nn/precision.py"

#: Modules designated to read wall clocks (RL003): the sweep timer, the
#: NCFlow merge timer, the streaming decision-latency clock, and the
#: benchmark scripts. Every other timing site must be baselined with a
#: justification or routed through one of these.
TIMING_MODULES = (
    "/repro/sweep/grid.py",
    "/repro/baselines/ncflow.py",
    "/repro/simulation/streaming.py",
    "/benchmarks/",
)

#: Hot-path modules (RL004): the inference/ADMM pipeline plus the
#: autodiff reference path that the fused kernels mirror. Since the
#: backend refactor the fused kernels in core/batching.py are hot-path
#: too — they must dispatch through the ops namespaces. The seam
#: itself (core/backend.py) is the sole exempt module: it is the one
#: place direct numpy/torch calls are *supposed* to live.
HOT_PATH_MODULES = (
    "/repro/core/batching.py",
    "/repro/core/flowgnn.py",
    "/repro/core/model.py",
    "/repro/core/admm.py",
    "/repro/core/teal.py",
    "/repro/nn/functional.py",
    "/repro/nn/layers.py",
    "/repro/nn/tensor.py",
    "/repro/simulation/evaluator.py",
    "/repro/simulation/streaming.py",
)

DISPATCH_SEAM_MODULE = "/repro/core/backend.py"


def _norm(path: str) -> str:
    """Posix-normalize with a leading slash so suffix matching is exact."""
    return "/" + path.replace("\\", "/").lstrip("/")


def in_precision_scope(path: str) -> bool:
    p = _norm(path)
    if p.endswith(PRECISION_POLICY_MODULE):
        return False
    return any(scope in p for scope in PRECISION_SCOPES)


def in_timing_scope(path: str) -> bool:
    """True when the module is *allowed* to read wall clocks."""
    p = _norm(path)
    return any(p.endswith(m) or m in p for m in TIMING_MODULES)


def in_hot_path(path: str) -> bool:
    p = _norm(path)
    if p.endswith(DISPATCH_SEAM_MODULE):
        return False
    return any(p.endswith(m) for m in HOT_PATH_MODULES)
