"""``repro.lint`` — invariant-checking static analysis + runtime sanitizers.

Static side: AST rules RL001 (dtype-policy), RL002 (kernel-aliasing),
RL003 (determinism), RL004 (dispatch-seam) over the repo's sources, with
a committed baseline for grandfathered findings (``repro.cli lint``).

Runtime side: :mod:`repro.lint.sanitize` arms aliasing and NaN/Inf
tripwires around the fused kernels when ``REPRO_SANITIZE=1``.

Submodule imports are lazy so :mod:`repro.core.batching` can import
:mod:`repro.lint.sanitize` at its own import time without a cycle
(``rules``/``visitors`` import batching's ``KERNEL_CONTRACTS``).
"""

from __future__ import annotations

__all__ = [
    "Finding",
    "RULES",
    "lint_paths",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "updated_entries",
    "BaselineEntry",
    "format_text",
    "format_json",
    "SanitizerError",
    "sanitize_enabled",
    "wrap_kernel",
]

_EXPORTS = {
    "Finding": ("repro.lint.rules", "Finding"),
    "RULES": ("repro.lint.rules", "RULES"),
    "lint_paths": ("repro.lint.engine", "lint_paths"),
    "load_baseline": ("repro.lint.baseline", "load_baseline"),
    "save_baseline": ("repro.lint.baseline", "save_baseline"),
    "apply_baseline": ("repro.lint.baseline", "apply_baseline"),
    "updated_entries": ("repro.lint.baseline", "updated_entries"),
    "BaselineEntry": ("repro.lint.baseline", "BaselineEntry"),
    "format_text": ("repro.lint.report", "format_text"),
    "format_json": ("repro.lint.report", "format_json"),
    "SanitizerError": ("repro.lint.sanitize", "SanitizerError"),
    "sanitize_enabled": ("repro.lint.sanitize", "sanitize_enabled"),
    "wrap_kernel": ("repro.lint.sanitize", "wrap_kernel"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.lint' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
