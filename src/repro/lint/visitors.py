"""Per-rule AST visitors for ``repro.lint``.

Each visitor walks one parsed module and appends :class:`Finding`s. The
visitors are deliberately *syntactic*: they flag patterns a reviewer
could point at in a diff, and they prefer false negatives over noise —
the runtime sanitizer (:mod:`repro.lint.sanitize`) backstops what the
syntax cannot see (views, slices, dynamically chosen buffers).
"""

from __future__ import annotations

import ast

from .rules import (
    Finding,
    in_hot_path,
    in_precision_scope,
    in_timing_scope,
)


class _RuleVisitor(ast.NodeVisitor):
    """Shared plumbing: source lines, finding collection."""

    rule = "RL000"

    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self._lines = source_lines
        self.findings: list[Finding] = []

    def add(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        text = ""
        if 1 <= line <= len(self._lines):
            text = self._lines[line - 1].strip()
        self.findings.append(
            Finding(
                rule=self.rule,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                line_text=text,
            )
        )


def _dtype_literal(node: ast.expr) -> str | None:
    """The source form of a hardcoded dtype literal, or None.

    Recognized: the builtin ``float``, ``np.float64``/``np.float32``
    (also via ``numpy.``), the strings ``"float64"``/``"float32"``, and
    ``np.dtype(<any of those>)``.
    """
    if isinstance(node, ast.Name) and node.id == "float":
        return "float"
    if isinstance(node, ast.Attribute) and node.attr in ("float64", "float32"):
        value = node.value
        if isinstance(value, ast.Name) and value.id in ("np", "numpy"):
            return f"{value.id}.{node.attr}"
    if isinstance(node, ast.Constant) and node.value in ("float64", "float32"):
        return repr(node.value)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "dtype"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in ("np", "numpy")
        and len(node.args) == 1
    ):
        inner = _dtype_literal(node.args[0])
        if inner is not None:
            return f"np.dtype({inner})"
    return None


class DtypePolicyVisitor(_RuleVisitor):
    """RL001: dtype literals inside precision-threaded modules."""

    rule = "RL001"

    @classmethod
    def applies(cls, path: str) -> bool:
        return in_precision_scope(path)

    #: Constructors whose second positional argument is ``dtype``.
    _POSITIONAL_DTYPE = frozenset({"asarray", "array"})

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                literal = _dtype_literal(keyword.value)
                if literal is not None:
                    self.add(
                        keyword.value,
                        f"dtype={literal} hardcodes a dtype in a "
                        "precision-threaded module; derive it from the "
                        "Precision policy (Precision.dtype / "
                        "EVALUATION_DTYPE)",
                    )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._POSITIONAL_DTYPE
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("np", "numpy")
            and len(node.args) >= 2
        ):
            literal = _dtype_literal(node.args[1])
            if literal is not None:
                self.add(
                    node.args[1],
                    f"np.{node.func.attr}(..., {literal}) hardcodes a "
                    "dtype in a precision-threaded module; derive it "
                    "from the Precision policy (Precision.dtype / "
                    "EVALUATION_DTYPE)",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and len(node.args) == 1
        ):
            literal = _dtype_literal(node.args[0])
            if literal is not None:
                self.add(
                    node.args[0],
                    f"astype({literal}) hardcodes a dtype in a "
                    "precision-threaded module; derive it from the "
                    "Precision policy (Precision.dtype / EVALUATION_DTYPE)",
                )
        self.generic_visit(node)


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _expr_key(node: ast.expr) -> str:
    """Structural key of an expression, ignoring load/store context."""
    return ast.dump(node, annotate_fields=False, include_attributes=False)


class KernelAliasVisitor(_RuleVisitor):
    """RL002: syntactic aliasing at ``*_into`` kernel call sites.

    Cross-references ``repro.core.batching.KERNEL_CONTRACTS``: binds the
    call's arguments to the contract's parameter names and flags any
    clobbered parameter (writes/inout/scratch) whose expression is
    structurally identical to another argument's, unless the contract
    lists the pair in ``may_alias``.
    """

    rule = "RL002"

    _contracts: dict | None = None

    @classmethod
    def applies(cls, path: str) -> bool:
        return True

    @classmethod
    def contracts(cls) -> dict:
        if cls._contracts is None:
            from repro.core.batching import KERNEL_CONTRACTS

            # Method contracts are registered as "Owner.method"; call
            # sites only show the attribute name.
            cls._contracts = {
                key.split(".")[-1]: contract
                for key, contract in KERNEL_CONTRACTS.items()
            }
        return cls._contracts

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        contract = self.contracts().get(name) if name else None
        if contract is not None and not any(
            isinstance(a, ast.Starred) for a in node.args
        ):
            params = contract.params
            # Method kernels (e.g. SegmentOps.expand_into) are called
            # with ``self`` bound; drop it when binding an attribute
            # call's positionals.
            if contract.method and isinstance(node.func, ast.Attribute):
                params = params[1:]
            bound: dict[str, ast.expr] = dict(zip(params, node.args))
            for keyword in node.keywords:
                if keyword.arg is not None:
                    bound[keyword.arg] = keyword.value
            clobbered = contract.writes + contract.inout + contract.scratch
            allowed = {frozenset(pair) for pair in contract.may_alias}
            reported: set[frozenset] = set()
            for target in clobbered:
                expr = bound.get(target)
                if expr is None:
                    continue
                key = _expr_key(expr)
                for other, other_expr in bound.items():
                    if other == target:
                        continue
                    pair = frozenset((target, other))
                    if pair in allowed or pair in reported:
                        continue
                    if _expr_key(other_expr) == key:
                        reported.add(pair)
                        self.add(
                            expr,
                            f"{name}: argument '{target}' aliases "
                            f"'{other}' (both are "
                            f"`{ast.unparse(expr)}`) but the kernel "
                            "contract forbids this pair "
                            "(see KERNEL_CONTRACTS in repro.core."
                            "batching)",
                        )
        self.generic_visit(node)


#: Calls on numpy's *global* RNG (legacy seeded-module API). The
#: Generator API (np.random.default_rng / Generator methods) is the
#: sanctioned path and is not flagged.
_GLOBAL_RNG_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "exponential",
        "poisson",
    }
)

#: Wall-clock readers in the ``time`` module.
_WALL_CLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _is_set_expr(node: ast.expr) -> bool:
    """Set literals, set comprehensions, and bare ``set(...)`` calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "set"
    return False


class DeterminismVisitor(_RuleVisitor):
    """RL003: global RNG, set-order dependence, stray wall-clock."""

    rule = "RL003"

    @classmethod
    def applies(cls, path: str) -> bool:
        return True

    def __init__(self, path: str, source_lines: list[str]) -> None:
        super().__init__(path, source_lines)
        self._timing_ok = in_timing_scope(path)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and func.attr in _GLOBAL_RNG_FNS
            ):
                self.add(
                    node,
                    f"np.random.{func.attr} uses numpy's unseeded global "
                    "RNG; thread an np.random.Generator (default_rng) "
                    "through instead",
                )
            if (
                not self._timing_ok
                and isinstance(value, ast.Name)
                and value.id == "time"
                and func.attr in _WALL_CLOCK_FNS
            ):
                self.add(
                    node,
                    f"time.{func.attr} reads the wall clock outside the "
                    "timing-designated modules; results become "
                    "run-dependent (baseline with a justification if the "
                    "timing is the point)",
                )
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple", "enumerate")
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            self.add(
                node,
                f"{func.id}(...) over a set materializes "
                "iteration-order-dependent output; sort first "
                "(sorted(...)) or keep a list",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and not self._timing_ok:
            clocks = sorted(
                alias.name
                for alias in node.names
                if alias.name in _WALL_CLOCK_FNS
            )
            if clocks:
                self.add(
                    node,
                    f"importing {', '.join(clocks)} from time in a "
                    "non-timing module invites wall-clock reads off the "
                    "designated paths",
                )
        self.generic_visit(node)

    def _check_iter(self, node: ast.expr) -> None:
        if _is_set_expr(node):
            self.add(
                node,
                "iterating a set: element order is hash-randomized "
                "run to run; sort first (sorted(...)) before feeding "
                "reductions or serialization",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


class DispatchSeamVisitor(_RuleVisitor):
    """RL004: direct matmul/einsum/@/.dot or raw np.empty/np.zeros in
    hot-path modules (the seam module itself, core/backend.py, is
    exempted by :func:`in_hot_path`)."""

    rule = "RL004"

    #: Raw numpy allocators: hot-path buffers must come from
    #: ``Workspace.buffer`` / the backend ops namespace so a non-numpy
    #: backend allocates on its own device.
    _RAW_ALLOCATORS = frozenset({"empty", "zeros"})

    @classmethod
    def applies(cls, path: str) -> bool:
        return in_hot_path(path)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.MatMult):
            self.add(
                node,
                "`@` in a hot-path module bypasses the fused-kernel "
                "dispatch seam; route through a core/batching kernel "
                "(csr_matmul_into / linear_into / pair_linear_into)",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr in ("matmul", "einsum")
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                self.add(
                    node,
                    f"np.{func.attr} in a hot-path module bypasses the "
                    "fused-kernel dispatch seam; route through a "
                    "core/batching kernel",
                )
            elif (
                func.attr in self._RAW_ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                self.add(
                    node,
                    f"np.{func.attr} in a hot-path module allocates a "
                    "numpy buffer outside the backend dispatch seam; "
                    "use Workspace.buffer or the backend ops namespace "
                    "(repro.core.backend) so non-numpy backends "
                    "allocate on their own device",
                )
            elif func.attr == "dot":
                self.add(
                    node,
                    ".dot(...) in a hot-path module bypasses the "
                    "fused-kernel dispatch seam; route through a "
                    "core/batching kernel",
                )
        self.generic_visit(node)


ALL_VISITORS = (
    DtypePolicyVisitor,
    KernelAliasVisitor,
    DeterminismVisitor,
    DispatchSeamVisitor,
)
