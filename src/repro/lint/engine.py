"""AST walker / driver for ``repro.lint``.

Discovers python files, parses each once, runs every applicable rule
visitor, and returns findings in a deterministic order (path, line,
col, rule) — the linter is itself held to the determinism standard it
enforces (RL003): no wall clocks, no hash-order output.
"""

from __future__ import annotations

import ast
import os

from ..exceptions import ReproError
from .rules import Finding
from .visitors import ALL_VISITORS


class LintError(ReproError):
    """Unreadable or unparsable input to the linter."""


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(files))


def _relpath(path: str, root: str | None) -> str:
    """Repo-relative posix path used in findings and baselines."""
    base = root if root is not None else os.getcwd()
    try:
        rel = os.path.relpath(path, base)
    except ValueError:  # pragma: no cover - windows drive mismatch
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def lint_file(path: str, display_path: str | None = None) -> list[Finding]:
    """Run every applicable rule over one file."""
    display = display_path if display_path is not None else path
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    lines = source.splitlines()
    findings: list[Finding] = []
    for visitor_cls in ALL_VISITORS:
        if visitor_cls.applies(display):
            visitor = visitor_cls(display, lines)
            visitor.visit(tree)
            findings.extend(visitor.findings)
    return findings


def lint_paths(paths: list[str], root: str | None = None) -> list[Finding]:
    """Lint files/directories; findings sorted (path, line, col, rule).

    Args:
        paths: Files or directories to scan.
        root: Base for the repo-relative paths recorded in findings
            (default: the current working directory).
    """
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, _relpath(path, root)))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
