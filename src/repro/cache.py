"""Maintenance for the persistent cache directory: pruning + versioning.

The harness's on-disk tier (:func:`repro.harness.build_scenario` and
:func:`repro.harness.trained_teal` with ``cache_dir=``) grows without
bound: every distinct scenario or training configuration adds an
``.npz`` entry that is never deleted, and the grid engine adds
``gridcell-``/``gridmanifest-`` JSON checkpoints (see
:mod:`repro.sweep.checkpoint`). This module adds the bound —
least-recently-used eviction down to a byte budget — without touching
the cache formats themselves.

Recency is tracked through file mtimes: the harness calls
:func:`touch` on every disk-tier hit, so an entry's mtime is the last
time it was either written or read. :func:`prune_cache_dir` then sorts
by mtime and removes the oldest entries until the directory fits the
budget. Exposed on the command line as ``repro.cli cache prune``.

Every cache format stamps its entries with a schema version; readers
treat a mismatch as a miss and rebuild rather than deserializing a
stale layout from a long-lived cache directory. :func:`stale_entries`
finds entries whose stamp no longer matches the library's current
version (``repro.cli cache prune`` reports them and ``--evict-stale``
removes them).

:func:`atomic_write_text` / :func:`atomic_write_json` are the shared
write-to-temp-then-:func:`os.replace` helpers every JSON artifact in
the repo goes through, so an interrupted writer can never leave a
truncated file where a reader expects a complete one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .exceptions import ReproError

#: Filename prefixes of cache entries this module manages. Anything
#: else in the directory (user files, other artifacts) is left alone.
CACHE_PREFIXES = ("scenario-", "teal-", "gridcell-", "gridmanifest-")

#: (prefix, suffix) glob pairs of the managed entry kinds: ``.npz``
#: archives for scenarios and model checkpoints, ``.json`` documents
#: for grid cell checkpoints and grid manifests.
CACHE_PATTERNS = (
    ("scenario-", ".npz"),
    ("teal-", ".npz"),
    ("gridcell-", ".json"),
    ("gridmanifest-", ".json"),
)

_SIZE_SUFFIXES = {
    "K": 1024,
    "M": 1024**2,
    "G": 1024**3,
    "T": 1024**4,
}


@dataclass(frozen=True)
class CacheEntry:
    """One prunable file in a cache directory."""

    path: Path
    bytes: int
    mtime: float


def parse_size(text: str | int) -> int:
    """Parse a byte budget like ``"500M"``, ``"2G"``, or a plain int.

    Suffixes are binary (K=2**10, M=2**20, G=2**30, T=2**40) and
    case-insensitive; an optional trailing ``B`` is accepted
    (``"64KB"``). Raises :class:`ReproError` on anything else.
    """
    if isinstance(text, int):
        if text < 0:
            raise ReproError(f"cache size must be non-negative, got {text}")
        return text
    raw = text.strip().upper().removesuffix("B")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ReproError(
            f"unparseable cache size {text!r}; use e.g. 500M, 2G, or a "
            "plain byte count"
        ) from None
    if value < 0:
        raise ReproError(f"cache size must be non-negative, got {text!r}")
    return int(value * factor)


def touch(path: str | Path) -> None:
    """Mark a cache entry as just-used (best effort).

    Called by the harness on disk-tier hits so LRU pruning sees reads,
    not only writes. A concurrently pruned entry is not an error.
    """
    try:
        os.utime(path)
    except OSError:  # pragma: no cover - raced with prune/cleanup
        pass


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + :func:`os.replace`).

    The temp file lives in the destination directory so the final
    rename never crosses filesystems. An interrupted write leaves the
    previous file (if any) untouched and no temp residue behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()
    return path


def atomic_write_json(path: str | Path, payload: object) -> Path:
    """Serialize ``payload`` fully in memory, then atomically write it.

    Serializing before opening the destination means even a crash
    inside ``json`` encoding cannot produce a half-written document.
    """
    return atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def cache_entries(cache_dir: str | Path) -> list[CacheEntry]:
    """Prunable entries of a cache directory, least recently used first.

    Only files matching :data:`CACHE_PATTERNS` are considered. Files
    that vanish mid-scan are skipped. Ties on mtime break by name so
    the ordering is deterministic.
    """
    cache_dir = Path(cache_dir)
    entries = []
    for prefix, suffix in CACHE_PATTERNS:
        for path in cache_dir.glob(f"{prefix}*{suffix}"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with cleanup
                continue
            entries.append(
                CacheEntry(path=path, bytes=stat.st_size, mtime=stat.st_mtime)
            )
    entries.sort(key=lambda e: (e.mtime, e.path.name))
    return entries


def prune_cache_dir(
    cache_dir: str | Path,
    max_bytes: int | str,
    dry_run: bool = False,
) -> list[Path]:
    """Evict least-recently-used cache entries down to ``max_bytes``.

    Args:
        cache_dir: The directory passed to the harness as ``cache_dir``.
        max_bytes: Byte budget the directory must fit after pruning
            (int or a :func:`parse_size` string). ``0`` empties it.
        dry_run: Report what would be removed without deleting.

    Returns:
        The paths removed (or, with ``dry_run``, that would be).

    A missing directory is an empty cache, not an error.
    """
    budget = parse_size(max_bytes)
    entries = cache_entries(cache_dir)
    total = sum(e.bytes for e in entries)
    removed: list[Path] = []
    for entry in entries:
        if total <= budget:
            break
        if not dry_run:
            try:
                entry.path.unlink()
            except OSError:  # pragma: no cover - raced with cleanup
                continue
        removed.append(entry.path)
        total -= entry.bytes
    return removed


def expected_schema_version(path: str | Path) -> int:
    """The schema version the current library stamps into entries like ``path``."""
    name = Path(path).name
    if name.startswith("scenario-"):
        from .harness import SCENARIO_CACHE_FORMAT

        return SCENARIO_CACHE_FORMAT
    if name.startswith("teal-"):
        from .core.checkpoint import CHECKPOINT_FORMAT

        return CHECKPOINT_FORMAT
    from .sweep.checkpoint import GRID_CHECKPOINT_VERSION

    return GRID_CHECKPOINT_VERSION


def entry_schema_version(path: str | Path) -> int | None:
    """Schema version stamped in a cache entry.

    Unstamped entries (written before versioning landed) report ``0``;
    unreadable or corrupt entries report ``None``. Either way they
    compare unequal to :func:`expected_schema_version`, so readers and
    the prune report treat them as stale.
    """
    path = Path(path)
    try:
        if path.name.endswith(".json"):
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                return None
            return int(payload.get("version", 0))
        import numpy as np

        with np.load(path, allow_pickle=False) as archive:
            if path.name.startswith("scenario-"):
                meta = json.loads(str(archive["meta"][()]))
                return int(meta.get("format", 0))
            if "meta_format" in archive.files:
                return int(archive["meta_format"][()])
            return 0
    except Exception:
        return None


def stale_entries(cache_dir: str | Path) -> list[CacheEntry]:
    """Cache entries whose schema-version stamp mismatches the library's.

    These are exactly the entries every reader already treats as a
    miss; evicting them (``repro.cli cache prune --evict-stale``) just
    reclaims the dead bytes early.
    """
    return [
        entry
        for entry in cache_entries(cache_dir)
        if entry_schema_version(entry.path) != expected_schema_version(entry.path)
    ]
