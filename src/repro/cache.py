"""Size-bounded pruning for the persistent scenario/model caches.

The harness's on-disk tier (:func:`repro.harness.build_scenario` and
:func:`repro.harness.trained_teal` with ``cache_dir=``) grows without
bound: every distinct scenario or training configuration adds an
``.npz`` entry that is never deleted. This module adds the bound —
least-recently-used eviction down to a byte budget — without touching
the cache formats themselves.

Recency is tracked through file mtimes: the harness calls
:func:`touch` on every disk-tier hit, so an entry's mtime is the last
time it was either written or read. :func:`prune_cache_dir` then sorts
by mtime and removes the oldest entries until the directory fits the
budget. Exposed on the command line as ``repro.cli cache prune``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from .exceptions import ReproError

#: Filename prefixes of cache entries this module manages. Anything
#: else in the directory (user files, other artifacts) is left alone.
CACHE_PREFIXES = ("scenario-", "teal-")

_SIZE_SUFFIXES = {
    "K": 1024,
    "M": 1024**2,
    "G": 1024**3,
    "T": 1024**4,
}


@dataclass(frozen=True)
class CacheEntry:
    """One prunable file in a cache directory."""

    path: Path
    bytes: int
    mtime: float


def parse_size(text: str | int) -> int:
    """Parse a byte budget like ``"500M"``, ``"2G"``, or a plain int.

    Suffixes are binary (K=2**10, M=2**20, G=2**30, T=2**40) and
    case-insensitive; an optional trailing ``B`` is accepted
    (``"64KB"``). Raises :class:`ReproError` on anything else.
    """
    if isinstance(text, int):
        if text < 0:
            raise ReproError(f"cache size must be non-negative, got {text}")
        return text
    raw = text.strip().upper().removesuffix("B")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ReproError(
            f"unparseable cache size {text!r}; use e.g. 500M, 2G, or a "
            "plain byte count"
        ) from None
    if value < 0:
        raise ReproError(f"cache size must be non-negative, got {text!r}")
    return int(value * factor)


def touch(path: str | Path) -> None:
    """Mark a cache entry as just-used (best effort).

    Called by the harness on disk-tier hits so LRU pruning sees reads,
    not only writes. A concurrently pruned entry is not an error.
    """
    try:
        os.utime(path)
    except OSError:  # pragma: no cover - raced with prune/cleanup
        pass


def cache_entries(cache_dir: str | Path) -> list[CacheEntry]:
    """Prunable entries of a cache directory, least recently used first.

    Only files matching :data:`CACHE_PREFIXES` with the ``.npz`` suffix
    are considered. Files that vanish mid-scan are skipped. Ties on
    mtime break by name so the ordering is deterministic.
    """
    cache_dir = Path(cache_dir)
    entries = []
    for prefix in CACHE_PREFIXES:
        for path in cache_dir.glob(f"{prefix}*.npz"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with cleanup
                continue
            entries.append(
                CacheEntry(path=path, bytes=stat.st_size, mtime=stat.st_mtime)
            )
    entries.sort(key=lambda e: (e.mtime, e.path.name))
    return entries


def prune_cache_dir(
    cache_dir: str | Path,
    max_bytes: int | str,
    dry_run: bool = False,
) -> list[Path]:
    """Evict least-recently-used cache entries down to ``max_bytes``.

    Args:
        cache_dir: The directory passed to the harness as ``cache_dir``.
        max_bytes: Byte budget the directory must fit after pruning
            (int or a :func:`parse_size` string). ``0`` empties it.
        dry_run: Report what would be removed without deleting.

    Returns:
        The paths removed (or, with ``dry_run``, that would be).

    A missing directory is an empty cache, not an error.
    """
    budget = parse_size(max_bytes)
    entries = cache_entries(cache_dir)
    total = sum(e.bytes for e in entries)
    removed: list[Path] = []
    for entry in entries:
        if total <= budget:
            break
        if not dry_run:
            try:
                entry.path.unlink()
            except OSError:  # pragma: no cover - raced with cleanup
                continue
        removed.append(entry.path)
        total -= entry.bytes
    return removed
