"""Graph partitioning for NCFlow-style TE decomposition (§2.1, §5.1).

NCFlow partitions the WAN spatially into ``k`` clusters and solves TE
inside each cluster concurrently. The original uses "FMPartitioning";
we provide a BFS-grown balanced partitioner plus a spectral option, both
deterministic given a seed, producing contiguous clusters of roughly
equal size — the properties NCFlow relies on.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TopologyError
from .graph import Topology


def bfs_balanced_partition(
    topology: Topology, num_clusters: int, seed: int = 0
) -> np.ndarray:
    """Partition nodes into ``num_clusters`` contiguous, balanced clusters.

    Seeds are spread via farthest-point sampling on hop distance; clusters
    then grow in round-robin BFS order so sizes stay within one frontier
    of each other. Unreached nodes (disconnected graphs) are assigned to
    the smallest cluster.

    Args:
        topology: The graph to partition.
        num_clusters: Number of clusters ``k`` (1 <= k <= num_nodes).
        seed: RNG seed for the initial cluster seed.

    Returns:
        (num_nodes,) int array of cluster labels in ``0..k-1``.
    """
    n = topology.num_nodes
    if not 1 <= num_clusters <= n:
        raise TopologyError(
            f"num_clusters must be in [1, {n}], got {num_clusters}"
        )
    rng = np.random.default_rng(seed)
    labels = np.full(n, -1, dtype=np.int64)

    # Farthest-point seed selection on hop distance.
    seeds = [int(rng.integers(0, n))]
    dist_to_seeds = _bfs_hops(topology, seeds[0])
    dist_to_seeds[dist_to_seeds < 0] = n + 1
    while len(seeds) < num_clusters:
        candidate = int(np.argmax(dist_to_seeds))
        if dist_to_seeds[candidate] <= 0:
            unassigned = np.flatnonzero(~np.isin(np.arange(n), seeds))
            candidate = int(rng.choice(unassigned))
        seeds.append(candidate)
        new_dist = _bfs_hops(topology, candidate)
        new_dist[new_dist < 0] = n + 1
        dist_to_seeds = np.minimum(dist_to_seeds, new_dist)

    frontiers: list[list[int]] = []
    for label, s in enumerate(seeds):
        labels[s] = label
        frontiers.append([s])

    progressed = True
    while progressed:
        progressed = False
        for label in range(num_clusters):
            new_frontier: list[int] = []
            for u in frontiers[label]:
                for _, v in topology.out_edges(u):
                    if labels[v] < 0:
                        labels[v] = label
                        new_frontier.append(v)
                for _, v in topology.in_edges(u):
                    if labels[v] < 0:
                        labels[v] = label
                        new_frontier.append(v)
            frontiers[label] = new_frontier
            progressed = progressed or bool(new_frontier)

    # Disconnected leftovers go to the smallest cluster.
    for u in np.flatnonzero(labels < 0):
        sizes = np.bincount(labels[labels >= 0], minlength=num_clusters)
        labels[u] = int(np.argmin(sizes))
    return labels


def _bfs_hops(topology: Topology, source: int) -> np.ndarray:
    """Undirected hop distance from ``source`` (-1 if unreachable)."""
    dist = np.full(topology.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for _, v in topology.out_edges(u):
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
            for _, v in topology.in_edges(u):
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def cut_edges(topology: Topology, labels: np.ndarray) -> list[int]:
    """Edge ids whose endpoints lie in different clusters."""
    labels = np.asarray(labels)
    if labels.shape != (topology.num_nodes,):
        raise TopologyError("labels must have one entry per node")
    return [
        eid
        for eid, (u, v) in enumerate(topology.edges)
        if labels[u] != labels[v]
    ]


def partition_quality(topology: Topology, labels: np.ndarray) -> dict[str, float]:
    """Balance and cut statistics of a partition (for tests and ablation).

    Returns:
        Dict with ``num_clusters``, ``max_cluster_size``, ``min_cluster_size``,
        ``cut_fraction`` (share of edges crossing clusters).
    """
    labels = np.asarray(labels)
    sizes = np.bincount(labels)
    cut = len(cut_edges(topology, labels))
    return {
        "num_clusters": float(len(sizes)),
        "max_cluster_size": float(sizes.max()),
        "min_cluster_size": float(sizes.min()),
        "cut_fraction": cut / max(topology.num_edges, 1),
    }
