"""Topology statistics reported by the paper (Table 3, Figure 17).

- :func:`average_shortest_path_length` and :func:`diameter` reproduce the
  Table 3 columns.
- :func:`routable_demand_fraction_per_edge` reproduces Figure 17: for each
  edge, the percentage of demands whose candidate path set traverses it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from ..exceptions import TopologyError
from .graph import Topology


def all_pairs_hop_distances(topology: Topology) -> np.ndarray:
    """Dense (n, n) matrix of hop distances (-1 for unreachable pairs).

    Uses scipy's compiled BFS so full-size instances (ASN: 1739 nodes)
    complete in seconds.
    """
    rows = np.array([u for u, _ in topology.edges], dtype=np.int64)
    cols = np.array([v for _, v in topology.edges], dtype=np.int64)
    adjacency = sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(topology.num_nodes, topology.num_nodes),
    )
    dist = shortest_path(adjacency, method="D", directed=True, unweighted=True)
    result = np.where(np.isfinite(dist), dist, -1.0)
    return result.astype(np.int64)


def average_shortest_path_length(topology: Topology) -> float:
    """Mean hop distance over all ordered reachable node pairs (Table 3).

    Raises:
        TopologyError: If no pair is reachable.
    """
    dist = all_pairs_hop_distances(topology)
    mask = dist > 0
    if not mask.any():
        raise TopologyError("topology has no reachable node pairs")
    return float(dist[mask].mean())


def diameter(topology: Topology) -> int:
    """Longest shortest-path hop distance over reachable pairs (Table 3)."""
    dist = all_pairs_hop_distances(topology)
    reachable = dist[dist > 0]
    if reachable.size == 0:
        raise TopologyError("topology has no reachable node pairs")
    return int(reachable.max())


def topology_summary(topology: Topology) -> dict[str, float]:
    """Table 1 + Table 3 row for a topology.

    Returns:
        Dict with ``nodes``, ``edges``, ``avg_shortest_path`` and ``diameter``.
    """
    return {
        "nodes": topology.num_nodes,
        "edges": topology.num_edges,
        "avg_shortest_path": average_shortest_path_length(topology),
        "diameter": float(diameter(topology)),
    }


def routable_demand_fraction_per_edge(edge_path_incidence, num_demands: int, path_demand: np.ndarray) -> np.ndarray:
    """Figure 17: per-edge percentage of demands routable over that edge.

    A demand is *routable* on edge ``e`` if at least one of its candidate
    paths traverses ``e``.

    Args:
        edge_path_incidence: Sparse (num_edges, num_paths) 0/1 matrix
            (see :class:`repro.paths.pathset.PathSet`).
        num_demands: Total number of demands.
        path_demand: (num_paths,) array mapping each path to its demand id.

    Returns:
        (num_edges,) array of fractions in ``[0, 1]``.
    """
    if num_demands <= 0:
        raise TopologyError("num_demands must be positive")
    incidence = edge_path_incidence.tocsr()
    fractions = np.zeros(incidence.shape[0], dtype=float)
    path_demand = np.asarray(path_demand)
    for e in range(incidence.shape[0]):
        paths = incidence.indices[incidence.indptr[e]:incidence.indptr[e + 1]]
        fractions[e] = len(np.unique(path_demand[paths])) / num_demands
    return fractions
