"""Topology substrate: WAN graphs, generators, partitioning, failures, stats."""

from .failures import (
    apply_failures,
    failure_scenarios,
    physical_links,
    sample_link_failures,
)
from .generators import (
    GENERATORS,
    PAPER_SIZES,
    PAPER_STATS,
    asn,
    b4,
    get_topology,
    kdl,
    provision_capacities,
    swan,
    us_carrier,
)
from .graph import Topology, broadcast_capacities
from .partition import bfs_balanced_partition, cut_edges, partition_quality
from .stats import (
    all_pairs_hop_distances,
    average_shortest_path_length,
    diameter,
    routable_demand_fraction_per_edge,
    topology_summary,
)

__all__ = [
    "Topology",
    "broadcast_capacities",
    "GENERATORS",
    "PAPER_SIZES",
    "PAPER_STATS",
    "b4",
    "swan",
    "us_carrier",
    "kdl",
    "asn",
    "get_topology",
    "provision_capacities",
    "bfs_balanced_partition",
    "cut_edges",
    "partition_quality",
    "apply_failures",
    "failure_scenarios",
    "physical_links",
    "sample_link_failures",
    "all_pairs_hop_distances",
    "average_shortest_path_length",
    "diameter",
    "routable_demand_fraction_per_edge",
    "topology_summary",
]
