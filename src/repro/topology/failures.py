"""Link-failure models (§5.3, Figures 8 and 9).

The paper injects 1-2 link failures on B4 and 50/100/200 failures on ASN
(stress scenarios from ARROW [Zhong et al., SIGCOMM'21]), modeling a
failure as a capacity drop to zero. Failures are applied to both
directions of a physical link, matching fiber-cut semantics.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TopologyError
from .graph import Topology


def physical_links(topology: Topology) -> list[tuple[int, int]]:
    """Undirected physical links underlying the directed edge set."""
    seen: set[tuple[int, int]] = set()
    for u, v in topology.edges:
        seen.add((min(u, v), max(u, v)))
    return sorted(seen)


def sample_link_failures(
    topology: Topology, num_failures: int, seed: int = 0
) -> list[int]:
    """Sample ``num_failures`` physical links and return failed edge ids.

    Both directions of each sampled physical link fail. Sampling is
    without replacement; requesting more failures than physical links
    raises.

    Args:
        topology: The topology to fail links in.
        num_failures: Number of physical (bidirectional) links to fail.
        seed: RNG seed.

    Returns:
        Sorted list of directed edge ids with zeroed capacity.

    Raises:
        TopologyError: If ``num_failures`` exceeds the physical link count.
    """
    links = physical_links(topology)
    if num_failures < 0:
        raise TopologyError("num_failures must be non-negative")
    if num_failures > len(links):
        raise TopologyError(
            f"cannot fail {num_failures} of {len(links)} physical links"
        )
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(links), size=num_failures, replace=False)
    failed: list[int] = []
    for idx in chosen:
        u, v = links[int(idx)]
        if topology.has_edge(u, v):
            failed.append(topology.edge_id(u, v))
        if topology.has_edge(v, u):
            failed.append(topology.edge_id(v, u))
    return sorted(failed)


def apply_failures(topology: Topology, num_failures: int, seed: int = 0) -> Topology:
    """Return a copy of ``topology`` with sampled link failures applied."""
    return topology.with_failed_edges(
        sample_link_failures(topology, num_failures, seed)
    )


def failure_scenarios(
    topology: Topology,
    failure_probability: float,
    max_failures: int = 1,
) -> list[tuple[float, list[int]]]:
    """Enumerate weighted failure scenarios for TEAVAR-style TE (§5.1).

    Scenarios cover "no failure" plus every single-physical-link
    failure. Probabilities follow independent Bernoulli failures
    truncated at one simultaneous failure, renormalized.

    Args:
        topology: The topology.
        failure_probability: Per-physical-link failure probability.
        max_failures: Cap on simultaneous failures modeled. Only the
            single-failure scenario set is implemented (the dominant
            set TEAVAR* uses); any value other than 1 raises — the
            parameter exists so multi-failure support can land without
            an API change.

    Returns:
        List of ``(probability, failed_edge_ids)``; probabilities sum to 1.

    Raises:
        TopologyError: If ``failure_probability`` is outside ``[0, 1)``
            or ``max_failures`` is not 1.
    """
    if not 0 <= failure_probability < 1:
        raise TopologyError("failure_probability must be in [0, 1)")
    if max_failures != 1:
        raise TopologyError("only single-failure scenario sets are supported")
    links = physical_links(topology)
    p = failure_probability
    none_weight = (1 - p) ** len(links)
    scenarios: list[tuple[float, list[int]]] = [(none_weight, [])]
    for u, v in links:
        weight = p * (1 - p) ** (len(links) - 1)
        failed = []
        if topology.has_edge(u, v):
            failed.append(topology.edge_id(u, v))
        if topology.has_edge(v, u):
            failed.append(topology.edge_id(v, u))
        scenarios.append((weight, sorted(failed)))
    total = sum(w for w, _ in scenarios)
    return [(w / total, f) for w, f in scenarios]
