"""Generators for the five evaluation topologies (Table 1).

The paper evaluates on B4, SWAN, UsCarrier, Kdl, and ASN. Only B4's graph
is public in full detail; SWAN is proprietary and UsCarrier/Kdl/ASN come
from datasets not shipped with this repository. Per the reproduction
policy (DESIGN.md §2), we substitute *structure-matched synthetic
generators*:

- :func:`b4` returns the published 12-node, 38-directed-edge Google WAN.
- :func:`swan` synthesizes an O(100)-node inter-datacenter WAN.
- :func:`us_carrier` and :func:`kdl` synthesize sparse, high-diameter
  carrier backbones matched to Table 1 sizes and Table 3 statistics
  (diameter 35 / 58, average shortest-path length 12.1 / 22.7).
- :func:`asn` synthesizes interconnected star-shaped AS clusters with a
  small diameter (Table 3: diameter 8, average shortest path 3.2).

Every generator accepts a ``scale`` factor in ``(0, 1]`` that shrinks the
node/edge counts proportionally while preserving the structure class, so
the benchmark suite can sweep the paper's size ordering on CPU budgets.
All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TopologyError
from .graph import Topology

#: Published B4 inter-datacenter links (19 bidirectional links, 12 sites),
#: adapted from the topology figure in the B4 paper [Jain et al., SIGCOMM'13].
_B4_LINKS: list[tuple[int, int]] = [
    (0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 5), (3, 4), (3, 6),
    (4, 5), (4, 6), (5, 6), (5, 7), (6, 8), (7, 8), (7, 9), (8, 10),
    (9, 10), (9, 11), (10, 11),
]

#: Paper-reported sizes (Table 1) used as generator defaults. Directed edges.
PAPER_SIZES = {
    "B4": (12, 38),
    "SWAN": (100, 260),
    "UsCarrier": (158, 378),
    "Kdl": (754, 1790),
    "ASN": (1739, 8558),
}

#: Paper-reported structural statistics (Table 3) used by validation tests.
PAPER_STATS = {
    "B4": {"avg_shortest_path": 2.3, "diameter": 5},
    "UsCarrier": {"avg_shortest_path": 12.1, "diameter": 35},
    "Kdl": {"avg_shortest_path": 22.7, "diameter": 58},
    "ASN": {"avg_shortest_path": 3.2, "diameter": 8},
}


def _bidirectional(links: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Expand undirected links into both directed edges."""
    edges: list[tuple[int, int]] = []
    for u, v in links:
        edges.append((u, v))
        edges.append((v, u))
    return edges


def b4(capacity: float = 100.0) -> Topology:
    """The published 12-node Google B4 WAN (38 directed edges).

    Args:
        capacity: Uniform link capacity (the public dataset does not include
            capacities; §5.1 calibrates them — see :func:`provision_capacities`).
    """
    return Topology(
        num_nodes=12,
        edges=_bidirectional(_B4_LINKS),
        capacities=capacity,
        name="B4",
    )


def swan(num_nodes: int = 100, seed: int = 0, capacity: float = 100.0) -> Topology:
    """A synthetic SWAN-like inter-datacenter WAN with O(100) nodes.

    Microsoft's SWAN topology is proprietary; the paper reports only
    O(100) nodes and O(100) edges. We synthesize a connected sparse WAN:
    a random ring backbone (guaranteeing strong connectivity) plus random
    shortcut links until the directed edge count is ~2.6x the node count.

    Args:
        num_nodes: Number of datacenter sites.
        seed: RNG seed.
        capacity: Uniform link capacity before provisioning.
    """
    if num_nodes < 4:
        raise TopologyError("SWAN generator requires at least 4 nodes")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_nodes)
    links: set[tuple[int, int]] = set()

    def add(u: int, v: int) -> None:
        if u != v:
            links.add((min(u, v), max(u, v)))

    for i in range(num_nodes):
        add(int(order[i]), int(order[(i + 1) % num_nodes]))
    target_links = int(1.3 * num_nodes)
    while len(links) < target_links:
        u, v = rng.integers(0, num_nodes, size=2)
        add(int(u), int(v))
    return Topology(
        num_nodes=num_nodes,
        edges=_bidirectional(sorted(links)),
        capacities=capacity,
        name="SWAN",
    )


def _carrier_backbone(
    num_nodes: int,
    num_links: int,
    diameter_target: int,
    seed: int,
    name: str,
    capacity: float,
) -> Topology:
    """Synthesize a sparse, high-diameter carrier backbone.

    Construction: a backbone path of ``diameter_target`` hops (long-haul
    fiber route), remaining nodes attached as short chain branches
    (regional spurs), then short-range chords between nodes that are close
    along the backbone (parallel fiber) up to the link budget. Short-range
    chords barely reduce the diameter, so the result stays within the
    Table 3 band.
    """
    if diameter_target + 1 > num_nodes:
        raise TopologyError(
            f"{name}: diameter target {diameter_target} needs more than "
            f"{num_nodes} nodes"
        )
    rng = np.random.default_rng(seed)
    links: set[tuple[int, int]] = set()
    # position[i] = index along the backbone (branch nodes inherit the
    # position of their attachment point) — used to keep chords short-range.
    position = np.zeros(num_nodes, dtype=int)

    backbone = list(range(diameter_target + 1))
    for i in range(diameter_target):
        links.add((i, i + 1))
        position[i] = i
    position[diameter_target] = diameter_target

    max_branch_len = max(1, diameter_target // 8)
    next_node = diameter_target + 1
    while next_node < num_nodes:
        attach = int(rng.integers(0, len(backbone)))
        branch_len = int(rng.integers(1, max_branch_len + 1))
        prev = backbone[attach]
        for _ in range(branch_len):
            if next_node >= num_nodes:
                break
            links.add((min(prev, next_node), max(prev, next_node)))
            position[next_node] = position[prev]
            prev = next_node
            next_node += 1

    # Short-range chords: connect nodes within a small backbone window.
    window = max(2, diameter_target // 10)
    attempts = 0
    while len(links) < num_links and attempts < 50 * num_links:
        attempts += 1
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u == v or abs(int(position[u]) - int(position[v])) > window:
            continue
        links.add((min(u, v), max(u, v)))
    return Topology(
        num_nodes=num_nodes,
        edges=_bidirectional(sorted(links)),
        capacities=capacity,
        name=name,
    )


def us_carrier(scale: float = 1.0, seed: int = 1, capacity: float = 100.0) -> Topology:
    """Synthetic UsCarrier-like backbone (Table 1: 158 nodes, 378 directed edges).

    Args:
        scale: Fraction of the paper's size to generate (``1.0`` = full size).
        seed: RNG seed.
        capacity: Uniform link capacity before provisioning.
    """
    num_nodes, num_directed = PAPER_SIZES["UsCarrier"]
    n = max(12, int(round(num_nodes * scale)))
    links = max(n, int(round(num_directed / 2 * scale)))
    diameter = max(6, int(round(35 * scale ** 0.5 if scale < 1 else 35)))
    diameter = min(diameter, n - 2)
    return _carrier_backbone(n, links, diameter, seed, "UsCarrier", capacity)


def kdl(scale: float = 1.0, seed: int = 2, capacity: float = 100.0) -> Topology:
    """Synthetic Kdl-like backbone (Table 1: 754 nodes, 1790 directed edges).

    Args:
        scale: Fraction of the paper's size to generate (``1.0`` = full size).
        seed: RNG seed.
        capacity: Uniform link capacity before provisioning.
    """
    num_nodes, num_directed = PAPER_SIZES["Kdl"]
    n = max(16, int(round(num_nodes * scale)))
    links = max(n, int(round(num_directed / 2 * scale)))
    diameter = max(8, int(round(58 * scale ** 0.5 if scale < 1 else 58)))
    diameter = min(diameter, n - 2)
    return _carrier_backbone(n, links, diameter, seed, "Kdl", capacity)


def asn(scale: float = 1.0, seed: int = 3, capacity: float = 100.0) -> Topology:
    """Synthetic ASN-like topology (Table 1: 1739 nodes, 8558 directed edges).

    The paper describes ASN as star-shaped AS clusters whose hubs are
    strongly interconnected (Appendix D), giving a small diameter (8) and
    short average paths (3.2) despite the node count. We synthesize:
    hub nodes forming a dense random hub graph, each hub carrying a star
    of leaf nodes, plus a few two-hop leaf chains to reach the paper's
    diameter.

    Args:
        scale: Fraction of the paper's size to generate (``1.0`` = full size).
        seed: RNG seed.
        capacity: Uniform link capacity before provisioning.
    """
    num_nodes, num_directed = PAPER_SIZES["ASN"]
    n = max(20, int(round(num_nodes * scale)))
    target_links = max(n, int(round(num_directed / 2 * scale)))
    rng = np.random.default_rng(seed)

    num_hubs = max(4, int(round(n / 12)))
    hubs = list(range(num_hubs))
    links: set[tuple[int, int]] = set()

    # Hub ring for guaranteed connectivity.
    for i in range(num_hubs):
        u, v = hubs[i], hubs[(i + 1) % num_hubs]
        links.add((min(u, v), max(u, v)))

    # Leaves: mostly direct spokes; a fraction form 2-hop chains so the
    # diameter reaches ~8 rather than ~6.
    next_node = num_hubs
    while next_node < n:
        hub = int(rng.integers(0, num_hubs))
        if rng.random() < 0.08 and next_node + 1 < n:
            links.add((min(hub, next_node), max(hub, next_node)))
            links.add((next_node, next_node + 1))
            next_node += 2
        else:
            links.add((min(hub, next_node), max(hub, next_node)))
            next_node += 1

    # Densify the hub graph with random hub-hub links up to the budget.
    attempts = 0
    while len(links) < target_links and attempts < 100 * target_links:
        attempts += 1
        u = int(rng.integers(0, num_hubs))
        v = int(rng.integers(0, num_hubs))
        if u != v:
            links.add((min(u, v), max(u, v)))
    return Topology(
        num_nodes=n,
        edges=_bidirectional(sorted(links)),
        capacities=capacity,
        name="ASN",
    )


#: Registry of generator callables keyed by paper topology name.
GENERATORS = {
    "B4": lambda scale=1.0, seed=0, capacity=100.0: b4(capacity=capacity),
    "SWAN": lambda scale=1.0, seed=0, capacity=100.0: swan(
        num_nodes=max(8, int(round(100 * scale))), seed=seed, capacity=capacity
    ),
    "UsCarrier": us_carrier,
    "Kdl": kdl,
    "ASN": asn,
}


def get_topology(
    name: str, scale: float = 1.0, seed: int | None = None, capacity: float = 100.0
) -> Topology:
    """Build one of the five evaluation topologies by name.

    Args:
        name: One of ``"B4"``, ``"SWAN"``, ``"UsCarrier"``, ``"Kdl"``, ``"ASN"``.
        scale: Structure-preserving size factor in ``(0, 1]``.
        seed: Optional RNG seed override.
        capacity: Uniform link capacity before provisioning.

    Raises:
        TopologyError: If the name is unknown or the scale is invalid.
    """
    if name not in GENERATORS:
        raise TopologyError(
            f"unknown topology {name!r}; expected one of {sorted(GENERATORS)}"
        )
    if not 0 < scale <= 1:
        raise TopologyError(f"scale must be in (0, 1], got {scale}")
    kwargs: dict = {"scale": scale, "capacity": capacity}
    if seed is not None:
        kwargs["seed"] = seed
    if name == "B4":
        kwargs.pop("scale")
        kwargs.pop("seed", None)
    return GENERATORS[name](**kwargs)


def provision_capacities(
    topology: Topology,
    shortest_path_loads: np.ndarray,
    headroom: float = 1.3,
    min_capacity_fraction: float = 0.05,
) -> Topology:
    """Set link capacities so a majority of demand is satisfiable (§5.1).

    The paper sets unspecified capacities "to ensure that the
    best-performing TE scheme satisfies a majority of traffic demand". We
    apply the standard provisioning heuristic: capacity = shortest-path
    load x headroom, floored at a fraction of the maximum load so no link
    is vanishingly small.

    Args:
        topology: The topology to provision.
        shortest_path_loads: Per-edge load when every demand is routed on
            its shortest path (see
            :meth:`repro.paths.pathset.PathSet.shortest_path_loads`).
        headroom: Multiplicative overprovisioning factor.
        min_capacity_fraction: Floor, as a fraction of the max per-edge load.

    Returns:
        A copy of ``topology`` with provisioned capacities.
    """
    loads = np.asarray(shortest_path_loads, dtype=float)
    if loads.shape != (topology.num_edges,):
        raise TopologyError(
            f"loads shape {loads.shape} does not match {topology.num_edges} edges"
        )
    if headroom <= 0:
        raise TopologyError("headroom must be positive")
    peak = float(loads.max()) if loads.size else 0.0
    floor = min_capacity_fraction * max(peak, 1.0)
    capacities = np.maximum(loads * headroom, floor)
    return topology.with_capacities(capacities)
