"""Directed WAN topology with link capacities and latencies.

The :class:`Topology` class is the foundational substrate of the library.
It stores a directed multigraph-free graph (at most one edge per ordered
node pair) with per-edge capacity and latency, backed by dense numpy
arrays for vectorized access and by an adjacency index for traversal.

Conventions
-----------
- Nodes are integers ``0..num_nodes-1``. Named sites can be attached via
  ``node_names`` but all algorithms operate on integer ids.
- Edges are *directed*. The paper reports directed edge counts
  (e.g. B4 has 12 nodes and 38 directed edges).
- Capacities are in arbitrary bandwidth units (the same units as traffic
  demands); latencies are in arbitrary time units (used by the
  latency-penalized objective of §5.5).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import networkx as nx
import numpy as np

from ..exceptions import TopologyError


def broadcast_capacities(capacities: np.ndarray, batch: int) -> np.ndarray:
    """Normalize an (E,) or (T, E) capacities argument to a (T, E) stack.

    The single implementation of the capacity-broadcast contract shared
    by every batched entry point (model forward, evaluator, ADMM,
    objectives, scheme base). A 1-D vector is broadcast read-only across
    the batch; a 2-D stack is passed through unchanged.
    """
    capacities = np.asarray(capacities, dtype=float)
    if capacities.ndim == 1:
        capacities = np.broadcast_to(capacities, (batch, capacities.shape[0]))
    return capacities


class Topology:
    """A directed WAN graph with capacities and latencies.

    Args:
        num_nodes: Number of network sites.
        edges: Iterable of ``(src, dst)`` directed pairs.
        capacities: Per-edge capacity, aligned with ``edges``. A scalar
            applies the same capacity to every edge.
        latencies: Per-edge latency, aligned with ``edges``. Defaults to 1.0
            for every edge (hop-count latency).
        name: Human-readable topology name (e.g. ``"B4"``).
        node_names: Optional mapping from node id to site name.

    Raises:
        TopologyError: On duplicate edges, self-loops, out-of-range
            endpoints, or non-positive capacities.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        capacities: float | Sequence[float] | np.ndarray = 1.0,
        latencies: float | Sequence[float] | np.ndarray | None = None,
        name: str = "topology",
        node_names: Mapping[int, str] | None = None,
    ) -> None:
        if num_nodes <= 0:
            raise TopologyError(f"num_nodes must be positive, got {num_nodes}")
        edge_list = [(int(u), int(v)) for u, v in edges]
        seen: set[tuple[int, int]] = set()
        for u, v in edge_list:
            if u == v:
                raise TopologyError(f"self-loop ({u}, {v}) is not allowed")
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise TopologyError(
                    f"edge ({u}, {v}) references a node outside 0..{num_nodes - 1}"
                )
            if (u, v) in seen:
                raise TopologyError(f"duplicate edge ({u}, {v})")
            seen.add((u, v))

        self.name = name
        self.num_nodes = num_nodes
        self._edges = edge_list
        self._edge_index = {edge: i for i, edge in enumerate(edge_list)}
        self.node_names = dict(node_names) if node_names else {}

        cap = np.asarray(capacities, dtype=float)
        if cap.ndim == 0:
            cap = np.full(len(edge_list), float(cap))
        if cap.shape != (len(edge_list),):
            raise TopologyError(
                f"capacities has shape {cap.shape}, expected ({len(edge_list)},)"
            )
        if np.any(cap < 0):
            raise TopologyError("capacities must be non-negative")
        self.capacities = cap.copy()

        if latencies is None:
            lat = np.ones(len(edge_list), dtype=float)
        else:
            lat = np.asarray(latencies, dtype=float)
            if lat.ndim == 0:
                lat = np.full(len(edge_list), float(lat))
            if lat.shape != (len(edge_list),):
                raise TopologyError(
                    f"latencies has shape {lat.shape}, expected ({len(edge_list)},)"
                )
            if np.any(lat <= 0):
                raise TopologyError("latencies must be positive")
        self.latencies = lat.copy()

        # Adjacency index: out_edges[u] is a list of (edge_id, v).
        self._out_edges: list[list[tuple[int, int]]] = [[] for _ in range(num_nodes)]
        self._in_edges: list[list[tuple[int, int]]] = [[] for _ in range(num_nodes)]
        for eid, (u, v) in enumerate(edge_list):
            self._out_edges[u].append((eid, v))
            self._in_edges[v].append((eid, u))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Directed edge list in edge-id order (copy)."""
        return list(self._edges)

    def edge_id(self, src: int, dst: int) -> int:
        """Return the edge id for a directed ``(src, dst)`` pair.

        Raises:
            TopologyError: If the edge does not exist.
        """
        try:
            return self._edge_index[(src, dst)]
        except KeyError:
            raise TopologyError(f"edge ({src}, {dst}) does not exist") from None

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether a directed edge ``(src, dst)`` exists."""
        return (src, dst) in self._edge_index

    def endpoints(self, edge_id: int) -> tuple[int, int]:
        """Return the ``(src, dst)`` endpoints of ``edge_id``."""
        return self._edges[edge_id]

    def out_edges(self, node: int) -> list[tuple[int, int]]:
        """Outgoing ``(edge_id, neighbor)`` pairs of ``node``."""
        return list(self._out_edges[node])

    def in_edges(self, node: int) -> list[tuple[int, int]]:
        """Incoming ``(edge_id, neighbor)`` pairs of ``node``."""
        return list(self._in_edges[node])

    def neighbors(self, node: int) -> Iterator[int]:
        """Iterate over out-neighbors of ``node``."""
        return (v for _, v in self._out_edges[node])

    def capacity(self, src: int, dst: int) -> float:
        """Capacity of the directed edge ``(src, dst)``."""
        return float(self.capacities[self.edge_id(src, dst)])

    def total_capacity(self) -> float:
        """Sum of all directed edge capacities."""
        return float(self.capacities.sum())

    # ------------------------------------------------------------------
    # Mutating copies
    # ------------------------------------------------------------------
    def with_capacities(self, capacities: np.ndarray) -> "Topology":
        """Return a copy of this topology with new per-edge capacities."""
        return Topology(
            self.num_nodes,
            self._edges,
            capacities=capacities,
            latencies=self.latencies,
            name=self.name,
            node_names=self.node_names,
        )

    def with_failed_edges(self, failed_edge_ids: Iterable[int]) -> "Topology":
        """Return a copy where the given edges have zero capacity.

        The paper models a link failure as a capacity drop to zero (§3.1,
        footnote 1), keeping the graph structure (and path sets) intact.
        """
        cap = self.capacities.copy()
        for eid in failed_edge_ids:
            if not (0 <= eid < self.num_edges):
                raise TopologyError(f"edge id {eid} out of range")
            cap[eid] = 0.0
        return self.with_capacities(cap)

    def scaled_capacities(self, factor: float) -> "Topology":
        """Return a copy with all capacities multiplied by ``factor``."""
        if factor < 0:
            raise TopologyError("capacity scale factor must be non-negative")
        return self.with_capacities(self.capacities * factor)

    # ------------------------------------------------------------------
    # Interop and dunder protocol
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` with capacity/latency attrs."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_nodes))
        for eid, (u, v) in enumerate(self._edges):
            graph.add_edge(
                u,
                v,
                capacity=float(self.capacities[eid]),
                latency=float(self.latencies[eid]),
                edge_id=eid,
            )
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph, name: str = "topology") -> "Topology":
        """Build a topology from a DiGraph with optional capacity/latency attrs.

        Nodes are relabeled to ``0..n-1`` in sorted order; original labels are
        preserved in ``node_names``.
        """
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = []
        caps = []
        lats = []
        for u, v, data in graph.edges(data=True):
            edges.append((index[u], index[v]))
            caps.append(float(data.get("capacity", 1.0)))
            lats.append(float(data.get("latency", 1.0)))
        return cls(
            len(nodes),
            edges,
            capacities=np.array(caps) if caps else 1.0,
            latencies=np.array(lats) if lats else None,
            name=name,
            node_names={i: str(node) for node, i in index.items()},
        )

    def is_strongly_connected(self) -> bool:
        """Whether every node can reach every other node."""
        return nx.is_strongly_connected(self.to_networkx())

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self._edges == other._edges
            and np.allclose(self.capacities, other.capacities)
            and np.allclose(self.latencies, other.latencies)
        )

    def __hash__(self) -> int:  # identity hashing; topologies are mutable-ish
        return id(self)
