"""Command-line interface: run reproduction experiments from a shell.

Usage (installed as ``teal-repro`` or via ``python -m repro.cli``):

    teal-repro topologies                 # Table 1 / Table 3 rows
    teal-repro compare --topology SWAN    # Figure 6-style comparison
    teal-repro failures --topology B4     # Figure 8-style failure sweep
    teal-repro train --topology B4        # train + report a Teal model
    teal-repro sweep --topologies B4 SWAN # cross-topology scenario grid
    teal-repro stream --topology B4       # event-driven streaming online TE
    teal-repro analyze grid1.json grid2.json  # aggregate grid analytics
    teal-repro plot grid1.json -o figures # paper-style figures (SVG/PNG)
    teal-repro lint                       # RL001-RL004 static analysis
    teal-repro cache prune --cache-dir .cache --max-bytes 500M  # LRU evict
    teal-repro cache prune --cache-dir .cache --evict-stale  # drop old schemas

Interrupted sweeps resume: ``sweep --cache-dir .cache`` checkpoints every
completed grid cell, and re-running with ``--resume`` loads the completed
cells and executes only the remainder (bit-identical results).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_topologies(args: argparse.Namespace) -> int:
    from .topology import PAPER_SIZES, get_topology, topology_summary

    print(f"{'name':<10} {'nodes':>7} {'edges':>7} {'avg path':>9} {'diameter':>9}")
    for name in PAPER_SIZES:
        topo = get_topology(name, scale=args.scale)
        summary = topology_summary(topo)
        print(
            f"{name:<10} {summary['nodes']:>7.0f} {summary['edges']:>7.0f} "
            f"{summary['avg_shortest_path']:>9.2f} {summary['diameter']:>9.0f}"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .harness import (
        build_scenario,
        make_baselines,
        run_offline_comparison,
        trained_teal,
    )
    from .simulation.metrics import format_comparison_table

    scenario = build_scenario(args.topology, scale=args.scale, seed=args.seed)
    print(
        f"scenario: {scenario.topology.name} "
        f"({scenario.topology.num_nodes} nodes, "
        f"{scenario.pathset.num_demands} demands)"
    )
    schemes = dict(make_baselines(scenario))
    print("training Teal...")
    schemes["Teal"] = trained_teal(
        scenario, precision=args.precision, backend=args.backend
    )
    runs = run_offline_comparison(
        scenario, schemes, matrices=scenario.split.test[: args.matrices]
    )
    print(format_comparison_table(list(runs.values())))
    return 0


def _cmd_failures(args: argparse.Namespace) -> int:
    from .harness import (
        build_scenario,
        make_baselines,
        run_offline_comparison,
        trained_teal,
    )
    from .topology import sample_link_failures

    scenario = build_scenario(args.topology, scale=args.scale, seed=args.seed)
    schemes = dict(make_baselines(scenario))
    print("training Teal...")
    schemes["Teal"] = trained_teal(
        scenario, precision=args.precision, backend=args.backend
    )

    print(f"{'failures':>9} | " + " | ".join(f"{n:>8}" for n in schemes))
    for count in args.counts:
        caps = scenario.capacities.copy()
        if count:
            failed = sample_link_failures(scenario.topology, count, seed=count)
            caps[failed] = 0.0
        runs = run_offline_comparison(
            scenario,
            schemes,
            matrices=scenario.split.test[: args.matrices],
            capacities=caps,
        )
        row = " | ".join(
            f"{100 * runs[n].mean_satisfied:8.1f}" for n in schemes
        )
        print(f"{count:>9} | {row}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .config import TrainingConfig
    from .harness import build_scenario, trained_teal

    scenario = build_scenario(args.topology, scale=args.scale, seed=args.seed)
    config = TrainingConfig(
        steps=args.steps,
        warm_start_steps=args.warm_start_steps,
        log_every=max(1, args.steps // 4),
    )
    teal = trained_teal(
        scenario, config=config, use_cache=False,
        precision=args.precision, backend=args.backend,
    )
    demands = scenario.demands(scenario.split.test[0])
    allocation = teal.allocate(scenario.pathset, demands)
    from .simulation import evaluate_allocation

    report = evaluate_allocation(
        scenario.pathset, allocation.split_ratios, demands
    )
    print(
        f"trained Teal on {scenario.topology.name}: "
        f"satisfied {report.satisfied_fraction:.1%} on the first test "
        f"matrix in {1000 * allocation.compute_time:.1f} ms"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .config import TrainingConfig
    from .exceptions import ReproError
    from .sweep import ScenarioSuite, run_scenario_grid

    training = TrainingConfig(
        steps=args.steps,
        warm_start_steps=args.warm_start_steps,
        log_every=max(1, args.steps),
    )
    suite = ScenarioSuite(
        topologies=tuple(args.topologies),
        failure_counts=tuple(args.failures),
        seeds=tuple(args.seeds),
        schemes=tuple(args.schemes),
        mode=args.mode,
        precision=args.precision,
        backend=args.backend,
        train=args.train,
        validation=args.validation,
        test=args.matrices,
        training=training,
        cell_batch=args.cell_batch,
    )
    print(
        f"sweeping {suite.num_jobs} topology job(s), "
        f"{suite.num_cells} grid cell(s) [{args.executor}]..."
    )
    try:
        result = run_scenario_grid(
            suite,
            executor=args.executor,
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            resume=args.resume,
            max_cells=args.max_cells,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(result.summary_table())
    print(
        f"\nswept {result.metadata['num_cells']} cells in "
        f"{result.metadata['total_seconds']:.2f}s "
        f"({result.metadata['executor']}, "
        f"{result.metadata['max_workers']} worker(s))"
    )
    checkpointing = result.metadata.get("checkpointing", {})
    if checkpointing.get("enabled"):
        print(
            f"checkpointed under suite {checkpointing['suite_token']}: "
            f"{checkpointing['loaded_cells']} cell(s) resumed from cache, "
            f"{checkpointing['executed_jobs']} job(s) executed"
        )
    if args.output:
        result.to_json(args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from .harness import (
        build_scenario,
        make_baselines,
        run_streaming_sweep,
        trained_teal,
    )
    from .simulation.streaming import EventSchedule
    from .topology import sample_link_failures

    scenario = build_scenario(args.topology, scale=args.scale, seed=args.seed)
    print(
        f"scenario: {scenario.topology.name} "
        f"({scenario.topology.num_nodes} nodes, "
        f"{scenario.pathset.num_demands} demands)"
    )
    schemes: dict[str, object] = {}
    baseline_names = tuple(n for n in args.schemes if n != "Teal")
    if baseline_names:
        schemes.update(make_baselines(scenario, include=baseline_names))
    if "Teal" in args.schemes:
        print("training Teal...")
        schemes["Teal"] = trained_teal(
            scenario, precision=args.precision, backend=args.backend
        )
    schemes = {name: schemes[name] for name in args.schemes}

    matrices = scenario.split.test[: args.matrices]
    failed_edges: tuple[int, ...] = ()
    failure_at = None
    recover_at = None
    if args.failures:
        failure_at = args.failure_at
        if failure_at is None:
            failure_at = len(matrices) // 2
        recover_at = args.recover_at
        failed_edges = tuple(
            sample_link_failures(
                scenario.topology, args.failures, seed=args.seed
            )
        )
    schedule = EventSchedule.from_failure_case(
        matrices,
        interval_seconds=args.interval_seconds,
        failed_edges=failed_edges,
        failure_at=failure_at,
        recover_at=recover_at,
    )
    print(
        f"streaming {schedule.num_intervals} interval(s), "
        f"{len(schedule.events)} event(s) "
        f"[{'cold' if args.cold else 'warm'} decisions]..."
    )
    results = run_streaming_sweep(
        scenario,
        schemes,
        {"stream": schedule},
        warm_start=not args.cold,
        warm_iterations=args.warm_iterations,
    )["stream"]

    header = (
        f"{'scheme':<14} {'p50 lat (ms)':>13} {'p99 lat (ms)':>13} "
        f"{'warm %':>7} {'satisfied %':>12} {'stale %':>8}"
    )
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        print(
            f"{name:<14} {1000 * result.p50_latency:>13.2f} "
            f"{1000 * result.p99_latency:>13.2f} "
            f"{100 * result.warm_fraction:>6.0f}% "
            f"{100 * result.mean_satisfied:>11.1f}% "
            f"{100 * result.stale_fraction:>7.1f}%"
        )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(
                {name: r.to_dict() for name, r in results.items()},
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .exceptions import ReproError
    from .sweep.analytics import analyze, format_analytics, load_grid_results

    try:
        results = load_grid_results(args.inputs)
        analytics = analyze(
            results,
            baseline=args.baseline,
            accelerated=args.accelerated,
            sources=args.inputs,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(format_analytics(analytics))
    try:
        if args.output:
            analytics.to_json(args.output)
            print(f"wrote {args.output}")
        if args.csv:
            analytics.to_csv(args.csv)
            print(f"wrote {args.csv}")
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from .exceptions import ReproError
    from .sweep.analytics import analyze, load_grid_results
    from .sweep.plotting import render_figures

    formats = ("svg", "png") if args.format == "both" else (args.format,)
    try:
        results = load_grid_results(args.inputs)
        analytics = analyze(
            results,
            baseline=args.baseline,
            accelerated=args.accelerated,
            sources=args.inputs,
        )
        written = render_figures(
            results,
            analytics,
            args.output_dir,
            prefix=args.prefix,
            formats=formats,
            failure_count=args.cdf_failures,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .exceptions import ReproError
    from .lint.baseline import (
        apply_baseline,
        load_baseline,
        save_baseline,
        updated_entries,
    )
    from .lint.engine import lint_paths
    from .lint.report import format_json, format_text

    try:
        findings = lint_paths(args.paths)
        entries = load_baseline(args.baseline)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.update_baseline:
        entries = updated_entries(findings, entries)
        try:
            save_baseline(args.baseline, entries)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"wrote {args.baseline}: {len(entries)} entries covering "
            f"{len(findings)} finding(s)"
        )
        return 0
    match = apply_baseline(findings, entries)
    if args.format == "json":
        sys.stdout.write(format_json(match))
    else:
        print(format_text(match, explain=args.explain))
    return 1 if match.new else 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    from .cache import (
        cache_entries,
        parse_size,
        prune_cache_dir,
        stale_entries,
    )
    from .exceptions import ReproError

    if args.max_bytes is None and not args.evict_stale:
        print(
            "error: nothing to do; pass --max-bytes and/or --evict-stale",
            file=sys.stderr,
        )
        return 2
    verb = "would remove" if args.dry_run else "removed"
    removed = []
    try:
        stale = stale_entries(args.cache_dir)
        if args.evict_stale:
            for entry in stale:
                if not args.dry_run:
                    entry.path.unlink(missing_ok=True)
                removed.append(entry.path)
                print(f"{verb} {entry.path} (stale schema)")
        elif stale:
            noun = (
                "1 entry has a stale schema version"
                if len(stale) == 1
                else f"{len(stale)} entries have stale schema versions"
            )
            print(f"{noun}; re-run with --evict-stale to drop them")
        budget = None
        if args.max_bytes is not None:
            budget = parse_size(args.max_bytes)
            pruned = prune_cache_dir(
                args.cache_dir, budget, dry_run=args.dry_run
            )
            for path in pruned:
                if path not in set(removed):
                    removed.append(path)
                    print(f"{verb} {path}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    kept = cache_entries(args.cache_dir)
    if args.dry_run:
        kept = [e for e in kept if e.path not in set(removed)]
    total = sum(e.bytes for e in kept)
    budget_text = (
        "no byte budget"
        if budget is None
        else f"budget {budget / 1024**2:.1f} MiB"
    )
    print(
        f"{verb} {len(removed)} entr{'y' if len(removed) == 1 else 'ies'}; "
        f"{len(kept)} kept ({total / 1024**2:.1f} MiB / {budget_text})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="teal-repro",
        description="Teal (SIGCOMM 2023) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_precision(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--precision",
            choices=("float32", "float64"),
            default="float32",
            help="Teal inference precision (training always runs float64; "
            "float32 matches float64 results within 1e-4 relative and is "
            "measurably faster — see README 'Precision & performance')",
        )

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=("numpy", "torch"),
            default=None,
            help="array backend of Teal's fused inference (default: the "
            "REPRO_BACKEND env var, then numpy; the numpy backend is "
            "bit-identical to the pre-dispatch kernels — see README "
            "'Backend substrate')",
        )

    p_topo = sub.add_parser("topologies", help="print Table 1 / Table 3 rows")
    p_topo.add_argument("--scale", type=float, default=1.0)
    p_topo.set_defaults(func=_cmd_topologies)

    p_cmp = sub.add_parser("compare", help="scheme comparison on one topology")
    p_cmp.add_argument("--topology", default="SWAN")
    p_cmp.add_argument("--scale", type=float, default=None)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--matrices", type=int, default=4)
    add_precision(p_cmp)
    add_backend(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_fail = sub.add_parser("failures", help="link-failure sweep")
    p_fail.add_argument("--topology", default="B4")
    p_fail.add_argument("--scale", type=float, default=None)
    p_fail.add_argument("--seed", type=int, default=0)
    p_fail.add_argument("--matrices", type=int, default=3)
    p_fail.add_argument(
        "--counts", type=int, nargs="+", default=[0, 1, 2]
    )
    add_precision(p_fail)
    add_backend(p_fail)
    p_fail.set_defaults(func=_cmd_failures)

    p_train = sub.add_parser("train", help="train a Teal model")
    p_train.add_argument("--topology", default="B4")
    p_train.add_argument("--scale", type=float, default=None)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--steps", type=int, default=60)
    p_train.add_argument("--warm-start-steps", type=int, default=220)
    add_precision(p_train)
    add_backend(p_train)
    p_train.set_defaults(func=_cmd_train)

    p_sweep = sub.add_parser(
        "sweep", help="cross-topology scenario-grid sweep"
    )
    p_sweep.add_argument("--topologies", nargs="+", default=["B4", "SWAN"])
    p_sweep.add_argument(
        "--failures", type=int, nargs="+", default=[0, 1],
        help="simultaneous link failures per grid level",
    )
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=[0])
    p_sweep.add_argument(
        "--schemes", nargs="+", default=["LP-all", "Teal"],
        help="baseline names plus 'Teal'",
    )
    p_sweep.add_argument("--mode", choices=("offline", "online"), default="offline")
    p_sweep.add_argument("--matrices", type=int, default=4, help="test matrices")
    p_sweep.add_argument("--train", type=int, default=8)
    p_sweep.add_argument("--validation", type=int, default=2)
    p_sweep.add_argument("--steps", type=int, default=20)
    p_sweep.add_argument("--warm-start-steps", type=int, default=80)
    p_sweep.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="process"
    )
    p_sweep.add_argument("--workers", type=int, default=None)
    p_sweep.add_argument(
        "--output", default=None, help="write the GridResult JSON here"
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="persistent scenario/model cache directory: re-runs load "
        "scenarios and trained Teal checkpoints from disk instead of "
        "rebuilding/retraining (bit-identical results)",
    )
    add_precision(p_sweep)
    add_backend(p_sweep)
    p_sweep.add_argument(
        "--cell-batch",
        type=int,
        default=None,
        help="grid-cell fusion bound: 0 stacks every compatible cell of "
        "a topology job into one batched kernel invocation (the "
        "default), 1 runs a strict per-cell loop, N>1 fuses chunks of "
        "at most N failure levels; every value is bit-identical "
        "(default: the REPRO_CELL_BATCH env var, then 0 — see README "
        "'Grid cell batching')",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="load completed grid cells checkpointed under --cache-dir by "
        "an earlier (possibly interrupted) run of the same suite and "
        "execute only the remainder; the merged result is bit-identical "
        "to an uninterrupted run (requires --cache-dir)",
    )
    p_sweep.add_argument(
        "--max-cells", type=int, default=None,
        help="stop after checkpointing this many grid cells (simulates "
        "an interruption; mainly for testing --resume)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_stream = sub.add_parser(
        "stream",
        help="streaming online TE: event-driven decisions with "
        "p50/p99 decision latency",
    )
    p_stream.add_argument("--topology", default="B4")
    p_stream.add_argument("--scale", type=float, default=None)
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument(
        "--matrices", type=int, default=6, help="trace length (intervals)"
    )
    p_stream.add_argument(
        "--schemes", nargs="+", default=["Teal"],
        help="baseline names plus 'Teal'",
    )
    p_stream.add_argument(
        "--failures", type=int, default=0,
        help="simultaneous physical-link failures injected mid-trace",
    )
    p_stream.add_argument(
        "--failure-at", type=int, default=None,
        help="interval the failure strikes (default: mid-trace)",
    )
    p_stream.add_argument(
        "--recover-at", type=int, default=None,
        help="interval the failed links recover (default: never)",
    )
    p_stream.add_argument(
        "--interval-seconds", type=float, default=300.0,
        help="TE interval length (staleness budget)",
    )
    p_stream.add_argument(
        "--cold", action="store_true",
        help="disable the ADMM warm-start path (full pipeline per "
        "decision; the mode equivalent to the offline replay)",
    )
    p_stream.add_argument(
        "--warm-iterations", type=int, default=None,
        help="ADMM iteration budget of warm decisions",
    )
    p_stream.add_argument(
        "--output", default=None, help="write per-scheme JSON results here"
    )
    add_precision(p_stream)
    add_backend(p_stream)
    p_stream.set_defaults(func=_cmd_stream)

    p_analyze = sub.add_parser(
        "analyze",
        help="reduce GridResult JSONs into aggregate curves "
        "(speedup vs topology size, distributions, phase/precision tables)",
    )
    p_analyze.add_argument(
        "inputs", nargs="+", help="GridResult JSON files (from sweep --output)"
    )
    p_analyze.add_argument(
        "--baseline", default=None,
        help="baseline scheme for speedup curves "
        "(default: the suites' first non-accelerated scheme)",
    )
    p_analyze.add_argument(
        "--accelerated", default="Teal",
        help="accelerated scheme for speedup curves (default Teal)",
    )
    p_analyze.add_argument(
        "--output", default=None, help="write the analytics JSON here"
    )
    p_analyze.add_argument(
        "--csv", default=None, help="write the speedup-curve CSV here"
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_plot = sub.add_parser(
        "plot",
        help="render GridResult JSONs into paper-style figures: speedup "
        "vs topology size (Figs 4-5), satisfied-demand CDFs (Fig 7), "
        "and failure robustness (Figs 8-9); SVG needs no third-party "
        "dependency, PNG uses matplotlib when installed",
    )
    p_plot.add_argument(
        "inputs", nargs="+", help="GridResult JSON files (from sweep --output)"
    )
    p_plot.add_argument(
        "--baseline", default=None,
        help="baseline scheme for the speedup figure "
        "(default: the suites' first non-accelerated scheme)",
    )
    p_plot.add_argument(
        "--accelerated", default="Teal",
        help="accelerated scheme for the speedup figure (default Teal)",
    )
    p_plot.add_argument(
        "--output-dir", "-o", default="figures",
        help="directory the figures are written into (default: figures)",
    )
    p_plot.add_argument(
        "--prefix", default="grid",
        help="figure filename prefix (default: grid)",
    )
    p_plot.add_argument(
        "--format", choices=("svg", "png", "both"), default="svg",
        help="output format(s); png falls back to the built-in SVG "
        "renderer when matplotlib is not installed (default: svg)",
    )
    p_plot.add_argument(
        "--cdf-failures", type=int, default=None,
        help="restrict the satisfied-demand CDF to one failure level "
        "(default: pool all levels)",
    )
    p_plot.set_defaults(func=_cmd_plot)

    p_lint = sub.add_parser(
        "lint",
        help="invariant-checking static analysis (dtype policy, kernel "
        "aliasing, determinism, dispatch seam); exit 1 on findings "
        "not covered by the baseline",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    p_lint.add_argument(
        "--baseline", default="lint_baseline.json",
        help="baseline file of grandfathered findings "
        "(default: lint_baseline.json; missing file == empty baseline)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover exactly the current "
        "findings (justifications of surviving entries are preserved)",
    )
    p_lint.add_argument(
        "--explain", action="store_true",
        help="append rule documentation for every rule that fired",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_cache = sub.add_parser(
        "cache",
        help="manage the persistent scenario/model cache directory",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_prune = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used cache entries down to a byte "
        "budget (entries are touched on every disk hit, so recency "
        "reflects reads as well as writes), and report or evict "
        "entries whose on-disk schema version is stale",
    )
    p_prune.add_argument(
        "--cache-dir", required=True,
        help="the directory passed to sweep --cache-dir",
    )
    p_prune.add_argument(
        "--max-bytes", default=None,
        help="byte budget after pruning, e.g. 500M, 2G, or a plain "
        "byte count (0 empties the cache)",
    )
    p_prune.add_argument(
        "--evict-stale", action="store_true",
        help="also remove entries stamped with a schema version this "
        "library no longer reads (they would be cache misses anyway)",
    )
    p_prune.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting",
    )
    p_prune.set_defaults(func=_cmd_cache_prune)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
