"""Scenario-grid sweep engine: topology × failure × trace × scheme grids.

Declare a grid as a :class:`ScenarioSuite`, run it (serially or with
concurrent per-topology workers) via :func:`run_scenario_grid`, and get
back a JSON-serializable :class:`GridResult` of per-cell
:class:`~repro.simulation.metrics.SchemeRun` records.
"""

from .grid import (
    EXECUTORS,
    GridCell,
    GridResult,
    ScenarioSuite,
    cell_seed,
    run_scenario_grid,
    single_topology,
)

__all__ = [
    "EXECUTORS",
    "GridCell",
    "GridResult",
    "ScenarioSuite",
    "cell_seed",
    "run_scenario_grid",
    "single_topology",
]
