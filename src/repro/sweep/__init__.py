"""Scenario-grid sweep engine: topology × failure × trace × scheme grids.

Declare a grid as a :class:`ScenarioSuite`, run it (serially or with
concurrent per-topology workers) via :func:`run_scenario_grid`, and get
back a JSON-serializable :class:`GridResult` of per-cell
:class:`~repro.simulation.metrics.SchemeRun` records. The
:mod:`~repro.sweep.analytics` layer reduces one-or-many saved results
into the paper's aggregate curves (speedup vs topology size, satisfied
demand by failure level, phase-time breakdowns, precision tables). The
:mod:`~repro.sweep.cellbatch` layer fuses compatible grid cells into
single stacked kernel invocations (``cell_batch``), bit-identically.
The :mod:`~repro.sweep.checkpoint` layer persists completed cells into
the cache dir so interrupted grids resume (``resume=True`` /
``repro.cli sweep --resume``) bit-identically, and the
:mod:`~repro.sweep.plotting` layer renders analytics into the paper's
figures (``repro.cli plot``).
"""

from .analytics import (
    GridAnalytics,
    PhaseBreakdown,
    PrecisionComparison,
    SchemeDistribution,
    SpeedupPoint,
    analyze,
    format_analytics,
    load_grid_results,
    phase_breakdown,
    precision_table,
    satisfied_samples,
    scheme_distributions,
    speedup_curve,
)
from .cellbatch import (
    DEFAULT_CELL_BATCH,
    ENV_CELL_BATCH,
    CellBatchPlan,
    CellBucket,
    cell_bucket_key,
    chunk_level_keys,
    plan_cell_batches,
    resolve_cell_batch,
)
from .checkpoint import (
    GRID_CHECKPOINT_VERSION,
    cell_checkpoint_path,
    load_cell_checkpoint,
    load_completed_cells,
    load_manifest,
    manifest_path,
    save_cell_checkpoint,
    suite_token,
    write_manifest,
)
from .grid import (
    EXECUTORS,
    GridCell,
    GridResult,
    ScenarioSuite,
    cell_seed,
    run_scenario_grid,
    single_topology,
)
from .plotting import (
    FigureSpec,
    Series,
    build_figures,
    cdf_figure,
    have_matplotlib,
    render_figures,
    render_svg,
    robustness_figure,
    scheme_colors,
    speedup_figure,
)

__all__ = [
    "DEFAULT_CELL_BATCH",
    "ENV_CELL_BATCH",
    "EXECUTORS",
    "GRID_CHECKPOINT_VERSION",
    "CellBatchPlan",
    "CellBucket",
    "FigureSpec",
    "GridAnalytics",
    "GridCell",
    "GridResult",
    "PhaseBreakdown",
    "PrecisionComparison",
    "ScenarioSuite",
    "SchemeDistribution",
    "Series",
    "SpeedupPoint",
    "analyze",
    "build_figures",
    "cdf_figure",
    "cell_bucket_key",
    "cell_checkpoint_path",
    "cell_seed",
    "chunk_level_keys",
    "format_analytics",
    "have_matplotlib",
    "load_cell_checkpoint",
    "load_completed_cells",
    "load_grid_results",
    "load_manifest",
    "manifest_path",
    "phase_breakdown",
    "plan_cell_batches",
    "precision_table",
    "render_figures",
    "render_svg",
    "robustness_figure",
    "run_scenario_grid",
    "satisfied_samples",
    "save_cell_checkpoint",
    "scheme_colors",
    "scheme_distributions",
    "single_topology",
    "speedup_curve",
    "speedup_figure",
    "suite_token",
    "write_manifest",
]
