"""Scenario-grid sweep engine: topology × failure × trace × scheme grids.

Declare a grid as a :class:`ScenarioSuite`, run it (serially or with
concurrent per-topology workers) via :func:`run_scenario_grid`, and get
back a JSON-serializable :class:`GridResult` of per-cell
:class:`~repro.simulation.metrics.SchemeRun` records. The
:mod:`~repro.sweep.analytics` layer reduces one-or-many saved results
into the paper's aggregate curves (speedup vs topology size, satisfied
demand by failure level, phase-time breakdowns, precision tables). The
:mod:`~repro.sweep.cellbatch` layer fuses compatible grid cells into
single stacked kernel invocations (``cell_batch``), bit-identically.
"""

from .analytics import (
    GridAnalytics,
    PhaseBreakdown,
    PrecisionComparison,
    SchemeDistribution,
    SpeedupPoint,
    analyze,
    format_analytics,
    load_grid_results,
    phase_breakdown,
    precision_table,
    scheme_distributions,
    speedup_curve,
)
from .cellbatch import (
    DEFAULT_CELL_BATCH,
    ENV_CELL_BATCH,
    CellBatchPlan,
    CellBucket,
    cell_bucket_key,
    chunk_level_keys,
    plan_cell_batches,
    resolve_cell_batch,
)
from .grid import (
    EXECUTORS,
    GridCell,
    GridResult,
    ScenarioSuite,
    cell_seed,
    run_scenario_grid,
    single_topology,
)

__all__ = [
    "DEFAULT_CELL_BATCH",
    "ENV_CELL_BATCH",
    "EXECUTORS",
    "CellBatchPlan",
    "CellBucket",
    "GridAnalytics",
    "GridCell",
    "GridResult",
    "PhaseBreakdown",
    "PrecisionComparison",
    "ScenarioSuite",
    "SchemeDistribution",
    "SpeedupPoint",
    "analyze",
    "cell_bucket_key",
    "cell_seed",
    "chunk_level_keys",
    "format_analytics",
    "load_grid_results",
    "phase_breakdown",
    "plan_cell_batches",
    "precision_table",
    "run_scenario_grid",
    "scheme_distributions",
    "single_topology",
    "speedup_curve",
]
