"""Cross-topology scenario-grid sweeps (topology × failure × trace × scheme).

The paper's headline claim is that Teal's speedup *grows with topology
size* (Figures 4-7): every figure sweeps a grid of topologies crossed
with workloads. PRs 1-2 batched the failure and trace axes — a whole
(failure level × traffic matrix) inner product runs as one vectorized
forward per scheme — but the topology axis still required a hand-written
loop of ``build_scenario``/``trained_teal`` calls. This module is that
missing layer: declare the grid once as a :class:`ScenarioSuite`, and
:func:`run_scenario_grid` builds/trains each topology through the
harness caches, dispatches the batched inner sweep
(:func:`repro.harness.run_failure_sweep` offline,
:func:`repro.harness.run_online_failure_sweep` online), and runs
independent topologies concurrently through a ``concurrent.futures``
pool.

Determinism contract: every random choice derives from the suite spec —
scenario construction and training from the per-variant ``seed``,
failure sampling from :func:`cell_seed` (a CRC32 of the cell
coordinates, stable across processes, unlike Python's randomized string
``hash``). A parallel run therefore reproduces a serial run bit for bit,
which the test suite and ``benchmarks/bench_scenario_grid.py`` verify.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import asdict, dataclass, field, fields, replace

from ..cache import atomic_write_json
from ..config import TE_INTERVAL_SECONDS, TrainingConfig
from ..exceptions import ReproError
from ..simulation.metrics import SchemeRun, format_comparison_table
from .cellbatch import plan_cell_batches, resolve_cell_batch

#: Executors accepted by :func:`run_scenario_grid`.
EXECUTORS = ("serial", "thread", "process")


def cell_seed(topology: str, seed: int, failure_count: int) -> int:
    """Deterministic seed for one grid cell's failure sampling.

    Stable across interpreter runs and worker processes (CRC32 of the
    cell coordinates — Python's builtin string ``hash`` is randomized
    per process and must not be used here).
    """
    token = f"{topology}|{seed}|{failure_count}".encode()
    return int(zlib.crc32(token))


@dataclass(frozen=True)
class ScenarioSuite:
    """Declarative spec of a scenario grid.

    The grid is the cross product ``topologies × seeds × failure_counts
    × schemes``. Topology × seed pairs are independent *jobs* (each
    builds a scenario and trains Teal once); within a job the failure ×
    trace inner product runs through the batched sweep runners.

    Attributes:
        topologies: Topology names (Table 1).
        failure_counts: Simultaneous physical-link failures per level
            (0 = nominal capacities).
        seeds: Master seeds — each builds an independent topology/trace
            variant (the "trace variant" axis).
        schemes: Scheme names; baselines from
            :func:`repro.harness.make_baselines` plus ``"Teal"``.
        mode: ``"offline"`` (Figure 8 style) or ``"online"`` (Figure 9
            style, control-delay semantics).
        objective: Objective registry name.
        training: Teal training budget (None = the benchmark default).
        precision: Inference precision for Teal (``"float32"`` — the
            default, measured to match float64 sweep results within 1e-4
            relative — or ``"float64"``). Training always runs float64;
            see :mod:`repro.nn.precision`.
        backend: Array backend for Teal's fused inference
            (``"numpy"``, ``"torch"``, or None to defer to the
            ``REPRO_BACKEND`` env then numpy — see
            :mod:`repro.core.backend`).
        scale: Topology size factor (None = per-topology benchmark scale).
        max_pairs: Demand-pair budget (None = all ordered pairs).
        train: Training matrices per scenario.
        validation: Validation matrices per scenario.
        test: Test matrices per scenario (the trace axis length).
        headroom: Capacity-provisioning headroom.
        interval_seconds: TE interval for online mode.
        failure_at: Online mode: interval the failure strikes (None =
            mid-trace).
        cell_batch: Grid-cell fusion bound (see
            :mod:`repro.sweep.cellbatch`): 0 stacks every compatible
            cell of a job into one batched kernel invocation (the
            default), 1 runs a strict per-cell loop, N > 1 fuses chunks
            of at most N failure levels. None defers to the
            ``REPRO_CELL_BATCH`` env then 0 — the same *env < config <
            CLI* precedence as ``backend``. Every value is bit-identical.
    """

    topologies: tuple[str, ...]
    failure_counts: tuple[int, ...] = (0,)
    seeds: tuple[int, ...] = (0,)
    schemes: tuple[str, ...] = ("LP-all", "Teal")
    mode: str = "offline"
    objective: str = "total_flow"
    training: TrainingConfig | None = None
    precision: str = "float32"
    backend: str | None = None
    scale: float | None = None
    max_pairs: int | None = 1200
    train: int = 8
    validation: int = 2
    test: int = 4
    headroom: float = 0.9
    interval_seconds: float = TE_INTERVAL_SECONDS
    failure_at: int | None = None
    cell_batch: int | None = None

    def __post_init__(self) -> None:
        # Accept any sequence for the axes (CLI passes lists).
        for name in ("topologies", "failure_counts", "seeds", "schemes"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        for name in ("topologies", "failure_counts", "seeds", "schemes"):
            axis = getattr(self, name)
            if not axis:
                raise ReproError(f"suite axis {name!r} must be non-empty")
            # Duplicates would yield cells with identical coordinates
            # (and silently doubled training work).
            if len(set(axis)) != len(axis):
                raise ReproError(f"duplicate values in suite axis {name!r}")
        if self.mode not in ("offline", "online"):
            raise ReproError(f"unknown sweep mode {self.mode!r}")
        if self.precision not in ("float32", "float64"):
            raise ReproError(
                f"unknown precision {self.precision!r}; "
                "expected 'float32' or 'float64'"
            )
        if self.backend not in (None, "numpy", "torch"):
            raise ReproError(
                f"unknown backend {self.backend!r}; "
                "expected 'numpy' or 'torch'"
            )
        if self.cell_batch is not None:
            # Validate eagerly so a bad config fails at suite build, not
            # deep inside a pool worker.
            resolve_cell_batch(self.cell_batch)

    @property
    def num_jobs(self) -> int:
        """Independent (topology, seed) work units."""
        return len(self.topologies) * len(self.seeds)

    @property
    def num_cells(self) -> int:
        """Total grid cells (jobs × failure levels × schemes)."""
        return self.num_jobs * len(self.failure_counts) * len(self.schemes)

    def jobs(self) -> list[tuple[str, int]]:
        """(topology, seed) pairs in deterministic grid order."""
        return [(t, s) for t in self.topologies for s in self.seeds]

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        record = asdict(self)
        for name in ("topologies", "failure_counts", "seeds", "schemes"):
            record[name] = list(record[name])
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ScenarioSuite":
        """Rebuild a suite from :meth:`to_dict` output.

        Unknown keys are dropped rather than rejected: a result written
        by a newer library version (extra suite fields) stays loadable
        by this one, which is what lets grid analytics aggregate
        ``GridResult`` JSONs across PRs.
        """
        names = {f.name for f in fields(cls)}
        record = {k: v for k, v in record.items() if k in names}
        if record.get("training") is not None:
            training_names = {f.name for f in fields(TrainingConfig)}
            record["training"] = TrainingConfig(
                **{
                    k: v
                    for k, v in record["training"].items()
                    if k in training_names
                }
            )
        return cls(**record)


@dataclass
class GridCell:
    """One (topology, seed, failure level, scheme) cell of a grid result."""

    topology: str
    seed: int
    failure_count: int
    scheme: str
    run: SchemeRun
    extras: dict = field(default_factory=dict)

    @property
    def coords(self) -> tuple[str, int, int, str]:
        """(topology, seed, failure_count, scheme) lookup key."""
        return (self.topology, self.seed, self.failure_count, self.scheme)

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "topology": self.topology,
            "seed": self.seed,
            "failure_count": self.failure_count,
            "scheme": self.scheme,
            "run": self.run.to_dict(),
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "GridCell":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            topology=record["topology"],
            seed=record["seed"],
            failure_count=record["failure_count"],
            scheme=record["scheme"],
            run=SchemeRun.from_dict(record["run"]),
            extras=dict(record.get("extras", {})),
        )


@dataclass
class GridResult:
    """Unified record of one grid sweep.

    Attributes:
        suite: The spec that produced it.
        cells: One :class:`GridCell` per (topology, seed, failure level,
            scheme), in deterministic grid order.
        timings: One record per (topology, seed) job with
            ``build_seconds`` / ``train_seconds`` / ``sweep_seconds`` and
            instance sizes.
        metadata: Executor, worker count, total wall-clock, cell count.
    """

    suite: ScenarioSuite
    cells: list[GridCell]
    timings: list[dict] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def cell(
        self, topology: str, seed: int, failure_count: int, scheme: str
    ) -> GridCell:
        """Look one cell up by its grid coordinates.

        Raises:
            ReproError: If no such cell exists.
        """
        coords = (topology, seed, failure_count, scheme)
        for cell in self.cells:
            if cell.coords == coords:
                return cell
        raise ReproError(f"no grid cell at {coords!r}")

    def runs(
        self, topology: str, seed: int, failure_count: int
    ) -> dict[str, SchemeRun]:
        """Scheme -> run mapping of one (topology, seed, failure) slice.

        The same shape :func:`repro.harness.run_offline_comparison`
        returns, so downstream metric helpers apply unchanged.
        """
        return {
            cell.scheme: cell.run
            for cell in self.cells
            if (cell.topology, cell.seed, cell.failure_count)
            == (topology, seed, failure_count)
        }

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "suite": self.suite.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
            "timings": list(self.timings),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "GridResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            suite=ScenarioSuite.from_dict(record["suite"]),
            cells=[GridCell.from_dict(c) for c in record["cells"]],
            timings=list(record.get("timings", [])),
            metadata=dict(record.get("metadata", {})),
        )

    def to_json(self, path: str | os.PathLike) -> None:
        """Write the result as an indented JSON file.

        The write is atomic (serialize in memory, temp file +
        :func:`os.replace`): an interrupt mid-write leaves the previous
        file — if any — intact instead of a truncated, unloadable one.
        """
        atomic_write_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path: str | os.PathLike) -> "GridResult":
        """Load a result written by :meth:`to_json`.

        Raises:
            ReproError: With the file path and reason, on unreadable
                files, truncated/invalid JSON, or documents missing the
                grid-result keys — never a raw ``KeyError`` or
                ``JSONDecodeError``.
        """
        name = os.fspath(path)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except OSError as error:
            raise ReproError(
                f"cannot read grid result {name!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ReproError(
                f"malformed grid result {name!r}: {error}"
            ) from error
        try:
            return cls.from_dict(record)
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise ReproError(
                f"malformed grid result {name!r}: "
                f"{type(error).__name__}: {error}"
            ) from error

    def summary_table(self) -> str:
        """Paper-style text table, one comparison block per grid slice."""
        blocks: list[str] = []
        for topology, seed in self.suite.jobs():
            for count in self.suite.failure_counts:
                runs = self.runs(topology, seed, count)
                header = (
                    f"[{topology} seed={seed} failures={count} "
                    f"mode={self.suite.mode}]"
                )
                blocks.append(
                    header + "\n" + format_comparison_table(list(runs.values()))
                )
        return "\n\n".join(blocks)


def _online_to_scheme_run(name: str, result) -> tuple[SchemeRun, dict]:
    """Flatten an OnlineRunResult into the unified per-cell SchemeRun."""
    run = SchemeRun(scheme=name)
    for record in result.intervals:
        run.add(
            satisfied=record.satisfied_fraction,
            compute_time=record.compute_time,
            extras={
                "allocation_age": int(record.allocation_age),
                "stale": bool(record.stale),
            },
        )
    return run, {"stale_fraction": result.stale_fraction}


def _run_topology_job(
    suite: ScenarioSuite,
    topology: str,
    seed: int,
    cache_dir: str | None = None,
    cell_batch: int = 0,
) -> tuple[list[GridCell], dict]:
    """Build, train, and sweep one (topology, seed) grid job.

    Module-level (not a closure) so process-pool workers can import it;
    all inputs/outputs are picklable dataclasses. ``cache_dir`` enables
    the harness' persistent tiers: scenarios load from the on-disk
    scenario cache (skipping topology generation, k-shortest-path
    enumeration, and trace synthesis) and Teal models load from the
    checkpoint cache instead of retraining. ``cell_batch`` bounds how
    many of the job's failure levels fuse into one stacked kernel
    invocation (see :mod:`repro.sweep.cellbatch`); every value is
    bit-identical. One evaluation :class:`~repro.core.batching.Workspace`
    is shared across all of the job's cells and chunks, so scratch
    buffers are sized once per job instead of churning per cell.
    """
    from .. import harness
    from ..core.batching import Workspace
    from ..lp.objectives import get_objective
    from ..topology.failures import sample_link_failures

    objective = get_objective(suite.objective)

    start = time.perf_counter()
    scenario = harness.build_scenario(
        topology,
        scale=suite.scale,
        seed=seed,
        max_pairs=suite.max_pairs,
        train=suite.train,
        validation=suite.validation,
        test=suite.test,
        headroom=suite.headroom,
        cache_dir=cache_dir,
    )
    build_seconds = time.perf_counter() - start

    baseline_names = tuple(n for n in suite.schemes if n != "Teal")
    schemes: dict[str, object] = {}
    if baseline_names:
        schemes.update(
            harness.make_baselines(
                scenario, objective=objective, include=baseline_names
            )
        )
    train_seconds = 0.0
    if "Teal" in suite.schemes:
        start = time.perf_counter()
        schemes["Teal"] = harness.trained_teal(
            scenario,
            objective_name=suite.objective,
            config=suite.training,
            seed=seed,
            precision=suite.precision,
            backend=suite.backend,
            cache_dir=cache_dir,
        )
        train_seconds = time.perf_counter() - start
    schemes = {name: schemes[name] for name in suite.schemes}

    capacity_sets: dict[int, object] = {}
    failed_edges: dict[int, list[int]] = {}
    for count in suite.failure_counts:
        caps = scenario.capacities.copy()
        edges: list[int] = []
        if count:
            edges = sample_link_failures(
                scenario.topology, count, seed=cell_seed(topology, seed, count)
            )
            caps[edges] = 0.0
        capacity_sets[count] = caps
        failed_edges[count] = [int(e) for e in edges]

    start = time.perf_counter()
    cells: list[GridCell] = []
    # Evaluation always runs on numpy arrays regardless of the scheme
    # backend, so the shared per-job workspace is a numpy one.
    workspace = Workspace()
    if suite.mode == "offline":
        sweep = harness.run_failure_sweep(
            scenario,
            schemes,
            capacity_sets,
            objective=objective,
            cell_batch=cell_batch,
            workspace=workspace,
        )
        for count in suite.failure_counts:
            for name in suite.schemes:
                cells.append(
                    GridCell(
                        topology=topology,
                        seed=seed,
                        failure_count=count,
                        scheme=name,
                        run=sweep[count][name],
                        extras={"failed_edges": failed_edges[count]},
                    )
                )
    else:
        failure_at = suite.failure_at
        if failure_at is None:
            failure_at = len(scenario.split.test) // 2
        failure_cases = {
            count: (
                (failure_at, capacity_sets[count]) if count else (None, None)
            )
            for count in suite.failure_counts
        }
        sweep = harness.run_online_failure_sweep(
            scenario,
            schemes,
            suite.interval_seconds,
            failure_cases,
            cell_batch=cell_batch,
        )
        for count in suite.failure_counts:
            for name in suite.schemes:
                run, extras = _online_to_scheme_run(name, sweep[count][name])
                extras["failed_edges"] = failed_edges[count]
                cells.append(
                    GridCell(
                        topology=topology,
                        seed=seed,
                        failure_count=count,
                        scheme=name,
                        run=run,
                        extras=extras,
                    )
                )
    sweep_seconds = time.perf_counter() - start

    timing = {
        "topology": topology,
        "seed": seed,
        "num_nodes": int(scenario.topology.num_nodes),
        "num_edges": int(scenario.topology.num_edges),
        "num_demands": int(scenario.pathset.num_demands),
        "build_seconds": build_seconds,
        "train_seconds": train_seconds,
        "sweep_seconds": sweep_seconds,
    }
    return cells, timing


def run_scenario_grid(
    suite: ScenarioSuite,
    executor: str = "serial",
    max_workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    cell_batch: int | None = None,
    resume: bool = False,
    max_cells: int | None = None,
) -> GridResult:
    """Run a scenario grid, optionally with concurrent topology workers.

    (topology, seed) jobs are independent — they share no mutable state
    beyond the harness caches, which the full-config cache keys keep
    collision-free — so they dispatch to a ``concurrent.futures`` pool.
    Cells are assembled in submission order, so the returned cells are
    in deterministic grid order regardless of completion order, and
    every job's randomness is seeded from the spec (see the module
    docstring), so ``executor="process"``/``"thread"`` reproduce
    ``"serial"`` bit for bit.

    With a ``cache_dir``, every completed job's cells are checkpointed
    to disk *as jobs complete* (atomic ``gridcell-*.json`` entries plus
    a ``gridmanifest-*.json`` — see :mod:`repro.sweep.checkpoint`), so
    an interrupted grid keeps its finished work. ``resume=True`` then
    loads the verified completed cells and only executes the remainder;
    because checkpointed cells round-trip exactly and recomputed cells
    are deterministic, the merged result is bit-identical to an
    uninterrupted run for every executor and ``cell_batch`` setting.
    Jobs whose cells are only partially checkpointed (an interrupt
    mid-``max_cells`` boundary) recompute whole — recomputation yields
    identical cells, so correctness never depends on partial reuse.

    Args:
        suite: The grid spec.
        executor: ``"serial"``, ``"thread"``, or ``"process"``.
        max_workers: Pool width (default: one per job, capped at the
            CPU count).
        cache_dir: Optional persistent cache directory shared by every
            job: scenarios and trained Teal models are stored on disk
            (see :func:`repro.harness.build_scenario` and
            :func:`repro.harness.trained_teal`), so repeated grid cells
            and re-runs — including fresh processes — skip rebuilds and
            retraining. A cache hit reproduces the rebuilt scenario bit
            for bit, so cached grids equal cold grids exactly. Also the
            home of the per-cell grid checkpoints above.
        cell_batch: Explicit grid-cell fusion bound; overrides the
            suite's ``cell_batch`` field, which in turn overrides the
            ``REPRO_CELL_BATCH`` env (default 0 = fully fused). See
            :mod:`repro.sweep.cellbatch`. Every value reproduces the
            per-cell loop bit for bit; the knob only trades invocation
            count against peak stack size.
        resume: Load verified completed cells from ``cache_dir`` and
            execute only the remainder (requires ``cache_dir``).
        max_cells: Stop after this many cells (the partial-run /
            interrupt-simulation knob): jobs run until the quota is
            met, the last job's surplus cells are dropped, and the
            checkpoints cover exactly the returned cells.

    Returns:
        A :class:`GridResult`.

    Raises:
        ReproError: On an unknown executor name, ``resume`` without a
            ``cache_dir``, or a non-positive ``max_cells``.
    """
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    if resume and cache_dir is None:
        raise ReproError("resume=True requires a cache_dir to resume from")
    if max_cells is not None and max_cells < 1:
        raise ReproError(f"max_cells must be positive, got {max_cells}")
    cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
    # Precedence: explicit argument (the CLI flag) beats the suite
    # field, which beats the REPRO_CELL_BATCH env, which beats the
    # fully-fused default — the --backend/--precision pattern.
    spec = cell_batch if cell_batch is not None else suite.cell_batch
    resolved_cell_batch = resolve_cell_batch(spec)
    plan = plan_cell_batches(suite, resolved_cell_batch)
    jobs = suite.jobs()
    cells_per_job = len(suite.failure_counts) * len(suite.schemes)

    checkpointing = cache_dir is not None
    token = None
    completed: dict = {}
    if checkpointing:
        # Deferred import: checkpoint.py imports this module's types.
        from .checkpoint import load_completed_cells, suite_token

        token = suite_token(suite)
        if resume:
            completed = load_completed_cells(cache_dir, suite, token)

    start = time.perf_counter()

    # Per-job plan: the cell quota (max_cells truncation) and whether
    # every quota cell is already checkpointed (job skips execution).
    plans: list[tuple[str, int, int, list, bool]] = []
    budget = max_cells
    for topology, seed in jobs:
        if budget is not None and budget <= 0:
            break
        take = cells_per_job if budget is None else min(cells_per_job, budget)
        if budget is not None:
            budget -= take
        coords = [
            (topology, seed, count, scheme)
            for count in suite.failure_counts
            for scheme in suite.schemes
        ]
        loaded = bool(completed) and all(c in completed for c in coords[:take])
        plans.append((topology, seed, take, coords, loaded))

    outputs: list[tuple[list[GridCell], dict] | None] = [None] * len(plans)
    manifest_coords: list[tuple] = []
    loaded_cells = 0
    for index, (topology, seed, take, coords, loaded) in enumerate(plans):
        if loaded:
            job_cells = [completed[c][0] for c in coords[:take]]
            timing = dict(completed[coords[0]][1])
            outputs[index] = (job_cells, timing)
            manifest_coords.extend(coords[:take])
            loaded_cells += take

    def record_job(index: int, job_cells: list[GridCell], timing: dict) -> None:
        # Called as each executed job completes (any completion order):
        # truncate to the quota, checkpoint, and refresh the manifest so
        # an interrupt right after this point loses nothing.
        _, _, take, _, _ = plans[index]
        kept = job_cells[:take]
        outputs[index] = (kept, timing)
        if checkpointing:
            from .checkpoint import save_cell_checkpoint, write_manifest

            for cell in kept:
                save_cell_checkpoint(cache_dir, token, cell, timing)
            manifest_coords.extend(cell.coords for cell in kept)
            write_manifest(
                cache_dir, suite, token, manifest_coords,
                metadata={"executor": executor},
            )

    run_indices = [i for i, p in enumerate(plans) if not p[4]]
    if executor == "serial" or not run_indices:
        workers = 1
        for index in run_indices:
            topology, seed = plans[index][0], plans[index][1]
            job_cells, timing = _run_topology_job(
                suite, topology, seed, cache_dir, resolved_cell_batch
            )
            record_job(index, job_cells, timing)
    else:
        pool_cls = (
            ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        )
        workers = max_workers or min(len(run_indices), os.cpu_count() or 1)
        with pool_cls(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_topology_job, suite, plans[i][0], plans[i][1],
                    cache_dir, resolved_cell_batch,
                ): i
                for i in run_indices
            }
            # as_completed, not submission order: each job checkpoints
            # the moment it finishes, so an interrupt while slower jobs
            # are still running keeps every completed job's cells.
            for future in as_completed(futures):
                job_cells, timing = future.result()
                record_job(futures[future], job_cells, timing)
    total_seconds = time.perf_counter() - start

    done = [output for output in outputs if output is not None]
    cells = [cell for job_cells, _ in done for cell in job_cells]
    timings = [timing for _, timing in done]
    metadata = {
        "executor": executor,
        "max_workers": workers,
        "num_jobs": len(jobs),
        "num_cells": len(cells),
        "total_seconds": total_seconds,
        "cell_batch": resolved_cell_batch,
        "cell_batching": {
            "num_buckets": len(plan.buckets),
            "num_invocations": plan.num_invocations,
        },
        "resumed": resume,
        "checkpointing": {
            "enabled": checkpointing,
            "suite_token": token,
            "loaded_cells": loaded_cells,
            "executed_jobs": len(run_indices),
            "max_cells": max_cells,
        },
    }
    return GridResult(suite=suite, cells=cells, timings=timings, metadata=metadata)


def single_topology(suite: ScenarioSuite, topology: str) -> ScenarioSuite:
    """A copy of ``suite`` restricted to one topology (ad-hoc reruns)."""
    if topology not in suite.topologies:
        raise ReproError(f"{topology!r} not in suite topologies")
    return replace(suite, topologies=(topology,))
