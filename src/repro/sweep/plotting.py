"""Render :class:`GridAnalytics` into the paper's figures (Figs 4–9).

Every grid run now ends in artifacts a human can eyeball against the
paper instead of raw JSON: ``repro.cli plot`` (and
:func:`render_figures` underneath) turns loaded grid results into

- ``*_speedup``: speedup vs topology size — the Figure 4–5 shape, one
  line per precision;
- ``*_satisfied_cdf``: CDFs of per-matrix satisfied demand per scheme
  — the Figure 7 shape;
- ``*_failure_robustness``: mean satisfied demand vs simultaneous link
  failures per scheme — the Figure 8–9 shape.

The primary output is SVG through a built-in renderer with **no
third-party dependencies** — pure string assembly, deterministic to
the byte for the same inputs (no timestamps, no randomness), so
figures are diffable and safe to commit. PNG output uses matplotlib
when it is installed; when it is not, PNG requests fall back to SVG
with a warning instead of failing.

Chart conventions (held throughout): categorical colors come from one
fixed-order palette and follow the *scheme* (``SCHEME_SLOTS``) — a
filtered re-render never repaints survivors; every multi-series chart
carries both a legend and direct labels at the line ends; all text is
ink-colored (identity is carried by the 2px line and its swatch, never
by colored text); one y-axis per chart.
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from xml.sax.saxutils import escape

from ..cache import atomic_write_text
from ..exceptions import ReproError
from .analytics import GridAnalytics, satisfied_samples
from .grid import GridResult

#: Fixed-order categorical palette (validated: adjacent-pair CVD
#: ΔE ≥ 9.1, normal-vision ΔE ≥ 19.6 on the light surface). Slots are
#: assigned in order and never cycled.
PALETTE = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Color follows the entity: each known scheme owns a palette slot, so
#: the same scheme wears the same color in every figure and across
#: re-renders with different scheme subsets.
SCHEME_SLOTS = {
    "Teal": 0,
    "LP-all": 1,
    "LP-top": 2,
    "NCFlow": 3,
    "POP": 4,
    "TEAVAR*": 5,
}

#: Precision series of the speedup figure (same fixed-slot rule).
PRECISION_SLOTS = {"float32": 0, "float64": 1}

# Chart chrome (light surface).
SURFACE = "#fcfcfb"
INK = "#0b0b0b"
INK_SECONDARY = "#52514e"
INK_MUTED = "#898781"
GRIDLINE = "#e1e0d9"
AXIS = "#c3c2b7"
FONT = "system-ui, -apple-system, 'Segoe UI', sans-serif"


def scheme_colors(schemes: list[str]) -> dict[str, str]:
    """Palette assignment for a scheme set (fixed slots, never cycled).

    Known schemes take their :data:`SCHEME_SLOTS` color; unknown ones
    take the remaining slots in sorted-name order (deterministic). Past
    the palette, the last slot repeats — at that point fold series
    instead of plotting more.
    """
    colors: dict[str, str] = {}
    used: set[int] = set()
    for name in schemes:
        slot = SCHEME_SLOTS.get(name)
        if slot is not None:
            colors[name] = PALETTE[slot]
            used.add(slot)
    free = [i for i in range(len(PALETTE)) if i not in used]
    for name in sorted(n for n in schemes if n not in colors):
        colors[name] = PALETTE[free.pop(0)] if free else PALETTE[-1]
    return colors


@dataclass(frozen=True)
class Series:
    """One named line of a figure."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    color: str


@dataclass(frozen=True)
class FigureSpec:
    """Renderer-agnostic description of one figure.

    The same spec drives both the built-in SVG renderer and the
    matplotlib PNG renderer, so the two outputs always agree.
    """

    slug: str
    title: str
    subtitle: str
    xlabel: str
    ylabel: str
    series: tuple[Series, ...]
    xlog: bool = False
    ylog: bool = False
    x_percent: bool = False
    y_percent: bool = False
    step: bool = False
    markers: bool = True
    xticks: tuple[float, ...] | None = None


# ----------------------------------------------------------------------
# Figure builders
# ----------------------------------------------------------------------
def speedup_figure(analytics: GridAnalytics) -> FigureSpec:
    """Speedup vs topology size (the Figure 4–5 shape), per precision."""
    by_precision: dict[str, list] = {}
    for point in analytics.curve:
        by_precision.setdefault(point.precision, []).append(point)
    if not by_precision:
        raise ReproError("analytics carry no speedup curve to plot")
    names = sorted(
        by_precision, key=lambda p: (PRECISION_SLOTS.get(p, len(PALETTE)), p)
    )
    series = []
    for index, precision in enumerate(names):
        points = sorted(by_precision[precision], key=lambda p: p.num_nodes)
        slot = PRECISION_SLOTS.get(precision, min(index, len(PALETTE) - 1))
        series.append(
            Series(
                name=precision,
                x=tuple(float(p.num_nodes) for p in points),
                y=tuple(float(p.speedup) for p in points),
                color=PALETTE[slot],
            )
        )
    xs = [v for s in series for v in s.x]
    ys = [v for s in series for v in s.y]
    return FigureSpec(
        slug="speedup",
        title="Speedup vs topology size (Figs. 4–5)",
        subtitle=(
            f"{analytics.accelerated} over {analytics.baseline}, "
            "mean compute time per traffic matrix"
        ),
        xlabel="topology size (nodes)",
        ylabel=f"speedup over {analytics.baseline} (×)",
        series=tuple(series),
        xlog=min(xs) > 0 and max(xs) / min(xs) >= 10,
        ylog=min(ys) > 0 and max(ys) / min(ys) >= 10,
    )


def cdf_figure(
    results: list[GridResult], failure_count: int | None = None
) -> FigureSpec:
    """Satisfied-demand CDFs per scheme (the Figure 7 shape)."""
    samples = satisfied_samples(results, failure_count)
    samples = {name: values for name, values in samples.items() if values}
    if not samples:
        raise ReproError("results carry no satisfied-demand samples to plot")
    colors = scheme_colors(list(samples))
    series = []
    for name in samples:
        xs = sorted(float(v) for v in samples[name])
        n = len(xs)
        # Step CDF: start at probability 0 at the smallest sample.
        series.append(
            Series(
                name=name,
                x=(xs[0], *xs),
                y=(0.0, *((i + 1) / n for i in range(n))),
                color=colors[name],
            )
        )
    scope = (
        "all failure levels pooled"
        if failure_count is None
        else f"failure level {failure_count}"
    )
    return FigureSpec(
        slug="satisfied_cdf",
        title="Satisfied demand CDF (Fig. 7)",
        subtitle=f"per-matrix satisfied demand across test instances, {scope}",
        xlabel="satisfied demand",
        ylabel="fraction of test matrices",
        series=tuple(series),
        x_percent=True,
        y_percent=True,
        step=True,
        markers=False,
    )


def robustness_figure(analytics: GridAnalytics) -> FigureSpec:
    """Mean satisfied demand vs failure count (the Figure 8–9 shape)."""
    by_scheme: dict[str, dict[int, float]] = {}
    for dist in analytics.distributions:
        by_scheme.setdefault(dist.scheme, {})[dist.failure_count] = (
            dist.mean_satisfied
        )
    if not by_scheme:
        raise ReproError("analytics carry no distributions to plot")
    colors = scheme_colors(sorted(by_scheme))
    series = []
    for name in sorted(by_scheme):
        levels = sorted(by_scheme[name])
        series.append(
            Series(
                name=name,
                x=tuple(float(level) for level in levels),
                y=tuple(by_scheme[name][level] for level in levels),
                color=colors[name],
            )
        )
    levels = sorted({v for s in series for v in s.x})
    return FigureSpec(
        slug="failure_robustness",
        title="Failure robustness (Figs. 8–9)",
        subtitle="mean satisfied demand per simultaneous link failures",
        xlabel="simultaneous link failures",
        ylabel="mean satisfied demand",
        series=tuple(series),
        y_percent=True,
        xticks=tuple(levels),
    )


def build_figures(
    results: list[GridResult],
    analytics: GridAnalytics,
    failure_count: int | None = None,
) -> list[FigureSpec]:
    """The paper-figure set one grid result collection supports."""
    return [
        speedup_figure(analytics),
        cdf_figure(results, failure_count),
        robustness_figure(analytics),
    ]


# ----------------------------------------------------------------------
# Scales and ticks
# ----------------------------------------------------------------------
def _linear_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi] (at most ~target+1)."""
    span = hi - lo
    if span <= 0:
        return [lo]
    step = 10.0 ** math.floor(math.log10(span / target))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        if span / (step * mult) <= target:
            step *= mult
            break
    first = math.ceil(lo / step - 1e-9)
    last = math.floor(hi / step + 1e-9)
    return [round(i * step, 10) for i in range(first, last + 1)]


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Decade ticks covering [lo, hi]; 2×/5× fill sparse ranges."""
    ticks = []
    for k in range(math.floor(math.log10(lo)), math.ceil(math.log10(hi)) + 1):
        for mult in (1.0, 2.0, 5.0):
            value = mult * 10.0**k
            if lo * (1 - 1e-9) <= value <= hi * (1 + 1e-9):
                ticks.append(value)
    decades = [t for t in ticks if math.log10(t) % 1 == 0]
    return decades if len(decades) >= 3 else ticks


def _domain(values: list[float], log: bool) -> tuple[float, float]:
    """Padded axis domain around the data (log-space padding on log axes)."""
    lo, hi = min(values), max(values)
    if log:
        lo = max(lo, 1e-12)
        hi = max(hi, lo)
        if lo == hi:
            return lo / 2, hi * 2
        return lo / 1.15, hi * 1.15
    if lo == hi:
        pad = abs(lo) * 0.1 or 0.5
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.06
    return lo - pad, hi + pad


def _fmt(value: float, percent: bool) -> str:
    """Tick label text (percent axes show whole percents)."""
    if percent:
        return f"{value * 100:g}%"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):d}"
    return f"{value:g}"


# ----------------------------------------------------------------------
# The built-in SVG renderer (no dependencies, deterministic)
# ----------------------------------------------------------------------
_WIDTH, _HEIGHT = 720, 440
_MARGIN = {"left": 70, "right": 150, "top": 78, "bottom": 54}


@dataclass
class _Svg:
    """Accumulates SVG elements in emission order."""

    parts: list[str] = field(default_factory=list)

    def add(self, element: str) -> None:
        self.parts.append(element)

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: float = 11,
        fill: str = INK_SECONDARY,
        anchor: str = "start",
        weight: str = "normal",
        transform: str | None = None,
    ) -> None:
        extra = f' transform="{transform}"' if transform else ""
        self.add(
            f'<text x="{x:.2f}" y="{y:.2f}" font-family="{FONT}" '
            f'font-size="{size:g}" font-weight="{weight}" fill="{fill}" '
            f'text-anchor="{anchor}"{extra}>{escape(content)}</text>'
        )


def render_svg(spec: FigureSpec) -> str:
    """Render one :class:`FigureSpec` as a standalone SVG document."""
    x0, y0 = _MARGIN["left"], _MARGIN["top"]
    x1, y1 = _WIDTH - _MARGIN["right"], _HEIGHT - _MARGIN["bottom"]

    xs = [v for s in spec.series for v in s.x]
    ys = [v for s in spec.series for v in s.y]
    if not xs:
        raise ReproError(f"figure {spec.slug!r} has no data")
    xlo, xhi = _domain(xs, spec.xlog)
    ylo, yhi = _domain(ys, spec.ylog)
    if spec.xticks:
        xticks = list(spec.xticks)
        xlo, xhi = _domain([*xs, *xticks], spec.xlog)
    else:
        xticks = _log_ticks(xlo, xhi) if spec.xlog else _linear_ticks(xlo, xhi)
    yticks = _log_ticks(ylo, yhi) if spec.ylog else _linear_ticks(ylo, yhi)

    def sx(v: float) -> float:
        if spec.xlog:
            frac = (math.log10(v) - math.log10(xlo)) / (
                math.log10(xhi) - math.log10(xlo)
            )
        else:
            frac = (v - xlo) / (xhi - xlo)
        return x0 + frac * (x1 - x0)

    def sy(v: float) -> float:
        if spec.ylog:
            frac = (math.log10(v) - math.log10(ylo)) / (
                math.log10(yhi) - math.log10(ylo)
            )
        else:
            frac = (v - ylo) / (yhi - ylo)
        return y1 - frac * (y1 - y0)

    svg = _Svg()
    svg.add(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'role="img" aria-label="{escape(spec.title)}">'
    )
    svg.add(f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="{SURFACE}"/>')
    svg.text(16, 26, spec.title, size=14, fill=INK, weight="600")
    svg.text(16, 44, spec.subtitle, size=11.5, fill=INK_SECONDARY)

    # Legend row (always present for >= 2 series), under the subtitle.
    if len(spec.series) >= 2:
        lx = float(x0)
        for series in spec.series:
            svg.add(
                f'<rect x="{lx:.2f}" y="{y0 - 16:.2f}" width="10" '
                f'height="10" rx="2" fill="{series.color}"/>'
            )
            svg.text(lx + 14, y0 - 7, series.name, size=11)
            lx += 14 + 6.8 * len(series.name) + 18

    # Recessive horizontal gridlines + y tick labels.
    for tick in yticks:
        py = sy(tick)
        if not (y0 - 0.5 <= py <= y1 + 0.5):
            continue
        svg.add(
            f'<line x1="{x0}" y1="{py:.2f}" x2="{x1}" y2="{py:.2f}" '
            f'stroke="{GRIDLINE}" stroke-width="1"/>'
        )
        svg.text(
            x0 - 8, py + 3.5, _fmt(tick, spec.y_percent),
            fill=INK_MUTED, anchor="end",
        )
    # Baseline + x ticks.
    svg.add(
        f'<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" '
        f'stroke="{AXIS}" stroke-width="1"/>'
    )
    for tick in xticks:
        px = sx(tick)
        if not (x0 - 0.5 <= px <= x1 + 0.5):
            continue
        svg.add(
            f'<line x1="{px:.2f}" y1="{y1}" x2="{px:.2f}" y2="{y1 + 4}" '
            f'stroke="{AXIS}" stroke-width="1"/>'
        )
        svg.text(
            px, y1 + 17, _fmt(tick, spec.x_percent),
            fill=INK_MUTED, anchor="middle",
        )
    # Axis titles.
    svg.text(
        (x0 + x1) / 2, _HEIGHT - 14, spec.xlabel, anchor="middle",
        size=11.5,
    )
    svg.text(
        16, (y0 + y1) / 2, spec.ylabel, anchor="middle", size=11.5,
        transform=f"rotate(-90 16 {(y0 + y1) / 2:.2f})",
    )

    # Series lines (2px), then markers with a surface ring on top.
    for series in spec.series:
        points = list(zip(series.x, series.y))
        if spec.step:
            path = [f"M {sx(points[0][0]):.2f} {sy(points[0][1]):.2f}"]
            for (_, _), (bx, by) in zip(points, points[1:]):
                path.append(f"H {sx(bx):.2f}")
                path.append(f"V {sy(by):.2f}")
            svg.add(
                f'<path d="{" ".join(path)}" fill="none" '
                f'stroke="{series.color}" stroke-width="2" '
                f'stroke-linejoin="round"/>'
            )
        else:
            coords = " ".join(
                f"{sx(px):.2f},{sy(py):.2f}" for px, py in points
            )
            svg.add(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{series.color}" stroke-width="2" '
                f'stroke-linejoin="round"/>'
            )
        if spec.markers:
            for px, py in points:
                svg.add(
                    f'<circle cx="{sx(px):.2f}" cy="{sy(py):.2f}" r="4" '
                    f'fill="{series.color}" stroke="{SURFACE}" '
                    f'stroke-width="1.5"/>'
                )

    # Direct labels at the line ends (right margin), nudged apart so
    # identity never rests on color alone.
    ends = sorted(
        (sy(s.y[-1]), s.name, s.color) for s in spec.series
    )
    placed: list[float] = []
    for py, name, color in ends:
        label_y = py
        if placed and label_y < placed[-1] + 15:
            label_y = placed[-1] + 15
        placed.append(label_y)
        svg.add(
            f'<rect x="{x1 + 8:.2f}" y="{label_y - 4:.2f}" width="8" '
            f'height="8" rx="2" fill="{color}"/>'
        )
        svg.text(x1 + 20, label_y + 4, name, size=11.5, fill=INK)

    svg.add("</svg>")
    return "\n".join(svg.parts) + "\n"


# ----------------------------------------------------------------------
# Optional matplotlib PNG renderer (import-gated)
# ----------------------------------------------------------------------
def have_matplotlib() -> bool:
    """Whether the optional PNG renderer's dependency is importable."""
    try:
        import matplotlib  # noqa: F401
    except Exception:
        return False
    return True


def render_png(spec: FigureSpec, path: str | Path) -> Path:
    """Render one figure as PNG via matplotlib (requires matplotlib)."""
    import matplotlib

    matplotlib.use("Agg")
    from matplotlib import pyplot as plt

    fig, ax = plt.subplots(figsize=(7.2, 4.4), dpi=100)
    fig.patch.set_facecolor(SURFACE)
    ax.set_facecolor(SURFACE)
    for series in spec.series:
        if spec.step:
            ax.step(
                series.x, series.y, where="post", color=series.color,
                linewidth=2, label=series.name,
            )
        else:
            ax.plot(
                series.x, series.y, color=series.color, linewidth=2,
                marker="o" if spec.markers else None, markersize=6,
                markeredgecolor=SURFACE, label=series.name,
            )
    if spec.xlog:
        ax.set_xscale("log")
    if spec.ylog:
        ax.set_yscale("log")
    if spec.x_percent:
        ax.xaxis.set_major_formatter(lambda v, _: f"{v * 100:g}%")
    if spec.y_percent:
        ax.yaxis.set_major_formatter(lambda v, _: f"{v * 100:g}%")
    ax.set_title(f"{spec.title}\n{spec.subtitle}", fontsize=11, color=INK)
    ax.set_xlabel(spec.xlabel, color=INK_SECONDARY)
    ax.set_ylabel(spec.ylabel, color=INK_SECONDARY)
    ax.grid(axis="y", color=GRIDLINE, linewidth=1)
    for spine in ax.spines.values():
        spine.set_color(AXIS)
    ax.tick_params(colors=INK_MUTED)
    if len(spec.series) >= 2:
        ax.legend(frameon=False)
    fig.tight_layout()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fig.savefig(path, facecolor=SURFACE)
    plt.close(fig)
    return path


# ----------------------------------------------------------------------
# The file-writing entry point
# ----------------------------------------------------------------------
def render_figures(
    results: list[GridResult],
    analytics: GridAnalytics,
    output_dir: str | os.PathLike,
    prefix: str = "grid",
    formats: tuple[str, ...] = ("svg",),
    failure_count: int | None = None,
) -> list[Path]:
    """Render the paper-figure set into ``output_dir``.

    Args:
        results: Loaded grid results (raw CDF samples come from here).
        analytics: Their :func:`~repro.sweep.analytics.analyze` record.
        output_dir: Destination directory (created if needed).
        prefix: Filename prefix: ``{prefix}_{slug}.{format}``.
        formats: Any of ``"svg"``/``"png"``. PNG without matplotlib
            falls back to SVG with a ``RuntimeWarning`` instead of
            failing (the no-dependency guarantee).
        failure_count: Restrict the CDF figure to one failure level.

    Returns:
        The written paths, in figure order (SVG before PNG per figure).
    """
    unknown = [f for f in formats if f not in ("svg", "png")]
    if unknown:
        raise ReproError(
            f"unknown figure format(s) {unknown!r}; expected 'svg'/'png'"
        )
    wanted = list(dict.fromkeys(formats))
    if "png" in wanted and not have_matplotlib():
        warnings.warn(
            "matplotlib is not installed; falling back to the built-in "
            "SVG renderer for all figures",
            RuntimeWarning,
            stacklevel=2,
        )
        wanted = [f for f in wanted if f != "png"]
        if "svg" not in wanted:
            wanted.append("svg")
    output_dir = Path(output_dir)
    written: list[Path] = []
    for spec in build_figures(results, analytics, failure_count):
        if "svg" in wanted:
            path = output_dir / f"{prefix}_{spec.slug}.svg"
            atomic_write_text(path, render_svg(spec))
            written.append(path)
        if "png" in wanted:
            written.append(
                render_png(spec, output_dir / f"{prefix}_{spec.slug}.png")
            )
    return written
