"""Per-cell grid checkpoints: the resumable-grid persistence layer.

Paper-scale grids (``scale=1.0`` Kdl/ASN with LP baselines) outlive a
process, and before this layer an interrupted :func:`run_scenario_grid`
restarted from zero. Now every completed (topology, seed) job writes
its finished cells into the cache directory as atomic
``gridcell-*.json`` entries, and a ``gridmanifest-*.json`` document
records the suite hash plus the completed-cell set. A re-invocation
with ``resume=True`` (``repro.cli sweep --cache-dir ... --resume``)
loads the completed cells, verifies each entry's key against the
suite, and only executes the remainder.

Keying: each cell entry is keyed by the suite hash
(:func:`suite_token` — a SHA-256 of the canonical suite spec), the
cell's CRC32 :func:`~repro.sweep.grid.cell_seed`, and the full cell
parameter tuple ``(topology, seed, failure_count, scheme)``. The
filename carries a hash of that key (the scenario-cache idiom) and the
key is also stored *inside* the entry and verified on load, so a
hash-prefix collision, a suite edit, or an entry from another grid can
never resurface as the wrong cell — any mismatch, including a stale
``version`` stamp, is treated as a miss and the cell recomputes.

Determinism: loaded cells round-trip through JSON exactly (Python
floats serialize via ``repr`` and parse back bit for bit), and cell
computation is fully seeded by the suite spec, so a resumed grid's
:class:`~repro.sweep.grid.GridResult` is bit-identical to an
uninterrupted run across all executors and ``cell_batch`` settings —
``tests/test_grid_resume.py`` holds this contract.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path

from ..cache import atomic_write_json
from ..exceptions import ReproError
from .grid import GridCell, ScenarioSuite, cell_seed

#: Grid checkpoint/manifest schema version; bump on layout changes so
#: entries written by an older library version read as a miss (the
#: cell recomputes) instead of deserializing a stale layout.
GRID_CHECKPOINT_VERSION = 1

#: Cell coordinates: (topology, seed, failure_count, scheme).
Coords = tuple[str, int, int, str]


def suite_token(suite: ScenarioSuite) -> str:
    """Content hash of a suite spec (the grid's identity on disk).

    Canonical-JSON SHA-256 over :meth:`ScenarioSuite.to_dict`, so two
    processes — or two library versions agreeing on the spec fields —
    compute the same token for the same grid, and *any* spec change
    (an extra failure level, a different training budget) yields a
    different token: checkpoints never leak across suites.
    """
    payload = json.dumps(suite.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _cell_key(token: str, coords: Coords) -> tuple:
    """Full identity of one cell entry (stored inside, hashed for the name)."""
    topology, seed, failure_count, scheme = coords
    return (
        token,
        cell_seed(topology, seed, failure_count),
        topology,
        seed,
        failure_count,
        scheme,
    )


def cell_checkpoint_path(
    cache_dir: str | Path, token: str, coords: Coords
) -> Path:
    """On-disk path of one cell's checkpoint entry."""
    digest = hashlib.sha256(repr(_cell_key(token, coords)).encode())
    return Path(cache_dir) / f"gridcell-{digest.hexdigest()[:20]}.json"


def save_cell_checkpoint(
    cache_dir: str | Path, token: str, cell: GridCell, timing: dict
) -> Path:
    """Atomically persist one completed cell (plus its job timing).

    The job timing rides along with every cell of the job (it is small
    and makes each entry self-contained); resume deduplicates it back
    to one timing record per (topology, seed).
    """
    key = _cell_key(token, cell.coords)
    payload = {
        "version": GRID_CHECKPOINT_VERSION,
        "suite": token,
        "cell_seed": key[1],
        "key": list(cell.coords),
        "cell": cell.to_dict(),
        "timing": dict(timing),
    }
    return atomic_write_json(
        cell_checkpoint_path(cache_dir, token, cell.coords), payload
    )


def load_cell_checkpoint(
    path: str | Path, token: str, coords: Coords
) -> tuple[GridCell, dict]:
    """Load and verify one cell checkpoint.

    Raises:
        ReproError: On unreadable/truncated files, a stale ``version``
            stamp, or any key component disagreeing with the expected
            suite token / coordinates / cell seed. Resume treats every
            such failure as a miss and recomputes the cell.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        raise ReproError(
            f"cannot read grid checkpoint {str(path)!r}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ReproError(
            f"malformed grid checkpoint {str(path)!r}: {error}"
        ) from error
    try:
        if payload["version"] != GRID_CHECKPOINT_VERSION:
            raise ReproError(
                f"stale grid checkpoint {str(path)!r}: schema version "
                f"{payload['version']!r}, expected {GRID_CHECKPOINT_VERSION}"
            )
        if payload["suite"] != token:
            raise ReproError(
                f"grid checkpoint {str(path)!r} belongs to suite "
                f"{payload['suite']!r}, expected {token!r}"
            )
        if tuple(payload["key"]) != tuple(coords):
            raise ReproError(
                f"grid checkpoint {str(path)!r} key mismatch: stored "
                f"{tuple(payload['key'])!r}, expected {tuple(coords)!r}"
            )
        expected_seed = cell_seed(coords[0], coords[1], coords[2])
        if payload["cell_seed"] != expected_seed:
            raise ReproError(
                f"grid checkpoint {str(path)!r} cell-seed mismatch: stored "
                f"{payload['cell_seed']!r}, expected {expected_seed}"
            )
        cell = GridCell.from_dict(payload["cell"])
        timing = dict(payload["timing"])
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(
            f"malformed grid checkpoint {str(path)!r}: "
            f"{type(error).__name__}: {error}"
        ) from error
    if cell.coords != tuple(coords):
        raise ReproError(
            f"grid checkpoint {str(path)!r} cell coordinates "
            f"{cell.coords!r} disagree with its key {tuple(coords)!r}"
        )
    return cell, timing


def manifest_path(cache_dir: str | Path, token: str) -> Path:
    """On-disk path of a suite's grid manifest."""
    return Path(cache_dir) / f"gridmanifest-{token}.json"


def write_manifest(
    cache_dir: str | Path,
    suite: ScenarioSuite,
    token: str,
    completed: list[Coords],
    metadata: dict | None = None,
) -> Path:
    """Atomically (re)write the grid manifest after a job completes.

    The manifest records the suite hash, the full suite spec (for
    humans poking at a cache dir), and the completed-cell set; the
    per-cell entries remain the authority resume verifies against.
    """
    payload = {
        "version": GRID_CHECKPOINT_VERSION,
        "suite": token,
        "spec": suite.to_dict(),
        "num_cells": suite.num_cells,
        "completed": [list(coords) for coords in completed],
        "metadata": dict(metadata or {}),
    }
    return atomic_write_json(manifest_path(cache_dir, token), payload)


def load_manifest(path: str | Path, token: str | None = None) -> dict:
    """Load and verify a grid manifest.

    Raises:
        ReproError: On unreadable/malformed files, a stale ``version``
            stamp, or (when ``token`` is given) a suite-hash mismatch.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
        if payload["version"] != GRID_CHECKPOINT_VERSION:
            raise ReproError(
                f"stale grid manifest {str(path)!r}: schema version "
                f"{payload['version']!r}, expected {GRID_CHECKPOINT_VERSION}"
            )
        if token is not None and payload["suite"] != token:
            raise ReproError(
                f"grid manifest {str(path)!r} belongs to suite "
                f"{payload['suite']!r}, expected {token!r}"
            )
        payload["completed"] = [tuple(c) for c in payload["completed"]]
    except ReproError:
        raise
    except OSError as error:
        raise ReproError(
            f"cannot read grid manifest {str(path)!r}: {error}"
        ) from error
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        raise ReproError(
            f"malformed grid manifest {str(path)!r}: "
            f"{type(error).__name__}: {error}"
        ) from error
    return payload


def load_completed_cells(
    cache_dir: str | Path, suite: ScenarioSuite, token: str | None = None
) -> dict[Coords, tuple[GridCell, dict]]:
    """Verified completed cells of a suite found in a cache directory.

    Probes every cell coordinate of the suite directly (the per-cell
    entries are self-verifying, so this survives a missing, stale, or
    concurrently clobbered manifest) and loads only entries whose full
    key checks out. Unusable entries — truncated writes, stale schema
    versions, foreign suites — are counted, reported once as a
    ``RuntimeWarning``, and treated as misses.
    """
    cache_dir = Path(cache_dir)
    token = token if token is not None else suite_token(suite)
    completed: dict[Coords, tuple[GridCell, dict]] = {}
    unusable = 0
    for topology, seed in suite.jobs():
        for failure_count in suite.failure_counts:
            for scheme in suite.schemes:
                coords = (topology, seed, failure_count, scheme)
                path = cell_checkpoint_path(cache_dir, token, coords)
                if not path.exists():
                    continue
                try:
                    completed[coords] = load_cell_checkpoint(path, token, coords)
                except ReproError:
                    unusable += 1
    if unusable:
        warnings.warn(
            f"{unusable} grid checkpoint entr"
            f"{'y is' if unusable == 1 else 'ies are'} unusable under "
            f"{cache_dir}; the affected cells will recompute",
            RuntimeWarning,
            stacklevel=2,
        )
    return completed
