"""Intra-device grid-cell batching: fuse compatible cells into one kernel.

The grid engine gets parallelism *across* (topology, seed) jobs from
process pools; this module adds the within-device axis the ROADMAP's
backend milestone 2 names: compatible grid cells — same topology,
path set, precision, backend, and scheme, differing only in failure
level, trace seed, and demand matrix — are *bucketed* and executed
through one stacked ``allocate_batch`` / ``split_ratios_batch`` /
``evaluate_allocations_batch`` invocation per bucket chunk, the PR-2
``run_failure_sweep`` recipe lifted from within-cell to across-cell.

Two layers:

**Bucket keying** (:func:`cell_bucket_key`, :func:`plan_cell_batches`).
The bucket key is everything that must match for two cells to share a
stacked kernel invocation: mode, topology, scale, demand-pair budget,
precision, backend, objective, and scheme. Failure level and trace seed
are deliberately *absent* — they are the axes the capacity/demand
stacks carry as batch rows. Seed variants share a bucket (they are
compatible work), but execution still groups a bucket's cells by their
concrete (topology, seed) job: different seeds build different path
sets and train different models, so stacking across seeds would feed
one model another seed's demands. The plan records both levels — the
bucket (compatibility) and the per-job chunks (execution).

**Chunking** (:func:`chunk_level_keys`). The single source of truth for
how a job's failure levels split into stacked invocations, shared by
the plan and by :func:`repro.harness.run_failure_sweep` /
:func:`~repro.harness.run_online_failure_sweep` so the plan's chunk
boundaries are exactly the ones execution uses. ``cell_batch`` semantics
everywhere: 0 = one chunk holding every level (the fully-fused default,
today's behavior), N > 0 = chunks of at most N levels in level order,
1 = a strict per-cell loop (the unbatched baseline the benchmarks
compare against).

Selection follows the ``--backend``/``--precision`` precedence pattern:
:func:`resolve_cell_batch` implements *env < config < CLI* via the
``REPRO_CELL_BATCH`` environment variable, the suite's ``cell_batch``
field, and ``repro.cli sweep --cell-batch``.

Bit-identity contract: every ``cell_batch`` value produces identical
results bit for bit at both precisions. Chunks build their stacks
through the identical ``np.tile``/``np.repeat`` construction recipe
(the PR-6 lesson — value-equal stacks built differently perturb numpy
reductions by 1 ulp), and the batched kernels are row-identical across
batch sizes: batched matmuls run one fixed-shape GEMM per batch
element, CSR aggregation loops batch rows, and the tiled segment
primitives accumulate each segment in the original order.
``tests/test_scenario_grid.py`` pins this on B4/SWAN at float32 and
float64.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..exceptions import ReproError

#: Environment variable consulted when no explicit cell batch is set.
ENV_CELL_BATCH = "REPRO_CELL_BATCH"

#: The default: stack every compatible cell of a job into one invocation.
DEFAULT_CELL_BATCH = 0


def resolve_cell_batch(spec: int | str | None = None) -> int:
    """Resolve a cell-batch spec with precedence *env < config < CLI*.

    Mirrors :func:`repro.core.backend.resolve_backend`: an explicit
    ``spec`` (CLI flag or suite field) wins; when ``spec`` is None the
    ``REPRO_CELL_BATCH`` environment variable is consulted; when that
    is unset too, the fully-fused default (0) applies.

    Raises:
        ReproError: On a negative or non-integer value.
    """
    if spec is None:
        env = os.environ.get(ENV_CELL_BATCH, "").strip()
        if not env:
            return DEFAULT_CELL_BATCH
        spec = env
    try:
        value = int(spec)
    except (TypeError, ValueError):
        raise ReproError(
            f"invalid cell batch {spec!r}; expected a non-negative integer "
            "(0 = fuse all compatible cells, 1 = per-cell loop)"
        ) from None
    if value < 0:
        raise ReproError(
            f"invalid cell batch {value}; expected a non-negative integer"
        )
    return value


def chunk_level_keys(keys: list, cell_batch: int) -> list[list]:
    """Split a job's sweep keys into stacked-invocation chunks.

    The shared chunking rule (see the module docstring): ``cell_batch``
    0 yields one chunk with every key, N > 0 yields consecutive chunks
    of at most N keys in the given order. The order is preserved so the
    concatenation of chunk stacks equals the fully-fused stack row for
    row.
    """
    cell_batch = int(cell_batch)
    if cell_batch < 0:
        raise ReproError(
            f"invalid cell batch {cell_batch}; expected a non-negative integer"
        )
    keys = list(keys)
    if cell_batch == 0 or cell_batch >= len(keys):
        return [keys] if keys else []
    return [
        keys[start : start + cell_batch]
        for start in range(0, len(keys), cell_batch)
    ]


def cell_bucket_key(suite, topology: str, scheme: str) -> tuple:
    """The compatibility key of a grid cell: cells sharing it may fuse.

    Args:
        suite: The :class:`~repro.sweep.grid.ScenarioSuite` (supplies
            mode, scale, pair budget, precision, backend, objective).
        topology: The cell's topology name.
        scheme: The cell's scheme name.

    Returns:
        A hashable tuple. Cells that differ in topology, precision,
        backend, scheme, mode, scale, pair budget, or objective get
        distinct keys; cells that differ only in failure level or trace
        seed share one.
    """
    return (
        suite.mode,
        topology,
        suite.scale,
        suite.max_pairs,
        suite.precision,
        suite.backend,
        suite.objective,
        scheme,
    )


@dataclass(frozen=True)
class CellBucket:
    """One compatibility bucket of a cell-batch plan.

    Attributes:
        key: The :func:`cell_bucket_key` shared by every member cell.
        cells: Member cell coordinates (topology, seed, failure_count,
            scheme) in grid order.
        chunks: Stacked-invocation groups, one list of cell coordinates
            per ``allocate_batch`` call. Grouped by (topology, seed) job
            first — seed variants are *compatible* (same bucket) but
            execute per job because each seed trains its own model —
            then chunked by the shared :func:`chunk_level_keys` rule.
    """

    key: tuple
    cells: tuple = ()
    chunks: tuple = ()

    def to_dict(self) -> dict:
        return {
            "key": list(self.key),
            "cells": [list(cell) for cell in self.cells],
            "chunks": [[list(cell) for cell in chunk] for chunk in self.chunks],
        }


@dataclass(frozen=True)
class CellBatchPlan:
    """How a suite's cells fuse into stacked kernel invocations.

    Built by :func:`plan_cell_batches` before a grid runs; recorded in
    ``GridResult.metadata["cell_batching"]`` so a saved result documents
    the batching that produced it.

    Attributes:
        cell_batch: The resolved chunk bound (0 = fully fused).
        buckets: One :class:`CellBucket` per compatibility class, in
            grid order.
    """

    cell_batch: int
    buckets: tuple = ()

    @property
    def num_cells(self) -> int:
        return sum(len(bucket.cells) for bucket in self.buckets)

    @property
    def num_invocations(self) -> int:
        """Stacked ``allocate_batch`` calls per scheme across the grid."""
        return sum(len(bucket.chunks) for bucket in self.buckets)

    def to_dict(self) -> dict:
        return {
            "cell_batch": self.cell_batch,
            "num_buckets": len(self.buckets),
            "num_invocations": self.num_invocations,
            "buckets": [bucket.to_dict() for bucket in self.buckets],
        }


def plan_cell_batches(suite, cell_batch: int | None = None) -> CellBatchPlan:
    """Bucket a suite's cells and chunk each bucket into invocations.

    Args:
        suite: The :class:`~repro.sweep.grid.ScenarioSuite`.
        cell_batch: Explicit chunk bound; None resolves via
            :func:`resolve_cell_batch` (suite field, then env, then 0).

    Returns:
        A :class:`CellBatchPlan` whose chunk boundaries are exactly the
        ones :func:`repro.harness.run_failure_sweep` executes.
    """
    if cell_batch is None:
        cell_batch = resolve_cell_batch(suite.cell_batch)
    buckets: dict[tuple, list] = {}
    for topology in suite.topologies:
        for scheme in suite.schemes:
            key = cell_bucket_key(suite, topology, scheme)
            members = buckets.setdefault(key, [])
            for seed in suite.seeds:
                members.append(
                    [
                        (topology, seed, count, scheme)
                        for count in suite.failure_counts
                    ]
                )
    built = []
    for key, jobs in buckets.items():
        cells = tuple(cell for job_cells in jobs for cell in job_cells)
        chunks = tuple(
            tuple(chunk)
            for job_cells in jobs
            for chunk in chunk_level_keys(job_cells, cell_batch)
        )
        built.append(CellBucket(key=key, cells=cells, chunks=chunks))
    return CellBatchPlan(cell_batch=cell_batch, buckets=tuple(built))
