"""Grid analytics: reduce :class:`GridResult` records into paper curves.

A scenario grid produces one JSON blob per run; the paper's headline
claims live *across* runs — Teal's speedup over the LP baselines grows
with topology size (Figures 4-5), satisfied demand degrades gracefully
with failures (Figures 8-9), and float32 inference tracks float64 at a
fraction of the cost. This module loads one-or-many ``GridResult`` JSONs
(different PRs, precisions, or topology subsets) and reduces them into
typed aggregate records:

- :func:`speedup_curve` — speedup-vs-topology-size points, the Figure
  4-5 shape, one :class:`SpeedupPoint` per (topology, size, precision).
- :func:`scheme_distributions` — satisfied-demand / objective-value
  distributions per scheme x failure level (Figure 7b/8 shapes). Under
  the ``min_mlu`` objective the objective column *is* the MLU.
- :func:`phase_breakdown` — build / train / sweep wall-clock shares per
  topology (the Table 2 shape for the offline pipeline).
- :func:`precision_table` — float32-vs-float64 speedup and quality
  parity per topology, for result sets spanning both precisions.

:func:`analyze` bundles all four into a :class:`GridAnalytics` record
with stable JSON and CSV exports; ``repro.cli analyze`` is the shell
entry point. All reductions are pure functions of the loaded results —
re-running them on the same JSONs is bit-stable.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from ..cache import atomic_write_json
from ..exceptions import ReproError
from .grid import GridResult

#: Scheme treated as the learning-accelerated side of speedup curves.
DEFAULT_ACCELERATED = "Teal"


def load_grid_results(paths: list[str | os.PathLike]) -> list["GridResult"]:
    """Load ``GridResult`` JSONs written by :meth:`GridResult.to_json`.

    Args:
        paths: One or more JSON file paths.

    Returns:
        The decoded results, in input order.

    Raises:
        ReproError: If a file is missing, unreadable, or not a
            well-formed ``GridResult`` document.
    """
    if not paths:
        raise ReproError("no grid result files given")
    # from_json wraps unreadable/truncated/key-mismatched files into a
    # ReproError that names the file and the reason.
    return [GridResult.from_json(path) for path in paths]


# ----------------------------------------------------------------------
# Typed aggregate records
# ----------------------------------------------------------------------
class _Record:
    """Shared to_dict/from_dict for the frozen aggregate dataclasses.

    ``from_dict`` drops unknown keys, so analytics JSONs written by
    newer library versions (extra fields) stay loadable by this one —
    the same forward-compatibility rule :meth:`ScenarioSuite.from_dict`
    follows.
    """

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict):
        """Rebuild a record from :meth:`to_dict` output."""
        names = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in record.items() if k in names})


@dataclass(frozen=True)
class SpeedupPoint(_Record):
    """One point of the speedup-vs-topology-size curve (Figures 4-5).

    Aggregates every grid cell of one (topology, size, precision) group
    across the loaded results: all seeds, failure levels, and traffic
    matrices pool into the two per-scheme mean compute times.
    """

    topology: str
    num_nodes: int
    num_edges: int
    num_demands: int
    precision: str
    baseline: str
    accelerated: str
    baseline_mean_time: float
    accelerated_mean_time: float
    speedup: float
    num_samples: int


@dataclass(frozen=True)
class SchemeDistribution(_Record):
    """Satisfied-demand / objective distribution of one scheme x failure level."""

    scheme: str
    failure_count: int
    num_samples: int
    mean_satisfied: float
    p10_satisfied: float
    p50_satisfied: float
    p90_satisfied: float
    min_satisfied: float
    max_satisfied: float
    mean_objective: float
    mean_compute_time: float
    p90_compute_time: float


@dataclass(frozen=True)
class PhaseBreakdown(_Record):
    """Mean build/train/sweep wall-clock of one topology's grid jobs."""

    topology: str
    num_nodes: int
    num_jobs: int
    build_seconds: float
    train_seconds: float
    sweep_seconds: float

    @property
    def total_seconds(self) -> float:
        """Sum of the per-phase means."""
        return self.build_seconds + self.train_seconds + self.sweep_seconds

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        record = asdict(self)
        record["total_seconds"] = self.total_seconds
        return record


@dataclass(frozen=True)
class PrecisionComparison(_Record):
    """float32-vs-float64 speedup and parity for one topology.

    Only produced when the loaded results span both precisions.
    ``max_satisfied_rel_diff`` is the worst relative disagreement of any
    scheme's mean satisfied demand between the two precision runs — the
    quality-parity figure the documented 1e-4 tolerance bounds.
    """

    topology: str
    num_nodes: int
    scheme: str
    float32_mean_time: float
    float64_mean_time: float
    speedup: float
    max_satisfied_rel_diff: float


# ----------------------------------------------------------------------
# Grouping helpers
# ----------------------------------------------------------------------
def _job_sizes(result: GridResult) -> dict[tuple[str, int], dict]:
    """(topology, seed) -> timing record (carries the instance sizes)."""
    return {(t["topology"], t["seed"]): t for t in result.timings}


def _size_groups(
    results: list[GridResult],
) -> dict[tuple[str, int], list[tuple[GridResult, object, dict]]]:
    """Group (result, cell, job timing) triples by (topology, num_nodes).

    Two results may run the same topology name at different scales; the
    node count keeps those distinct points on the size axis instead of
    silently averaging them. The cell's job timing record rides along so
    downstream reductions read instance sizes without re-deriving the
    per-result timing index.
    """
    groups: dict[tuple[str, int], list[tuple[GridResult, object, dict]]] = {}
    for result in results:
        sizes = _job_sizes(result)
        for cell in result.cells:
            timing = sizes.get((cell.topology, cell.seed))
            if timing is None:
                continue  # a result missing its timing rows has no size axis
            key = (cell.topology, int(timing["num_nodes"]))
            groups.setdefault(key, []).append((result, cell, timing))
    return groups


def _mean_size(
    entries: list[tuple[GridResult, object, dict]], field_name: str
) -> int:
    """Mean instance-size field over a group's job timing records."""
    return int(
        round(float(np.mean([int(t[field_name]) for _, _, t in entries])))
    )


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def speedup_curve(
    results: list[GridResult],
    baseline: str | None = None,
    accelerated: str = DEFAULT_ACCELERATED,
) -> list[SpeedupPoint]:
    """Speedup-vs-topology-size points across the loaded results.

    Args:
        results: Loaded grid results.
        baseline: Baseline scheme name (default: the first non-accelerated
            scheme declared by the results' suites).
        accelerated: Accelerated scheme name (default ``"Teal"``).

    Returns:
        One point per (topology, node count, precision) with both schemes
        present, sorted by node count then topology then precision.

    Raises:
        ReproError: If no baseline can be resolved or no group contains
            both schemes.
    """
    baseline = resolve_baseline(results, baseline, accelerated)
    points: list[SpeedupPoint] = []
    for (topology, num_nodes), entries in _size_groups(results).items():
        num_edges = _mean_size(entries, "num_edges")
        num_demands = _mean_size(entries, "num_demands")
        by_precision: dict[str, dict[str, list[float]]] = {}
        for result, cell, _ in entries:
            if cell.scheme not in (baseline, accelerated):
                continue
            times = by_precision.setdefault(
                result.suite.precision, {baseline: [], accelerated: []}
            )
            times[cell.scheme].extend(cell.run.compute_times)
        for precision, times in sorted(by_precision.items()):
            base_times, accel_times = times[baseline], times[accelerated]
            if not base_times or not accel_times:
                continue
            base_mean = float(np.mean(base_times))
            accel_mean = float(np.mean(accel_times))
            if accel_mean <= 0:
                continue
            points.append(
                SpeedupPoint(
                    topology=topology,
                    num_nodes=num_nodes,
                    num_edges=num_edges,
                    num_demands=num_demands,
                    precision=precision,
                    baseline=baseline,
                    accelerated=accelerated,
                    baseline_mean_time=base_mean,
                    accelerated_mean_time=accel_mean,
                    speedup=base_mean / accel_mean,
                    num_samples=len(accel_times),
                )
            )
    if not points:
        raise ReproError(
            f"no grid cells pair {baseline!r} with {accelerated!r}; "
            "cannot build a speedup curve"
        )
    return sorted(points, key=lambda p: (p.num_nodes, p.topology, p.precision))


def resolve_baseline(
    results: list[GridResult],
    baseline: str | None,
    accelerated: str = DEFAULT_ACCELERATED,
) -> str:
    """The baseline scheme name: explicit, or the suites' first non-accelerated."""
    if baseline is not None:
        return baseline
    for result in results:
        for name in result.suite.schemes:
            if name != accelerated:
                return name
    raise ReproError(
        f"results declare no scheme besides {accelerated!r}; "
        "pass an explicit baseline"
    )


def scheme_distributions(results: list[GridResult]) -> list[SchemeDistribution]:
    """Per (scheme, failure level) satisfied/objective distributions.

    Pools every matching cell's per-matrix samples across topologies,
    seeds, and results — the Figure 7b/8 aggregation. Under the
    ``min_mlu`` objective the objective column is the MLU distribution.
    """
    groups: dict[tuple[str, int], dict[str, list[float]]] = {}
    for result in results:
        for cell in result.cells:
            samples = groups.setdefault(
                (cell.scheme, cell.failure_count),
                {"satisfied": [], "objective": [], "time": []},
            )
            samples["satisfied"].extend(cell.run.satisfied)
            samples["objective"].extend(cell.run.objective_values)
            samples["time"].extend(cell.run.compute_times)
    out: list[SchemeDistribution] = []
    for (scheme, count), samples in sorted(groups.items()):
        satisfied = np.asarray(samples["satisfied"], dtype=float)
        times = np.asarray(samples["time"], dtype=float)
        if satisfied.size == 0:
            continue
        out.append(
            SchemeDistribution(
                scheme=scheme,
                failure_count=count,
                num_samples=int(satisfied.size),
                mean_satisfied=float(satisfied.mean()),
                p10_satisfied=float(np.percentile(satisfied, 10)),
                p50_satisfied=float(np.percentile(satisfied, 50)),
                p90_satisfied=float(np.percentile(satisfied, 90)),
                min_satisfied=float(satisfied.min()),
                max_satisfied=float(satisfied.max()),
                mean_objective=float(np.mean(samples["objective"]))
                if samples["objective"]
                else 0.0,
                mean_compute_time=float(times.mean()) if times.size else 0.0,
                p90_compute_time=float(np.percentile(times, 90))
                if times.size
                else 0.0,
            )
        )
    return out


def satisfied_samples(
    results: list[GridResult],
    failure_count: int | None = None,
) -> dict[str, list[float]]:
    """Raw per-matrix satisfied-demand samples pooled per scheme.

    The Figure 7 CDFs plot the *distribution* of satisfied demand
    across test instances, which needs the raw samples rather than the
    :class:`SchemeDistribution` percentiles. Pools every cell's
    ``run.satisfied`` list across topologies, seeds, and results, in
    deterministic cell order.

    Args:
        results: Loaded grid results.
        failure_count: Restrict to one failure level (None pools all).

    Returns:
        Mapping scheme name -> samples, schemes sorted by name.
    """
    pooled: dict[str, list[float]] = {}
    for result in results:
        for cell in result.cells:
            if failure_count is not None and cell.failure_count != failure_count:
                continue
            pooled.setdefault(cell.scheme, []).extend(cell.run.satisfied)
    return {scheme: pooled[scheme] for scheme in sorted(pooled)}


def phase_breakdown(results: list[GridResult]) -> list[PhaseBreakdown]:
    """Mean build/train/sweep seconds per (topology, size) across results."""
    groups: dict[tuple[str, int], list[dict]] = {}
    for result in results:
        for timing in result.timings:
            key = (timing["topology"], int(timing["num_nodes"]))
            groups.setdefault(key, []).append(timing)
    out: list[PhaseBreakdown] = []
    for (topology, num_nodes), timings in groups.items():
        out.append(
            PhaseBreakdown(
                topology=topology,
                num_nodes=num_nodes,
                num_jobs=len(timings),
                build_seconds=float(
                    np.mean([t["build_seconds"] for t in timings])
                ),
                train_seconds=float(
                    np.mean([t["train_seconds"] for t in timings])
                ),
                sweep_seconds=float(
                    np.mean([t["sweep_seconds"] for t in timings])
                ),
            )
        )
    return sorted(out, key=lambda p: (p.num_nodes, p.topology))


def precision_table(
    results: list[GridResult],
    accelerated: str = DEFAULT_ACCELERATED,
) -> list[PrecisionComparison]:
    """float32-vs-float64 speedup/parity rows per topology.

    Empty unless the loaded results span both precisions for at least
    one (topology, size) group.
    """
    groups = _size_groups(results)
    out: list[PrecisionComparison] = []
    for (topology, num_nodes), entries in groups.items():
        # scheme -> precision -> pooled samples
        times: dict[str, dict[str, list[float]]] = {}
        satisfied: dict[str, dict[str, list[float]]] = {}
        for result, cell, _ in entries:
            precision = result.suite.precision
            times.setdefault(cell.scheme, {}).setdefault(precision, []).extend(
                cell.run.compute_times
            )
            satisfied.setdefault(cell.scheme, {}).setdefault(
                precision, []
            ).extend(cell.run.satisfied)
        accel = times.get(accelerated, {})
        if not {"float32", "float64"} <= set(accel):
            continue
        t32 = float(np.mean(accel["float32"]))
        t64 = float(np.mean(accel["float64"]))
        # Parity: worst per-scheme relative disagreement of mean satisfied.
        worst = 0.0
        for scheme, per_precision in satisfied.items():
            if not {"float32", "float64"} <= set(per_precision):
                continue
            m32 = float(np.mean(per_precision["float32"]))
            m64 = float(np.mean(per_precision["float64"]))
            scale = max(abs(m64), 1e-12)
            worst = max(worst, abs(m32 - m64) / scale)
        out.append(
            PrecisionComparison(
                topology=topology,
                num_nodes=num_nodes,
                scheme=accelerated,
                float32_mean_time=t32,
                float64_mean_time=t64,
                speedup=t64 / t32 if t32 > 0 else float("nan"),
                max_satisfied_rel_diff=worst,
            )
        )
    return sorted(out, key=lambda p: (p.num_nodes, p.topology))


# ----------------------------------------------------------------------
# The bundled analytics record
# ----------------------------------------------------------------------
@dataclass
class GridAnalytics:
    """All grid reductions of one result set, with JSON/CSV exports."""

    baseline: str
    accelerated: str
    sources: list[str] = field(default_factory=list)
    num_results: int = 0
    num_cells: int = 0
    objectives: list[str] = field(default_factory=list)
    precisions: list[str] = field(default_factory=list)
    curve: list[SpeedupPoint] = field(default_factory=list)
    distributions: list[SchemeDistribution] = field(default_factory=list)
    phases: list[PhaseBreakdown] = field(default_factory=list)
    precision: list[PrecisionComparison] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "baseline": self.baseline,
            "accelerated": self.accelerated,
            "sources": list(self.sources),
            "num_results": self.num_results,
            "num_cells": self.num_cells,
            "objectives": list(self.objectives),
            "precisions": list(self.precisions),
            "curve": [p.to_dict() for p in self.curve],
            "distributions": [d.to_dict() for d in self.distributions],
            "phases": [p.to_dict() for p in self.phases],
            "precision": [p.to_dict() for p in self.precision],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "GridAnalytics":
        """Rebuild analytics from :meth:`to_dict` output."""
        return cls(
            baseline=record["baseline"],
            accelerated=record["accelerated"],
            sources=list(record.get("sources", [])),
            num_results=int(record.get("num_results", 0)),
            num_cells=int(record.get("num_cells", 0)),
            objectives=list(record.get("objectives", [])),
            precisions=list(record.get("precisions", [])),
            curve=[SpeedupPoint.from_dict(p) for p in record.get("curve", [])],
            distributions=[
                SchemeDistribution.from_dict(d)
                for d in record.get("distributions", [])
            ],
            phases=[
                PhaseBreakdown.from_dict(p) for p in record.get("phases", [])
            ],
            precision=[
                PrecisionComparison.from_dict(p)
                for p in record.get("precision", [])
            ],
        )

    def to_json(self, path: str | os.PathLike) -> None:
        """Write the analytics as an indented JSON file (atomically)."""
        atomic_write_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path: str | os.PathLike) -> "GridAnalytics":
        """Load analytics written by :meth:`to_json`."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    #: Column order of the CSV export (one speedup-curve row per line).
    CSV_COLUMNS = (
        "topology",
        "num_nodes",
        "num_edges",
        "num_demands",
        "precision",
        "baseline",
        "accelerated",
        "baseline_mean_time",
        "accelerated_mean_time",
        "speedup",
        "num_samples",
    )

    def to_csv(self, path: str | os.PathLike) -> None:
        """Write the speedup curve as CSV (stable column order)."""
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.CSV_COLUMNS)
            writer.writeheader()
            for point in self.curve:
                writer.writerow(
                    {name: getattr(point, name) for name in self.CSV_COLUMNS}
                )


def analyze(
    results: list[GridResult],
    baseline: str | None = None,
    accelerated: str = DEFAULT_ACCELERATED,
    sources: list[str | os.PathLike] | None = None,
) -> GridAnalytics:
    """Reduce loaded grid results into one :class:`GridAnalytics` record.

    Args:
        results: Loaded results (see :func:`load_grid_results`).
        baseline: Baseline scheme for the speedup curve (default: the
            suites' first non-accelerated scheme).
        accelerated: Accelerated scheme name (default ``"Teal"``).
        sources: Optional provenance strings (file paths) recorded in the
            output.

    Raises:
        ReproError: If the result list is empty or no speedup pairing
            exists.
    """
    if not results:
        raise ReproError("no grid results to analyze")
    baseline = resolve_baseline(results, baseline, accelerated)
    objectives = sorted({r.suite.objective for r in results})
    precisions = sorted({r.suite.precision for r in results})
    return GridAnalytics(
        baseline=baseline,
        accelerated=accelerated,
        sources=[os.fspath(s) for s in sources or []],
        num_results=len(results),
        num_cells=sum(len(r.cells) for r in results),
        objectives=objectives,
        precisions=precisions,
        curve=speedup_curve(results, baseline, accelerated),
        distributions=scheme_distributions(results),
        phases=phase_breakdown(results),
        precision=precision_table(results, accelerated),
    )


def format_analytics(analytics: GridAnalytics) -> str:
    """Human-readable report of one analytics record (CLI output)."""
    lines = [
        f"grid analytics: {analytics.num_results} result(s), "
        f"{analytics.num_cells} cells, "
        f"objectives={'/'.join(analytics.objectives)}, "
        f"precisions={'/'.join(analytics.precisions)}",
        "",
        f"speedup vs topology size ({analytics.accelerated} over "
        f"{analytics.baseline}):",
        f"{'topology':<12} {'nodes':>6} {'demands':>8} {'prec':>8} "
        f"{'base (s)':>10} {'accel (s)':>10} {'speedup':>8}",
    ]
    for p in analytics.curve:
        lines.append(
            f"{p.topology:<12} {p.num_nodes:>6} {p.num_demands:>8} "
            f"{p.precision:>8} {p.baseline_mean_time:>10.4f} "
            f"{p.accelerated_mean_time:>10.4f} {p.speedup:>7.1f}x"
        )
    lines += [
        "",
        "satisfied demand per scheme x failure level:",
        f"{'scheme':<12} {'fails':>5} {'n':>5} {'mean':>7} {'p10':>7} "
        f"{'p50':>7} {'p90':>7}",
    ]
    for d in analytics.distributions:
        lines.append(
            f"{d.scheme:<12} {d.failure_count:>5} {d.num_samples:>5} "
            f"{d.mean_satisfied:>6.1%} {d.p10_satisfied:>6.1%} "
            f"{d.p50_satisfied:>6.1%} {d.p90_satisfied:>6.1%}"
        )
    lines += [
        "",
        "phase breakdown (mean seconds per job):",
        f"{'topology':<12} {'nodes':>6} {'jobs':>5} {'build':>8} "
        f"{'train':>8} {'sweep':>8} {'total':>8}",
    ]
    for p in analytics.phases:
        lines.append(
            f"{p.topology:<12} {p.num_nodes:>6} {p.num_jobs:>5} "
            f"{p.build_seconds:>8.3f} {p.train_seconds:>8.3f} "
            f"{p.sweep_seconds:>8.3f} {p.total_seconds:>8.3f}"
        )
    if analytics.precision:
        lines += [
            "",
            "float32 vs float64 (accelerated scheme):",
            f"{'topology':<12} {'nodes':>6} {'f32 (s)':>10} {'f64 (s)':>10} "
            f"{'speedup':>8} {'max rel diff':>13}",
        ]
        for p in analytics.precision:
            lines.append(
                f"{p.topology:<12} {p.num_nodes:>6} "
                f"{p.float32_mean_time:>10.4f} {p.float64_mean_time:>10.4f} "
                f"{p.speedup:>7.2f}x {p.max_satisfied_rel_diff:>13.2e}"
            )
    return "\n".join(lines)
