"""Exception hierarchy for the Teal reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Raised when a topology is malformed or an operation on it is invalid."""


class TrafficError(ReproError):
    """Raised when a traffic matrix or trace is malformed."""


class PathError(ReproError):
    """Raised when path computation or path-set construction fails."""


class SolverError(ReproError):
    """Raised when an LP solve fails or returns an unusable status."""


class ModelError(ReproError):
    """Raised when a neural model is misconfigured or used inconsistently."""


class TrainingError(ReproError):
    """Raised when a training loop receives invalid inputs or diverges."""


class SimulationError(ReproError):
    """Raised when the online simulation harness is configured inconsistently."""
