"""Serialization of topologies and traffic traces.

Lets users persist the exact experimental inputs (synthetic topologies
and traces are seeded, but files pin them across library versions) and
import their own WAN data:

- Topologies round-trip through a small JSON document (nodes, directed
  edges, capacities, latencies, names).
- Traffic traces round-trip through ``.npz`` (a 3-D demand tensor plus
  the starting interval).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .exceptions import ReproError
from .topology.graph import Topology
from .traffic.matrix import TrafficMatrix
from .traffic.trace import TrafficTrace

_TOPOLOGY_FORMAT = 1
_TRACE_FORMAT = 1


def save_topology(topology: Topology, path: str | Path) -> Path:
    """Write a topology as JSON.

    Args:
        topology: The topology to persist.
        path: Destination (``.json`` appended if missing).

    Returns:
        The written path.
    """
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(".json")
    document = {
        "format": _TOPOLOGY_FORMAT,
        "name": topology.name,
        "num_nodes": topology.num_nodes,
        "edges": [[int(u), int(v)] for u, v in topology.edges],
        "capacities": topology.capacities.tolist(),
        "latencies": topology.latencies.tolist(),
        "node_names": {str(k): v for k, v in topology.node_names.items()},
    }
    path.write_text(json.dumps(document, indent=2))
    return path


def load_topology(path: str | Path) -> Topology:
    """Read a topology written by :func:`save_topology`.

    Raises:
        ReproError: On unknown formats or malformed documents.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read topology file {path}: {error}") from error
    if document.get("format") != _TOPOLOGY_FORMAT:
        raise ReproError(
            f"unsupported topology format {document.get('format')!r}"
        )
    return Topology(
        num_nodes=int(document["num_nodes"]),
        edges=[(int(u), int(v)) for u, v in document["edges"]],
        capacities=np.array(document["capacities"], dtype=float),
        latencies=np.array(document["latencies"], dtype=float),
        name=str(document.get("name", "topology")),
        node_names={
            int(k): str(v) for k, v in document.get("node_names", {}).items()
        },
    )


def save_trace(trace: TrafficTrace, path: str | Path) -> Path:
    """Write a traffic trace as ``.npz`` (demand tensor + start interval)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    tensor = np.stack([m.values for m in trace])
    np.savez_compressed(
        path,
        format=np.array(_TRACE_FORMAT),
        demands=tensor,
        start_interval=np.array(trace[0].interval),
    )
    return path


def load_trace(path: str | Path) -> TrafficTrace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        ReproError: On unknown formats or malformed files.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    try:
        with np.load(path) as data:
            if int(data["format"]) != _TRACE_FORMAT:
                raise ReproError(
                    f"unsupported trace format {int(data['format'])}"
                )
            tensor = data["demands"]
            start = int(data["start_interval"])
    except (OSError, KeyError, ValueError) as error:
        raise ReproError(f"cannot read trace file {path}: {error}") from error
    matrices = [
        TrafficMatrix(tensor[i], interval=start + i)
        for i in range(tensor.shape[0])
    ]
    return TrafficTrace(matrices)
