"""Synthetic WAN traffic calibrated to the paper's trace statistics (§5.1).

The paper trains/evaluates on 20 days of Microsoft SWAN inter-datacenter
traffic, which is unavailable. Per DESIGN.md §2 we substitute a synthetic
model with the two properties the evaluation depends on:

1. **Heavy-tailed spatial skew** — the top 10% of demands carry 88.4% of
   total volume. We use a gravity model with log-normal node masses and
   tune the log-normal sigma so the generated share matches 88.4%
   (:func:`calibrate_sigma`).
2. **Smooth temporal evolution** — consecutive 5-minute matrices are
   strongly correlated. Each demand follows an AR(1) process in log space
   around its gravity mean, plus a shared diurnal modulation.

All generation is deterministic given a seed.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import TOP10_VOLUME_SHARE
from ..exceptions import TrafficError
from .matrix import TrafficMatrix


def gravity_base_matrix(
    num_nodes: int,
    sigma: float = 2.0,
    mean_total: float = 1000.0,
    seed: int = 0,
) -> np.ndarray:
    """Gravity-model mean demands with log-normal node masses.

    Demand(s, t) ∝ mass(s) * mass(t); masses are log-normal with shape
    ``sigma``, which controls how heavy-tailed the demand distribution is.

    Args:
        num_nodes: Number of sites.
        sigma: Log-normal shape of node masses (higher = heavier tail).
        mean_total: Total volume the matrix is normalized to.
        seed: RNG seed.

    Returns:
        (n, n) mean-demand array with zero diagonal.
    """
    if num_nodes < 2:
        raise TrafficError("need at least 2 nodes for traffic")
    if sigma <= 0:
        raise TrafficError("sigma must be positive")
    rng = np.random.default_rng(seed)
    masses = rng.lognormal(mean=0.0, sigma=sigma, size=num_nodes)
    base = np.outer(masses, masses)
    np.fill_diagonal(base, 0.0)
    total = base.sum()
    if total <= 0:
        raise TrafficError("degenerate gravity matrix")
    return base * (mean_total / total)


def top_fraction_share(values: np.ndarray, fraction: float = 0.1) -> float:
    """Share of volume carried by the top ``fraction`` of positive demands."""
    flat = values[values > 0]
    if flat.size == 0:
        return 0.0
    k = max(1, int(round(fraction * flat.size)))
    return float(np.sort(flat)[-k:].sum() / flat.sum())


def calibrate_sigma(
    num_nodes: int,
    target_share: float = TOP10_VOLUME_SHARE,
    seed: int = 0,
    tolerance: float = 0.01,
    max_iters: int = 40,
) -> float:
    """Find the log-normal sigma whose top-10% share matches the paper.

    Binary search over sigma in [0.1, 6]; the share is monotonically
    increasing in sigma for a fixed mass sample, so the search converges.

    Args:
        num_nodes: Number of sites.
        target_share: Target top-10% volume share (paper: 0.884).
        seed: RNG seed (the same seed must be passed to the generator).
        tolerance: Acceptable |share - target|.
        max_iters: Search iteration cap.

    Returns:
        The calibrated sigma.
    """
    if not 0 < target_share < 1:
        raise TrafficError("target_share must be in (0, 1)")
    lo, hi = 0.1, 6.0
    best = (math.inf, (lo + hi) / 2)
    for _ in range(max_iters):
        mid = (lo + hi) / 2
        share = top_fraction_share(
            gravity_base_matrix(num_nodes, sigma=mid, seed=seed)
        )
        err = abs(share - target_share)
        if err < best[0]:
            best = (err, mid)
        if err <= tolerance:
            return mid
        if share < target_share:
            lo = mid
        else:
            hi = mid
    return best[1]


class TrafficGenerator:
    """Generates temporally-correlated traffic matrices.

    Each positive demand d(s,t) evolves as an AR(1) process in log space:

        x_i = phi * x_{i-1} + eps_i,    demand_i = mean * exp(x_i) * diurnal_i

    where ``eps`` has standard deviation ``volatility * sqrt(1 - phi^2)``
    so the stationary log-variance equals ``volatility**2``.

    Args:
        num_nodes: Number of sites.
        sigma: Gravity-mass log-normal shape; ``None`` calibrates to the
            paper's 88.4% top-10% share.
        mean_total: Mean total volume per interval.
        phi: AR(1) coefficient (temporal correlation, 0..1).
        volatility: Stationary standard deviation of log fluctuations.
        diurnal_amplitude: Amplitude of the shared sinusoidal daily cycle.
        seed: RNG seed.
    """

    #: Number of 5-minute intervals in one day (diurnal period).
    INTERVALS_PER_DAY = 288

    def __init__(
        self,
        num_nodes: int,
        sigma: float | None = None,
        mean_total: float = 1000.0,
        phi: float = 0.95,
        volatility: float = 0.25,
        diurnal_amplitude: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not 0 <= phi < 1:
            raise TrafficError("phi must be in [0, 1)")
        if volatility < 0:
            raise TrafficError("volatility must be non-negative")
        if sigma is None:
            sigma = calibrate_sigma(num_nodes, seed=seed)
        self.num_nodes = num_nodes
        self.sigma = sigma
        self.phi = phi
        self.volatility = volatility
        self.diurnal_amplitude = diurnal_amplitude
        self.seed = seed
        self.mean_matrix = gravity_base_matrix(
            num_nodes, sigma=sigma, mean_total=mean_total, seed=seed
        )

    def generate(self, num_intervals: int, start_interval: int = 0) -> list[TrafficMatrix]:
        """Generate ``num_intervals`` consecutive matrices.

        Args:
            num_intervals: Number of 5-minute intervals.
            start_interval: Index of the first interval (sets the diurnal
                phase and the interval labels).

        Returns:
            List of :class:`TrafficMatrix`, one per interval.
        """
        if num_intervals <= 0:
            raise TrafficError("num_intervals must be positive")
        rng = np.random.default_rng(self.seed + 1)
        n = self.num_nodes
        innovation_std = self.volatility * math.sqrt(1 - self.phi ** 2)
        # Stationary start.
        log_state = rng.normal(0.0, self.volatility, size=(n, n))
        matrices: list[TrafficMatrix] = []
        for i in range(num_intervals):
            interval = start_interval + i
            phase = 2 * math.pi * (interval % self.INTERVALS_PER_DAY) / self.INTERVALS_PER_DAY
            diurnal = 1.0 + self.diurnal_amplitude * math.sin(phase)
            values = self.mean_matrix * np.exp(log_state) * diurnal
            matrices.append(TrafficMatrix(values, interval=interval))
            log_state = self.phi * log_state + rng.normal(
                0.0, innovation_std, size=(n, n)
            )
        return matrices
