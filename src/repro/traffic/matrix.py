"""Traffic matrices: per-interval demands between node pairs (§2, §5.1).

A :class:`TrafficMatrix` wraps an (n, n) non-negative array with zero
diagonal. The paper's bandwidth broker gauges one such matrix per
5-minute interval.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TrafficError


class TrafficMatrix:
    """An (n, n) demand matrix for one TE interval.

    Args:
        values: Non-negative (n, n) array; the diagonal is forced to zero.
        interval: Optional interval index (5-minute slots) for bookkeeping.

    Raises:
        TrafficError: If the array is not square or contains negatives/NaNs.
    """

    def __init__(self, values: np.ndarray, interval: int = 0) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[0] != values.shape[1]:
            raise TrafficError(f"traffic matrix must be square, got {values.shape}")
        if not np.isfinite(values).all():
            raise TrafficError("traffic matrix contains non-finite entries")
        if (values < 0).any():
            raise TrafficError("traffic matrix contains negative demands")
        self.values = values.copy()
        np.fill_diagonal(self.values, 0.0)
        self.interval = int(interval)

    @property
    def num_nodes(self) -> int:
        """Number of network sites."""
        return self.values.shape[0]

    def total_demand(self) -> float:
        """Sum of all demands in this interval."""
        return float(self.values.sum())

    def demand(self, src: int, dst: int) -> float:
        """Demand volume from ``src`` to ``dst``."""
        return float(self.values[src, dst])

    def nonzero_pairs(self) -> list[tuple[int, int]]:
        """Ordered pairs with strictly positive demand."""
        src, dst = np.nonzero(self.values)
        return list(zip(src.tolist(), dst.tolist()))

    def top_fraction_share(self, fraction: float = 0.1) -> float:
        """Share of total volume carried by the top ``fraction`` of demands.

        Reproduces the §5.1 statistic (top 10% of demands carry 88.4% of
        volume in the production trace).
        """
        if not 0 < fraction <= 1:
            raise TrafficError("fraction must be in (0, 1]")
        flat = self.values[self.values > 0]
        if flat.size == 0:
            return 0.0
        k = max(1, int(round(fraction * flat.size)))
        top = np.sort(flat)[-k:]
        return float(top.sum() / flat.sum())

    def scaled(self, factor: float) -> "TrafficMatrix":
        """Return a copy with all demands multiplied by ``factor``."""
        if factor < 0:
            raise TrafficError("scale factor must be non-negative")
        return TrafficMatrix(self.values * factor, interval=self.interval)

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(nodes={self.num_nodes}, interval={self.interval}, "
            f"total={self.total_demand():.3g})"
        )
