"""Demand perturbations for the robustness study (§5.4, Figure 10).

- :func:`temporal_fluctuation` — per Figure 10a: take the variance of each
  demand's changes between consecutive intervals, multiply it by a factor
  (2/5/10/20), and add a zero-mean normal sample with that variance to
  every interval.
- :func:`spatial_redistribution` — per Figure 10b: reassign volume so the
  top 10% of demands carry a chosen share (80/60/40/20%) of total volume
  instead of the original 88.4%.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TrafficError
from .matrix import TrafficMatrix
from .trace import TrafficTrace


def temporal_fluctuation(
    trace: TrafficTrace, factor: float, seed: int = 0
) -> TrafficTrace:
    """Scale temporal variance by ``factor`` via additive Gaussian noise.

    Args:
        trace: Input trace.
        factor: Variance multiplier (paper tests 1, 2, 5, 10, 20;
            1 returns an unmodified copy).
        seed: RNG seed.

    Returns:
        A new trace with noisier demands (clipped at zero).
    """
    if factor < 1:
        raise TrafficError("fluctuation factor must be >= 1")
    if factor == 1:
        return TrafficTrace([TrafficMatrix(m.values, m.interval) for m in trace])
    rng = np.random.default_rng(seed)
    variance = trace.temporal_variances() * factor
    std = np.sqrt(variance)
    perturbed = []
    for m in trace:
        noise = rng.normal(0.0, 1.0, size=m.values.shape) * std
        perturbed.append(
            TrafficMatrix(np.clip(m.values + noise, 0.0, None), m.interval)
        )
    return TrafficTrace(perturbed)


def spatial_redistribution(
    trace: TrafficTrace, target_top_share: float, top_fraction: float = 0.1
) -> TrafficTrace:
    """Rescale so the top ``top_fraction`` of demands carry ``target_top_share``.

    The set of "top" demands is determined per matrix from its positive
    entries (matching §5.4's reassignment of the top 10% of demands).
    Total volume per matrix is preserved.

    Args:
        trace: Input trace.
        target_top_share: Desired volume share of the top demands (0..1).
        top_fraction: Fraction of positive demands considered "top".

    Returns:
        A new trace with the requested spatial skew.
    """
    if not 0 < target_top_share < 1:
        raise TrafficError("target_top_share must be in (0, 1)")
    if not 0 < top_fraction < 1:
        raise TrafficError("top_fraction must be in (0, 1)")
    redistributed = []
    for m in trace:
        values = m.values.copy()
        # Rescaling can reorder demands (shrunken elephants overtaken by
        # boosted mice), shifting the *measured* top share; iterate to a
        # fixed point where the measured share matches the target.
        for _ in range(12):
            positive = values > 0
            flat = values[positive]
            if flat.size < 2:
                break
            k = max(1, int(round(top_fraction * flat.size)))
            order = np.argsort(values, axis=None)[::-1][:k]
            top_mask = np.zeros_like(values, dtype=bool)
            top_mask[np.unravel_index(order, values.shape)] = True
            top_mask &= positive
            rest_mask = positive & ~top_mask

            total = values.sum()
            top_sum = values[top_mask].sum()
            rest_sum = values[rest_mask].sum()
            if top_sum <= 0 or rest_sum <= 0:
                break
            if abs(top_sum / total - target_top_share) < 1e-3:
                break
            values[top_mask] *= target_top_share * total / top_sum
            values[rest_mask] *= (1 - target_top_share) * total / rest_sum
        redistributed.append(TrafficMatrix(values, m.interval))
    return TrafficTrace(redistributed)
