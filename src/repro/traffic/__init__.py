"""Traffic substrate: matrices, calibrated generators, traces, perturbations."""

from .generators import (
    TrafficGenerator,
    calibrate_sigma,
    gravity_base_matrix,
    top_fraction_share,
)
from .matrix import TrafficMatrix
from .perturbations import spatial_redistribution, temporal_fluctuation
from .trace import TraceSplit, TrafficTrace

__all__ = [
    "TrafficMatrix",
    "TrafficTrace",
    "TraceSplit",
    "TrafficGenerator",
    "gravity_base_matrix",
    "calibrate_sigma",
    "top_fraction_share",
    "spatial_redistribution",
    "temporal_fluctuation",
]
