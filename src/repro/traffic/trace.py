"""Traffic traces: ordered sequences of matrices with train/val/test splits.

The paper samples disjoint sequences of consecutive 5-minute matrices:
700 for training, 100 for validation, 200 for testing (§5.1).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..config import TEST_INTERVALS, TRAIN_INTERVALS, VALIDATION_INTERVALS
from ..exceptions import TrafficError
from .generators import TrafficGenerator
from .matrix import TrafficMatrix


@dataclass(frozen=True)
class TraceSplit:
    """Train/validation/test partition of a trace."""

    train: list[TrafficMatrix]
    validation: list[TrafficMatrix]
    test: list[TrafficMatrix]

    def __post_init__(self) -> None:
        for name, part in (
            ("train", self.train),
            ("validation", self.validation),
            ("test", self.test),
        ):
            if not part:
                raise TrafficError(f"{name} split is empty")


class TrafficTrace:
    """An ordered sequence of traffic matrices over consecutive intervals.

    Args:
        matrices: Matrices with consecutive interval labels.

    Raises:
        TrafficError: If empty or shapes/intervals are inconsistent.
    """

    def __init__(self, matrices: Sequence[TrafficMatrix]) -> None:
        if not matrices:
            raise TrafficError("trace must contain at least one matrix")
        n = matrices[0].num_nodes
        for i, m in enumerate(matrices):
            if m.num_nodes != n:
                raise TrafficError("all matrices in a trace must share a size")
            if i > 0 and m.interval != matrices[i - 1].interval + 1:
                raise TrafficError("trace intervals must be consecutive")
        self.matrices = list(matrices)

    def __len__(self) -> int:
        return len(self.matrices)

    def __getitem__(self, index: int) -> TrafficMatrix:
        return self.matrices[index]

    def __iter__(self):
        return iter(self.matrices)

    @property
    def num_nodes(self) -> int:
        """Number of sites in every matrix of the trace."""
        return self.matrices[0].num_nodes

    def split(
        self,
        train: int = TRAIN_INTERVALS,
        validation: int = VALIDATION_INTERVALS,
        test: int = TEST_INTERVALS,
    ) -> TraceSplit:
        """Split into disjoint consecutive train/validation/test sequences.

        Raises:
            TrafficError: If the trace is shorter than the requested total.
        """
        total = train + validation + test
        if len(self.matrices) < total:
            raise TrafficError(
                f"trace has {len(self.matrices)} intervals, "
                f"need {total} for the requested split"
            )
        return TraceSplit(
            train=self.matrices[:train],
            validation=self.matrices[train : train + validation],
            test=self.matrices[train + validation : total],
        )

    def mean_matrix(self) -> TrafficMatrix:
        """Element-wise mean matrix of the trace (used for provisioning)."""
        stacked = np.stack([m.values for m in self.matrices])
        return TrafficMatrix(stacked.mean(axis=0), interval=self.matrices[0].interval)

    def temporal_variances(self) -> np.ndarray:
        """Per-demand variance of changes between consecutive intervals.

        The Figure 10a perturbation scales exactly this quantity.
        """
        stacked = np.stack([m.values for m in self.matrices])
        if stacked.shape[0] < 2:
            return np.zeros_like(stacked[0])
        deltas = np.diff(stacked, axis=0)
        return deltas.var(axis=0)

    @classmethod
    def generate(
        cls,
        num_nodes: int,
        num_intervals: int,
        seed: int = 0,
        **generator_kwargs,
    ) -> "TrafficTrace":
        """Generate a synthetic trace (see :class:`TrafficGenerator`)."""
        generator = TrafficGenerator(num_nodes, seed=seed, **generator_kwargs)
        return cls(generator.generate(num_intervals))

    @classmethod
    def generate_split(
        cls,
        num_nodes: int,
        train: int,
        validation: int,
        test: int,
        seed: int = 0,
        **generator_kwargs,
    ) -> TraceSplit:
        """Generate a trace exactly covering a split and return the split."""
        trace = cls.generate(
            num_nodes, train + validation + test, seed=seed, **generator_kwargs
        )
        return trace.split(train, validation, test)
